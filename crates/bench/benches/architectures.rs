//! Criterion benches over whole view operations — wall-time twins of the
//! virtual-time figure experiments, at reduced scale. One group per paper
//! table: updates (Figure 4A), All-Members scans (Figure 4B), single-entity
//! reads (Figure 5).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hazy_core::{Architecture, DurableClassifierView, Entity, Mode, OpOverheads, ViewBuilder};
use hazy_datagen::{DatasetSpec, ExampleStream};

fn spec() -> DatasetSpec {
    DatasetSpec::dblife().scaled(0.02)
}

fn build(arch: Architecture, mode: Mode) -> Box<dyn DurableClassifierView + Send> {
    let s = spec();
    let ds = s.generate();
    let warm = ExampleStream::new(&s, 0xAAAA).take_vec(6000);
    ViewBuilder::new(arch, mode)
        .norm_pair(s.norm_pair())
        .overheads(OpOverheads::free())
        .dim(s.dim)
        .build(ds.entities.iter().map(|e| Entity::new(e.id, e.f.clone())).collect(), &warm)
}

fn bench_eager_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4a_eager_update_wall");
    for (arch, name) in [
        (Architecture::NaiveMem, "naive-mm"),
        (Architecture::HazyMem, "hazy-mm"),
        (Architecture::HazyDisk, "hazy-od"),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &arch, |b, &arch| {
            let mut view = build(arch, Mode::Eager);
            let mut stream = ExampleStream::new(&spec(), 0xB);
            b.iter(|| view.update(black_box(&stream.next_example())));
        });
    }
    g.finish();
}

fn bench_lazy_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4b_lazy_allmembers_wall");
    for (arch, name) in
        [(Architecture::NaiveMem, "naive-mm"), (Architecture::HazyMem, "hazy-mm")]
    {
        g.bench_with_input(BenchmarkId::from_parameter(name), &arch, |b, &arch| {
            let mut view = build(arch, Mode::Lazy);
            let mut stream = ExampleStream::new(&spec(), 0xC);
            for _ in 0..20 {
                view.update(&stream.next_example());
            }
            b.iter(|| black_box(view.count_positive()));
        });
    }
    g.finish();
}

fn bench_single_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_single_entity_wall");
    for (arch, name) in [
        (Architecture::HazyMem, "hazy-mm"),
        (Architecture::Hybrid, "hybrid"),
        (Architecture::HazyDisk, "hazy-od"),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &arch, |b, &arch| {
            let mut view = build(arch, Mode::Eager);
            let n = spec().n_entities as u64;
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 7919) % n;
                black_box(view.read_single(k))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_eager_update, bench_lazy_scan, bench_single_read
}
criterion_main!(benches);
