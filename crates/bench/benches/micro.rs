//! Criterion microbenches for the hot kernels under every experiment:
//! dot products, SGD steps, watermark bookkeeping, the Skiing decision,
//! tuple codec, B+-tree and buffer-pool paths, and reorganization sorts.
//! These measure *wall* time of the real code (no simulated costs).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hazy_core::{decode_tuple, decode_tuple_ref, encode_tuple, merge_sorted_tail, HTuple, Skiing};
use hazy_learn::{LinearModel, SgdConfig, SgdTrainer};
use hazy_linalg::{FeatureVec, Features, Norm, NormPair, OrdF64};
use hazy_storage::{BTree, BufferPool, CostModel, HashIndex, SimDisk, VirtualClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sparse_vec(rng: &mut StdRng, dim: u32, nnz: usize) -> FeatureVec {
    FeatureVec::sparse(dim, (0..nnz).map(|_| (rng.gen_range(0..dim), rng.gen_range(-1.0..1.0))))
}

fn bench_linalg(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let dense = FeatureVec::dense((0..54).map(|_| rng.gen_range(-1.0f32..1.0)).collect::<Vec<_>>());
    let sparse = sparse_vec(&mut rng, 50_000, 60);
    let w: Vec<f64> = (0..50_000).map(|_| rng.gen_range(-1.0..1.0)).collect();

    let mut g = c.benchmark_group("linalg");
    g.bench_function("dot_dense54", |b| b.iter(|| black_box(dense.dot(&w[..54]))));
    g.bench_function("dot_sparse60", |b| b.iter(|| black_box(sparse.dot(&w))));
    g.bench_function("norm_l1_sparse", |b| b.iter(|| black_box(sparse.norm(Norm::L1))));
    g.bench_function("sortable_key", |b| b.iter(|| black_box(OrdF64(0.125).sortable_key())));
    g.finish();
}

fn bench_sgd(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let examples: Vec<(FeatureVec, i8)> = (0..256)
        .map(|_| (sparse_vec(&mut rng, 50_000, 8), if rng.gen_bool(0.5) { 1 } else { -1 }))
        .collect();
    let mut g = c.benchmark_group("sgd");
    g.bench_function("step_sparse8_dim50k", |b| {
        let mut t = SgdTrainer::new(SgdConfig::svm(), 50_000);
        let mut i = 0;
        b.iter(|| {
            let (f, y) = &examples[i % examples.len()];
            i += 1;
            black_box(t.step(f, *y))
        })
    });
    g.finish();
}

fn bench_watermark(c: &mut Criterion) {
    use hazy_core::{WaterMarks, WatermarkPolicy};
    let stored = LinearModel::from_parts(vec![0.1; 1000], 0.05);
    let mut g = c.benchmark_group("watermark");
    g.bench_function("observe_bounded", |b| {
        let mut wm = WaterMarks::new(stored.clone(), NormPair::TEXT, 1.0, WatermarkPolicy::Monotone);
        let mut d = 0.0f64;
        b.iter(|| {
            d += 1e-6;
            black_box(wm.observe_bounded(d, 0.05))
        })
    });
    g.bench_function("skiing_decision", |b| {
        let mut sk = Skiing::new(1.0, 1e9);
        b.iter(|| {
            sk.add_cost(1.0);
            black_box(sk.should_reorganize())
        })
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let t = HTuple { id: 42, label: 1, eps: 0.5, f: sparse_vec(&mut rng, 50_000, 60) };
    let mut buf = Vec::new();
    encode_tuple(&t, &mut buf);
    let mut g = c.benchmark_group("tuple_codec");
    g.bench_function("encode_sparse60", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            encode_tuple(black_box(&t), &mut out);
            black_box(out)
        })
    });
    g.bench_function("decode_sparse60", |b| b.iter(|| black_box(decode_tuple(&buf).unwrap())));
    // the zero-copy scan path: borrow the tuple straight from the encoded
    // bytes, no allocation at all
    g.bench_function("decode_sparse60_ref", |b| {
        b.iter(|| black_box(decode_tuple_ref(&buf).unwrap().f.nnz()))
    });
    // decode + classify, the way an All-Members scan visits an uncertain
    // tuple: owned (old path) vs borrowed (new path)
    let mut rng2 = StdRng::seed_from_u64(5);
    let w: Vec<f64> = (0..50_000).map(|_| rng2.gen_range(-1.0..1.0)).collect();
    g.bench_function("scan_classify_owned", |b| {
        b.iter(|| {
            let t = decode_tuple(&buf).unwrap();
            black_box(t.f.dot(&w))
        })
    });
    g.bench_function("scan_classify_ref", |b| {
        b.iter(|| {
            let t = decode_tuple_ref(&buf).unwrap();
            black_box(Features::dot(&t.f, &w))
        })
    });
    g.finish();
}

fn bench_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage");
    g.bench_function("btree_get_100k", |b| {
        let mut pool = BufferPool::new(SimDisk::new(VirtualClock::new(CostModel::free())), 4096);
        let entries: Vec<((u64, u64), u64)> = (0..100_000u64).map(|k| ((k, 0), k)).collect();
        let tree = BTree::bulk_load(&mut pool, &entries);
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 100_000;
            black_box(tree.get(&mut pool, (k, 0)))
        })
    });
    g.bench_function("btree_insert", |b| {
        let mut pool = BufferPool::new(SimDisk::new(VirtualClock::new(CostModel::free())), 4096);
        let mut tree = BTree::new(&mut pool);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            tree.insert(&mut pool, (k, 0), k).unwrap();
        })
    });
    g.bench_function("hash_index_get", |b| {
        let mut pool = BufferPool::new(SimDisk::new(VirtualClock::new(CostModel::free())), 4096);
        let mut idx = HashIndex::with_capacity(&mut pool, 100_000);
        for k in 0..100_000u64 {
            idx.insert(&mut pool, k, !k).unwrap();
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 100_000;
            black_box(idx.get(&mut pool, k))
        })
    });
    g.bench_function("pool_hit", |b| {
        let mut pool = BufferPool::new(SimDisk::new(VirtualClock::new(CostModel::free())), 8);
        let pid = pool.allocate();
        b.iter(|| pool.with_page(pid, |p| black_box(p[0])))
    });
    g.finish();
}

fn bench_reorg_sort(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let eps: Vec<f64> = (0..100_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut g = c.benchmark_group("reorg");
    g.bench_function("sort_100k_eps", |b| {
        b.iter(|| {
            let mut v = eps.clone();
            v.sort_unstable_by(|a, b| b.total_cmp(a));
            black_box(v.len())
        })
    });
    // The incremental reorganization scenario: a 100k-entry ε-sorted run
    // plus a 1k unsorted tail of inserts (1%). The old code resorted all
    // 101k; the new code sorts the tail and merges.
    let mut sorted: Vec<f64> = (0..100_000).map(|_| rng.gen_range(-1.0f64..1.0)).collect();
    sorted.sort_unstable_by(|a, b| b.total_cmp(a));
    let split = sorted.len();
    let mut run = sorted;
    run.extend((0..1_000).map(|_| rng.gen_range(-1.0f64..1.0)));
    g.bench_function("merge_100k_tail1k", |b| {
        b.iter(|| {
            let mut v = run.clone();
            v[split..].sort_unstable_by(|a, b| b.total_cmp(a));
            merge_sorted_tail(&mut v, split, |a, b| b.total_cmp(a) != std::cmp::Ordering::Greater);
            black_box(v.len())
        })
    });
    g.bench_function("resort_100k_tail1k", |b| {
        b.iter(|| {
            let mut v = run.clone();
            v.sort_unstable_by(|a, b| b.total_cmp(a));
            black_box(v.len())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_linalg, bench_sgd, bench_watermark, bench_codec, bench_storage, bench_reorg_sort
}
criterion_main!(benches);
