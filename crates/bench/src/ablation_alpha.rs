//! α-sensitivity ablation (Appendix C.2).
//!
//! The paper reports that tuning α can buy ~10% over the default α = 1.
//! This sweep measures eager update throughput for a range of α on the
//! DBLife-shaped corpus, plus the theoretically optimal α for the measured
//! σ (scan time / reorganization time).

use hazy_core::{ClassifierView, Mode, Skiing, ViewBuilder};
use hazy_datagen::{DatasetSpec, ExampleStream};

use crate::common::{entities_of, fmt_rate, rate_per_sec, render_table, warm_examples, DB_SCALE, WARM};

/// Runs the α sweep.
pub fn run() -> String {
    let spec = DatasetSpec::dblife().scaled(DB_SCALE);
    let ds = spec.generate();
    let warm = warm_examples(&spec, WARM);
    let mut rows = Vec::new();
    let mut best = (0.0f64, 0.0f64);
    for alpha in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0] {
        let mut view = ViewBuilder::new(hazy_core::Architecture::HazyMem, Mode::Eager)
            .norm_pair(spec.norm_pair())
            .dim(spec.dim)
            .alpha(alpha)
            .build_hazy_mem(entities_of(&ds), &warm);
        let mut stream = ExampleStream::new(&spec, 0xA1FA);
        let n = 1500u64;
        let t0 = view.clock().now_ns();
        for _ in 0..n {
            view.update(&stream.next_example());
        }
        let rate = rate_per_sec(n, view.clock().now_ns() - t0);
        if rate > best.1 {
            best = (alpha, rate);
        }
        rows.push(vec![
            format!("{alpha}"),
            fmt_rate(rate),
            view.stats().reorgs.to_string(),
        ]);
    }
    let mut out = render_table(
        "Ablation — Skiing α sensitivity (eager updates/s, synthetic DBLife)",
        &["alpha", "updates/s", "reorgs"],
        &rows,
    );
    out.push_str(&format!(
        "best α in sweep: {} ({} upd/s); theoretical α*(σ=0) = {} · paper: tuning α bought ≈10% over α=1\n",
        best.0,
        fmt_rate(best.1),
        Skiing::alpha_optimal(0.0),
    ));
    out
}
