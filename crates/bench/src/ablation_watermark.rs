//! Watermark-policy ablation (Appendix B.3).
//!
//! Eq. 2's running min/max (monotone — required for the Skiing guarantee)
//! versus the non-monotone two-round window, which gives tighter bands but
//! voids the competitive analysis. The paper: "the cost differences between
//! the two incremental steps is small".

use hazy_core::{ClassifierView, Architecture, Mode, ViewBuilder, WatermarkPolicy};
use hazy_datagen::{DatasetSpec, ExampleStream};

use crate::common::{entities_of, fmt_rate, rate_per_sec, render_table, warm_examples, DB_SCALE, WARM};

/// Runs the policy comparison.
pub fn run() -> String {
    let spec = DatasetSpec::dblife().scaled(DB_SCALE);
    let ds = spec.generate();
    let warm = warm_examples(&spec, WARM);
    let mut rows = Vec::new();
    for (policy, label) in [
        (WatermarkPolicy::Monotone, "monotone (Eq. 2)"),
        (WatermarkPolicy::Window2, "window-2 (App. B.3)"),
    ] {
        let mut view = ViewBuilder::new(Architecture::HazyMem, Mode::Eager)
            .norm_pair(spec.norm_pair())
            .dim(spec.dim)
            .watermark_policy(policy)
            .build_hazy_mem(entities_of(&ds), &warm);
        let mut stream = ExampleStream::new(&spec, 0xAB1E);
        let n = 1500u64;
        let t0 = view.clock().now_ns();
        let mut band_sum = 0u64;
        for i in 0..n {
            view.update(&stream.next_example());
            if i % 100 == 0 {
                band_sum += view.tuples_in_band();
            }
        }
        let dt = view.clock().now_ns() - t0;
        rows.push(vec![
            label.to_string(),
            fmt_rate(rate_per_sec(n, dt)),
            (band_sum / (n / 100)).to_string(),
            view.stats().reorgs.to_string(),
            view.stats().tuples_reclassified.to_string(),
        ]);
    }
    let mut out = render_table(
        "Ablation — watermark policy (eager updates, synthetic DBLife)",
        &["Policy", "updates/s", "mean band", "reorgs", "reclassified"],
        &rows,
    );
    out.push_str("Paper: the difference between the two incremental steps is small.\n");
    out
}
