//! Adaptive-tuning bench: a phased read-heavy → update-heavy → read-heavy
//! workload served by `hazy-tune`'s adaptive view against every static
//! architecture × mode.
//!
//! The paper's Figure 4/5 story is that eager wins read-heavy mixes and
//! lazy wins update-heavy ones; a workload that *shifts* therefore has no
//! good static answer. This experiment drives the identical operation
//! stream through all ten static configurations and through one adaptive
//! view (starting eager hazy-mm), and reports per-phase virtual cost,
//! the advisor's migrations, and each migration's pause. The acceptance
//! bar (checked when run full-size): the adaptive view lands within 15%
//! of the best static configuration in *every* phase and beats the worst
//! static configuration end-to-end.

use hazy_core::{Architecture, ClassifierView, Mode, ViewBuilder};
use hazy_datagen::{DatasetSpec, ExampleStream};
use hazy_learn::TrainingExample;
use hazy_tune::{AdaptiveView, AdvisorConfig};

use crate::common::{entities_of, render_table, warm_examples};

/// One operation of the phased stream.
enum Op {
    Update(Vec<TrainingExample>),
    Read(u64),
    Count,
    TopK(usize),
    Members,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The three phases. Read-heavy: 55% single reads, 30% scans/ranked, 15%
/// updates. Update-heavy: 85% updates, 15% reads.
fn phases(spec: &DatasetSpec, n_entities: u64, phase_len: usize) -> Vec<Vec<Op>> {
    let mut stream = ExampleStream::new(spec, 0xBEEF);
    let mut r = 0x5EED_0001u64;
    let read_heavy = |r: &mut u64, stream: &mut ExampleStream| -> Vec<Op> {
        (0..phase_len)
            .map(|_| match splitmix64(r) % 100 {
                0..=54 => Op::Read(splitmix64(r) % n_entities),
                55..=69 => Op::Count,
                70..=77 => Op::TopK(10),
                78..=84 => Op::Members,
                _ => Op::Update(stream.take_vec(1)),
            })
            .collect()
    };
    let update_heavy = |r: &mut u64, stream: &mut ExampleStream| -> Vec<Op> {
        (0..phase_len)
            .map(|_| match splitmix64(r) % 100 {
                0..=84 => Op::Update(stream.take_vec(2)),
                _ => Op::Read(splitmix64(r) % n_entities),
            })
            .collect()
    };
    vec![
        read_heavy(&mut r, &mut stream),
        update_heavy(&mut r, &mut stream),
        read_heavy(&mut r, &mut stream),
    ]
}

fn apply(v: &mut dyn ClassifierView, op: &Op) {
    match op {
        Op::Update(batch) => v.update_batch(batch),
        Op::Read(id) => {
            let _ = v.read_single(*id);
        }
        Op::Count => {
            let _ = v.count_positive();
        }
        Op::TopK(k) => {
            let _ = v.top_k(*k);
        }
        Op::Members => {
            let _ = v.positive_ids();
        }
    }
}

fn run_phases(v: &mut dyn ClassifierView, phases: &[Vec<Op>]) -> Vec<u64> {
    let mut costs = Vec::with_capacity(phases.len());
    for phase in phases {
        let t0 = v.clock().now_ns();
        for op in phase {
            apply(v, op);
        }
        costs.push(v.clock().now_ns() - t0);
    }
    costs
}

/// Runs the experiment; `quick` shrinks everything for CI smoke (and skips
/// the acceptance assertions — at toy scale the phases are too short for
/// the regret accounting to be meaningful).
pub fn run(quick: bool) -> String {
    let spec = DatasetSpec::dblife().scaled(if quick { 0.008 } else { 0.05 });
    let ds = spec.generate();
    let n_entities = ds.entities.len() as u64;
    let warm = warm_examples(&spec, if quick { 300 } else { 4_000 });
    let phase_len = if quick { 90 } else { 700 };
    let script = phases(&spec, n_entities, phase_len);
    let builder = |arch: Architecture, mode: Mode| {
        ViewBuilder::new(arch, mode).norm_pair(spec.norm_pair()).dim(spec.dim)
    };

    // ---- the ten static contenders
    let mut rows = Vec::new();
    let mut static_costs: Vec<(String, Vec<u64>)> = Vec::new();
    for arch in Architecture::all() {
        for mode in [Mode::Eager, Mode::Lazy] {
            let mut v = builder(arch, mode).build(entities_of(&ds), &warm);
            let costs = run_phases(v.as_mut(), &script);
            static_costs.push((format!("{} ({})", arch.name(), mode.name()), costs));
        }
    }

    // ---- the adaptive view (starts eager hazy-mm, advisor live)
    let cfg = AdvisorConfig { window: 8, switch_factor: 0.5, min_dwell: 2 };
    let mut adaptive =
        AdaptiveView::build(&builder(Architecture::HazyMem, Mode::Eager), cfg, entities_of(&ds), &warm);
    let adaptive_costs = run_phases(&mut adaptive, &script);

    // ---- report
    for (name, costs) in &static_costs {
        rows.push(render_row(name, costs));
    }
    rows.push(render_row("adaptive", &adaptive_costs));
    let mut out = render_table(
        "Phased workload (read-heavy / update-heavy / read-heavy), virtual ms per phase",
        &["configuration", "phase 1", "phase 2", "phase 3", "total"],
        &rows,
    );

    out.push_str(&format!(
        "\nadaptive migrations: {} (ViewStats.migrations = {})\n",
        adaptive.migration_log().len(),
        adaptive.stats().migrations
    ));
    for e in adaptive.migration_log() {
        out.push_str(&format!(
            "  {} ({}) -> {} ({})  at {:.1} ms  pause {:.3} ms  [{}]\n",
            e.from.0.name(),
            e.from.1.name(),
            e.to.0.name(),
            e.to.1.name(),
            e.at_ns as f64 / 1e6,
            e.pause_ns as f64 / 1e6,
            if e.auto { "advisor" } else { "manual" },
        ));
    }

    // ---- acceptance: within 15% of the best static per phase, strictly
    //      better than the worst static end-to-end
    let mut verdicts = String::new();
    let mut pass = true;
    for p in 0..3 {
        let best = static_costs.iter().map(|(_, c)| c[p]).min().unwrap();
        let ratio = adaptive_costs[p] as f64 / best as f64;
        let ok = ratio <= 1.15;
        pass &= ok;
        verdicts.push_str(&format!(
            "phase {}: adaptive/best-static = {:.3} ({})\n",
            p + 1,
            ratio,
            if ok { "PASS <= 1.15" } else { "FAIL > 1.15" }
        ));
    }
    let total_adaptive: u64 = adaptive_costs.iter().sum();
    let worst_total = static_costs.iter().map(|(_, c)| c.iter().sum::<u64>()).max().unwrap();
    let best_total = static_costs.iter().map(|(_, c)| c.iter().sum::<u64>()).min().unwrap();
    let end_ok = total_adaptive < worst_total;
    pass &= end_ok;
    verdicts.push_str(&format!(
        "end-to-end: adaptive {:.1} ms vs best static {:.1} ms / worst static {:.1} ms ({})\n",
        total_adaptive as f64 / 1e6,
        best_total as f64 / 1e6,
        worst_total as f64 / 1e6,
        if end_ok { "PASS < worst" } else { "FAIL >= worst" }
    ));
    out.push('\n');
    out.push_str(&verdicts);
    if !quick {
        assert!(pass, "adaptive_shift acceptance failed:\n{verdicts}");
        assert!(
            !adaptive.migration_log().is_empty(),
            "the phased workload must trigger at least one migration"
        );
    }
    out
}

fn render_row(name: &str, costs: &[u64]) -> Vec<String> {
    let total: u64 = costs.iter().sum();
    let mut row = vec![name.to_string()];
    for c in costs {
        row.push(format!("{:.1}", *c as f64 / 1e6));
    }
    row.push(format!("{:.1}", total as f64 / 1e6));
    row
}
