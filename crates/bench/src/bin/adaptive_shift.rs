//! Regenerates the adaptive-tuning table; see `hazy_bench::adaptive_shift`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", hazy_bench::adaptive_shift::run(quick));
}
