//! Regenerates Figure 4(A); pass `--cold` for the zero-example variant.
fn main() {
    let cold = std::env::args().any(|a| a == "--cold");
    print!("{}", hazy_bench::fig04_eager_update::run_with(cold));
}
