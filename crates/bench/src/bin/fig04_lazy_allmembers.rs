//! Regenerates one experiment; see the module docs in `hazy-bench`.
fn main() {
    print!("{}", hazy_bench::fig04_lazy_allmembers::run());
}
