//! Regenerates Figure 6 (A: memory usage, B: buffer-size sweep).
fn main() {
    print!("{}", hazy_bench::fig06_hybrid::run());
}
