//! Regenerates one experiment; see the module docs in `hazy-bench`.
fn main() {
    print!("{}", hazy_bench::fig11a_scalability::run());
}
