//! Regenerates one experiment; see the module docs in `hazy-bench`.
fn main() {
    print!("{}", hazy_bench::fig12a_feature_sensitivity::run());
}
