//! Regenerates one experiment; see the module docs in `hazy-bench`.
fn main() {
    print!("{}", hazy_bench::fig12b_multiclass::run());
}
