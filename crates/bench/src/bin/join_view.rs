fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", hazy_bench::join_view::run(quick));
}
