//! Observability overhead on the serving hot paths, A/B in one process:
//! the identical classify / update workload with recording enabled
//! (`hazy_obs::set_enabled(true)`) versus disabled.
//!
//! The hazy-obs contract is that instrumentation is cheap enough to leave
//! on: every record is one relaxed `enabled()` load plus (when on) one to
//! three relaxed `fetch_add`s, and trace emits go to a bounded ring that
//! never blocks. This bin measures what that costs where it matters — the
//! epoch-pinned single-entity read (the paper's `Single Entity` probe,
//! the most latency-sensitive operation in the system) and the batched
//! `Update` round — and **asserts the read-path ceiling recorded in
//! BENCH_PR10.md: instrumented reads at most 5% slower**.
//!
//! Methodology: both arms run inside one process, alternating which goes
//! first each trial so state drift and frequency scaling hit them
//! equally. The read cost is the *minimum* ns/op across trials (reads
//! are state-independent and noise is strictly additive, so min is the
//! low-variance estimator); the update comparison — whose cost drifts
//! upward as the view accumulates examples — is the median of
//! within-trial ratios, where the two arms see near-identical state. The
//! assertion runs only in the full configuration; `--quick` (CI smoke)
//! sizes are too small to separate signal from scheduler noise.
//!
//! Wall-clock numbers; run with `--release` and record in BENCH_PR10.md.

use std::hint::black_box;
use std::time::Instant;

use hazy_bench::common;
use hazy_core::{Architecture, Mode, ViewBuilder};
use hazy_datagen::{DatasetSpec, ExampleStream};
use hazy_learn::TrainingExample;
use hazy_serve::{ReadHandle, ShardedView, WriteHandle};

/// Per-arm cost of one trial, in ns per operation.
struct Arm {
    read_ns: f64,
    update_ns: f64,
}

fn measure(
    read: &ReadHandle,
    write: &mut WriteHandle,
    ids: &[u64],
    batches: &[Vec<TrainingExample>],
) -> Arm {
    let t = Instant::now();
    for &id in ids {
        black_box(read.classify(black_box(id)));
    }
    let read_ns = t.elapsed().as_nanos() as f64 / ids.len() as f64;

    let examples: usize = batches.iter().map(Vec::len).sum();
    let t = Instant::now();
    for b in batches {
        write.update_batch(b);
    }
    let update_ns = t.elapsed().as_nanos() as f64 / examples.max(1) as f64;
    Arm { read_ns, update_ns }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // dblife shape: sparse text features, the corpus the paper's
    // single-entity experiments lean on; hazy-mm eager is the fastest
    // read path we have, so instrumentation overhead is largest there
    // in relative terms — the conservative choice for a ceiling.
    let spec = DatasetSpec::dblife().scaled(if quick { 0.02 } else { 0.10 });
    let ds = spec.generate();
    let warm = common::warm_examples(&spec, if quick { 500 } else { common::WARM });
    let builder =
        ViewBuilder::new(Architecture::HazyMem, Mode::Eager).norm_pair(spec.norm_pair()).dim(spec.dim);
    let view = ShardedView::build(&builder, 2, common::entities_of(&ds), &warm);
    let (read, mut write) = view.into_handles();

    let (reads_per_trial, rounds, batch, trials) =
        if quick { (20_000usize, 10usize, 3usize, 3usize) } else { (400_000, 60, 3, 7) };
    let ids: Vec<u64> = (0..reads_per_trial as u64).map(|i| i % spec.n_entities as u64).collect();
    let mut stream = ExampleStream::new(&spec, 0xD0C5);

    println!(
        "obs overhead: hazy-mm (eager), {} entities, 2 shards, {} reads + {}x{} updates per arm, \
         {} alternating trials\n",
        ds.len(),
        reads_per_trial,
        rounds,
        batch,
        trials
    );
    println!("{:>6} | {:>5} | {:>12} | {:>12}", "trial", "obs", "read ns/op", "update ns/op");
    println!("{}", "-".repeat(46));

    let (mut on_read, mut off_read) = (f64::INFINITY, f64::INFINITY);
    let mut update_ratios: Vec<f64> = Vec::new();
    // warm the caches and the branch predictor before the first timed arm
    measure(&read, &mut write, &ids[..ids.len() / 4], &[stream.take_vec(batch)]);
    for t in 0..trials {
        // the view accumulates examples every arm, so update cost drifts
        // upward across the run; alternating which arm goes first keeps
        // the drift from systematically taxing one side, and the update
        // comparison is within-trial (adjacent arms, near-identical state)
        let order = if t % 2 == 0 { [true, false] } else { [false, true] };
        let mut trial_update = [0.0f64; 2];
        for (slot, on) in order.into_iter().enumerate() {
            hazy_obs::set_enabled(on);
            let batches: Vec<Vec<TrainingExample>> =
                (0..rounds).map(|_| stream.take_vec(batch)).collect();
            let arm = measure(&read, &mut write, &ids, &batches);
            println!(
                "{:>6} | {:>5} | {:>12.1} | {:>12.1}",
                t,
                if on { "on" } else { "off" },
                arm.read_ns,
                arm.update_ns
            );
            trial_update[slot] = arm.update_ns;
            if on {
                on_read = on_read.min(arm.read_ns);
            } else {
                off_read = off_read.min(arm.read_ns);
            }
        }
        let (on_u, off_u) = if order[0] { (trial_update[0], trial_update[1]) } else { (trial_update[1], trial_update[0]) };
        update_ratios.push(on_u / off_u);
    }
    hazy_obs::set_enabled(true);

    update_ratios.sort_by(f64::total_cmp);
    let update_median = update_ratios[update_ratios.len() / 2];
    let read_pct = 100.0 * (on_read / off_read - 1.0);
    println!(
        "\nread best-of-{trials}: {:.1} → {:.1} ns/op ({:+.2}%) · update median within-trial \
         ratio: {:+.2}%",
        off_read,
        on_read,
        read_pct,
        100.0 * (update_median - 1.0)
    );

    if !quick {
        // the acceptance ceiling: the instrumented hot read path costs at
        // most 5% over the same path with recording switched off
        assert!(
            on_read <= off_read * 1.05,
            "instrumented read path {on_read:.1} ns/op exceeds 5% ceiling over {off_read:.1} ns/op"
        );
        println!("ceiling ok: instrumented reads within 5% of disabled");
    }
}
