//! Regenerates the durability tradeoff table; see `hazy_bench::recovery_replay`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", hazy_bench::recovery_replay::run(quick));
}
