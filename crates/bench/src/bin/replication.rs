//! Regenerates the replication fan-out/failover table; see `hazy_bench::replication`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", hazy_bench::replication::run(quick));
}
