//! Runs every experiment and writes the combined report to
//! `bench_report.md` (and stdout).
use std::fmt::Write as _;

fn main() {
    let mut report = String::from("# Hazy reproduction — experiment report\n\n");
    type Experiment = (&'static str, fn() -> String);
    let experiments: Vec<Experiment> = vec![
        ("fig03", hazy_bench::fig03_datasets::run),
        ("fig04a", hazy_bench::fig04_eager_update::run),
        ("fig04a-cold", || hazy_bench::fig04_eager_update::run_with(true)),
        ("fig04b", hazy_bench::fig04_lazy_allmembers::run),
        ("fig05", hazy_bench::fig05_single_entity::run),
        ("fig06", hazy_bench::fig06_hybrid::run),
        ("fig10", hazy_bench::fig10_learning_overhead::run),
        ("fig11a", hazy_bench::fig11a_scalability::run),
        ("fig11b", hazy_bench::fig11b_scaleup::run),
        ("fig12a", hazy_bench::fig12a_feature_sensitivity::run),
        ("fig12b", hazy_bench::fig12b_multiclass::run),
        ("fig13", hazy_bench::fig13_waterline::run),
        ("ablation-alpha", hazy_bench::ablation_alpha::run),
        ("ablation-watermark", hazy_bench::ablation_watermark::run),
    ];
    for (name, run) in experiments {
        eprintln!("running {name} ...");
        let t0 = std::time::Instant::now();
        let section = run();
        let _ = writeln!(report, "{section}");
        eprintln!("  done in {:.1}s", t0.elapsed().as_secs_f64());
    }
    print!("{report}");
    if let Err(e) = std::fs::write("bench_report.md", &report) {
        eprintln!("could not write bench_report.md: {e}");
    }
}
