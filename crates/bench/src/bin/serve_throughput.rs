//! Serving-layer throughput: single-entity reads per wall-clock second at
//! 1/2/4/8 shards under a mixed read/update workload.
//!
//! Unlike the `figXX` bins (deterministic virtual-cost reproductions of the
//! paper), this measures the *real* concurrent serving path of
//! `hazy-serve`: reader threads calling `classify` (with periodic
//! All-Members counts and ranked reads) while a single writer streams
//! training-example batches through the shards. The measurement window is
//! exactly the writer-active period (`duration_floor = 0`): reads/sec is
//! read throughput *under write pressure*. Since PR 8 readers run on the
//! epoch snapshot path and never touch the shard locks, so sharding's read
//! lever is parallel fan-out of counts/ranked reads plus smaller per-shard
//! epoch republication; the old writer-priority stall regime is preserved
//! for A/B measurement behind `WorkloadSpec::locked_reads` (see the
//! `snapshot_reads` bin and BENCH_PR8.md).
//!
//! Two architectures bracket the write-pressure spectrum: naive-mm eager
//! relabels its whole shard every round (the paper's state-of-the-art
//! baseline — long critical sections, the regime sharding exists for),
//! hazy-mm eager touches only the watermark band (short critical sections,
//! so sharding has little left to relieve — the two levers compose).
//!
//! Wall-clock numbers; run with `--release` and record in BENCH_PR3.md.
//! Pass `--quick` for a fast smoke run (CI).

use std::time::Duration;

use hazy_bench::common;
use hazy_core::{Architecture, Mode, ViewBuilder};
use hazy_datagen::{DatasetSpec, ExampleStream};
use hazy_learn::TrainingExample;
use hazy_serve::{run_mixed_workload, ShardedView, WorkloadSpec};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const READERS: usize = 4;

fn spec_batches(spec: &DatasetSpec, rounds: usize, batch: usize) -> Vec<Vec<TrainingExample>> {
    let mut stream = ExampleStream::new(spec, 0xBEEF);
    (0..rounds).map(|_| stream.take_vec(batch)).collect()
}

fn run_table(spec: &DatasetSpec, arch: Architecture, rounds: usize, warm: &[TrainingExample]) {
    let ds = spec.generate();
    let builder =
        ViewBuilder::new(arch, Mode::Eager).norm_pair(spec.norm_pair()).dim(spec.dim);
    println!(
        "{} (eager), {} entities, {READERS} readers, writer streams {rounds} batches x 2:\n",
        arch.name(),
        ds.len()
    );
    println!(
        "{:>7} | {:>12} | {:>9} | {:>12} | {:>9} | {:>9} | {:>9}",
        "shards", "reads/sec", "reads", "updates/sec", "elapsed", "stalls", "max read"
    );
    println!("{}", "-".repeat(92));
    let mut baseline = 0.0f64;
    for n_shards in SHARD_COUNTS {
        let mut view = ShardedView::build(&builder, n_shards, common::entities_of(&ds), warm);
        let wl = WorkloadSpec {
            readers: READERS,
            max_id: spec.n_entities as u64,
            scan_every: 5000,
            top_k_every: 7500,
            top_k: 10,
            batches: spec_batches(spec, rounds, 2),
            reorganize_every: 0,
            // no floor: the window is exactly the writer-active period
            duration_floor: Duration::ZERO,
            locked_reads: false,
        };
        let report = run_mixed_workload(&mut view, &wl);
        if n_shards == SHARD_COUNTS[0] {
            baseline = report.reads_per_sec();
        }
        println!(
            "{:>7} | {:>12.0} | {:>9} | {:>12.0} | {:>7.2}s | {:>9} | {:>7.1}ms   ({:.2}x)",
            n_shards,
            report.reads_per_sec(),
            report.reads,
            report.updates_per_sec(),
            report.elapsed.as_secs_f64(),
            report.stalled_reads,
            report.max_read_latency.as_secs_f64() * 1e3,
            report.reads_per_sec() / baseline.max(1e-9),
        );
    }
    println!();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Forest-shaped corpus, scaled up: dense-54 features over enough
    // entities that one naive eager maintenance round is a critical section
    // in the tens of milliseconds — the long-write-lock regime sharding
    // exists for. The hazy table uses the paper's DBLife scale: its
    // incremental rounds are so short that there is little blocking left
    // for sharding to relieve (the two levers compose).
    let naive_spec =
        DatasetSpec::forest().scaled(if quick { 0.01 } else { 0.60 });
    let hazy_spec = DatasetSpec::dblife().scaled(if quick { 0.02 } else { 0.10 });
    let naive_warm = common::warm_examples(&naive_spec, if quick { 500 } else { common::WARM });
    let hazy_warm = common::warm_examples(&hazy_spec, if quick { 500 } else { common::WARM });
    let (naive_rounds, hazy_rounds) = if quick { (20, 400) } else { (150, 20000) };
    run_table(&naive_spec, Architecture::NaiveMem, naive_rounds, &naive_warm);
    run_table(&hazy_spec, Architecture::HazyMem, hazy_rounds, &hazy_warm);
}
