//! SLO bench for the serving front end: open-loop load, real percentiles.
//!
//! Three questions, three phases, all wall-clock (run with `--release`,
//! record in BENCH_PR9.md; pass `--quick` for a CI smoke run):
//!
//! 1. **Latency vs. offered load** — simulated clients submit `Classify`
//!    traffic with exponential inter-arrivals at a fixed *offered* rate
//!    (open loop: arrivals do not wait for responses, and every latency is
//!    measured from the request's **scheduled** arrival time, so queueing
//!    delay the client would have suffered is charged to the front, not
//!    silently absorbed — no coordinated omission). Reported per load
//!    level: achieved throughput, shed rate, p50/p99/p999, queue
//!    high-water, and the mean drained batch size.
//! 2. **Batching A/B at saturation** — three dispatch regimes over the
//!    same classify traffic. (a) *Per-request dispatch*: synchronous
//!    clients issue one `call` at a time, so every request pays its full
//!    round trip — enqueue, lane wakeup, answer, client wakeup — exactly
//!    what a thread-per-request server does per request. (b) *Pipelined,
//!    unbatched drain* (`batch_max = 1`): clients keep the queue
//!    backlogged with queue-capacity waves, but the lane still drains and
//!    dispatches one request per iteration. (c) *Pipelined, batched
//!    drain* (`batch_max = 256`, the default): one drain takes the whole
//!    backlog and one epoch pin serves each per-shard group. (b) vs (a)
//!    isolates what pipelining's amortized wakeups buy; (c) vs (b) the
//!    batched drain; acceptance (full runs): (c) ≥ 2× (a).
//! 3. **Tail latency across a live migration** — the deployment is built
//!    with `build_sharded_adaptive` (every shard gets its own advisor), a
//!    read-only run establishes the unloaded read p999, then an
//!    update-heavy stream drives the advisors into eager→lazy live
//!    migrations while read traffic continues. Acceptance (full runs):
//!    the advisor actually migrated, and read p999 during the migration
//!    run stays below 10× the unloaded p999 — reads answer from pinned
//!    epochs and never wait out a shard rebuild.
//!
//! Percentiles are exact (sorted samples), not histogram-bucketed: the
//! 10× bound in phase 3 is too tight for power-of-two bucket error.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use hazy_bench::common;
use hazy_core::{Architecture, Mode, ViewBuilder};
use hazy_datagen::{DatasetSpec, ExampleStream};
use hazy_front::{Front, FrontConfig, FrontHandle, Request, Response, Ticket};
use hazy_learn::TrainingExample;
use hazy_serve::ShardedView;
use hazy_tune::{build_sharded_adaptive, AdvisorConfig};

const SHARDS: usize = 4;
/// Client counts are deliberately small: the CI container is single-core,
/// and the point is to measure the *front's* dispatch, not scheduler churn
/// from an oversubscribed client fleet. Each client still gets a paired
/// waiter thread, so even 2+1 clients exercise real cross-thread traffic.
const READERS: usize = 2;
const WRITERS: usize = 1;
/// Training examples per `Train` request.
const TRAIN_PER: usize = 8;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in (0, 1] — the `1 - u = 0` pole of the exponential
/// inverse-CDF is unreachable.
fn unit(r: &mut u64) -> f64 {
    ((splitmix64(r) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// Pacing to an absolute schedule: sleep most of the gap, then yield-loop
/// the last stretch (yielding, not spinning — on a single-core box a spin
/// loop would block the very serve lane whose latency is being measured).
/// When the schedule has fallen behind wall time (saturation), returns
/// immediately — open-loop catch-up.
fn pace(start: Instant, sched_ns: u64) {
    loop {
        let now = start.elapsed().as_nanos() as u64;
        if now >= sched_ns {
            return;
        }
        let ahead = sched_ns - now;
        if ahead > 200_000 {
            std::thread::sleep(Duration::from_nanos(ahead - 100_000));
        } else {
            std::thread::yield_now();
        }
    }
}

/// One traffic class's outcome: answered latencies (ns, from scheduled
/// arrival to response observed) plus the shed / error ledger.
#[derive(Default)]
struct Side {
    sent: u64,
    shed: u64,
    errors: u64,
    lat: Vec<u64>,
}

struct DriveOut {
    read: Side,
    write: Side,
    wall_ns: u64,
}

struct Load {
    /// Total offered `Classify` rate across all reader clients (req/s).
    read_rate: f64,
    /// Total offered `Train` rate across all writer clients (req/s).
    write_rate: f64,
    dur: Duration,
}

/// Exact quantile over sorted samples.
fn pctl(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.0}ms", ns as f64 / 1e6)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Drives one open-loop run against `h`: `READERS` classify clients and
/// `WRITERS` train clients, each paired with a waiter thread that resolves
/// tickets in submission order (per-client order matches per-lane serve
/// order, so head-of-line skew does not contaminate the samples).
fn drive(h: &FrontHandle, load: &Load, n_entities: u64, pool: &[TrainingExample], seed: u64) -> DriveOut {
    let dur_ns = load.dur.as_nanos() as u64;
    let start = Instant::now();
    let (read, write) = std::thread::scope(|s| {
        let mut read_subs = Vec::new();
        let mut read_waits = Vec::new();
        let mut write_subs = Vec::new();
        let mut write_waits = Vec::new();

        if load.read_rate > 0.0 {
            let per = load.read_rate / READERS as f64;
            for c in 0..READERS {
                let (tx, rx) = mpsc::channel::<(u64, Ticket)>();
                let h = h.clone();
                read_subs.push(s.spawn(move || {
                    let mut r = seed ^ (0xA11CE ^ (c as u64).wrapping_mul(0x1234_5678_9ABC_DEF1));
                    let mut next = 0.0f64;
                    let mut sent = 0u64;
                    loop {
                        let sched = next as u64;
                        if sched >= dur_ns {
                            break;
                        }
                        pace(start, sched);
                        let id = splitmix64(&mut r) % n_entities;
                        if tx.send((sched, h.submit(Request::Classify { id }))).is_err() {
                            break;
                        }
                        sent += 1;
                        next += -unit(&mut r).ln() * 1e9 / per;
                    }
                    sent
                }));
                read_waits.push(s.spawn(move || {
                    let mut side = Side::default();
                    for (sched, t) in rx {
                        match t.wait() {
                            Response::Rejected { .. } => side.shed += 1,
                            Response::Error(_) => side.errors += 1,
                            _ => side
                                .lat
                                .push((start.elapsed().as_nanos() as u64).saturating_sub(sched)),
                        }
                    }
                    side
                }));
            }
        }

        if load.write_rate > 0.0 {
            let per = load.write_rate / WRITERS as f64;
            for c in 0..WRITERS {
                let (tx, rx) = mpsc::channel::<(u64, Ticket)>();
                let h = h.clone();
                write_subs.push(s.spawn(move || {
                    let mut r = seed ^ (0xBEEF ^ (c as u64).wrapping_mul(0x0FED_CBA9_8765_4321));
                    let mut next = 0.0f64;
                    let mut sent = 0u64;
                    let mut k = c;
                    loop {
                        let sched = next as u64;
                        if sched >= dur_ns {
                            break;
                        }
                        pace(start, sched);
                        let off = (k * TRAIN_PER) % pool.len();
                        let batch = pool[off..off + TRAIN_PER].to_vec();
                        if tx.send((sched, h.submit(Request::Train { batch }))).is_err() {
                            break;
                        }
                        sent += 1;
                        k += 1;
                        next += -unit(&mut r).ln() * 1e9 / per;
                    }
                    sent
                }));
                write_waits.push(s.spawn(move || {
                    let mut side = Side::default();
                    for (sched, t) in rx {
                        match t.wait() {
                            Response::Rejected { .. } => side.shed += 1,
                            Response::Error(_) => side.errors += 1,
                            _ => side
                                .lat
                                .push((start.elapsed().as_nanos() as u64).saturating_sub(sched)),
                        }
                    }
                    side
                }));
            }
        }

        let gather = |subs: Vec<std::thread::ScopedJoinHandle<'_, u64>>,
                      waits: Vec<std::thread::ScopedJoinHandle<'_, Side>>| {
            let mut all = Side::default();
            for h in subs {
                all.sent += h.join().expect("submit client");
            }
            for h in waits {
                let side = h.join().expect("waiter");
                all.shed += side.shed;
                all.errors += side.errors;
                all.lat.extend(side.lat);
            }
            all.lat.sort_unstable();
            all
        };
        (gather(read_subs, read_waits), gather(write_subs, write_waits))
    });
    DriveOut { read, write, wall_ns: start.elapsed().as_nanos() as u64 }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = DatasetSpec::forest().scaled(if quick { 0.004 } else { 0.05 });
    let ds = spec.generate();
    let n_entities = ds.entities.len() as u64;
    let warm = common::warm_examples(&spec, if quick { 400 } else { 6_000 });
    let pool: Vec<TrainingExample> = ExampleStream::new(&spec, 0xF00D).take_vec(TRAIN_PER * 512);
    let builder = ViewBuilder::new(Architecture::HazyMem, Mode::Eager)
        .norm_pair(spec.norm_pair())
        .dim(spec.dim);
    let mut out = String::new();
    out.push_str(&format!(
        "slo_front: open-loop SLO bench — {} entities, {} shards, {} reader + {} writer clients{}\n\n",
        n_entities,
        SHARDS,
        READERS,
        WRITERS,
        if quick { " (--quick)" } else { "" }
    ));

    // ---------------- phase 1: latency vs offered load ----------------
    let dur = Duration::from_millis(if quick { 300 } else { 2_000 });
    let bg_writes = if quick { 25.0 } else { 100.0 };
    let loads: Vec<f64> =
        if quick { vec![2_000.0, 10_000.0] } else { vec![2_000.0, 10_000.0, 50_000.0, 200_000.0] };
    let mut rows = Vec::new();
    for (i, &rate) in loads.iter().enumerate() {
        let view = ShardedView::build(&builder, SHARDS, common::entities_of(&ds), &warm);
        let front = Front::serve_sharded(view, FrontConfig::default());
        let run = drive(
            &front.handle(),
            &Load { read_rate: rate, write_rate: bg_writes, dur },
            n_entities,
            &pool,
            0x51_0000 + i as u64,
        );
        let stats = front.shutdown();
        assert_eq!(run.read.errors + run.write.errors, 0, "serve errors under load");
        let achieved = run.read.lat.len() as f64 * 1e9 / run.wall_ns as f64;
        rows.push(vec![
            common::fmt_rate(rate),
            common::fmt_rate(achieved),
            format!("{:.1}%", 100.0 * run.read.shed as f64 / run.read.sent.max(1) as f64),
            fmt_ns(pctl(&run.read.lat, 0.50)),
            fmt_ns(pctl(&run.read.lat, 0.99)),
            fmt_ns(pctl(&run.read.lat, 0.999)),
            fmt_ns(pctl(&run.write.lat, 0.99)),
            format!("{:.1}", stats.mean_read_batch()),
            format!("{}", stats.read_queue_high_water),
        ]);
    }
    out.push_str(&render_with_note(
        &format!(
            "Phase 1 — read latency vs offered load ({}s per level, {} Train/s background)",
            dur.as_secs_f64(),
            bg_writes
        ),
        &["offered/s", "achieved/s", "shed", "p50", "p99", "p999", "wr p99", "batch", "rq hw"],
        &rows,
    ));

    // ---------------- phase 2: batching A/B at saturation ----------------
    let blast_clients = 2usize;
    let mut goodput = Vec::new();
    let mut rows = Vec::new();

    // (a) synchronous per-request dispatch: one call at a time per client
    {
        let per_client = if quick { 2_000u64 } else { 20_000 };
        let view = ShardedView::build(&builder, SHARDS, common::entities_of(&ds), &warm);
        let front = Front::serve_sharded(
            view,
            FrontConfig { batch_max: 1, ..FrontConfig::default() },
        );
        let handle = front.handle();
        let start = Instant::now();
        std::thread::scope(|s| {
            for c in 0..blast_clients {
                let h = handle.clone();
                s.spawn(move || {
                    for i in 0..per_client {
                        let id = (c as u64 * per_client + i)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            % n_entities;
                        match h.call(Request::Classify { id }) {
                            Response::Label(_) => {}
                            other => panic!("sync answer: {other:?}"),
                        }
                    }
                });
            }
        });
        let wall_ns = start.elapsed().as_nanos() as u64;
        front.shutdown();
        let rate = (blast_clients as u64 * per_client) as f64 * 1e9 / wall_ns as f64;
        goodput.push(rate);
        rows.push(vec![
            "per-request (synchronous call)".to_string(),
            common::fmt_rate(rate),
            "1.0".to_string(),
            "1".to_string(),
        ]);
    }

    // (b) and (c): pipelined waves, unbatched vs batched drain
    let per_wave = 2_048usize;
    let waves = if quick { 6 } else { 48 };
    for (name, batch_max) in
        [("pipelined, unbatched drain (batch_max=1)", 1usize), ("pipelined, batched drain (batch_max=256)", 256)]
    {
        let view = ShardedView::build(&builder, SHARDS, common::entities_of(&ds), &warm);
        // the queue holds both clients' waves in full, so nothing sheds and
        // goodput is purely the drain rate
        let front = Front::serve_sharded(
            view,
            FrontConfig {
                batch_max,
                read_queue: blast_clients * per_wave,
                ..FrontConfig::default()
            },
        );
        let handle = front.handle();
        let start = Instant::now();
        let answered: u64 = std::thread::scope(|s| {
            (0..blast_clients)
                .map(|c| {
                    let h = handle.clone();
                    s.spawn(move || {
                        let mut done = 0u64;
                        for w in 0..waves {
                            let tickets: Vec<Ticket> = (0..per_wave)
                                .map(|i| {
                                    let id = ((c * waves * per_wave + w * per_wave + i) as u64)
                                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                        % n_entities;
                                    h.submit(Request::Classify { id })
                                })
                                .collect();
                            for t in tickets {
                                match t.wait() {
                                    Response::Label(_) => done += 1,
                                    other => panic!("blast answer: {other:?}"),
                                }
                            }
                        }
                        done
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("blast client"))
                .sum()
        });
        let wall_ns = start.elapsed().as_nanos() as u64;
        let stats = front.shutdown();
        assert_eq!(answered, (blast_clients * waves * per_wave) as u64);
        let rate = answered as f64 * 1e9 / wall_ns as f64;
        goodput.push(rate);
        rows.push(vec![
            name.to_string(),
            common::fmt_rate(rate),
            format!("{:.1}", stats.mean_read_batch()),
            format!("{}", stats.max_read_batch),
        ]);
    }
    out.push_str(&render_with_note(
        &format!(
            "Phase 2 — saturation goodput, {} concurrent clients (pipelined runs: {} waves x {} each)",
            blast_clients, waves, per_wave
        ),
        &["dispatch", "goodput/s", "mean batch", "max batch"],
        &rows,
    ));
    let speedup = goodput[2] / goodput[0].max(1.0);
    out.push_str(&format!(
        "batched front / per-request dispatch: {speedup:.2}x ({}) — of which pipelining {:.2}x, batched drain {:.2}x\n\n",
        if speedup >= 2.0 { "PASS >= 2x" } else { "FAIL < 2x" },
        goodput[1] / goodput[0].max(1.0),
        goodput[2] / goodput[1].max(1.0),
    ));

    // ---------------- phase 3: tail latency across a live migration ----------------
    let cfg = AdvisorConfig { window: 8, switch_factor: 0.5, min_dwell: 2 };
    let view = build_sharded_adaptive(&builder, cfg, SHARDS, common::entities_of(&ds), &warm);
    let (rh, wh) = view.into_handles();
    let probe = rh.clone();
    let front = Front::serve_handles(rh, wh, FrontConfig::default());
    let m0 = probe.stats().migrations;

    let base = drive(
        &front.handle(),
        &Load {
            read_rate: if quick { 1_000.0 } else { 2_000.0 },
            write_rate: 0.0,
            dur: Duration::from_millis(if quick { 300 } else { 2_000 }),
        },
        n_entities,
        &pool,
        0x53_0000,
    );
    assert_eq!(probe.stats().migrations, m0, "reads alone must not migrate anything");

    let mig = drive(
        &front.handle(),
        &Load {
            read_rate: if quick { 4_000.0 } else { 10_000.0 },
            write_rate: if quick { 250.0 } else { 1_000.0 },
            dur: Duration::from_millis(if quick { 400 } else { 2_500 }),
        },
        n_entities,
        &pool,
        0x54_0000,
    );
    let migrations = probe.stats().migrations - m0;
    let stats = front.shutdown();
    let p999_unloaded = pctl(&base.read.lat, 0.999);
    let p999_mig = pctl(&mig.read.lat, 0.999);
    let ratio = p999_mig as f64 / p999_unloaded.max(1) as f64;
    out.push_str(&render_with_note(
        "Phase 3 — read p999 across advisor-driven live migration (adaptive shards, eager start)",
        &["run", "reads", "wr reqs", "p50", "p99", "p999"],
        &[
            vec![
                "unloaded (reads only)".into(),
                format!("{}", base.read.lat.len()),
                "0".into(),
                fmt_ns(pctl(&base.read.lat, 0.50)),
                fmt_ns(pctl(&base.read.lat, 0.99)),
                fmt_ns(p999_unloaded),
            ],
            vec![
                "during migration".into(),
                format!("{}", mig.read.lat.len()),
                format!("{}", mig.write.lat.len()),
                fmt_ns(pctl(&mig.read.lat, 0.50)),
                fmt_ns(pctl(&mig.read.lat, 0.99)),
                fmt_ns(p999_mig),
            ],
        ],
    ));
    out.push_str(&format!(
        "shard migrations during run: {migrations}; p999 during / unloaded = {ratio:.2}x ({})\n",
        if ratio < 10.0 { "PASS < 10x" } else { "FAIL >= 10x" }
    ));
    out.push_str(&format!(
        "front ledger: admitted {}, completed {}, shed {}, errors {}, panics {}\n",
        stats.admitted, stats.completed, stats.shed, stats.errors, stats.panics_recovered
    ));

    print!("{out}");

    // acceptance — meaningful only at full scale (quick runs are too short
    // for stable tails and may not accumulate enough advisor windows)
    if !quick {
        assert!(speedup >= 2.0, "batched dispatch must be >= 2x per-request at saturation");
        assert!(migrations > 0, "the update-heavy stream must trigger live migrations");
        assert!(ratio < 10.0, "read p999 must stay bounded across live migration");
    }
    assert_eq!(stats.completed, stats.admitted, "every admitted request answered");
    assert_eq!(base.read.errors + mig.read.errors + mig.write.errors, 0);
}

fn render_with_note(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = common::render_table(title, header, rows);
    s.push('\n');
    s
}
