//! Reader latency under write pressure: PR 3 writer-priority locks vs
//! PR 8 epoch snapshot reads, A/B on the same workload.
//!
//! The tentpole claim of the snapshot-read work is not throughput — it is
//! the *stall ceiling*: under the lock-based read path a single-entity
//! read landing mid-maintenance waits out the whole round (a full relabel
//! plus reorganization on the naive-eager architecture), so its latency
//! approaches `max_write_round`; under epoch reads the worst case is one
//! atomic pointer load plus a probe of an immutable epoch. This bin runs
//! the identical workload twice — `WorkloadSpec::locked_reads` true then
//! false — and prints p50/p99/max read latency next to the longest write
//! round, per architecture.
//!
//! One shard on purpose: sharding hides lock stalls by shrinking the
//! population behind each lock, and PR 3 already measured that lever
//! (BENCH_PR3.md). Here the whole population sits behind one writer so the
//! baseline's stall regime is maximal and the comparison is pure
//! read-path.
//!
//! Wall-clock numbers; run with `--release` and record in BENCH_PR8.md.
//! Pass `--quick` for a fast smoke run (CI).

use std::time::Duration;

use hazy_bench::common;
use hazy_core::{Architecture, Mode, ViewBuilder};
use hazy_datagen::{DatasetSpec, ExampleStream};
use hazy_learn::TrainingExample;
use hazy_serve::{run_mixed_workload, ShardedView, WorkloadSpec};

const READERS: usize = 4;

fn spec_batches(spec: &DatasetSpec, rounds: usize, batch: usize) -> Vec<Vec<TrainingExample>> {
    let mut stream = ExampleStream::new(spec, 0xBEEF);
    (0..rounds).map(|_| stream.take_vec(batch)).collect()
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn run_table(
    spec: &DatasetSpec,
    arch: Architecture,
    rounds: usize,
    reorganize_every: usize,
    warm: &[TrainingExample],
) {
    let ds = spec.generate();
    let builder = ViewBuilder::new(arch, Mode::Eager).norm_pair(spec.norm_pair()).dim(spec.dim);
    println!(
        "{} (eager), {} entities, 1 shard, {READERS} readers, {rounds} write rounds \
         (reorganize every {reorganize_every}):\n",
        arch.name(),
        ds.len()
    );
    println!(
        "{:>9} | {:>9} | {:>9} | {:>10} | {:>10} | {:>9} | {:>11} | {:>12}",
        "path", "p50", "p99", "max read", "max round", "stalls", "reads/sec", "in-round r/s"
    );
    println!("{}", "-".repeat(99));
    let mut rows: Vec<(&str, u64, f64)> = Vec::new();
    for locked in [true, false] {
        let mut view = ShardedView::build(&builder, 1, common::entities_of(&ds), warm);
        let wl = WorkloadSpec {
            readers: READERS,
            max_id: spec.n_entities as u64,
            scan_every: 0,
            top_k_every: 0,
            top_k: 0,
            batches: spec_batches(spec, rounds, 3),
            reorganize_every,
            // no floor: the window is exactly the writer-active period
            duration_floor: Duration::ZERO,
            locked_reads: locked,
        };
        let report = run_mixed_workload(&mut view, &wl);
        let path = if locked { "locked" } else { "snapshot" };
        let p99 = report.read_latency.percentile_ns(0.99);
        rows.push((path, p99, report.reads_per_sec_during_rounds()));
        println!(
            "{:>9} | {:>9} | {:>9} | {:>10} | {:>8.1}ms | {:>9} | {:>11.0} | {:>12.0}",
            path,
            fmt_ns(report.read_latency.percentile_ns(0.50)),
            fmt_ns(p99),
            fmt_ns(report.max_read_latency.as_nanos() as u64),
            report.max_write_round.as_secs_f64() * 1e3,
            report.stalled_reads,
            report.reads_per_sec(),
            report.reads_per_sec_during_rounds(),
        );
    }
    if let [(_, locked_p99, locked_ir), (_, snap_p99, snap_ir)] = rows[..] {
        println!(
            "\n  p99 ratio locked/snapshot: {:.1}x · in-round progress snapshot/locked: {:.1}x\n",
            locked_p99 as f64 / snap_p99.max(1) as f64,
            snap_ir / locked_ir.max(1.0)
        );
    }
}

/// The acceptance-criterion probe: ONE giant write round (a full-relabel
/// batch plus a reorganization of the whole population) against ONE
/// reader issuing single-entity reads in a loop. A locked reader that
/// lands mid-round blocks until the round releases the shard lock, so its
/// worst read approaches the lock-held phase of the round; a snapshot
/// reader pays one pointer load and an epoch probe no matter what the
/// writer is doing, so its worst read is bounded by scheduler preemption,
/// not by maintenance. This isolates the stall ceiling from throughput
/// noise (robust even on a one-core host).
fn stall_probe(spec: &DatasetSpec, arch: Architecture, warm: &[TrainingExample]) {
    let ds = spec.generate();
    let builder = ViewBuilder::new(arch, Mode::Eager).norm_pair(spec.norm_pair()).dim(spec.dim);
    println!(
        "stall ceiling probe: {} (eager), {} entities, 1 shard, 1 reader, ONE write round:\n",
        arch.name(),
        ds.len()
    );
    println!("{:>9} | {:>12} | {:>12} | {:>22}", "path", "max read", "round", "stall / round");
    println!("{}", "-".repeat(64));
    for locked in [true, false] {
        let mut view = ShardedView::build(&builder, 1, common::entities_of(&ds), warm);
        let wl = WorkloadSpec {
            readers: 1,
            max_id: spec.n_entities as u64,
            scan_every: 0,
            top_k_every: 0,
            top_k: 0,
            batches: spec_batches(spec, 1, 3),
            reorganize_every: 1,
            duration_floor: Duration::ZERO,
            locked_reads: locked,
        };
        let report = run_mixed_workload(&mut view, &wl);
        println!(
            "{:>9} | {:>12} | {:>10.0}ms | {:>21.1}%",
            if locked { "locked" } else { "snapshot" },
            fmt_ns(report.max_read_latency.as_nanos() as u64),
            report.max_write_round.as_secs_f64() * 1e3,
            100.0 * report.max_read_latency.as_secs_f64()
                / report.max_write_round.as_secs_f64().max(1e-9),
        );
    }
    println!();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let probe_only = std::env::args().any(|a| a == "--probe-only");
    // Forest-shaped corpus on naive-mm eager: every write round relabels
    // the whole population, the longest critical section we have — the
    // regime where the PR 3 locks stall readers hardest. The hazy-mm table
    // bounds the other end: its incremental rounds are short, so the two
    // paths should nearly agree — snapshot reads must not cost anything
    // when there is no stall to remove.
    let naive_spec = DatasetSpec::forest().scaled(if quick { 0.01 } else { 0.60 });
    let hazy_spec = DatasetSpec::dblife().scaled(if quick { 0.02 } else { 0.10 });
    let naive_warm = common::warm_examples(&naive_spec, if quick { 500 } else { common::WARM });
    if !probe_only {
        let hazy_warm = common::warm_examples(&hazy_spec, if quick { 500 } else { common::WARM });
        let (naive_rounds, hazy_rounds) = if quick { (12, 200) } else { (60, 5000) };
        run_table(&naive_spec, Architecture::NaiveMem, naive_rounds, 1, &naive_warm);
        run_table(&hazy_spec, Architecture::HazyMem, hazy_rounds, 50, &hazy_warm);
    }
    stall_probe(&naive_spec, Architecture::NaiveMem, &naive_warm);
}
