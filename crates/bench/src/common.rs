//! Shared harness utilities: the benchmark corpora, view construction, and
//! table rendering.

use hazy_core::{Architecture, DurableClassifierView, Entity, HybridConfig, Mode, ViewBuilder};
use hazy_datagen::{Dataset, DatasetSpec, ExampleStream};
use hazy_learn::TrainingExample;

/// Scale factors for the three evaluation corpora. The paper runs
/// full-size corpora on a dedicated machine for hours; the harness runs
/// scaled-down twins (documented in EXPERIMENTS.md) whose per-tuple shape is
/// identical, so per-operation rates scale by roughly the inverse factor.
pub const FC_SCALE: f64 = 0.05; // 29k entities × 54 dense
pub const DB_SCALE: f64 = 0.10; // 12.4k entities, ~7 nnz
pub const CS_SCALE: f64 = 0.02; // 14.4k entities, ~60 nnz, 13.6k vocab

/// Warm-up examples before measuring (the paper's experiments start from a
/// 12k-example warm model).
pub const WARM: usize = 12_000;

/// The three evaluation corpora at harness scale.
pub fn bench_specs() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec::forest().scaled(FC_SCALE),
        DatasetSpec::dblife().scaled(DB_SCALE),
        DatasetSpec::citeseer().scaled(CS_SCALE),
    ]
}

/// The five techniques in the order the paper's Figure 4 lists them.
pub fn figure4_architectures() -> [(Architecture, &'static str); 5] {
    [
        (Architecture::NaiveDisk, "OD naive"),
        (Architecture::HazyDisk, "OD hazy"),
        (Architecture::Hybrid, "OD hybrid"),
        (Architecture::NaiveMem, "MM naive"),
        (Architecture::HazyMem, "MM hazy"),
    ]
}

/// Materializes a dataset's entities for view construction.
pub fn entities_of(ds: &Dataset) -> Vec<Entity> {
    ds.entities.iter().map(|e| Entity::new(e.id, e.f.clone())).collect()
}

/// Builds a view over `spec` with the paper's defaults and a warm model.
pub fn build_view(
    arch: Architecture,
    mode: Mode,
    spec: &DatasetSpec,
    ds: &Dataset,
    warm: &[TrainingExample],
) -> Box<dyn DurableClassifierView + Send> {
    ViewBuilder::new(arch, mode)
        .norm_pair(spec.norm_pair())
        .dim(spec.dim)
        .hybrid_config(HybridConfig { buffer_frac: 0.01 })
        .build(entities_of(ds), warm)
}

/// Standard warm-up stream (seed disjoint from measurement streams).
pub fn warm_examples(spec: &DatasetSpec, n: usize) -> Vec<TrainingExample> {
    ExampleStream::new(spec, 0xAAAA).take_vec(n)
}

/// Virtual-time throughput: `ops` completed while the view's clock advanced
/// by `dt_ns`.
pub fn rate_per_sec(ops: u64, dt_ns: u64) -> f64 {
    if dt_ns == 0 {
        f64::INFINITY
    } else {
        ops as f64 * 1e9 / dt_ns as f64
    }
}

/// Renders a fixed-width table.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths.iter()) {
            line.push_str(&format!(" {c:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>(), &widths));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out.push('\n');
    out
}

/// Formats a rate the way the paper's tables do (`2.8k` style).
pub fn fmt_rate(r: f64) -> String {
    if !r.is_finite() {
        "inf".into()
    } else if r >= 10_000.0 {
        format!("{:.1}k", r / 1000.0)
    } else if r >= 1000.0 {
        format!("{:.2}k", r / 1000.0)
    } else if r >= 10.0 {
        format!("{r:.0}")
    } else {
        format!("{r:.2}")
    }
}

/// Formats a byte count.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1}MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "T",
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("## T"));
        assert!(t.lines().count() >= 5);
    }

    #[test]
    fn rates_format_like_the_paper() {
        assert_eq!(fmt_rate(2800.0), "2.80k");
        assert_eq!(fmt_rate(42_700.0), "42.7k");
        assert_eq!(fmt_rate(33.1), "33");
        assert_eq!(fmt_rate(0.4), "0.40");
    }

    #[test]
    fn specs_have_figure3_shape() {
        let specs = bench_specs();
        assert_eq!(specs.len(), 3);
        assert!(specs[0].dense && !specs[1].dense && !specs[2].dense);
    }
}
