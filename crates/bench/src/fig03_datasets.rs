//! Figure 3: data set statistics.
//!
//! Paper (full size): FC 73M / 582k entities / 54 features / 54 nnz;
//! DB 25M / 124k / 41k / 7; CS 1.3G / 721k / 682k / 60.

use crate::common::{bench_specs, fmt_bytes, render_table};

/// Regenerates the table at harness scale.
pub fn run() -> String {
    let mut rows = Vec::new();
    for spec in bench_specs() {
        let ds = spec.generate();
        rows.push(vec![
            spec.name.clone(),
            fmt_bytes(ds.total_bytes()),
            format!("{}k", ds.len() / 1000),
            format!("{}", spec.dim),
            format!("{:.0}", ds.mean_nnz()),
            format!("{:.1}%", 100.0 * ds.positives() as f64 / ds.len() as f64),
        ]);
    }
    let mut out = render_table(
        "Figure 3 — data set statistics (harness scale)",
        &["Dataset", "Size", "# Entities", "|F|", "nnz", "positives"],
        &rows,
    );
    out.push_str(
        "Paper (full size): FC 73M/582k/54/54 · DB 25M/124k/41k/7 · CS 1.3G/721k/682k/60\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn emits_three_rows() {
        let t = super::run();
        assert!(t.contains("FC"));
        assert!(t.contains("DB"));
        assert!(t.contains("CS"));
    }
}
