//! Figure 4(A): eager Update throughput (updates/s), five techniques ×
//! three corpora, warm model.
//!
//! Paper reference (updates/s):
//! ```text
//!            FC     DB    CS
//! OD naive   0.4    2.1   0.2
//! OD hazy    2.0    6.8   0.2
//! OD hybrid  2.0    6.6   0.2
//! MM naive   5.3   33.1   1.8
//! MM hazy   49.7  160.5   7.2
//! ```

use hazy_core::Mode;
use hazy_datagen::ExampleStream;

use crate::common::{
    bench_specs, build_view, figure4_architectures, fmt_rate, rate_per_sec, render_table,
    warm_examples, WARM,
};

/// Measured updates per technique: naive architectures pay a full pass per
/// update, so fewer samples suffice (virtual time is deterministic).
fn measured_updates(label: &str) -> usize {
    if label.contains("naive") {
        60
    } else {
        600
    }
}

/// Runs the experiment; `cold` starts from zero examples instead of the
/// 12k warm model (the Section 4.1.1 cold-start variant).
pub fn run_with(cold: bool) -> String {
    let specs = bench_specs();
    let mut rows = Vec::new();
    for (arch, label) in figure4_architectures() {
        let mut cells = vec![label.to_string()];
        for spec in &specs {
            let ds = spec.generate();
            let warm = if cold { Vec::new() } else { warm_examples(spec, WARM) };
            let mut view = build_view(arch, Mode::Eager, spec, &ds, &warm);
            let mut stream = ExampleStream::new(spec, 0xBEEF);
            let n = measured_updates(label) as u64;
            let t0 = view.clock().now_ns();
            for _ in 0..n {
                view.update(&stream.next_example());
            }
            let dt = view.clock().now_ns() - t0;
            cells.push(fmt_rate(rate_per_sec(n, dt)));
        }
        rows.push(cells);
    }
    let title = if cold {
        "Figure 4(A) cold-start variant — eager Update (updates/s), zero warm examples"
    } else {
        "Figure 4(A) — eager Update (updates/s), warm model"
    };
    let mut out = render_table(title, &["Technique", "FC", "DB", "CS"], &rows);
    out.push_str(
        "Paper: OD naive 0.4/2.1/0.2 · OD hazy 2.0/6.8/0.2 · hybrid 2.0/6.6/0.2 · \
         MM naive 5.3/33.1/1.8 · MM hazy 49.7/160.5/7.2\n",
    );
    out
}

/// The warm-model experiment (the figure as published).
pub fn run() -> String {
    run_with(false)
}
