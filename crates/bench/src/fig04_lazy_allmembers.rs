//! Figure 4(B): lazy All-Members throughput (scans/s), five techniques ×
//! three corpora.
//!
//! Paper reference (scans/s): OD naive 1.2/12.2/0.5 · OD hazy 3.5/46.9/2.0 ·
//! hybrid 8.0/48.8/2.1 · MM naive 10.4/65.7/2.4 · MM hazy 410.1/2.8k/105.7.

use hazy_core::Mode;
use hazy_datagen::ExampleStream;

use crate::common::{
    bench_specs, build_view, figure4_architectures, fmt_rate, rate_per_sec, render_table,
    warm_examples, WARM,
};

fn measured_scans(label: &str) -> usize {
    if label.contains("naive") {
        20
    } else {
        200
    }
}

/// Runs the experiment: repeated `how many entities have label 1?` queries
/// against lazy views (Section 4.1.2).
pub fn run() -> String {
    let specs = bench_specs();
    let mut rows = Vec::new();
    for (arch, label) in figure4_architectures() {
        let mut cells = vec![label.to_string()];
        for spec in &specs {
            let ds = spec.generate();
            let warm = warm_examples(spec, WARM);
            let mut view = build_view(arch, Mode::Lazy, spec, &ds, &warm);
            // a handful of lazy updates so the model is not exactly the
            // construction-time model
            let mut stream = ExampleStream::new(spec, 0xF00D);
            for _ in 0..50 {
                view.update(&stream.next_example());
            }
            let n = measured_scans(label) as u64;
            let t0 = view.clock().now_ns();
            for _ in 0..n {
                view.count_positive();
            }
            let dt = view.clock().now_ns() - t0;
            cells.push(fmt_rate(rate_per_sec(n, dt)));
        }
        rows.push(cells);
    }
    let mut out = render_table(
        "Figure 4(B) — lazy All Members (scans/s), warm model",
        &["Technique", "FC", "DB", "CS"],
        &rows,
    );
    out.push_str(
        "Paper: OD naive 1.2/12.2/0.5 · OD hazy 3.5/46.9/2.0 · hybrid 8.0/48.8/2.1 · \
         MM naive 10.4/65.7/2.4 · MM hazy 410.1/2.8k/105.7\n",
    );
    out
}
