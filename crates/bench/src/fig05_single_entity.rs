//! Figure 5: Single-Entity read throughput (reads/s), {OD, Hybrid, MM} ×
//! {eager, lazy} × three corpora, 15k uniformly random reads.
//!
//! Paper reference (reads/s):
//! ```text
//!          eager FC/DB/CS        lazy FC/DB/CS
//! OD       6.7k/6.8k/6.6k        5.9k/6.3k/5.7k
//! Hybrid  13.4k/13.0k/12.7k     13.4k/13.6k/12.2k
//! MM      13.5k/13.7k/12.7k     13.4k/13.5k/12.2k
//! ```

use hazy_core::{Architecture, Mode};
use hazy_datagen::ExampleStream;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{
    bench_specs, build_view, fmt_rate, rate_per_sec, render_table, warm_examples, WARM,
};

const READS: u64 = 15_000;

/// Runs the experiment: the hazy strategy on each architecture (naive and
/// hazy have essentially identical read paths, as the paper notes).
pub fn run() -> String {
    let specs = bench_specs();
    let archs = [
        (Architecture::HazyDisk, "OD"),
        (Architecture::Hybrid, "Hybrid"),
        (Architecture::HazyMem, "MM"),
    ];
    let mut rows = Vec::new();
    for (arch, label) in archs {
        for mode in [Mode::Eager, Mode::Lazy] {
            let mut cells = vec![format!("{label} ({})", mode.name())];
            for spec in &specs {
                let ds = spec.generate();
                let warm = warm_examples(spec, WARM);
                let mut view = build_view(arch, mode, spec, &ds, &warm);
                // a few updates so lazy paths exercise the watermark logic
                let mut stream = ExampleStream::new(spec, 0xCAFE);
                for _ in 0..20 {
                    view.update(&stream.next_example());
                }
                let mut rng = StdRng::seed_from_u64(5);
                let n_entities = ds.len() as u64;
                let t0 = view.clock().now_ns();
                for _ in 0..READS {
                    let id = rng.gen_range(0..n_entities);
                    view.read_single(id);
                }
                let dt = view.clock().now_ns() - t0;
                cells.push(fmt_rate(rate_per_sec(READS, dt)));
            }
            rows.push(cells);
        }
    }
    let mut out = render_table(
        "Figure 5 — Single Entity reads (reads/s), 15k uniform random reads",
        &["Arch (mode)", "FC", "DB", "CS"],
        &rows,
    );
    out.push_str(
        "Paper: OD 6.7k/6.8k/6.6k (eager), 5.9k/6.3k/5.7k (lazy) · \
         Hybrid ≈13k both modes · MM ≈13.5k both modes\n",
    );
    out
}
