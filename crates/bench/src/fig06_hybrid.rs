//! Figure 6: the hybrid architecture.
//!
//! (A) memory usage: total in-memory data vs the ε-map alone. Paper:
//! FC 10.4MB/6.7MB · DB 1.6MB/1.4MB · CS 13.7MB/5.4MB (and the CS ε-map is
//! 245× smaller than the 1.3 GB corpus).
//!
//! (B) Single-Entity reads/s as the buffer grows from 0.5% to 100% of the
//! entities, for three models with 1%, 10% and 50% of tuples between the
//! waters (S1/S10/S50). The paper's shape: once the buffer covers the
//! uncertain band, the hybrid reads at main-memory speed.

use hazy_core::{Architecture, ClassifierView, HybridConfig, Mode, ViewBuilder};
use hazy_datagen::DatasetSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{
    bench_specs, build_view, entities_of, fmt_bytes, fmt_rate, rate_per_sec, render_table,
    warm_examples, DB_SCALE, WARM,
};

/// Part (A): memory accounting per corpus.
pub fn run_memory() -> String {
    let mut rows = Vec::new();
    for spec in bench_specs() {
        let ds = spec.generate();
        let warm = warm_examples(&spec, WARM);
        let view = build_view(Architecture::Hybrid, Mode::Eager, &spec, &ds, &warm);
        let mem = view.memory();
        rows.push(vec![
            spec.name.clone(),
            fmt_bytes(ds.total_bytes()),
            fmt_bytes(mem.eps_map_bytes),
            fmt_bytes(mem.buffer_bytes),
            format!("{:.0}x", ds.total_bytes() as f64 / mem.eps_map_bytes.max(1) as f64),
        ]);
    }
    let mut out = render_table(
        "Figure 6(A) — hybrid memory usage",
        &["Dataset", "Data", "eps-map", "Buffer (1%)", "Data/eps-map"],
        &rows,
    );
    out.push_str("Paper: FC 10.4MB total vs 6.7MB map · DB 1.6/1.4MB · CS 13.7/5.4MB (245x vs corpus)\n");
    out
}

/// Part (B): read rate vs buffer size for S1/S10/S50.
pub fn run_buffer_sweep() -> String {
    let spec = DatasetSpec::dblife().scaled(DB_SCALE);
    let ds = spec.generate();
    let warm = warm_examples(&spec, WARM);
    let buffer_fracs = [0.005, 0.01, 0.05, 0.10, 0.20, 0.50, 1.00];
    let bands = [(0.01, "S1"), (0.10, "S10"), (0.50, "S50")];
    let reads: u64 = 15_000;

    let mut rows = Vec::new();
    for (band, label) in bands {
        let mut cells = vec![label.to_string()];
        for &bf in &buffer_fracs {
            let mut view = ViewBuilder::new(Architecture::Hybrid, Mode::Eager)
                .norm_pair(spec.norm_pair())
                .dim(spec.dim)
                .hybrid_config(HybridConfig { buffer_frac: bf })
                .build_hybrid(entities_of(&ds), &warm);
            view.set_uncertain_fraction(band);
            let mut rng = StdRng::seed_from_u64(17);
            let n = ds.len() as u64;
            let t0 = view.clock().now_ns();
            for _ in 0..reads {
                let id = rng.gen_range(0..n);
                view.read_single(id);
            }
            let dt = view.clock().now_ns() - t0;
            cells.push(fmt_rate(rate_per_sec(reads, dt)));
        }
        rows.push(cells);
    }
    let header: Vec<String> = std::iter::once("Model".to_string())
        .chain(buffer_fracs.iter().map(|f| format!("{:.1}%", f * 100.0)))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut out = render_table(
        "Figure 6(B) — hybrid Single-Entity reads/s vs buffer size (synthetic DBLife)",
        &header_refs,
        &rows,
    );
    out.push_str(
        "Paper's shape: rate approaches the main-memory architecture once the buffer \
         covers the fraction of tuples between the waters (S1: almost immediately; \
         S50: only at large buffers).\n",
    );
    out
}

/// Both parts.
pub fn run() -> String {
    let mut s = run_memory();
    s.push('\n');
    s.push_str(&run_buffer_sweep());
    s
}
