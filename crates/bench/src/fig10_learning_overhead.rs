//! Figure 10 (Appendix C.1): the overhead of learning inside the RDBMS.
//!
//! Compares three ways to train and apply the same linear SVM, on MAGIC,
//! ADULT and FOREST with a 90/10 train/test split:
//!
//! * **Batch** — dual coordinate descent run to convergence (plays the
//!   role of SVMLight: a batch solver of the identical objective);
//! * **SGD (file)** — the raw incremental trainer with no database around
//!   it (plays the role of Bottou's hand-coded C);
//! * **Hazy** — the same SGD steps driven through a classification view
//!   (trigger path + eager maintenance).
//!
//! Paper: SGD is ~30× faster than SVMLight at equal-or-better quality;
//! Hazy costs a small constant factor over file SGD (insert-at-a-time
//! overhead).

use std::time::Instant;

use hazy_core::{Architecture, Mode, OpOverheads, ViewBuilder};
use hazy_datagen::DatasetSpec;
use hazy_learn::batch::{DcdConfig, DcdSvm};
use hazy_learn::metrics::Confusion;
use hazy_learn::{LinearModel, SgdConfig, SgdTrainer, TrainingExample};

use crate::common::{entities_of, render_table};

fn eval(model: &LinearModel, test: &[TrainingExample]) -> (f64, f64) {
    let preds: Vec<i8> = test.iter().map(|e| model.predict(&e.f)).collect();
    let gold: Vec<i8> = test.iter().map(|e| e.y).collect();
    let c = Confusion::from_preds(&preds, &gold);
    (100.0 * c.precision(), 100.0 * c.recall())
}

/// Runs the comparison.
pub fn run() -> String {
    let specs = [
        DatasetSpec::magic().scaled(0.5),
        DatasetSpec::adult().scaled(0.2),
        DatasetSpec::forest().scaled(0.02),
    ];
    let mut rows = Vec::new();
    for spec in specs {
        let ds = spec.generate();
        let split = ds.len() * 9 / 10;
        let train: Vec<TrainingExample> = ds.entities[..split]
            .iter()
            .map(|e| TrainingExample::new(e.id, e.f.clone(), e.label))
            .collect();
        let test: Vec<TrainingExample> = ds.entities[split..]
            .iter()
            .map(|e| TrainingExample::new(e.id, e.f.clone(), e.label))
            .collect();

        // batch solver to tight convergence
        let t0 = Instant::now();
        let sol = DcdSvm::new(DcdConfig { max_epochs: 60, ..DcdConfig::default() }).solve(&train);
        let batch_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let (bp, br) = eval(&sol.model, &test);

        // file SGD: a few epochs, no database
        let t0 = Instant::now();
        let mut sgd = SgdTrainer::new(SgdConfig::svm(), spec.dim);
        sgd.train_epochs(&train, 3);
        let sgd_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let (sp, sr) = eval(sgd.model(), &test);

        // Hazy: identical SGD steps via the view's update path, lazy mode
        // (train, then one classification pass — the paper's "train a model
        // and populate the view" task), wall-clock, zero simulated
        // overheads. This measures the real view plumbing on top of raw
        // training.
        let mut view = ViewBuilder::new(Architecture::HazyMem, Mode::Lazy)
            .norm_pair(spec.norm_pair())
            .overheads(OpOverheads::free())
            .dim(spec.dim)
            .build(entities_of(&ds), &[]);
        let t0 = Instant::now();
        for _ in 0..3 {
            for ex in &train {
                view.update(ex);
            }
        }
        view.count_positive(); // populate/apply the trained model
        let hazy_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let (hp, hr) = eval(view.model(), &test);

        rows.push(vec![
            spec.name.clone(),
            format!("{bp:.1}/{br:.1}"),
            format!("{batch_ms:.0}ms"),
            format!("{sp:.1}/{sr:.1}"),
            format!("{sgd_ms:.0}ms"),
            format!("{hp:.1}/{hr:.1}"),
            format!("{hazy_ms:.0}ms"),
        ]);
    }
    let mut out = render_table(
        "Figure 10 — learning overhead: batch SVM vs file SGD vs Hazy (wall clock)",
        &["Dataset", "Batch P/R", "time", "SGD P/R", "time", "Hazy P/R", "time"],
        &rows,
    );
    out.push_str(
        "Paper: SVMLight 74.4/63.4 @9.4s, 86.7/92.7 @11.4s, 75.1/77.0 @256.7m; \
         SGD equal quality at 0.3s/0.7s/52.9s; Hazy 0.7s/1.1s/17.3m \
         (shape: batch ≫ sgd; hazy a small factor over sgd).\n",
    );
    out
}
