//! Figure 11(A): data scalability of eager updates.
//!
//! Synthetic dense corpora at 1×, 2× and 4× the base size; eager updates/s
//! per architecture. The paper's 4 GB point exhausts RAM for the
//! main-memory techniques — reproduced here with an explicit memory budget:
//! a main-memory view whose resident set exceeds the budget is reported as
//! `RAM` (the paper's Naive-MM/Hazy-MM bars simply stop).

use hazy_core::Mode;
use hazy_datagen::{DatasetSpec, ExampleStream};

use crate::common::{
    build_view, figure4_architectures, fmt_rate, rate_per_sec, render_table, warm_examples,
};

/// Base entity count (the "1GB" point, scaled to harness size).
const BASE: f64 = 0.02;
/// Memory budget in bytes for main-memory architectures (the "4GB" machine).
const MEM_BUDGET: usize = 10 << 20;

/// Runs the scalability sweep.
pub fn run() -> String {
    let sizes = [(BASE, "1x"), (BASE * 2.0, "2x"), (BASE * 4.0, "4x")];
    let mut rows = Vec::new();
    for (arch, label) in figure4_architectures() {
        let mut cells = vec![label.to_string()];
        for (scale, _) in sizes {
            let spec = DatasetSpec::forest().scaled(scale);
            let ds = spec.generate();
            let warm = warm_examples(&spec, 12_000);
            let mut view = build_view(arch, Mode::Eager, &spec, &ds, &warm);
            if label.contains("MM") && view.memory().total() > MEM_BUDGET {
                cells.push("RAM".into());
                continue;
            }
            let n: u64 = if label.contains("naive") { 30 } else { 300 };
            let mut stream = ExampleStream::new(&spec, 0x11A);
            let t0 = view.clock().now_ns();
            for _ in 0..n {
                view.update(&stream.next_example());
            }
            cells.push(fmt_rate(rate_per_sec(n, view.clock().now_ns() - t0)));
        }
        rows.push(cells);
    }
    let mut out = render_table(
        "Figure 11(A) — eager updates/s vs data size (dense synthetic; MEM budget caps MM)",
        &["Technique", "1x", "2x", "4x"],
        &rows,
    );
    out.push_str(
        "Paper's shape: every technique degrades ~linearly with size; Hazy-MM is best \
         until it exhausts RAM at 4GB; Hazy-OD tracks Naive-MM; hybrid pays only a \
         small update penalty over Hazy-OD.\n",
    );
    out
}
