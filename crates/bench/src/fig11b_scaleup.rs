//! Figure 11(B): scale-up — Single-Entity reads/s vs reader threads.
//!
//! The one wall-clock experiment: Hazy-MM's single-entity read path is
//! pure (`&self`), so reader threads need no locking at all. The paper
//! reaches 42.7k reads/s at 16 threads on an 8-core machine; the shape to
//! reproduce is near-linear scaling to the core count, then a plateau.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use hazy_core::{Architecture, Mode, ViewBuilder};
use hazy_datagen::DatasetSpec;

use crate::common::{entities_of, fmt_rate, render_table, warm_examples, DB_SCALE};

const READS_PER_THREAD: u64 = 5_000;

/// Real (wall-clock) per-statement cost: the paper's 42.7k peak includes
/// PostgreSQL's statement dispatch, which is what saturates; a pure HashMap
/// lookup would only measure memory bandwidth. Spin for the same ~70 µs the
/// virtual model charges.
fn spin_statement_overhead() {
    let t0 = Instant::now();
    while t0.elapsed() < std::time::Duration::from_micros(70) {
        std::hint::spin_loop();
    }
}

/// Runs the scale-up sweep (wall clock).
pub fn run() -> String {
    let spec = DatasetSpec::dblife().scaled(DB_SCALE);
    let ds = spec.generate();
    let warm = warm_examples(&spec, 12_000);
    let view = ViewBuilder::new(Architecture::HazyMem, Mode::Eager)
        .norm_pair(spec.norm_pair())
        .dim(spec.dim)
        .build_hazy_mem(entities_of(&ds), &warm);
    let n = ds.len() as u64;

    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8, 16, 32] {
        let total = AtomicU64::new(0);
        let t0 = Instant::now();
        crossbeam::scope(|s| {
            for t in 0..threads {
                let view = &view;
                let total = &total;
                s.spawn(move |_| {
                    // cheap deterministic per-thread id sequence
                    let mut x = 0x9E3779B9u64.wrapping_mul(t as u64 + 1) | 1;
                    let mut served = 0;
                    for _ in 0..READS_PER_THREAD {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        spin_statement_overhead();
                        if view.read_single_shared(x % n).is_some() {
                            served += 1;
                        }
                    }
                    total.fetch_add(served, Ordering::Relaxed);
                });
            }
        })
        .expect("reader threads never panic");
        let wall = t0.elapsed().as_secs_f64();
        let served = total.load(Ordering::Relaxed);
        rows.push(vec![
            threads.to_string(),
            fmt_rate(served as f64 / wall),
            format!("{:.2}s", wall),
        ]);
    }
    let mut out = render_table(
        "Figure 11(B) — scale-up: Hazy-MM single-entity reads/s vs threads (wall clock)",
        &["Threads", "reads/s", "wall"],
        &rows,
    );
    out.push_str(
        "Paper: near-linear to the core count, peak 42.7k reads/s at 16 threads on 8 cores.\n",
    );
    out
}
