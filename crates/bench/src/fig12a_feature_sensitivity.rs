//! Figure 12(A): feature-length sensitivity.
//!
//! Random-feature (RFF) expansion scales the dense dimensionality from 300
//! to 1500 (Appendix B.5.3's linearized kernels are exactly this), and the
//! lazy All-Members rate is measured for naive vs hazy on both storage
//! layers. Paper's shape: the naive rates fall as dot products get more
//! expensive, while Hazy barely moves — it avoids most dot products
//! entirely.

use hazy_core::{Architecture, Entity, Mode, ViewBuilder};
use hazy_datagen::DatasetSpec;
use hazy_learn::{Rff, ShiftInvariantKernel, TrainingExample};

use crate::common::{fmt_rate, rate_per_sec, render_table};

/// Runs the sweep.
pub fn run() -> String {
    let base = DatasetSpec::magic().scaled(0.25); // small dense base corpus
    let ds = base.generate();
    let archs = [
        (Architecture::NaiveDisk, "Naive-OD"),
        (Architecture::NaiveMem, "Naive-MM"),
        (Architecture::HazyDisk, "Hazy-OD"),
        (Architecture::HazyMem, "Hazy-MM"),
    ];
    let lengths = [300usize, 600, 900, 1200, 1500];

    let mut rows = Vec::new();
    for (arch, label) in archs {
        let mut cells = vec![label.to_string()];
        for &d in &lengths {
            let rff = Rff::sample(ShiftInvariantKernel::Gaussian { gamma: 0.5 }, base.dim, d, 42);
            let entities: Vec<Entity> =
                ds.entities.iter().map(|e| Entity::new(e.id, rff.transform(&e.f))).collect();
            let warm: Vec<TrainingExample> = ds.entities[..2000]
                .iter()
                .map(|e| TrainingExample::new(e.id, rff.transform(&e.f), e.label))
                .collect();
            let mut view = ViewBuilder::new(arch, Mode::Lazy)
                .norm_pair(hazy_linalg::NormPair::EUCLIDEAN)
                .dim(d)
                .build(entities, &warm);
            // a couple of lazy updates, then repeated scans
            for ex in warm.iter().take(10) {
                view.update(ex);
            }
            let n: u64 = if label.contains("Naive") { 10 } else { 60 };
            let t0 = view.clock().now_ns();
            for _ in 0..n {
                view.count_positive();
            }
            cells.push(fmt_rate(rate_per_sec(n, view.clock().now_ns() - t0)));
        }
        rows.push(cells);
    }
    let mut out = render_table(
        "Figure 12(A) — lazy All-Members reads/s vs feature length (RFF expansion)",
        &["Technique", "300", "600", "900", "1200", "1500"],
        &rows,
    );
    out.push_str(
        "Paper's shape: naive rates decay roughly ∝ 1/length; Hazy stays nearly flat \
         because it prunes the dot products.\n",
    );
    out
}
