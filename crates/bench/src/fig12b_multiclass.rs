//! Figure 12(B): multiclass eager updates.
//!
//! One-versus-all over 2–7 classes (Appendix B.5.4 / C.3): each class gets
//! its own binary view, and a multiclass training example steps *every*
//! view (positive for its class, negative for the rest). Paper's shape:
//! Hazy-MM keeps its order-of-magnitude lead over Naive-MM as the class
//! count grows, with both rates falling ∝ 1/k.

use hazy_core::{Architecture, DurableClassifierView, Mode, OpOverheads, ViewBuilder};
use hazy_datagen::DatasetSpec;
use hazy_learn::TrainingExample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{entities_of, fmt_rate, rate_per_sec, render_table};

/// Runs the class-count sweep.
pub fn run() -> String {
    let spec = DatasetSpec::forest().scaled(0.01);
    let ds = spec.generate();
    let mut rows = Vec::new();
    for (arch, label) in
        [(Architecture::NaiveMem, "Naive-MM"), (Architecture::HazyMem, "Hazy-MM")]
    {
        let mut cells = vec![label.to_string()];
        for k in 2..=7usize {
            let truth = ds.multiclass_truth(k);
            // warm each binary view one-vs-all with 8k examples
            let mut rng = StdRng::seed_from_u64(0x12B);
            let warm_idx: Vec<usize> = (0..8000).map(|_| rng.gen_range(0..ds.len())).collect();
            let mut views: Vec<Box<dyn DurableClassifierView + Send>> = (0..k)
                .map(|c| {
                    let warm: Vec<TrainingExample> = warm_idx
                        .iter()
                        .map(|&i| {
                            let e = &ds.entities[i];
                            let y = if truth[i] == c { 1 } else { -1 };
                            TrainingExample::new(e.id, e.f.clone(), y)
                        })
                        .collect();
                    ViewBuilder::new(arch, Mode::Eager)
                        .norm_pair(spec.norm_pair())
                        .overheads(OpOverheads::free())
                        .dim(spec.dim)
                        .build(entities_of(&ds), &warm)
                })
                .collect();
            // measured multiclass updates; each steps all k views but one
            // statement overhead is charged (clock of view 0 tracks time
            // for its own work only, so sum all clocks)
            let n: u64 = if label.contains("Naive") { 30 } else { 200 };
            let t0: u64 = views.iter().map(|v| v.clock().now_ns()).sum();
            let per_stmt = OpOverheads::pg_2008().update_ns;
            for _ in 0..n {
                let i = rng.gen_range(0..ds.len());
                let e = &ds.entities[i];
                for (c, view) in views.iter_mut().enumerate() {
                    let y = if truth[i] == c { 1 } else { -1 };
                    view.update(&TrainingExample::new(e.id, e.f.clone(), y));
                }
            }
            let t1: u64 = views.iter().map(|v| v.clock().now_ns()).sum();
            let dt = (t1 - t0) + n * per_stmt;
            cells.push(fmt_rate(rate_per_sec(n, dt)));
        }
        rows.push(cells);
    }
    let mut out = render_table(
        "Figure 12(B) — multiclass eager updates/s vs #labels (one-vs-all, Forest-like)",
        &["Technique", "2", "3", "4", "5", "6", "7"],
        &rows,
    );
    out.push_str(
        "Paper's shape: both fall ∝ 1/k; Hazy-MM keeps an order of magnitude over \
         Naive-MM at every class count.\n",
    );
    out
}
