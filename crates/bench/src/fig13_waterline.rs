//! Figure 13: tuples between low and high water vs update count.
//!
//! The intuition behind the whole incremental strategy: after a warm start,
//! only a small fraction of tuples sits between the waters at any time.
//! Paper: ~1% of tuples in steady state on both Forest and DBLife (mean
//! 4811 of 122k on DBLife).

use hazy_core::{ClassifierView, Architecture, Mode, ViewBuilder};
use hazy_datagen::{DatasetSpec, ExampleStream};

use crate::common::{entities_of, render_table, warm_examples, DB_SCALE, FC_SCALE, WARM};

/// Runs the waterline trace on Forest- and DBLife-shaped corpora.
pub fn run() -> String {
    let mut out = String::new();
    for spec in [DatasetSpec::forest().scaled(FC_SCALE), DatasetSpec::dblife().scaled(DB_SCALE)] {
        let ds = spec.generate();
        let warm = warm_examples(&spec, WARM);
        let mut view = ViewBuilder::new(Architecture::HazyMem, Mode::Eager)
            .norm_pair(spec.norm_pair())
            .dim(spec.dim)
            .build_hazy_mem(entities_of(&ds), &warm);
        let mut stream = ExampleStream::new(&spec, 0xF13);
        let mut rows = Vec::new();
        let mut peak = 0u64;
        let mut sum = 0u64;
        let mut samples = 0u64;
        for step in 0..=2000u64 {
            if step % 250 == 0 {
                let band = view.tuples_in_band();
                peak = peak.max(band);
                sum += band;
                samples += 1;
                rows.push(vec![
                    step.to_string(),
                    band.to_string(),
                    format!("{:.2}%", 100.0 * band as f64 / ds.len() as f64),
                    view.stats().reorgs.to_string(),
                ]);
            }
            if step < 2000 {
                view.update(&stream.next_example());
            }
        }
        let mean = sum / samples;
        out.push_str(&render_table(
            &format!(
                "Figure 13 — tuples in [lw, hw] vs updates ({}, {} entities, warm model)",
                spec.name,
                ds.len()
            ),
            &["updates", "in band", "fraction", "reorgs so far"],
            &rows,
        ));
        out.push_str(&format!(
            "mean in band: {mean} ({:.2}% of {}), peak {peak}\n\n",
            100.0 * mean as f64 / ds.len() as f64,
            ds.len()
        ));
    }
    out.push_str("Paper: ~1% of tuples between the waters in steady state (DBLife mean 4811/122k ≈ 3.9%).\n");
    out
}
