//! Dataflow-maintenance bench: a classification view over a two-table
//! equi-join, maintained incrementally while the fact table grows.
//!
//! The claim under test is the delta-join cost bound: propagating a batch
//! of base-table deltas costs `O(|Δ| × matching keys)` — independent of
//! the sizes of the base tables — where a from-scratch re-derivation
//! costs `O(|A| + |B|)`. Both sides are *asserted*, not just printed:
//!
//! * a fact-side delta matches exactly one dimension row, so a batch of
//!   `D` fact inserts must examine exactly `D` join pairs;
//! * a dimension-side update (retract + reinsert) touches its `m`
//!   matching facts, so the batch must examine exactly `2·m` pairs;
//! * the per-delta virtual-clock cost of fact maintenance must stay flat
//!   (within noise) as the fact table quadruples, while the recompute
//!   cost grows with it.

use hazy_core::{Architecture, ClassifierView, Entity, Mode, ViewBuilder};
use hazy_flow::{Dataflow, Delta, NodeId, RowAction, ViewSink};
use hazy_learn::{SgdConfig, TrainingExample};
use hazy_linalg::{FeatureVec, NormPair};
use hazy_storage::{CostModel, VirtualClock};

use crate::common::render_table;

type Row = Vec<f64>;

const K_DIM: i64 = 64;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(r: &mut u64) -> f64 {
    (splitmix64(r) % 2_000_000) as f64 / 1_000_000.0 - 1.0
}

fn fact(id: i64, r: &mut u64) -> Row {
    vec![id as f64, (splitmix64(r) % K_DIM as u64) as f64, unit(r)]
}

fn dim_row(key: i64, r: &mut u64) -> Row {
    vec![key as f64, unit(r), [-1.0, 0.0, 1.0][(splitmix64(r) % 3) as usize]]
}

/// `A(id, jk, x) ⋈ B(key, y, label)` on `jk = key`, projected to
/// `[id, x, y, label]`.
fn pipeline() -> (Dataflow<Row>, NodeId, NodeId, NodeId) {
    let mut graph: Dataflow<Row> = Dataflow::new();
    let src_a = graph.source();
    let src_b = graph.source();
    let joined = graph.join(
        src_a,
        src_b,
        |r: &Row| Some(r[1] as i64),
        |r: &Row| Some(r[0] as i64),
        |l: &Row, r: &Row| {
            let mut out = l.clone();
            out.extend(r.iter().cloned());
            out
        },
    );
    let proj = graph.map(joined, |r: &Row| vec![r[0], r[2], r[4], r[5]]);
    let sink = graph.sink(&[proj]);
    (graph, src_a, src_b, sink)
}

struct Measurement {
    n_facts: usize,
    pairs_per_fact_delta: f64,
    ns_per_fact_delta: f64,
    dim_update_pairs: u64,
    dim_matching_facts: u64,
    recompute_deltas: u64,
}

fn run_size(n_facts: usize, n_deltas: usize) -> Measurement {
    let mut r = 0xD1FF_0001u64 ^ (n_facts as u64);
    let facts: Vec<Row> = (0..n_facts as i64).map(|id| fact(id, &mut r)).collect();
    let dims: Vec<Row> = (0..K_DIM).map(|k| dim_row(k, &mut r)).collect();

    // --- build + seed (creation-time, uncharged: no clock attached yet)
    let (mut graph, src_a, src_b, sink) = pipeline();
    let mut entity_sink = ViewSink::new(|row: &Row| row[0] as u64);
    graph.ingest(src_a, facts.iter().cloned().map(Delta::insert).collect());
    graph.ingest(src_b, dims.iter().cloned().map(Delta::insert).collect());
    let seeded = graph.drain(sink);
    let mut ents = Vec::new();
    for action in entity_sink.absorb_batch(seeded.iter().map(|(_, d)| d)) {
        if let RowAction::Insert { id, row } = action {
            ents.push(Entity::new(id, FeatureVec::dense([row[1] as f32, row[2] as f32])));
        }
    }
    let builder = ViewBuilder::new(Architecture::HazyMem, Mode::Eager)
        .sgd(SgdConfig::svm())
        .norm_pair(NormPair::EUCLIDEAN)
        .dim(2);
    let mut engine = builder.build(ents, &[]);
    // the graph gets its own clock so the measurement isolates dataflow
    // maintenance from engine-side training cost (which has its own
    // complexity story, covered by the fig04/fig10 benches)
    let flow_clock = VirtualClock::new(CostModel::sata_2008());
    graph.set_clock(flow_clock.clone());

    let apply = |engine: &mut dyn ClassifierView, action: RowAction<Row>| match action {
        RowAction::Insert { id, row } => {
            let f = FeatureVec::dense([row[1] as f32, row[2] as f32]);
            engine.insert_entity(Entity::new(id, f.clone()));
            if row[3] != 0.0 {
                engine.update(&TrainingExample::new(id, f, if row[3] > 0.0 { 1 } else { -1 }));
            }
        }
        RowAction::Remove { id } => {
            let _ = engine.remove_entity(id);
        }
    };

    // --- phase 1: a stream of fact deltas, one matching dimension row each
    let before = graph.stats();
    let t0 = flow_clock.now_ns();
    let mut new_facts = Vec::with_capacity(n_deltas);
    for id in n_facts as i64..(n_facts + n_deltas) as i64 {
        let row = fact(id, &mut r);
        new_facts.push(row.clone());
        graph.ingest(src_a, vec![Delta::insert(row)]);
        for (_, d) in graph.drain(sink) {
            if let Some(action) = entity_sink.absorb(&d) {
                apply(engine.as_mut(), action);
            }
        }
    }
    let t1 = flow_clock.now_ns();
    let after = graph.stats();
    let fact_pairs = after.join_pairs_examined - before.join_pairs_examined;
    // THE bound, exact: |Δ| fact deltas × 1 matching dimension key each
    assert_eq!(
        fact_pairs, n_deltas as u64,
        "fact-side maintenance must examine exactly |Δ| × 1 join pairs"
    );
    assert_eq!(after.rows_emitted - before.rows_emitted, n_deltas as u64);

    // --- phase 2: one dimension update (retract + reinsert) with m matches
    let key = 7i64;
    let m = facts
        .iter()
        .chain(new_facts.iter())
        .filter(|f| f[1] as i64 == key)
        .count() as u64;
    let old = dims[key as usize].clone();
    let mut new = old.clone();
    new[1] = unit(&mut r);
    let before_dim = graph.stats();
    graph.ingest(src_b, vec![Delta::retract(old), Delta::insert(new)]);
    for (_, d) in graph.drain(sink) {
        if let Some(action) = entity_sink.absorb(&d) {
            apply(engine.as_mut(), action);
        }
    }
    let after_dim = graph.stats();
    let dim_pairs = after_dim.join_pairs_examined - before_dim.join_pairs_examined;
    // the other side of the bound: 2 deltas × m matching facts each
    assert_eq!(
        dim_pairs,
        2 * m,
        "dimension-side maintenance must examine exactly |Δ| × matching-facts join pairs"
    );

    // --- the from-scratch alternative: re-derive the whole relation
    let (mut fresh, fsrc_a, fsrc_b, fsink) = pipeline();
    fresh.ingest(fsrc_a, facts.iter().cloned().map(Delta::insert).collect());
    fresh.ingest(fsrc_b, dims.iter().cloned().map(Delta::insert).collect());
    let _ = fresh.drain(fsink);
    let recompute_deltas = fresh.stats().deltas_processed;

    Measurement {
        n_facts,
        pairs_per_fact_delta: fact_pairs as f64 / n_deltas as f64,
        ns_per_fact_delta: (t1 - t0) as f64 / n_deltas as f64,
        dim_update_pairs: dim_pairs,
        dim_matching_facts: m,
        recompute_deltas,
    }
}

/// Runs the bench; `quick` shrinks corpus sizes for CI smoke runs.
pub fn run(quick: bool) -> String {
    let base = if quick { 2_000 } else { 20_000 };
    let n_deltas = if quick { 200 } else { 1_000 };
    let sizes = [base, 2 * base, 4 * base];
    let measurements: Vec<Measurement> =
        sizes.iter().map(|&n| run_size(n, n_deltas)).collect();

    // the per-delta cost must not scale with the fact table: quadrupling
    // |A| may not even double the per-delta maintenance cost
    let first = measurements.first().expect("at least one size");
    let last = measurements.last().expect("at least one size");
    assert!(
        last.ns_per_fact_delta <= first.ns_per_fact_delta * 1.01,
        "per-delta maintenance cost must stay flat as |A| quadruples \
         ({:.0} ns -> {:.0} ns)",
        first.ns_per_fact_delta,
        last.ns_per_fact_delta
    );
    // ... while from-scratch re-derivation grows linearly with |A|
    assert!(
        last.recompute_deltas > first.recompute_deltas * 3,
        "recompute cost must grow with the base tables"
    );

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.n_facts.to_string(),
                K_DIM.to_string(),
                n_deltas.to_string(),
                format!("{:.2}", m.pairs_per_fact_delta),
                format!("{:.0}", m.ns_per_fact_delta),
                format!("{} (m={})", m.dim_update_pairs, m.dim_matching_facts),
                m.recompute_deltas.to_string(),
            ]
        })
        .collect();
    render_table(
        "join-backed classification view: incremental maintenance vs recompute",
        &[
            "|A| facts",
            "|B| dims",
            "fact deltas",
            "pairs/delta",
            "ns/delta",
            "dim-update pairs",
            "recompute deltas",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_passes_its_assertions() {
        let out = super::run(true);
        assert!(out.contains("join-backed"));
    }
}
