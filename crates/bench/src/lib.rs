//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `figXX_*` module reproduces one table/figure: it builds the relevant
//! views over seeded synthetic corpora, drives the paper's workload, and
//! renders a table next to the paper's published numbers. Absolute rates
//! come from the deterministic virtual-cost model (see `hazy-storage`), so
//! every run reproduces bit-identical output; what must match the paper is
//! the *shape* — who wins, by roughly what factor, where the crossovers
//! fall.
//!
//! Run any single experiment via its binary (`cargo run --release -p
//! hazy-bench --bin fig04_eager_update`) or everything via `run_all`.

pub mod ablation_alpha;
pub mod ablation_watermark;
pub mod adaptive_shift;
pub mod common;
pub mod fig03_datasets;
pub mod fig04_eager_update;
pub mod fig04_lazy_allmembers;
pub mod fig05_single_entity;
pub mod fig06_hybrid;
pub mod fig10_learning_overhead;
pub mod fig11a_scalability;
pub mod fig11b_scaleup;
pub mod fig12a_feature_sensitivity;
pub mod fig12b_multiclass;
pub mod fig13_waterline;
pub mod join_view;
pub mod recovery_replay;
pub mod replication;
