//! Durability bench: checkpoint-interval vs replay-time tradeoff.
//!
//! A durable view pays twice for safety: at runtime (every operation is
//! WAL-logged and fsynced; every interval a whole-view checkpoint is
//! written) and at recovery (load the newest checkpoint, then re-execute
//! the WAL suffix). Short intervals buy fast recovery with heavy runtime
//! checkpoint traffic; long intervals are cheap to run and slow to
//! recover. This experiment quantifies both sides on the virtual clock —
//! the recovery column is exactly the `recover()` cost (checkpoint load +
//! log scan + replayed operations), measured by crashing at the end of the
//! stream and recovering from stable state.

use hazy_core::{Architecture, ClassifierView, CoreRestorer, DurableView, Mode, ViewBuilder};
use hazy_datagen::{DatasetSpec, ExampleStream};
use hazy_storage::DurableStore;
use std::sync::{Arc, Mutex};

use crate::common::{entities_of, render_table};

/// Runs the experiment; `quick` shrinks the stream for CI smoke.
pub fn run(quick: bool) -> String {
    let spec = DatasetSpec::dblife().scaled(if quick { 0.004 } else { 0.02 });
    let ds = spec.generate();
    let n_ops = if quick { 400 } else { 2_000 };
    let warm = ExampleStream::new(&spec, 7).take_vec(if quick { 300 } else { 2_000 });

    let mut rows = Vec::new();
    for (arch, mode) in
        [(Architecture::HazyMem, Mode::Eager), (Architecture::HazyDisk, Mode::Eager)]
    {
        for interval in [16u64, 64, 256, 1024] {
            let builder = ViewBuilder::new(arch, mode).norm_pair(spec.norm_pair()).dim(spec.dim);
            let inner = builder.build(entities_of(&ds), &warm);
            let store = Arc::new(Mutex::new(DurableStore::new(inner.clock().clone())));
            let mut dv = DurableView::create(inner, store, interval);

            // the workload: an update stream with periodic reads, all logged
            let mut stream = ExampleStream::new(&spec, 23);
            let t0 = dv.clock().now_ns();
            for k in 0..n_ops {
                dv.update(&stream.take_vec(1)[0]);
                if k % 50 == 0 {
                    dv.count_positive();
                }
            }
            let run_ns = dv.clock().now_ns() - t0;
            let replay_ops = dv.ops_since_checkpoint();
            let (wal_bytes, ckpt_saved_ns) = {
                let s = dv.store();
                let guard = s.lock().expect("store lock");
                let ckpt = guard.checkpoints.latest().expect("at least the genesis checkpoint");
                let saved =
                    u64::from_le_bytes(ckpt.payload[..8].try_into().expect("checkpoint header"));
                (guard.wal.stable_len(), saved)
            };

            // crash now: recover from stable state only and charge the
            // replay to a fresh clock (advanced to the checkpoint's time)
            let image = dv.durable_image();
            let recovered = DurableView::recover_image(&builder, &image, interval, &CoreRestorer)
                .expect("recovery succeeds");
            let recovery_ns = recovered.clock().now_ns() - ckpt_saved_ns;
            assert_eq!(recovered.stats().updates, dv.stats().updates, "lossless recovery");

            rows.push(vec![
                format!("{} ({})", arch.name(), mode.name()),
                format!("{interval}"),
                format!("{:.1}", run_ns as f64 / 1e9),
                format!("{}", wal_bytes / 1024),
                format!("{replay_ops}"),
                format!("{:.2}", recovery_ns as f64 / 1e6),
            ]);
        }
    }
    render_table(
        "Durable views: checkpoint interval vs recovery replay (virtual time)",
        &["view", "ckpt every", "run s", "WAL KiB", "replay ops", "recovery ms"],
        &rows,
    )
}
