//! Replication bench: read fan-out across replicas, and the failover pause.
//!
//! Log shipping buys two things. First, **read fan-out**: All-Members and
//! single-entity reads are served by replicas at their applied LSN, so the
//! aggregate read rate grows with the replica count while the primary's
//! clock only pays for writes. Second, bounded **failover pause**: promotion
//! is crash recovery over the replica's own store (bootstrap snapshot +
//! every shipped frame), so the pause is the recovery cost of the shipped
//! suffix — it grows with the log shipped since the snapshot, not with the
//! view's lifetime.
//!
//! Both sides are measured on the virtual clock: the busiest single node's
//! read time bounds the serving latency (replicas work in parallel in a
//! real deployment), and the promoted node's clock delta across
//! `fail_over()` is the pause.

use std::sync::{Arc, Mutex};

use hazy_core::{Architecture, ClassifierView, CoreRestorer, DurableView, Mode, ViewBuilder};
use hazy_datagen::{DatasetSpec, ExampleStream};
use hazy_repl::{FaultPlan, GroupConfig, ReplicationGroup};
use hazy_storage::DurableStore;

use crate::common::{entities_of, fmt_rate, rate_per_sec, render_table};

/// Runs the experiment; `quick` shrinks the stream for CI smoke.
pub fn run(quick: bool) -> String {
    let spec = DatasetSpec::dblife().scaled(if quick { 0.004 } else { 0.02 });
    let ds = spec.generate();
    let n_train = if quick { 200 } else { 1_000 };
    let n_reads = if quick { 300 } else { 3_000 };
    let warm = ExampleStream::new(&spec, 7).take_vec(if quick { 300 } else { 1_500 });
    let ids: Vec<u64> = entities_of(&ds).iter().map(|e| e.id).collect();

    let mut rows = Vec::new();
    let mut one_replica_busiest = 0u64;
    for replicas in [1usize, 2, 4] {
        let builder = ViewBuilder::new(Architecture::HazyMem, Mode::Eager)
            .norm_pair(spec.norm_pair())
            .dim(spec.dim);
        let inner = builder.build(entities_of(&ds), &warm);
        let store = Arc::new(Mutex::new(DurableStore::new(inner.clock().clone())));
        let dv = DurableView::create(inner, store, 256);
        // every replica's bootstrap checkpoint carries the primary's clock
        // as of this moment; promotion recovers onto a clock seeded from it
        let snapshot_ns = dv.clock().now_ns();
        let cfg = GroupConfig { replicas, max_lag: 0, interval: 256, chunk_frames: 8, seed: 1 };
        let mut g = ReplicationGroup::new(builder, dv, cfg, FaultPlan::none(), &CoreRestorer)
            .expect("replica bootstrap");

        // write phase: the primary trains, shipping as it goes
        let mut stream = ExampleStream::new(&spec, 23);
        for _ in 0..n_train {
            g.update_batch(&stream.take_vec(1));
            g.pump();
        }

        // read phase: routed round-robin across the (caught-up) replicas
        let before: Vec<u64> =
            (0..g.replica_count()).map(|i| g.replica(i).clock().now_ns()).collect();
        for k in 0..n_reads {
            let _ = g.read_single(ids[k % ids.len()]);
        }
        let busiest = (0..g.replica_count())
            .map(|i| g.replica(i).clock().now_ns() - before[i])
            .max()
            .expect("at least one replica");
        if replicas == 1 {
            one_replica_busiest = busiest;
        }
        let shipped_kib = g.shipper_stats().bytes_shipped / 1024;

        // failover: promote the furthest-ahead replica. The pause is the
        // promotion's recovery cost — checkpoint load plus replay of every
        // frame shipped since the bootstrap snapshot — read off the
        // promoted node's clock, which recovery seeds from the snapshot
        // time and then charges.
        let report = g.fail_over().expect("promotion");
        let pause_ns = g.primary().clock().now_ns() - snapshot_ns;

        rows.push(vec![
            format!("{replicas}"),
            fmt_rate(rate_per_sec(n_reads as u64, busiest)),
            format!("{:.2}x", one_replica_busiest as f64 / busiest as f64),
            format!("{shipped_kib}"),
            format!("{}", report.replayed),
            format!("{:.2}", pause_ns as f64 / 1e6),
        ]);
    }
    render_table(
        "Log-shipping replicas: read fan-out and failover pause (virtual time)",
        &["replicas", "reads/s (busiest node)", "fan-out", "shipped KiB", "replayed ops", "failover ms"],
        &rows,
    )
}
