//! CPU cost accounting shared by every architecture.
//!
//! The simulated disk charges page I/O; this module charges the *CPU* side —
//! classifying a tuple costs one model dot product (O(nnz)), and every
//! operation against the view pays a fixed per-statement overhead standing in
//! for what PostgreSQL charged the paper: statement parse/plan, trigger
//! dispatch, and the socket IPC between PostgreSQL and the Hazy process
//! (Section 4, "Prototype Details"). The defaults are calibrated so the
//! *naive main-memory* architecture lands near the paper's measured rates
//! (e.g. lazy updates ≈ 1.6k–2.8k/s; single-entity reads ≈ 13k/s), leaving
//! the *relative* gains to come from the algorithms, as in the paper.

use hazy_linalg::Features;
use hazy_storage::VirtualClock;

/// Per-operation fixed overheads (virtual nanoseconds).
#[derive(Clone, Copy, Debug)]
pub struct OpOverheads {
    /// One `INSERT` into the examples table: statement + trigger + IPC +
    /// one SGD step's bookkeeping (the paper measures retraining at ~100 µs).
    pub update_ns: u64,
    /// One single-entity read through the fast-path prepared statement.
    pub read_ns: u64,
    /// One All-Members scan statement (setup only; per-tuple costs are
    /// charged separately).
    pub scan_ns: u64,
}

impl OpOverheads {
    /// Defaults calibrated against Section 4's measured PostgreSQL rates.
    pub fn pg_2008() -> OpOverheads {
        OpOverheads { update_ns: 350_000, read_ns: 70_000, scan_ns: 1_000_000 }
    }

    /// Zero overheads (functional tests).
    pub fn free() -> OpOverheads {
        OpOverheads { update_ns: 0, read_ns: 0, scan_ns: 0 }
    }
}

impl Default for OpOverheads {
    fn default() -> Self {
        OpOverheads::pg_2008()
    }
}

/// CPU operations to classify one tuple: one multiply-add per stored
/// component plus a constant for the comparison and dispatch. Generic over
/// the representation — a borrowed page-byte vector costs the same virtual
/// work as an owned one (the zero-copy win is *wall-clock*, not simulated).
pub fn classify_cost<F: Features>(f: &F) -> u64 {
    f.nnz() as u64 + 4
}

/// Charges a batch of per-tuple work to the clock.
pub(crate) fn charge_classify<F: Features>(clock: &VirtualClock, f: &F) {
    clock.charge_cpu_ops(classify_cost(f));
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazy_linalg::FeatureVec;
    use hazy_storage::CostModel;

    #[test]
    fn classify_cost_tracks_nnz() {
        let sparse = FeatureVec::sparse(1000, vec![(1, 1.0), (2, 1.0)]);
        let dense = FeatureVec::dense(vec![0.0; 54]);
        assert_eq!(classify_cost(&sparse), 6);
        assert_eq!(classify_cost(&dense), 58);
    }

    #[test]
    fn charge_advances_clock() {
        let clock = VirtualClock::new(CostModel::sata_2008());
        let f = FeatureVec::dense(vec![1.0; 10]);
        charge_classify(&clock, &f);
        assert_eq!(clock.now_ns(), 14 * CostModel::sata_2008().cpu_op_ns);
    }
}
