//! Durability for classification views: logical WAL + whole-view
//! checkpoints + crash recovery.
//!
//! The paper's core claim is that a classification view living *inside* an
//! RDBMS inherits the database's machinery — and nothing is more database
//! than surviving a crash. This module gives every architecture that
//! inheritance:
//!
//! * **The [`Durable`] trait** — implemented by all five architectures (and
//!   `hazy-serve`'s `ShardedView`): serialize the *complete* view state —
//!   simulated-disk page image, heap/slotted and index directories, buffer
//!   pool frame table, model, watermarks, Skiing accumulator, pending tail
//!   markers, operation counters — bit-exactly, such that
//!   [`ViewBuilder::restore_unsharded`] yields a view indistinguishable
//!   from the serialized one.
//! * **The [`DurableView`] wrapper** — write-ahead logs every operation as
//!   a *logical redo record* (the command-logging design: because a
//!   classification view is a deterministic state machine over its
//!   operation stream — the very purity the paper exploits when it calls
//!   main memory "safe" — replaying the log reproduces the state
//!   bit-for-bit), fsyncs at each statement boundary (charged to the
//!   [`VirtualClock`]), and checkpoints the whole view every N operations
//!   into double-buffered slots.
//!
//!   Reads are logged too, which looks odd until you remember that in this
//!   engine *reads do maintenance*: a lazy All-Members scan may trigger the
//!   postponed Skiing reorganization, and every lazy read folds watermark
//!   state. A recovered view must reproduce those side effects to land in
//!   the same physical state (same future reorganization rounds, same
//!   counters) as a view that never crashed.
//! * **[`DurableView::recover`]** — loads the newest valid checkpoint
//!   (torn checkpoint writes fail their CRC and fall back to the previous
//!   slot), replays the WAL suffix through the normal execution paths, and
//!   charges the whole replay to the virtual clock. The recovered view
//!   serves the same `classify` / `scan` / `top_k` answers *and* the same
//!   [`ViewStats`](crate::ViewStats) as one that executed the durable
//!   prefix without crashing — enforced at every WAL record boundary by
//!   `tests/crash_recovery.rs`.

use std::sync::{Arc, Mutex};

use hazy_learn::TrainingExample;
use hazy_linalg::{decode_fvec, encode_fvec, wire};
use hazy_storage::{
    charge_bulk_read, DurableImage, DurableStore, StorageError, VirtualClock, WalEnd, WalReader,
};

use crate::entity::Entity;
use crate::view::{ClassifierView, ViewBuilder};

/// A view whose complete state can be serialized for checkpointing.
///
/// The contract is *bit-identity*: restoring the serialized bytes (via
/// [`ViewBuilder::restore_unsharded`] or a sharded restorer) must yield a
/// view that serves identical answers, identical statistics, and — because
/// every cost-relevant structure (buffer pool residency, disk free lists,
/// access cursors, Skiing floats) round-trips exactly — makes identical
/// future maintenance decisions.
///
/// `save_state` takes `&self` on purpose: checkpointing must be a pure
/// observation. Flushing caches or folding watermarks here would make the
/// checkpointed deployment diverge from an identical deployment that never
/// checkpointed.
pub trait Durable {
    /// Appends the complete serialized state (tag byte first) to `out`.
    fn save_state(&self, out: &mut Vec<u8>);
}

/// Object-safe union of [`ClassifierView`] and [`Durable`] — the boxed
/// engine type [`ViewBuilder::build`] hands out.
pub trait DurableClassifierView: ClassifierView + Durable {}

impl<T: ClassifierView + Durable> DurableClassifierView for T {}

/// Checkpoint-blob tag identifying a sharded view. Core's restorer rejects
/// it; `hazy-serve` layers a restorer that recognizes it and restores the
/// shards (each an ordinary architecture blob) around it.
pub const SHARDED_VIEW_TAG: u8 = 16;

/// Architecture tags leading every checkpoint blob.
pub(crate) mod tag {
    /// Naive main-memory view.
    pub const NAIVE_MEM: u8 = 1;
    /// Hazy main-memory view.
    pub const HAZY_MEM: u8 = 2;
    /// Naive on-disk view.
    pub const NAIVE_DISK: u8 = 3;
    /// Hazy on-disk view.
    pub const HAZY_DISK: u8 = 4;
    /// Hybrid view.
    pub const HYBRID: u8 = 5;
}

/// WAL record kinds logged by [`DurableView`].
mod rec {
    /// `Update` statement: a batch of training examples.
    pub const UPDATE: u8 = 1;
    /// A new entity arrives (type-(1) dynamic data).
    pub const INSERT: u8 = 2;
    /// Forced reorganization (`VACUUM`-style maintenance statement).
    pub const REORG: u8 = 3;
    /// `Single Entity` read (logged because lazy reads do maintenance).
    pub const READ: u8 = 4;
    /// `All Members` count.
    pub const COUNT: u8 = 5;
    /// `All Members` id listing.
    pub const MEMBERS: u8 = 6;
    /// Ranked read.
    pub const TOPK: u8 = 7;
    /// Live migration to another architecture × mode (an explicit
    /// `ALTER ... SET ARCH`, logged as one **logical redo record**: replay
    /// re-runs the whole extraction + rebuild deterministically, so a crash
    /// can only ever land *before* the record — source architecture — or
    /// *after* it — target architecture, never in between). Advisor-chosen
    /// migrations need no record of their own: the advisor is a
    /// deterministic function of the logged operation stream, so replaying
    /// the stream re-makes the same decisions at the same rounds.
    pub const MIGRATE: u8 = 8;
    /// Entity retraction (a base-table `DELETE`, or the retract half of an
    /// `UPDATE`, propagated through a dataflow graph). Replay is idempotent
    /// because removing an absent id is a no-op.
    pub const REMOVE: u8 = 9;
}

pub(crate) fn put_example(out: &mut Vec<u8>, ex: &TrainingExample) {
    out.extend_from_slice(&ex.id.to_le_bytes());
    out.push(ex.y as u8);
    encode_fvec(&ex.f, out);
}

pub(crate) fn take_example(b: &mut &[u8]) -> Option<TrainingExample> {
    let id = wire::take_u64(b)?;
    let y = wire::take_u8(b)? as i8;
    if y != 1 && y != -1 {
        return None;
    }
    let f = decode_fvec(b)?;
    Some(TrainingExample { id, f, y })
}

pub(crate) fn put_entity(out: &mut Vec<u8>, e: &Entity) {
    out.extend_from_slice(&e.id.to_le_bytes());
    encode_fvec(&e.f, out);
}

pub(crate) fn take_entity(b: &mut &[u8]) -> Option<Entity> {
    let id = wire::take_u64(b)?;
    let f = decode_fvec(b)?;
    Some(Entity { id, f })
}

/// Reconstructs a boxed view from a checkpoint blob. `hazy-core`'s
/// [`CoreRestorer`] handles the five unsharded architectures; `hazy-serve`
/// layers a restorer on top that additionally recognizes sharded blobs.
pub trait ViewRestorer: Sync {
    /// Restores a view from `bytes` (tag byte first), charging to `clock`.
    /// `None` on unknown tags or malformed input.
    fn restore(
        &self,
        builder: &ViewBuilder,
        bytes: &mut &[u8],
        clock: VirtualClock,
    ) -> Option<Box<dyn DurableClassifierView + Send>>;
}

/// Restorer for the five unsharded architectures.
pub struct CoreRestorer;

impl ViewRestorer for CoreRestorer {
    fn restore(
        &self,
        builder: &ViewBuilder,
        bytes: &mut &[u8],
        clock: VirtualClock,
    ) -> Option<Box<dyn DurableClassifierView + Send>> {
        builder.restore_unsharded(bytes, clock)
    }
}

/// Applies one logged redo record to a view — the replay path shared by
/// crash recovery and log-shipping replication (`hazy-repl` feeds shipped
/// WAL frames through this to keep replicas marching in lock-step with the
/// primary). Output of read operations is discarded: their *side effects*
/// (lazy maintenance, watermark folding) are the point.
///
/// Returns `None` on an unknown record kind or an undecodable payload.
pub fn replay_record(
    view: &mut (dyn DurableClassifierView + Send),
    kind: u8,
    payload: &[u8],
) -> Option<()> {
    apply_record(view, kind, payload)
}

/// Applies one logged operation to a view (the replay path; output of read
/// operations is discarded — their *side effects* are the point).
fn apply_record(
    view: &mut (dyn DurableClassifierView + Send),
    kind: u8,
    payload: &[u8],
) -> Option<()> {
    let mut b = payload;
    match kind {
        rec::UPDATE => {
            let n = wire::take_u32(&mut b)? as usize;
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                batch.push(take_example(&mut b)?);
            }
            view.update_batch(&batch);
        }
        rec::INSERT => view.insert_entity(take_entity(&mut b)?),
        rec::REMOVE => {
            let _ = view.remove_entity(wire::take_u64(&mut b)?);
        }
        rec::REORG => view.reorganize(),
        rec::READ => {
            let _ = view.read_single(wire::take_u64(&mut b)?);
        }
        rec::COUNT => {
            let _ = view.count_positive();
        }
        rec::MEMBERS => {
            let _ = view.positive_ids();
        }
        rec::TOPK => {
            let _ = view.top_k(wire::take_u64(&mut b)? as usize);
        }
        rec::MIGRATE => {
            let arch = crate::view::Architecture::from_tag(wire::take_u8(&mut b)?)?;
            let mode = crate::view::Mode::from_tag(wire::take_u8(&mut b)?)?;
            // the result is deliberately ignored: replaying a MIGRATE
            // against a non-adaptive view is a (deterministic) no-op, the
            // same answer the record's original execution got
            let _ = view.set_architecture(arch, mode);
        }
        _ => return None,
    }
    Some(())
}

/// What [`DurableView::recover_with_info`] learned while recovering: how
/// much log it replayed and *why* the log ended where it did. The
/// distinction matters operationally — a [`WalEnd::CleanEof`] is a crash at
/// a frame boundary (nothing lost), a [`WalEnd::TornFrame`] is a crash
/// mid-write (the in-flight record was never acknowledged), and a
/// [`WalEnd::CrcMismatch`] is bit rot or a corrupted shipment and deserves
/// an alarm even though recovery proceeds with the valid prefix either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// WAL records replayed on top of the restored checkpoint.
    pub replayed: u64,
    /// Why the stable log ended (how its tail was truncated at open).
    pub wal_end: WalEnd,
}

/// A write-ahead-logged, checkpointed classification view.
///
/// Wraps any [`DurableClassifierView`] (one of the five architectures or a
/// whole `ShardedView`) and interposes on every operation: encode a logical
/// redo record, append + fsync it to the WAL (the fsync charges the virtual
/// clock), apply the operation to the inner view, and auto-checkpoint every
/// `interval` operations. The WAL-before-apply order is the classic
/// protocol: an operation is acknowledged once durable, so a crash between
/// fsync and apply is repaired by replay.
pub struct DurableView {
    inner: Box<dyn DurableClassifierView + Send>,
    store: Arc<Mutex<DurableStore>>,
    interval: u64,
    ops_since_ckpt: u64,
    scratch: Vec<u8>,
}

impl std::fmt::Debug for DurableView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableView")
            .field("inner", &self.inner.describe())
            .field("interval", &self.interval)
            .field("ops_since_ckpt", &self.ops_since_ckpt)
            .finish()
    }
}

impl DurableView {
    /// Wraps a freshly built view and writes the genesis checkpoint (a
    /// store must always hold at least one checkpoint for recovery to have
    /// a floor to replay from).
    pub fn create(
        inner: Box<dyn DurableClassifierView + Send>,
        store: Arc<Mutex<DurableStore>>,
        interval: u64,
    ) -> DurableView {
        let mut dv = DurableView { inner, store, interval, ops_since_ckpt: 0, scratch: Vec::new() };
        dv.checkpoint();
        dv
    }

    /// Writes a checkpoint now: the inner view's complete state plus the
    /// current WAL position, committed atomically to the inactive slot.
    /// Also the rdbms `CHECKPOINT CLASSIFICATION VIEW` entry point.
    pub fn checkpoint(&mut self) {
        let store = self.store.lock().expect("durable store lock");
        if store.wal.crashed() {
            // simulated power loss already fired: nothing reaches stable
            // media anymore — a checkpoint of post-crash in-memory state
            // would let recovery see operations the log never made durable
            return;
        }
        let wal_offset = store.wal.stable_len();
        drop(store);
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.inner.clock().now_ns().to_le_bytes());
        self.inner.save_state(&mut payload);
        let mut store = self.store.lock().expect("durable store lock");
        store.checkpoints.write(wal_offset, &payload);
        self.ops_since_ckpt = 0;
    }

    /// Recovers a view from its durable store: restore the newest valid
    /// checkpoint, replay the WAL suffix through the normal execution
    /// paths, and charge checkpoint load + log scan + replayed operations
    /// to the virtual clock (a fresh clock from `builder`, advanced to the
    /// checkpoint's saved virtual time first).
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] when no valid checkpoint exists or a
    /// durable record fails to decode.
    pub fn recover(
        builder: &ViewBuilder,
        store: Arc<Mutex<DurableStore>>,
        interval: u64,
        restorer: &dyn ViewRestorer,
    ) -> Result<DurableView, StorageError> {
        DurableView::recover_with_info(builder, store, interval, restorer).map(|(dv, _)| dv)
    }

    /// [`DurableView::recover`] plus a [`RecoveryInfo`] reporting how many
    /// records replayed and why the stable log ended (clean frame boundary,
    /// torn tail, or CRC mismatch).
    ///
    /// # Errors
    /// See [`DurableView::recover`].
    pub fn recover_with_info(
        builder: &ViewBuilder,
        store: Arc<Mutex<DurableStore>>,
        interval: u64,
        restorer: &dyn ViewRestorer,
    ) -> Result<(DurableView, RecoveryInfo), StorageError> {
        let clock = builder.new_clock();
        let (inner, replayed, wal_end) = {
            let mut guard = store.lock().expect("durable store lock");
            guard.set_clock(clock.clone());
            let ckpt = guard
                .checkpoints
                .latest()
                .ok_or(StorageError::Corrupt("no valid checkpoint to recover from"))?;
            charge_bulk_read(&clock, ckpt.payload.len());
            let mut b = ckpt.payload;
            let saved_ns =
                wire::take_u64(&mut b).ok_or(StorageError::Corrupt("checkpoint header"))?;
            clock.charge_ns(saved_ns);
            let mut inner = restorer
                .restore(builder, &mut b, clock.clone())
                .ok_or(StorageError::Corrupt("checkpoint view state"))?;
            let stable = guard.wal.stable_bytes();
            let wal_offset = ckpt.wal_offset as usize;
            if wal_offset > stable.len() {
                return Err(StorageError::Corrupt("checkpoint points past the stable log"));
            }
            let tail = &stable[wal_offset..];
            charge_bulk_read(&clock, tail.len());
            let mut replayed = 0u64;
            for record in WalReader::new(tail) {
                apply_record(inner.as_mut(), record.kind, record.payload)
                    .ok_or(StorageError::Corrupt("undecodable WAL record"))?;
                replayed += 1;
            }
            (inner, replayed, guard.wal.truncation())
        };
        let dv =
            DurableView { inner, store, interval, ops_since_ckpt: replayed, scratch: Vec::new() };
        Ok((dv, RecoveryInfo { replayed, wal_end }))
    }

    /// Recovers from a crash image (what the fault-injection harness holds
    /// after simulated power loss): rebuilds a store — truncating any torn
    /// WAL tail — and runs normal recovery on it.
    ///
    /// # Errors
    /// See [`DurableView::recover`].
    pub fn recover_image(
        builder: &ViewBuilder,
        image: &DurableImage,
        interval: u64,
        restorer: &dyn ViewRestorer,
    ) -> Result<DurableView, StorageError> {
        let store = DurableStore::from_image(image, builder.new_clock());
        DurableView::recover(builder, Arc::new(Mutex::new(store)), interval, restorer)
    }

    /// Snapshots the store's stable content — exactly what would survive a
    /// crash right now.
    pub fn durable_image(&self) -> DurableImage {
        self.store.lock().expect("durable store lock").image()
    }

    /// The shared durable store (rdbms keeps it registered in its
    /// [`SimFs`](hazy_storage::SimFs) so a later session can reopen it).
    pub fn store(&self) -> Arc<Mutex<DurableStore>> {
        Arc::clone(&self.store)
    }

    /// Unwraps the inner view, discarding the logging shell. `hazy-repl`
    /// uses this to turn a recovery over a replica's store into the
    /// replica's live serving view: local reads on a replica must *not* be
    /// logged (its store has to stay a pure replay of the shipped prefix,
    /// or promotion would diverge from the durable-prefix oracle).
    pub fn into_inner(self) -> Box<dyn DurableClassifierView + Send> {
        self.inner
    }

    /// Records in the durable WAL prefix (crash-boundary bookkeeping).
    pub fn stable_records(&self) -> u64 {
        self.store.lock().expect("durable store lock").wal.stable_records()
    }

    /// Operations logged since the last checkpoint.
    pub fn ops_since_checkpoint(&self) -> u64 {
        self.ops_since_ckpt
    }

    fn log(&mut self, kind: u8, fill: impl FnOnce(&mut Vec<u8>)) {
        self.scratch.clear();
        fill(&mut self.scratch);
        let mut store = self.store.lock().expect("durable store lock");
        store.wal.append(kind, &self.scratch);
        store.wal.sync();
    }

    fn after_op(&mut self) {
        self.ops_since_ckpt += 1;
        if self.interval > 0 && self.ops_since_ckpt >= self.interval {
            self.checkpoint();
        }
    }
}

impl Durable for DurableView {
    fn save_state(&self, out: &mut Vec<u8>) {
        self.inner.save_state(out);
    }
}

impl ClassifierView for DurableView {
    fn describe(&self) -> String {
        format!("durable {}", self.inner.describe())
    }

    fn mode(&self) -> crate::view::Mode {
        self.inner.mode()
    }

    fn update(&mut self, ex: &TrainingExample) {
        self.update_batch(std::slice::from_ref(ex));
    }

    fn update_batch(&mut self, batch: &[TrainingExample]) {
        if batch.is_empty() {
            return;
        }
        self.log(rec::UPDATE, |out| {
            out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
            for ex in batch {
                put_example(out, ex);
            }
        });
        self.inner.update_batch(batch);
        self.after_op();
    }

    fn reorganize(&mut self) {
        self.log(rec::REORG, |_| {});
        self.inner.reorganize();
        self.after_op();
    }

    fn read_single(&mut self, id: u64) -> Option<hazy_learn::Label> {
        self.log(rec::READ, |out| out.extend_from_slice(&id.to_le_bytes()));
        let r = self.inner.read_single(id);
        self.after_op();
        r
    }

    fn entity_count(&self) -> u64 {
        self.inner.entity_count()
    }

    fn count_positive(&mut self) -> u64 {
        self.log(rec::COUNT, |_| {});
        let r = self.inner.count_positive();
        self.after_op();
        r
    }

    fn positive_ids(&mut self) -> Vec<u64> {
        self.log(rec::MEMBERS, |_| {});
        let r = self.inner.positive_ids();
        self.after_op();
        r
    }

    fn top_k(&mut self, k: usize) -> Vec<(u64, f64)> {
        self.log(rec::TOPK, |out| out.extend_from_slice(&(k as u64).to_le_bytes()));
        let r = self.inner.top_k(k);
        self.after_op();
        r
    }

    fn insert_entity(&mut self, e: Entity) {
        self.log(rec::INSERT, |out| put_entity(out, &e));
        self.inner.insert_entity(e);
        self.after_op();
    }

    fn remove_entity(&mut self, id: u64) -> bool {
        self.log(rec::REMOVE, |out| out.extend_from_slice(&id.to_le_bytes()));
        let r = self.inner.remove_entity(id);
        self.after_op();
        r
    }

    fn set_architecture(&mut self, arch: crate::view::Architecture, mode: crate::view::Mode) -> bool {
        // apply first, log only on success: a *rejected* ALTER (the inner
        // view is not adaptive) must leave no durable record behind — a
        // later recovery over the same store must not replay a migration
        // the caller was told failed. For an accepted migration the
        // apply-then-log order is equivalent to the classic protocol in a
        // crash-wipes-memory model: only the durable prefix defines the
        // recovered state, so losing the record merely un-acknowledges
        // the migration (recovery lands in the source architecture), and
        // a durable record deterministically replays it (target).
        let r = self.inner.set_architecture(arch, mode);
        if r {
            self.log(rec::MIGRATE, |out| {
                out.push(arch.tag());
                out.push(mode.tag());
            });
            self.after_op();
        }
        r
    }

    fn snapshot_state(&mut self) -> Option<(Vec<Entity>, hazy_learn::LinearModel)> {
        // not a logged operation: a snapshot copies state out without
        // changing any answer, so replay determinism is unaffected — and
        // epochs must never be resurrected by recovery
        self.inner.snapshot_state()
    }

    fn model(&self) -> &hazy_learn::LinearModel {
        self.inner.model()
    }

    fn stats(&self) -> crate::stats::ViewStats {
        self.inner.stats()
    }

    fn memory(&self) -> crate::stats::MemoryFootprint {
        self.inner.memory()
    }

    fn clock(&self) -> &VirtualClock {
        self.inner.clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{Architecture, Mode};
    use hazy_linalg::FeatureVec;
    use hazy_storage::CrashPoint;

    fn entities(n: usize) -> Vec<Entity> {
        (0..n)
            .map(|k| {
                Entity::new(
                    k as u64,
                    FeatureVec::dense(vec![(k % 13) as f32 / 13.0 - 0.5, (k % 7) as f32 / 7.0 - 0.5]),
                )
            })
            .collect()
    }

    fn ex(k: usize) -> TrainingExample {
        let x0 = (k % 11) as f32 / 11.0 - 0.5;
        let x1 = (k % 17) as f32 / 17.0 - 0.5;
        TrainingExample::new(0, FeatureVec::dense(vec![x0, x1]), if x0 + 0.3 * x1 >= 0.0 { 1 } else { -1 })
    }

    fn durable_view(arch: Architecture, mode: Mode, interval: u64) -> (ViewBuilder, DurableView) {
        let builder = ViewBuilder::new(arch, mode).dim(2);
        let inner = builder.build(entities(60), &[]);
        let clock = inner.clock().clone();
        let store = Arc::new(Mutex::new(DurableStore::new(clock)));
        (builder.clone(), DurableView::create(inner, store, interval))
    }

    #[test]
    fn recover_after_clean_run_matches_answers_and_stats() {
        for arch in Architecture::all() {
            let (builder, mut dv) = durable_view(arch, Mode::Eager, 16);
            for k in 0..50 {
                dv.update(&ex(k));
                if k % 9 == 0 {
                    dv.count_positive();
                }
            }
            let expect_stats = dv.stats();
            let expect_count = {
                // count via a throwaway recovered copy so the live view's
                // stats stay frozen for the comparison below
                let mut probe =
                    DurableView::recover_image(&builder, &dv.durable_image(), 16, &CoreRestorer)
                        .unwrap();
                assert_eq!(probe.stats(), expect_stats, "{arch:?}");
                probe.count_positive()
            };
            let mut recovered =
                DurableView::recover_image(&builder, &dv.durable_image(), 16, &CoreRestorer)
                    .unwrap();
            assert_eq!(recovered.count_positive(), expect_count, "{arch:?}");
            assert_eq!(recovered.model().b.to_bits(), dv.model().b.to_bits(), "{arch:?}");
        }
    }

    #[test]
    fn lost_unsynced_tail_recovers_to_the_durable_prefix() {
        let (builder, mut dv) = durable_view(Architecture::HazyMem, Mode::Lazy, 0);
        for k in 0..10 {
            dv.update(&ex(k));
        }
        // arm power loss: everything after the 10 durable records vanishes
        dv.store().lock().unwrap().wal.arm_crash(CrashPoint::AfterRecords(10));
        for k in 10..20 {
            dv.update(&ex(k));
        }
        let recovered =
            DurableView::recover_image(&builder, &dv.durable_image(), 0, &CoreRestorer).unwrap();
        assert_eq!(recovered.stats().updates, 10, "only the durable prefix replays");
    }

    #[test]
    fn torn_checkpoint_falls_back_to_previous_slot() {
        let (builder, mut dv) = durable_view(Architecture::NaiveMem, Mode::Eager, 0);
        for k in 0..5 {
            dv.update(&ex(k));
        }
        dv.checkpoint();
        for k in 5..8 {
            dv.update(&ex(k));
        }
        dv.store().lock().unwrap().checkpoints.arm_torn_write();
        dv.checkpoint(); // torn: never lands
        let recovered =
            DurableView::recover_image(&builder, &dv.durable_image(), 0, &CoreRestorer).unwrap();
        // the good checkpoint has 5 updates; the WAL replays the other 3
        assert_eq!(recovered.stats().updates, 8);
    }

    #[test]
    fn recovery_replay_is_charged_to_the_clock() {
        let (builder, mut dv) = durable_view(Architecture::HazyDisk, Mode::Eager, 0);
        for k in 0..30 {
            dv.update(&ex(k));
        }
        // checkpoint at the very end: recovery then replays nothing, so the
        // recovered clock must exceed the checkpoint's saved virtual time by
        // exactly the recovery overhead (checkpoint load + log scan)
        dv.checkpoint();
        let at_ckpt = dv.clock().now_ns();
        let no_replay =
            DurableView::recover_image(&builder, &dv.durable_image(), 0, &CoreRestorer).unwrap();
        assert!(
            no_replay.clock().now_ns() > at_ckpt,
            "loading the checkpoint must cost virtual time"
        );
        // a recovery that does replay 30 ops costs strictly more than one
        // that replays none (the replayed operations charge their own work)
        let image_before_final_ckpt = {
            let (builder2, mut dv2) = durable_view(Architecture::HazyDisk, Mode::Eager, 0);
            for k in 0..30 {
                dv2.update(&ex(k));
            }
            let img = dv2.durable_image();
            let with_replay =
                DurableView::recover_image(&builder2, &img, 0, &CoreRestorer).unwrap();
            assert_eq!(with_replay.stats().updates, 30);
            with_replay.clock().now_ns()
        };
        assert!(image_before_final_ckpt > 0);
    }

    /// A rejected `SET ARCH` (the inner view is not adaptive) must leave
    /// no durable record: recovery over the same store must never replay
    /// a migration the caller was told failed.
    #[test]
    fn rejected_migration_leaves_no_wal_record() {
        let (_b, mut dv) = durable_view(Architecture::NaiveMem, Mode::Eager, 0);
        dv.update(&ex(0));
        let before = dv.stable_records();
        assert!(!dv.set_architecture(Architecture::HazyMem, Mode::Lazy));
        assert_eq!(dv.stable_records(), before, "rejected ALTER wrote a record");
    }

    #[test]
    fn recover_without_checkpoint_is_a_structured_error() {
        let builder = ViewBuilder::new(Architecture::NaiveMem, Mode::Eager).dim(2);
        let store = Arc::new(Mutex::new(DurableStore::new(builder.new_clock())));
        let err = DurableView::recover(&builder, store, 0, &CoreRestorer).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }
}
