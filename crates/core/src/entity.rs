//! Entities and the on-disk tuple format of the scratch table `H`.

use bytes::BufMut;
use hazy_linalg::{decode_fvec, decode_fvec_ref, encode_fvec, encoded_len, FeatureVec, FeatureVecRef};
use hazy_learn::Label;
use hazy_storage::StorageError;

/// An entity to classify: key plus feature vector (the `In(id, f)` relation).
#[derive(Clone, Debug)]
pub struct Entity {
    /// Primary key from the view's `KEY` declaration.
    pub id: u64,
    /// Feature-function output.
    pub f: FeatureVec,
}

impl Entity {
    /// Convenience constructor.
    pub fn new(id: u64, f: FeatureVec) -> Entity {
        Entity { id, f }
    }
}

/// A decoded `H` tuple: `H(s)(id, f, eps)` plus the materialized label
/// (Section 3.2 folds `V`'s class into the same physical tuple).
#[derive(Clone, Debug)]
pub struct HTuple {
    /// Entity key.
    pub id: u64,
    /// Label under the current round's model (eager) or the stored model
    /// (lazy; recomputed at read).
    pub label: Label,
    /// Margin under the *stored* model `(w(s), b(s))` — the cluster key.
    pub eps: f64,
    /// Feature vector.
    pub f: FeatureVec,
}

/// Byte length of the fixed tuple prefix: id (8) + label (1) + eps (8).
pub const TUPLE_HEADER: usize = 17;

/// Byte offset of the label within an encoded tuple — the one byte an
/// eager relabel patches in place ([`hazy_storage::HeapFile::patch_in_place`]).
pub const TUPLE_LABEL_OFFSET: usize = 8;

/// A borrowed `H` tuple: the fixed prefix decoded, the feature vector left
/// as a zero-copy view over the record's page bytes. Scan-time
/// classification works entirely on this — the owned [`HTuple`] is only
/// materialized when a tuple is rewritten (reorganization).
#[derive(Clone, Copy, Debug)]
pub struct HTupleRef<'a> {
    /// Entity key.
    pub id: u64,
    /// Materialized label (see [`HTuple::label`]).
    pub label: Label,
    /// Margin under the stored model — the cluster key.
    pub eps: f64,
    /// Feature vector, borrowed from the encoded record.
    pub f: FeatureVecRef<'a>,
}

impl HTupleRef<'_> {
    /// Materializes an owned copy (allocates; reorganization-time only).
    pub fn to_owned(&self) -> HTuple {
        HTuple { id: self.id, label: self.label, eps: self.eps, f: self.f.to_owned() }
    }
}

/// Encodes a tuple; label updates rewrite the same number of bytes, so
/// in-place page updates always succeed.
pub fn encode_tuple(t: &HTuple, out: &mut Vec<u8>) {
    out.reserve(TUPLE_HEADER + encoded_len(&t.f));
    out.put_u64_le(t.id);
    out.put_u8(t.label as u8);
    out.put_f64_le(t.eps);
    encode_fvec(&t.f, out);
}

/// Decodes only the fixed prefix `(id, label, eps)` — the cheap path for
/// label scans that never need the feature vector.
///
/// # Errors
/// [`StorageError::Corrupt`] on short or invalid input.
pub fn decode_tuple_header(bytes: &[u8]) -> Result<(u64, Label, f64), StorageError> {
    if bytes.len() < TUPLE_HEADER {
        return Err(StorageError::Corrupt("tuple shorter than header"));
    }
    let id = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
    let label = bytes[8] as i8;
    if label != 1 && label != -1 {
        return Err(StorageError::Corrupt("label byte is not ±1"));
    }
    let eps = f64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes"));
    Ok((id, label, eps))
}

/// Decodes a full tuple.
///
/// # Errors
/// [`StorageError::Corrupt`] on malformed input.
pub fn decode_tuple(bytes: &[u8]) -> Result<HTuple, StorageError> {
    let (id, label, eps) = decode_tuple_header(bytes)?;
    let mut rest = &bytes[TUPLE_HEADER..];
    let f = decode_fvec(&mut rest).ok_or(StorageError::Corrupt("feature vector"))?;
    Ok(HTuple { id, label, eps, f })
}

/// Decodes a tuple without copying the feature payload: the returned
/// [`HTupleRef`] borrows `bytes` (same acceptance set as [`decode_tuple`]).
///
/// # Errors
/// [`StorageError::Corrupt`] on malformed input.
pub fn decode_tuple_ref(bytes: &[u8]) -> Result<HTupleRef<'_>, StorageError> {
    let (id, label, eps) = decode_tuple_header(bytes)?;
    let mut rest = &bytes[TUPLE_HEADER..];
    let f = decode_fvec_ref(&mut rest).ok_or(StorageError::Corrupt("feature vector"))?;
    Ok(HTupleRef { id, label, eps, f })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HTuple {
        HTuple {
            id: 42,
            label: -1,
            eps: -0.125,
            f: FeatureVec::sparse(100, vec![(3, 1.5), (99, -2.0)]),
        }
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let back = decode_tuple(&buf).unwrap();
        assert_eq!(back.id, t.id);
        assert_eq!(back.label, t.label);
        assert_eq!(back.eps, t.eps);
        assert_eq!(back.f, t.f);
    }

    #[test]
    fn header_decode_skips_fvec() {
        let t = sample();
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let (id, label, eps) = decode_tuple_header(&buf).unwrap();
        assert_eq!((id, label, eps), (42, -1, -0.125));
    }

    #[test]
    fn label_flip_preserves_length() {
        let mut t = sample();
        let mut a = Vec::new();
        encode_tuple(&t, &mut a);
        t.label = 1;
        let mut b = Vec::new();
        encode_tuple(&t, &mut b);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(decode_tuple_header(&[0u8; 5]).is_err());
        let mut buf = Vec::new();
        encode_tuple(&sample(), &mut buf);
        buf[8] = 7; // bad label byte
        assert!(decode_tuple_header(&buf).is_err());
        assert!(decode_tuple_ref(&buf).is_err());
        let mut buf2 = Vec::new();
        encode_tuple(&sample(), &mut buf2);
        buf2.truncate(20); // fvec truncated
        assert!(decode_tuple(&buf2).is_err());
        assert!(decode_tuple_ref(&buf2).is_err());
    }

    #[test]
    fn ref_decode_matches_owned_decode() {
        let t = sample();
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let r = decode_tuple_ref(&buf).unwrap();
        assert_eq!(r.id, t.id);
        assert_eq!(r.label, t.label);
        assert_eq!(r.eps, t.eps);
        assert_eq!(r.to_owned().f, t.f);
    }

    #[test]
    fn label_offset_points_at_the_label_byte() {
        let t = sample();
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        buf[TUPLE_LABEL_OFFSET] = 1u8; // flip -1 → +1 in place
        let back = decode_tuple(&buf).unwrap();
        assert_eq!(back.label, 1);
        assert_eq!(back.eps, t.eps);
        assert_eq!(back.f, t.f);
    }
}
