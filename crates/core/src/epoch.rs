//! Epoch-based snapshot reads: immutable [`ModelEpoch`]s published by the
//! single writer, pinned by any number of readers, reclaimed when drained.
//!
//! The writer-priority shard locks of the serving layer stall every reader
//! of a shard for the length of a maintenance round — the read path the
//! paper's incremental maintenance exists to serve is blocked by that very
//! maintenance. This module removes readers from the lock protocol
//! entirely:
//!
//! * [`ModelEpoch`] — an immutable answer state: the model bits, the
//!   entity population frozen at the last rebase (an [`Arc`]-shared base
//!   clustered on `eps` under the frozen model), and a **compact
//!   label-patch overlay** recording everything that changed since — label
//!   flips found inside the watermark band, dynamic inserts, retractions.
//!   Every read (`classify`, `count_positive`, `positive_ids`, `top_k`)
//!   is answered entirely from one epoch, bit-identically to the live
//!   architectures (all of which serve pure functions of
//!   *population × model* — the observational equivalence the core test
//!   suites enforce).
//! * [`EpochPublisher`] — the writer-side maintenance of that overlay.
//!   After a model round it re-scores **only** the tuples whose frozen
//!   `eps` falls inside the running watermark band (Lemma 3.1: nothing
//!   outside the band can have flipped), exactly the paper's pruning
//!   argument applied to snapshot publication; when the overlay outgrows
//!   its budget the base is rebased — the epoch analog of a
//!   reorganization.
//! * [`EpochCell`] — the publication point: an atomic pointer swap makes
//!   a new epoch current, so the worst-case read stall during a full
//!   reorganization is the cost of one pointer load. Stale epochs are
//!   reclaimed by a hand-rolled pin-count scheme in the spirit of
//!   crossbeam-epoch (the build vendors its dependencies, so no external
//!   epoch GC is available): readers announce themselves through an
//!   `entering` counter, pin the current node, and the writer frees a
//!   retired node only after observing `entering == 0` *and then*
//!   `pins == 0` — at which point no present or future reader can hold it.
//!
//! Readers never take a lock shared with the writer; writers keep
//! synchronizing with each other (and with control-plane fan-outs) on the
//! shard mutexes, which is why the serving layer's locks shrink to
//! writer–writer only.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Deref;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hazy_learn::{Label, LinearModel};
use hazy_linalg::NormPair;

use crate::entity::Entity;
use crate::view::{rank_order, ClassifierView};
use crate::watermark::{WaterMarks, WatermarkPolicy};

/// Global epoch-lifecycle metrics: every [`EpochCell`] in the process
/// (one per shard per view) reports into the same counters, giving an
/// operator aggregate GC pressure at a glance.
///
/// `pins` is *derived*, not recorded on the hot path: the pin protocol
/// already maintains a per-cell `pin_count` for [`EpochStats`], and
/// [`EpochCell::sync_pins`] folds its delta into the registry at
/// publish/collect, stats, and drop. A pinned read therefore costs
/// exactly what it cost before instrumentation existed.
struct EpochObs {
    pins: &'static hazy_obs::Counter,
    published: &'static hazy_obs::Counter,
    reclaimed: &'static hazy_obs::Counter,
    rebases: &'static hazy_obs::Counter,
    retired_live: &'static hazy_obs::Gauge,
}

fn epoch_obs() -> &'static EpochObs {
    static OBS: std::sync::OnceLock<EpochObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| EpochObs {
        pins: hazy_obs::counter("core_epoch_pins_total"),
        published: hazy_obs::counter("core_epoch_published_total"),
        reclaimed: hazy_obs::counter("core_epoch_reclaimed_total"),
        rebases: hazy_obs::counter("core_epoch_rebases_total"),
        retired_live: hazy_obs::gauge("core_epoch_retired_live"),
    })
}


/// The immutable population frozen at the last rebase: entities in
/// ascending-id order with their `eps` (margin under the frozen model) and
/// labels, plus an eps-sorted permutation for watermark-band range scans.
/// Shared by every epoch published since the rebase via [`Arc`].
struct EpochBase {
    /// Entities in ascending id order (ids unique).
    entities: Vec<Entity>,
    /// `eps[i]` = margin of `entities[i]` under the frozen model.
    eps: Vec<f64>,
    /// `labels[i]` = label of `entities[i]` under the frozen model.
    labels: Vec<Label>,
    /// Indices of `entities` sorted by ascending `eps` — the clustering
    /// order a hazy architecture keeps physically, kept here logically so
    /// the publisher can walk exactly the watermark band.
    by_eps: Vec<u32>,
}

impl EpochBase {
    /// Builds a base from an id-sorted population under `model`. Returns
    /// the base, its positive count, and `M = max ‖f‖_q` for the marks.
    fn build(entities: Vec<Entity>, model: &LinearModel, pair: NormPair) -> (EpochBase, u64, f64) {
        let n = entities.len();
        debug_assert!(entities.windows(2).all(|w| w[0].id < w[1].id), "base must be id-sorted");
        let mut eps = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut positive = 0u64;
        let mut m_norm = 0.0f64;
        for e in &entities {
            let m = model.margin(&e.f);
            let l = model.predict(&e.f);
            positive += u64::from(l > 0);
            m_norm = m_norm.max(e.f.norm(pair.q));
            eps.push(m);
            labels.push(l);
        }
        let mut by_eps: Vec<u32> = (0..n as u32).collect();
        by_eps.sort_unstable_by(|&a, &b| {
            eps[a as usize].total_cmp(&eps[b as usize]).then(a.cmp(&b))
        });
        (EpochBase { entities, eps, labels, by_eps }, positive, m_norm)
    }

    /// Binary search by entity id.
    fn idx_of(&self, id: u64) -> Option<usize> {
        self.entities.binary_search_by_key(&id, |e| e.id).ok()
    }
}

/// One immutable snapshot of a classification view's answers, published at
/// a logical sequence number. All read methods take `&self` and always
/// return the answers as of [`lsn`](ModelEpoch::lsn) — bit-identical to
/// what any live architecture would have served at that point, no matter
/// what the writer has done since.
pub struct ModelEpoch {
    lsn: u64,
    model: LinearModel,
    base: Arc<EpochBase>,
    /// Label patches for base entities that flipped since the rebase
    /// (base index → current label). Compact: only band members can
    /// appear.
    flips: HashMap<u32, Label>,
    /// Entities inserted since the rebase, with their current labels.
    /// `Arc`-shared so publishing an epoch never copies feature payloads.
    added: BTreeMap<u64, (Arc<Entity>, Label)>,
    /// Base ids retracted since the rebase.
    removed: HashSet<u64>,
    positive: u64,
}

impl ModelEpoch {
    /// The logical sequence number this snapshot is consistent at: the
    /// number of write-side operations the publisher had applied when the
    /// epoch was published.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// The model bits at this epoch.
    pub fn model(&self) -> &LinearModel {
        &self.model
    }

    /// Number of entities alive at this epoch.
    pub fn entity_count(&self) -> u64 {
        (self.base.entities.len() - self.removed.len() + self.added.len()) as u64
    }

    /// `Single Entity` read against the snapshot.
    pub fn classify(&self, id: u64) -> Option<Label> {
        if let Some((_, l)) = self.added.get(&id) {
            return Some(*l);
        }
        if self.removed.contains(&id) {
            return None;
        }
        let i = self.base.idx_of(id)?;
        Some(self.flips.get(&(i as u32)).copied().unwrap_or(self.base.labels[i]))
    }

    /// `All Members` count against the snapshot (maintained incrementally
    /// by the publisher — O(1) here).
    pub fn count_positive(&self) -> u64 {
        self.positive
    }

    /// `All Members` listing in ascending id order.
    pub fn positive_ids(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut add = self.added.iter().peekable();
        for (i, e) in self.base.entities.iter().enumerate() {
            while let Some((&aid, (_, al))) = add.peek() {
                if aid >= e.id {
                    break;
                }
                if *al > 0 {
                    out.push(aid);
                }
                add.next();
            }
            if self.removed.contains(&e.id) {
                continue;
            }
            if self.flips.get(&(i as u32)).copied().unwrap_or(self.base.labels[i]) > 0 {
                out.push(e.id);
            }
        }
        for (&aid, (_, al)) in add {
            if *al > 0 {
                out.push(aid);
            }
        }
        out
    }

    /// Ranked read under the epoch's model: margin descending, ids
    /// ascending on ties — the same total order as
    /// [`rank_order`], so merged per-shard epoch answers equal the
    /// unsharded listing bit for bit.
    pub fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let mut scored = Vec::with_capacity(self.entity_count() as usize);
        for e in &self.base.entities {
            if self.removed.contains(&e.id) {
                continue;
            }
            scored.push((e.id, self.model.margin(&e.f)));
        }
        for (&id, (e, _)) in &self.added {
            scored.push((id, self.model.margin(&e.f)));
        }
        scored.sort_unstable_by(rank_order);
        scored.truncate(k);
        scored
    }

    /// Number of overlay entries (label patches + inserts + retractions) —
    /// how far this epoch has drifted from its frozen base.
    pub fn overlay_len(&self) -> usize {
        self.flips.len() + self.added.len() + self.removed.len()
    }
}

/// Counters describing one [`EpochCell`]'s lifecycle, snapshotted from its
/// atomics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Epochs published (including the initial one).
    pub published: u64,
    /// Retired epochs whose storage has been reclaimed.
    pub reclaimed: u64,
    /// Reader pins taken over the cell's lifetime.
    pub pins: u64,
    /// Retired epochs still awaiting reclamation (pinned, or a reader was
    /// mid-pin at the last collection attempt).
    pub retired_live: u64,
}

/// A published epoch plus its pin count; heap-allocated and reclaimed by
/// the cell's collector.
struct EpochNode {
    pins: AtomicU64,
    epoch: ModelEpoch,
}

/// The publication point readers and the writer share: an atomic pointer
/// to the current [`ModelEpoch`], plus the retired list the hand-rolled
/// epoch GC drains.
///
/// Readers call [`pin`](EpochCell::pin) — three atomic operations, no
/// locks, never blocked by a writer mid-reorganization. The writer calls
/// [`publish`](EpochCell::publish) — one pointer swap — and reclaims
/// drained epochs opportunistically.
///
/// # Reclamation safety
///
/// A retired node is freed only after the collector observes
/// `entering == 0` and *then* `pins == 0` (both sequentially consistent,
/// under the retired-list lock). Any reader that could still pin the node
/// must have loaded the pointer before it was retired, hence inside its
/// `entering` window; `entering == 0` proves every such window closed, so
/// the pin count can no longer rise — `pins == 0` after that point means
/// no reader holds or will ever hold the node.
pub struct EpochCell {
    current: AtomicPtr<EpochNode>,
    /// Readers inside the load-then-pin window. While non-zero, nothing
    /// retired can be proven unreachable, so collection is deferred.
    entering: AtomicU64,
    /// Retired nodes awaiting a drained pin count. Also serializes
    /// publishers and collectors against each other (writer–writer only —
    /// readers never touch it).
    retired: Mutex<Vec<*mut EpochNode>>,
    published: AtomicU64,
    reclaimed: AtomicU64,
    pin_count: AtomicU64,
    /// High-water mark of `pin_count` already folded into the global
    /// `core_epoch_pins_total` counter (see [`EpochCell::sync_pins`]).
    pins_synced: AtomicU64,
}

// The raw node pointers are managed exclusively by the cell's publish /
// collect / drop protocol; the payloads they point at are `Send + Sync`.
unsafe impl Send for EpochCell {}
unsafe impl Sync for EpochCell {}

impl EpochCell {
    fn new(initial: ModelEpoch) -> EpochCell {
        // register the lifecycle metrics up front so scrape surfaces list
        // them (at zero) before the first cold-path sync runs
        let _ = epoch_obs();
        let node = Box::into_raw(Box::new(EpochNode { pins: AtomicU64::new(0), epoch: initial }));
        EpochCell {
            current: AtomicPtr::new(node),
            entering: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
            published: AtomicU64::new(1),
            reclaimed: AtomicU64::new(0),
            pin_count: AtomicU64::new(0),
            pins_synced: AtomicU64::new(0),
        }
    }

    /// Pins the current epoch: the returned guard keeps that epoch alive
    /// (and bit-frozen) until dropped, no matter how many epochs the
    /// writer publishes meanwhile. Lock-free and wait-free modulo the
    /// guarantee that the writer swaps pointers rather than blocking.
    pub fn pin(&self) -> EpochPin<'_> {
        self.entering.fetch_add(1, Ordering::SeqCst);
        let node = self.current.load(Ordering::SeqCst);
        // Safety: `node` cannot have been freed — the collector frees a
        // node only after observing `entering == 0`, and our window opened
        // before the load above.
        unsafe { (*node).pins.fetch_add(1, Ordering::SeqCst) };
        self.entering.fetch_sub(1, Ordering::SeqCst);
        // `pin_count` is the only accounting this path pays — the global
        // `core_epoch_pins_total` counter is derived from it lazily by
        // `sync_pins`, so instrumentation adds zero atomics per read.
        self.pin_count.fetch_add(1, Ordering::Relaxed);
        EpochPin { cell: self, node }
    }

    /// Publishes `epoch` as current (one pointer swap — the only moment a
    /// reader's view of the world advances) and opportunistically reclaims
    /// drained predecessors. Writer-side; concurrent publishers serialize
    /// on the retired-list lock.
    pub fn publish(&self, epoch: ModelEpoch) {
        let lsn = epoch.lsn;
        let node = Box::into_raw(Box::new(EpochNode { pins: AtomicU64::new(0), epoch }));
        let mut retired = self.retired.lock().expect("epoch retired-list lock");
        let old = self.current.swap(node, Ordering::SeqCst);
        retired.push(old);
        self.published.fetch_add(1, Ordering::Relaxed);
        epoch_obs().published.inc();
        hazy_obs::emit(hazy_obs::EventKind::EpochPublish, lsn, 0, 0);
        self.collect_locked(&mut retired);
    }

    /// Attempts to reclaim drained retired epochs right now. Called
    /// automatically by [`publish`](EpochCell::publish); exposed so tests
    /// and long-idle writers can drain deterministically.
    pub fn try_collect(&self) {
        let mut retired = self.retired.lock().expect("epoch retired-list lock");
        self.collect_locked(&mut retired);
    }

    fn collect_locked(&self, retired: &mut Vec<*mut EpochNode>) {
        // A reader between its pointer load and pin increment could still
        // pin any retired node; defer until no reader is in that window.
        if self.entering.load(Ordering::SeqCst) != 0 {
            return;
        }
        let before = retired.len();
        retired.retain(|&node| {
            // Safety: retired nodes are owned by this list; `entering == 0`
            // was observed after retirement, so a zero pin count is final.
            let pinned = unsafe { (*node).pins.load(Ordering::SeqCst) } > 0;
            if !pinned {
                drop(unsafe { Box::from_raw(node) });
                self.reclaimed.fetch_add(1, Ordering::Relaxed);
            }
            pinned
        });
        let freed = (before - retired.len()) as u64;
        if freed > 0 {
            epoch_obs().reclaimed.add(freed);
            hazy_obs::emit(hazy_obs::EventKind::EpochReclaim, freed, retired.len() as u64, 0);
        }
        epoch_obs().retired_live.set(retired.len() as f64);
        self.sync_pins();
    }

    /// The cumulative pin count as one relaxed load — the derivation
    /// source layered read metrics (e.g. the serving tier's per-shard
    /// read counters) sync from, so the read hot path itself carries no
    /// instrumentation atomics.
    pub fn pin_total(&self) -> u64 {
        self.pin_count.load(Ordering::Relaxed)
    }

    /// Folds pins taken since the last sync into the global
    /// `core_epoch_pins_total` counter. The pin path already maintains
    /// `pin_count` for [`EpochStats`], so the registry copy is pure
    /// derivation, refreshed here at the protocol's cold moments —
    /// publish/collect, [`stats`](EpochCell::stats), and drop. The
    /// `fetch_max` high-water mark makes concurrent syncs credit each
    /// pin exactly once.
    fn sync_pins(&self) {
        let total = self.pin_count.load(Ordering::Relaxed);
        let prev = self.pins_synced.fetch_max(total, Ordering::Relaxed);
        let delta = total.saturating_sub(prev);
        if delta > 0 {
            epoch_obs().pins.add(delta);
        }
    }

    /// Lifecycle counters.
    pub fn stats(&self) -> EpochStats {
        self.sync_pins();
        EpochStats {
            published: self.published.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            pins: self.pin_count.load(Ordering::Relaxed),
            retired_live: self.retired.lock().expect("epoch retired-list lock").len() as u64,
        }
    }

    /// The LSN of the currently published epoch.
    pub fn current_lsn(&self) -> u64 {
        self.pin().lsn()
    }
}

impl Drop for EpochCell {
    fn drop(&mut self) {
        // the last chance to credit pins a read-only lifetime accumulated
        self.sync_pins();
        // `&mut self` proves no pins are outstanding (every `EpochPin`
        // borrows the cell), so everything can be freed unconditionally.
        let retired = self.retired.get_mut().expect("epoch retired-list lock");
        for node in retired.drain(..) {
            drop(unsafe { Box::from_raw(node) });
        }
        let current = self.current.load(Ordering::SeqCst);
        if !current.is_null() {
            self.current.store(ptr::null_mut(), Ordering::SeqCst);
            drop(unsafe { Box::from_raw(current) });
        }
    }
}

/// A pinned epoch: dereferences to the [`ModelEpoch`] that was current at
/// pin time and keeps it alive until dropped.
pub struct EpochPin<'a> {
    cell: &'a EpochCell,
    node: *mut EpochNode,
}

impl Deref for EpochPin<'_> {
    type Target = ModelEpoch;

    fn deref(&self) -> &ModelEpoch {
        // Safety: the pin count taken in `pin` keeps the node allocated.
        unsafe { &(*self.node).epoch }
    }
}

impl Drop for EpochPin<'_> {
    fn drop(&mut self) {
        // Safety: the node outlives the pin (its count is still raised).
        unsafe { (*self.node).pins.fetch_sub(1, Ordering::SeqCst) };
        let _ = self.cell;
    }
}

/// How many overlay entries the publisher tolerates before rebasing
/// relative to the base population (¼ of it, floored at this constant).
const REBASE_FLOOR: usize = 64;

/// The writer-side half of snapshot reads: owns the mutable overlay state,
/// folds every logical write into it (using the watermark band to touch
/// only tuples that can have flipped), and publishes an immutable
/// [`ModelEpoch`] into its [`EpochCell`] after each operation.
///
/// Exactly one publisher exists per cell; it is driven by whoever already
/// holds the single-writer role (the serving layer's broadcast walk, a
/// test harness's writer actor), so its methods take `&mut self` and need
/// no internal synchronization beyond the cell's publication protocol.
pub struct EpochPublisher {
    cell: Arc<EpochCell>,
    base: Arc<EpochBase>,
    /// Running watermark band over the base's frozen model. Always
    /// [`WatermarkPolicy::Monotone`]: the band must only grow, so a tuple
    /// that flipped stays inside it and keeps being re-scored until the
    /// next rebase.
    marks: WaterMarks,
    pair: NormPair,
    flips: HashMap<u32, Label>,
    added: BTreeMap<u64, (Arc<Entity>, Label)>,
    removed: HashSet<u64>,
    model: LinearModel,
    positive: u64,
    lsn: u64,
    rebases: u64,
}

impl EpochPublisher {
    /// Builds the initial base from `entities` under `model` and publishes
    /// epoch `start_lsn`. Entities need not be sorted; ids must be unique.
    pub fn new(
        mut entities: Vec<Entity>,
        model: LinearModel,
        pair: NormPair,
        start_lsn: u64,
    ) -> EpochPublisher {
        entities.sort_unstable_by_key(|e| e.id);
        let (base, positive, m_norm) = EpochBase::build(entities, &model, pair);
        let base = Arc::new(base);
        let marks = WaterMarks::new(model.clone(), pair, m_norm, WatermarkPolicy::Monotone);
        EpochPublisher {
            cell: Arc::new(EpochCell::new(ModelEpoch {
                lsn: start_lsn,
                model: model.clone(),
                base: Arc::clone(&base),
                flips: HashMap::new(),
                added: BTreeMap::new(),
                removed: HashSet::new(),
                positive,
            })),
            base,
            marks,
            pair,
            flips: HashMap::new(),
            added: BTreeMap::new(),
            removed: HashSet::new(),
            model,
            positive,
            lsn: start_lsn,
            rebases: 0,
        }
    }

    /// Builds a publisher whose initial epoch reproduces `view`'s current
    /// answers, via the view's architecture-specific snapshot path
    /// ([`ClassifierView::snapshot_state`] — a disk view pays a sequential
    /// scan, charged to its clock). `None` when the view has no snapshot
    /// path (e.g. an already-sharded wrapper, which snapshots per shard).
    pub fn from_view(
        view: &mut (dyn ClassifierView + '_),
        pair: NormPair,
        start_lsn: u64,
    ) -> Option<EpochPublisher> {
        let (entities, model) = view.snapshot_state()?;
        Some(EpochPublisher::new(entities, model, pair, start_lsn))
    }

    /// The shared publication cell readers pin.
    pub fn handle(&self) -> Arc<EpochCell> {
        Arc::clone(&self.cell)
    }

    /// The LSN of the most recently published epoch.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// How many times the overlay has been folded into a fresh base.
    pub fn rebases(&self) -> u64 {
        self.rebases
    }

    /// Folds in a model round: the view applied one update statement (one
    /// or more SGD steps) and now serves `model`. Grows the watermark band
    /// and re-scores exactly the base tuples inside it plus the dynamic
    /// inserts — everything else provably kept its label (Lemma 3.1).
    pub fn apply_update(&mut self, model: &LinearModel) {
        self.model = model.clone();
        self.marks.observe(model);
        let (lw, hw) = (self.marks.low(), self.marks.high());
        // the band in eps order: tuples with lw < eps < hw
        let lo = self.base.by_eps.partition_point(|&i| self.base.eps[i as usize] <= lw);
        let hi = self.base.by_eps.partition_point(|&i| self.base.eps[i as usize] < hw);
        for k in lo..hi {
            let i = self.base.by_eps[k];
            let e = &self.base.entities[i as usize];
            if self.removed.contains(&e.id) {
                continue;
            }
            let old = self.flips.get(&i).copied().unwrap_or(self.base.labels[i as usize]);
            let new = self.model.predict(&e.f);
            if new != old {
                if new > 0 {
                    self.positive += 1;
                } else {
                    self.positive -= 1;
                }
                if new == self.base.labels[i as usize] {
                    self.flips.remove(&i);
                } else {
                    self.flips.insert(i, new);
                }
            }
        }
        let mut delta = 0i64;
        for (e, l) in self.added.values_mut() {
            let new = self.model.predict(&e.f);
            if new != *l {
                delta += if new > 0 { 1 } else { -1 };
                *l = new;
            }
        }
        self.positive = (self.positive as i64 + delta) as u64;
        self.step();
    }

    /// Folds in a dynamic insert, classified under the current model. An
    /// id that is already live is replaced (retract + insert), matching
    /// the dataflow layer's set semantics.
    pub fn apply_insert(&mut self, e: Entity) {
        let label = self.model.predict(&e.f);
        if let Some((_, old)) = self.added.remove(&e.id) {
            self.positive -= u64::from(old > 0);
        } else if let Some(i) = self.base.idx_of(e.id) {
            if self.removed.insert(e.id) {
                let old = self.flips.get(&(i as u32)).copied().unwrap_or(self.base.labels[i]);
                self.positive -= u64::from(old > 0);
            }
        }
        self.positive += u64::from(label > 0);
        self.added.insert(e.id, (Arc::new(e), label));
        self.step();
    }

    /// Folds in a retraction; `true` when the entity was live. A miss
    /// still advances the LSN and publishes — the logical operation
    /// happened, it just had nothing to retract (idempotent replay).
    pub fn apply_remove(&mut self, id: u64) -> bool {
        let hit = if let Some((_, l)) = self.added.remove(&id) {
            self.positive -= u64::from(l > 0);
            true
        } else if let Some(i) = self.base.idx_of(id) {
            if self.removed.insert(id) {
                let old = self.flips.get(&(i as u32)).copied().unwrap_or(self.base.labels[i]);
                self.positive -= u64::from(old > 0);
                true
            } else {
                false
            }
        } else {
            false
        };
        self.step();
        hit
    }

    /// Folds in a reorganization: the view reclustered, so the epoch base
    /// rebases too — the overlay collapses into a fresh base frozen at the
    /// current model (band back to zero width).
    pub fn apply_reorganize(&mut self) {
        self.rebase();
        self.lsn += 1;
        self.publish_now();
    }

    /// Advances the LSN and republishes without changing any answer — for
    /// logical operations that cannot move labels (reads driving lazy
    /// maintenance, architecture migrations, checkpoints) so the epoch
    /// stream stays in lockstep with the operation stream.
    pub fn apply_noop(&mut self) {
        self.lsn += 1;
        self.publish_now();
    }

    fn step(&mut self) {
        if self.flips.len() + self.added.len() + self.removed.len()
            > REBASE_FLOOR.max(self.base.entities.len() / 4)
        {
            self.rebase();
        }
        self.lsn += 1;
        self.publish_now();
    }

    fn rebase(&mut self) {
        let mut live = Vec::with_capacity(
            self.base.entities.len() - self.removed.len() + self.added.len(),
        );
        let mut add = self.added.iter().peekable();
        for e in &self.base.entities {
            while let Some((&aid, (ae, _))) = add.peek() {
                if aid >= e.id {
                    break;
                }
                live.push(Entity::clone(ae));
                add.next();
            }
            if !self.removed.contains(&e.id) {
                live.push(e.clone());
            }
        }
        for (_, (ae, _)) in add {
            live.push(Entity::clone(ae));
        }
        let (base, positive, m_norm) = EpochBase::build(live, &self.model, self.pair);
        self.base = Arc::new(base);
        self.marks =
            WaterMarks::new(self.model.clone(), self.pair, m_norm, WatermarkPolicy::Monotone);
        self.flips.clear();
        self.added.clear();
        self.removed.clear();
        self.positive = positive;
        self.rebases += 1;
        epoch_obs().rebases.inc();
        hazy_obs::emit(hazy_obs::EventKind::EpochRebase, self.lsn, 0, 0);
    }

    fn publish_now(&self) {
        self.cell.publish(ModelEpoch {
            lsn: self.lsn,
            model: self.model.clone(),
            base: Arc::clone(&self.base),
            flips: self.flips.clone(),
            added: self.added.clone(),
            removed: self.removed.clone(),
            positive: self.positive,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazy_linalg::FeatureVec;

    const _: () = {
        const fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<EpochCell>();
        assert_sync_send::<ModelEpoch>();
    };

    fn entities(n: usize) -> Vec<Entity> {
        (0..n)
            .map(|k| {
                Entity::new(
                    k as u64,
                    FeatureVec::dense(vec![(k % 7) as f32 / 7.0 - 0.4, (k % 5) as f32 / 5.0 - 0.3]),
                )
            })
            .collect()
    }

    fn model(w: Vec<f64>, b: f64) -> LinearModel {
        LinearModel::from_parts(w, b)
    }

    #[test]
    fn initial_epoch_answers_match_direct_scoring() {
        let es = entities(40);
        let m = model(vec![1.0, -0.5], 0.1);
        let p = EpochPublisher::new(es.clone(), m.clone(), NormPair::EUCLIDEAN, 0);
        let cell = p.handle();
        let pin = cell.pin();
        assert_eq!(pin.lsn(), 0);
        assert_eq!(pin.entity_count(), 40);
        let want: Vec<u64> = es.iter().filter(|e| m.predict(&e.f) > 0).map(|e| e.id).collect();
        assert_eq!(pin.positive_ids(), want);
        assert_eq!(pin.count_positive(), want.len() as u64);
        for e in &es {
            assert_eq!(pin.classify(e.id), Some(m.predict(&e.f)));
        }
        assert_eq!(pin.classify(999), None);
    }

    #[test]
    fn pinned_epoch_is_immutable_while_writer_advances() {
        let es = entities(30);
        let m0 = model(vec![0.4, 0.4], 0.0);
        let mut p = EpochPublisher::new(es, m0, NormPair::EUCLIDEAN, 0);
        let cell = p.handle();
        let pin = cell.pin();
        let before = (pin.count_positive(), pin.positive_ids(), pin.top_k(5));
        // writer moves the model far enough to flip labels, inserts, removes
        p.apply_update(&model(vec![-2.0, -2.0], -1.0));
        p.apply_insert(Entity::new(500, FeatureVec::dense(vec![1.0, 1.0])));
        p.apply_remove(3);
        p.apply_reorganize();
        assert_eq!(pin.count_positive(), before.0, "pinned count changed");
        assert_eq!(pin.positive_ids(), before.1, "pinned listing changed");
        assert_eq!(pin.top_k(5), before.2, "pinned ranking changed");
        // a fresh pin sees the new world
        let now = cell.pin();
        assert_eq!(now.lsn(), 4);
        assert_eq!(now.classify(3), None);
        assert_eq!(now.classify(500), Some(-1));
    }

    #[test]
    fn overlay_updates_track_full_rescoring() {
        let es = entities(60);
        let mut p =
            EpochPublisher::new(es.clone(), model(vec![0.3, -0.2], 0.0), NormPair::EUCLIDEAN, 0);
        let cell = p.handle();
        let mut live: Vec<Entity> = es;
        let steps: Vec<LinearModel> = (0..12)
            .map(|k| {
                let t = k as f64 * 0.15;
                model(vec![0.3 - t, -0.2 + t / 2.0], 0.05 * t)
            })
            .collect();
        for (k, cur) in steps.into_iter().enumerate() {
            p.apply_update(&cur);
            if k % 3 == 0 {
                let e = Entity::new(
                    1000 + k as u64,
                    FeatureVec::dense(vec![k as f32 / 12.0 - 0.5, 0.2]),
                );
                live.push(e.clone());
                p.apply_insert(e);
            }
            if k == 7 {
                live.retain(|e| e.id != 11);
                p.apply_remove(11);
            }
            let pin = cell.pin();
            let mut want: Vec<u64> =
                live.iter().filter(|e| cur.predict(&e.f) > 0).map(|e| e.id).collect();
            want.sort_unstable();
            assert_eq!(pin.positive_ids(), want, "step {k}");
            assert_eq!(pin.count_positive(), want.len() as u64, "step {k}");
            for e in &live {
                assert_eq!(pin.classify(e.id), Some(cur.predict(&e.f)), "step {k} id {}", e.id);
            }
        }
    }

    #[test]
    fn reclamation_waits_for_pin_drain() {
        let mut p =
            EpochPublisher::new(entities(5), model(vec![1.0, 0.0], 0.0), NormPair::EUCLIDEAN, 0);
        let cell = p.handle();
        let pin = cell.pin();
        let pinned_lsn = pin.lsn();
        for _ in 0..10 {
            p.apply_noop();
        }
        cell.try_collect();
        let s = cell.stats();
        assert!(s.retired_live >= 1, "pinned epoch was drained from the retired list: {s:?}");
        assert_eq!(pin.lsn(), pinned_lsn, "pinned epoch mutated under publication");
        drop(pin);
        cell.try_collect();
        let s = cell.stats();
        assert_eq!(s.retired_live, 0, "drained epoch not reclaimed: {s:?}");
        // everything retired is reclaimed; only the current epoch lives
        assert_eq!(s.published, s.reclaimed + 1, "{s:?}");
    }

    #[test]
    fn remove_then_reinsert_round_trips() {
        let mut p =
            EpochPublisher::new(entities(10), model(vec![1.0, 1.0], -0.1), NormPair::EUCLIDEAN, 0);
        let cell = p.handle();
        assert!(p.apply_remove(4));
        assert_eq!(cell.pin().classify(4), None);
        assert!(!p.apply_remove(4), "double remove must miss");
        p.apply_insert(Entity::new(4, FeatureVec::dense(vec![5.0, 5.0])));
        assert_eq!(cell.pin().classify(4), Some(1));
        let ids = cell.pin().positive_ids();
        assert_eq!(ids.iter().filter(|&&i| i == 4).count(), 1, "duplicate id in listing: {ids:?}");
    }

    #[test]
    fn rebase_preserves_answers() {
        let mut p =
            EpochPublisher::new(entities(16), model(vec![0.2, 0.2], 0.0), NormPair::EUCLIDEAN, 0);
        let cell = p.handle();
        // enough inserts to blow the overlay budget and force a rebase
        for k in 0..(REBASE_FLOOR as u64 + 20) {
            p.apply_insert(Entity::new(
                2_000 + k,
                FeatureVec::dense(vec![(k % 9) as f32 / 9.0 - 0.5, 0.1]),
            ));
        }
        assert!(p.rebases() > 0, "overlay never rebased");
        let pre = cell.pin();
        let (count, ids) = (pre.count_positive(), pre.positive_ids());
        p.apply_reorganize();
        let pin = cell.pin();
        assert_eq!(pin.entity_count(), 16 + REBASE_FLOOR as u64 + 20);
        assert_eq!(pin.count_positive(), count);
        assert_eq!(pin.positive_ids(), ids);
        assert_eq!(pin.overlay_len(), 0, "explicit rebase should empty the overlay");
    }
}
