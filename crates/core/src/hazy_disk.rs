//! Hazy's on-disk architecture (Section 3.2).
//!
//! The scratch table `H(id, f, eps)` lives in a heap file physically
//! clustered by `eps` descending, with
//!
//! * a clustered B+-tree on `eps` (keys are order-reversed so ascending key
//!   order equals descending `eps` — the heap's physical order), and
//! * a hash index `id → rid` for single-entity reads.
//!
//! An eager update retrains, widens the watermarks, and touches only tuples
//! with `eps ∈ [lw, hw]`: the B+-tree finds the first qualifying tuple and
//! the walk proceeds in physical heap order, so the range scan is
//! sequential I/O. The Skiing strategy decides when to recluster.
//!
//! Entities inserted between reorganizations land in an unsorted *tail*
//! region of the heap (indexed by both indexes); the next reorganization
//! folds them into the sorted segment.

use std::cmp::Ordering;

use hazy_learn::{sign, Label, LinearModel, SgdTrainer, TrainingExample};
use hazy_linalg::{wire, Norm, NormPair, OrdF64};
use hazy_storage::{BTree, BufferPool, HashIndex, HeapFile, Rid, SimDisk, VirtualClock};

use crate::cost::{charge_classify, OpOverheads};
use crate::durable::{tag, Durable};
use crate::entity::{
    decode_tuple, decode_tuple_header, decode_tuple_ref, encode_tuple, Entity, HTuple, HTupleRef,
    TUPLE_LABEL_OFFSET,
};
use crate::merge::merge_sorted_tail;
use crate::skiing::Skiing;
use crate::stats::{MemoryFootprint, ViewStats};
use crate::view::{ClassifierView, Mode};
use crate::watermark::{DeltaTracker, WaterMarks, WatermarkPolicy};

/// B+-tree key for a tuple: `(order-reversed eps, id)`. Ascending key order
/// is descending `eps` order, matching the clustered heap.
fn eps_key(eps: f64, id: u64) -> (u64, u64) {
    (OrdF64(-eps).sortable_key(), id)
}

/// Inverse of the first key component.
fn key_eps(k0: u64) -> f64 {
    -OrdF64::from_sortable_key(k0).0
}

/// The clustering order: eps descending, ids breaking ties.
fn tuple_cmp(a: &HTuple, b: &HTuple) -> Ordering {
    b.eps.total_cmp(&a.eps).then(a.id.cmp(&b.id))
}

/// `a` may precede `b` under [`tuple_cmp`] (the merge predicate).
fn tuple_le(a: &HTuple, b: &HTuple) -> bool {
    tuple_cmp(a, b) != Ordering::Greater
}

/// Hazy on-disk view (`Hazy-OD`).
pub struct HazyDiskView {
    mode: Mode,
    overheads: OpOverheads,
    pool: BufferPool,
    heap: HeapFile,
    btree: BTree,
    hash: HashIndex,
    /// First record of the unsorted tail, if any.
    first_tail_rid: Option<Rid>,
    /// Tuples in the sorted segment (heap order positions before the tail).
    n_sorted: u64,
    /// Trainer rounds at the last reorganization; when the model has not
    /// advanced since, the clustered run's eps keys are still exact and a
    /// reorganization reduces to folding the tail in by merge.
    rounds_at_reorg: u64,
    trainer: SgdTrainer,
    wm: WaterMarks,
    tracker: DeltaTracker,
    skiing: Skiing,
    pair: NormPair,
    policy: WatermarkPolicy,
    m_norm: f64,
    reorg_epoch: u64,
    stats: ViewStats,
    scratch: Vec<u8>,
}

impl HazyDiskView {
    /// Builds the view and performs the initial organization (measuring the
    /// first `S`).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        entities: Vec<Entity>,
        trainer: SgdTrainer,
        mut pool: BufferPool,
        overheads: OpOverheads,
        mode: Mode,
        pair: NormPair,
        policy: WatermarkPolicy,
        alpha: f64,
    ) -> HazyDiskView {
        let m_norm = entities.iter().map(|e| e.f.norm(pair.q)).fold(0.0f64, f64::max);
        // stage the raw tuples into an unclustered heap; the initial
        // reorganization below rewrites them clustered
        let mut heap = HeapFile::new();
        let mut scratch = Vec::new();
        let n = entities.len();
        for e in entities {
            scratch.clear();
            encode_tuple(&HTuple { id: e.id, label: 1, eps: 0.0, f: e.f }, &mut scratch);
            heap.append(&mut pool, &scratch).expect("entity tuple fits a page");
        }
        let btree = BTree::new(&mut pool);
        let hash = HashIndex::with_capacity(&mut pool, n);
        let wm = WaterMarks::new(trainer.model().clone(), pair, m_norm, policy);
        let tracker = DeltaTracker::new(trainer.model(), pair.p);
        let mut view = HazyDiskView {
            mode,
            overheads,
            pool,
            heap,
            btree,
            hash,
            first_tail_rid: None,
            n_sorted: 0,
            // sentinel: staged tuples start unkeyed (eps = 0), so the first
            // organization must always take the full re-keying path
            rounds_at_reorg: u64::MAX,
            trainer,
            wm,
            tracker,
            skiing: Skiing::new(alpha, 0.0),
            pair,
            policy,
            m_norm,
            reorg_epoch: 0,
            stats: ViewStats::default(),
            scratch,
        };
        view.reorganize_inner();
        view
    }

    /// Inverse of this view's [`Durable::save_state`] (tag byte already
    /// consumed): control state, then disk image, pool, and the three
    /// access-method directories.
    pub(crate) fn restore_state(
        b: &mut &[u8],
        clock: VirtualClock,
        overheads: OpOverheads,
    ) -> Option<HazyDiskView> {
        let mode = Mode::from_tag(wire::take_u8(b)?)?;
        let trainer = SgdTrainer::restore_state(b)?;
        let stats = ViewStats::restore_state(b)?;
        let p = Norm::from_tag(wire::take_u8(b)?)?;
        let q = Norm::from_tag(wire::take_u8(b)?)?;
        let policy = WatermarkPolicy::from_tag(wire::take_u8(b)?)?;
        let m_norm = wire::take_f64(b)?;
        let n_sorted = wire::take_u64(b)?;
        let rounds_at_reorg = wire::take_u64(b)?;
        let reorg_epoch = wire::take_u64(b)?;
        let first_tail_raw = wire::take_u64(b)?;
        let first_tail_rid =
            if first_tail_raw == u64::MAX { None } else { Some(Rid::from_u64(first_tail_raw)) };
        let wm = WaterMarks::restore_state(b)?;
        let tracker = DeltaTracker::restore_state(b)?;
        let skiing = Skiing::restore_state(b)?;
        let disk = SimDisk::restore_state(b, clock)?;
        let pool = BufferPool::restore_state(b, disk)?;
        let heap = HeapFile::restore_state(b)?;
        let btree = BTree::restore_state(b)?;
        let hash = HashIndex::restore_state(b)?;
        Some(HazyDiskView {
            mode,
            overheads,
            pool,
            heap,
            btree,
            hash,
            first_tail_rid,
            n_sorted,
            rounds_at_reorg,
            trainer,
            wm,
            tracker,
            skiing,
            pair: NormPair { p, q },
            policy,
            m_norm,
            reorg_epoch,
            stats,
            scratch: Vec::new(),
        })
    }

    /// Current `[lw, hw]` band.
    pub fn waterband(&self) -> (f64, f64) {
        (self.wm.low(), self.wm.high())
    }

    /// Experiment hook (Figure 6(B)): force the uncertain band.
    pub fn force_waterband(&mut self, lw: f64, hw: f64) {
        self.wm.set_band(lw, hw);
    }

    /// Number of tuples currently inside the band, found via the clustered
    /// index. Entries whose heap record is gone are skipped: removals leave
    /// stale index entries behind (the B+-tree has no delete path) until
    /// the next reorganization rebuilds the tree from the live heap.
    pub fn tuples_in_band(&mut self) -> u64 {
        let (lw, hw) = self.waterband();
        let mut rids: Vec<Rid> = Vec::new();
        self.btree.scan_from(&mut self.pool, eps_key(hw, 0), |k, v| {
            if key_eps(k.0) < lw {
                return false;
            }
            rids.push(Rid::from_u64(v));
            true
        });
        rids.into_iter()
            .filter(|&rid| self.heap.get(&mut self.pool, rid, |_| ()).is_ok())
            .count() as u64
    }

    /// The Skiing controller (ablation benches).
    pub fn skiing(&self) -> &Skiing {
        &self.skiing
    }

    /// Reorganizations performed (the hybrid watches this to refresh its
    /// ε-map).
    pub fn reorg_epoch(&self) -> u64 {
        self.reorg_epoch
    }

    /// Iterates every tuple (sorted segment then tail), decoded. Used by
    /// the hybrid to (re)build its in-memory structures.
    pub fn for_each_tuple(&mut self, mut f: impl FnMut(&HTuple)) {
        self.heap.scan(&mut self.pool, |_, bytes| {
            f(&decode_tuple(bytes).expect("well-formed tuple"));
            true
        });
    }

    /// Zero-copy variant of [`for_each_tuple`](Self::for_each_tuple): the
    /// visitor sees tuples borrowed straight from the page bytes, so
    /// consumers that materialize only a small subset never pay a per-tuple
    /// allocation.
    pub fn for_each_tuple_ref(&mut self, mut f: impl FnMut(&HTupleRef)) {
        self.heap.scan(&mut self.pool, |_, bytes| {
            f(&decode_tuple_ref(bytes).expect("well-formed tuple"));
            true
        });
    }

    /// Cheapest scan of all: only the fixed `(id, label, eps)` prefix of
    /// each tuple is decoded — O(1) per tuple, skipping even the feature
    /// payload's validation. The hybrid's ε-map rebuild runs on this.
    pub fn for_each_header(&mut self, mut f: impl FnMut(u64, Label, f64)) {
        self.heap.scan(&mut self.pool, |_, bytes| {
            let (id, label, eps) = decode_tuple_header(bytes).expect("well-formed tuple");
            f(id, label, eps);
            true
        });
    }

    /// Folds the current model round into the watermarks (O(1)); lazy reads
    /// call this before consulting the band.
    pub fn fold_watermarks(&mut self) {
        self.wm.observe_bounded(self.tracker.bound(), self.trainer.model().b);
    }

    /// The watermark state (hybrid shares it for its ε-map pruning).
    pub fn watermarks(&self) -> &WaterMarks {
        &self.wm
    }

    fn clock(&self) -> VirtualClock {
        self.pool.disk().clock().clone()
    }

    /// Single-entity read without the per-statement overhead charge or the
    /// `single_reads` counter bump — the hybrid's disk-fallback path, which
    /// already paid the statement overhead itself.
    pub(crate) fn read_single_inner(&mut self, id: u64) -> Option<Label> {
        let clock = self.clock();
        let rid = Rid::from_u64(self.hash.get(&mut self.pool, id)?);
        match self.mode {
            Mode::Eager => {
                let (_, label, _) =
                    self.heap.get(&mut self.pool, rid, decode_tuple_header).ok()?.ok()?;
                Some(label)
            }
            Mode::Lazy => {
                self.fold_watermarks();
                let (_, _, eps) =
                    self.heap.get(&mut self.pool, rid, decode_tuple_header).ok()?.ok()?;
                if let Some(l) = self.wm.certain_label(eps) {
                    clock.charge_cpu_ops(1);
                    return Some(l);
                }
                // classify in place on the pinned page's bytes: the closure
                // runs while the page is latched, so no copy is made
                let trainer = &self.trainer;
                self.heap
                    .get(&mut self.pool, rid, |bytes| {
                        decode_tuple_ref(bytes).ok().map(|t| {
                            charge_classify(&clock, &t.f);
                            trainer.model().predict(&t.f)
                        })
                    })
                    .ok()?
            }
        }
    }

    /// Reorganization, with the same three regimes as the main-memory view:
    /// free when the model is unchanged and no tail exists; one
    /// sort-tail-then-merge pass (no reclassification, `charge_sort(t)` +
    /// `charge_merge(n)`) when the run's keys are still valid; full re-key
    /// plus `charge_sort(n)` otherwise. The heap rewrite and index rebuild
    /// below are shared by the two non-free regimes — reclustering is a
    /// physical rewrite either way; what the merge regime saves is the
    /// O(n · nnz) reclassification pass and the superlinear sort.
    pub(crate) fn reorganize_inner(&mut self) {
        let clock = self.clock();
        let t0 = clock.now_ns();
        let model_clean = self.rounds_at_reorg == self.trainer.steps();
        if model_clean && self.first_tail_rid.is_none() {
            // free regime: every key exact, heap already clustered
            let s = (clock.now_ns() - t0) as f64;
            self.skiing.reorganized(s);
            self.stats.reorgs += 1;
            self.stats.last_reorg_ns = s as u64;
        crate::stats::obs_reorg(s as u64);
            return;
        }
        let model = self.trainer.model().clone();
        // 1. read every tuple in one sequential pass; when the model moved,
        //    re-key under the current model (decode borrows the page bytes;
        //    the owned copy is made once per tuple for the rewrite below)
        let mut tuples: Vec<HTuple> = Vec::with_capacity(self.heap.len() as usize);
        self.heap.scan(&mut self.pool, |_, bytes| {
            let tref = decode_tuple_ref(bytes).expect("well-formed tuple");
            let mut t = tref.to_owned();
            if !model_clean {
                charge_classify(&clock, &tref.f);
                t.eps = model.margin(&tref.f);
                t.label = sign(t.eps);
            }
            tuples.push(t);
            true
        });
        // 2. restore clustered order. The first n_sorted tuples form the
        //    ε-sorted run from the last reorganization; if their keys are
        //    still in run order (always, when the model is clean), sorting
        //    the tail and merging is O(t log t + n) instead of O(n log n).
        let split = (self.n_sorted as usize).min(tuples.len());
        let mergeable = model_clean || {
            clock.charge_cpu_ops(split as u64);
            tuples[..split].is_sorted_by(tuple_le)
        };
        if mergeable {
            let tail_len = (tuples.len() - split) as u64;
            clock.charge_sort(tail_len);
            tuples[split..].sort_unstable_by(tuple_cmp);
            // with a single run (empty prefix or empty tail) the merge is a
            // no-op — charge only when two runs actually fold
            if split > 0 && tail_len > 0 {
                clock.charge_merge(tuples.len() as u64);
                merge_sorted_tail(&mut tuples, split, tuple_le);
            }
        } else {
            clock.charge_sort(tuples.len() as u64);
            tuples.sort_unstable_by(tuple_cmp);
        }
        // 3. rewrite the heap clustered, rebuild both indexes
        self.heap.destroy(&mut self.pool);
        self.btree.destroy(&mut self.pool);
        self.hash.destroy(&mut self.pool);
        self.hash = HashIndex::with_capacity(&mut self.pool, tuples.len());
        let mut index_entries: Vec<((u64, u64), u64)> = Vec::with_capacity(tuples.len());
        for t in &tuples {
            self.scratch.clear();
            encode_tuple(t, &mut self.scratch);
            let rid = self.heap.append(&mut self.pool, &self.scratch).expect("tuple fits a page");
            index_entries.push((eps_key(t.eps, t.id), rid.to_u64()));
            self.hash.insert(&mut self.pool, t.id, rid.to_u64()).expect("unique entity ids");
        }
        self.btree = BTree::bulk_load(&mut self.pool, &index_entries);
        self.pool.flush_all();
        self.n_sorted = tuples.len() as u64;
        self.first_tail_rid = None;
        self.wm = WaterMarks::new(model.clone(), self.pair, self.m_norm, self.policy);
        self.tracker = DeltaTracker::new(&model, self.pair.p);
        self.rounds_at_reorg = self.trainer.steps();
        let s = (clock.now_ns() - t0) as f64;
        self.skiing.reorganized(s);
        self.reorg_epoch += 1;
        self.stats.reorgs += 1;
        self.stats.last_reorg_ns = s as u64;
        crate::stats::obs_reorg(s as u64);
    }

    /// Eager incremental step: reclassify the `[lw, hw]` band via the
    /// clustered index.
    fn incremental_step(&mut self) {
        let clock = self.clock();
        let t0 = clock.now_ns();
        self.fold_watermarks();
        let (lw, hw) = (self.wm.low(), self.wm.high());
        // 1. collect the qualifying rids from the index (leaf walk)
        let mut rids: Vec<Rid> = Vec::new();
        self.btree.scan_from(&mut self.pool, eps_key(hw, 0), |k, v| {
            if key_eps(k.0) < lw {
                return false;
            }
            rids.push(Rid::from_u64(v));
            true
        });
        // 2. reclassify them; the sorted segment's rids are physically
        //    consecutive, so this is (buffered) sequential I/O. The
        //    classification runs on tuple bytes borrowed from the page —
        //    nothing is materialized — and a flipped label is patched as a
        //    single byte instead of re-encoding the tuple.
        let model = self.trainer.model().clone();
        for rid in rids {
            let Ok((old, new)) = self.heap.get(&mut self.pool, rid, |bytes| {
                let t = decode_tuple_ref(bytes).expect("well-formed tuple");
                charge_classify(&clock, &t.f);
                (t.label, model.predict(&t.f))
            }) else {
                // stale index entry for a removed entity — skip; the next
                // reorganization rebuilds the tree from the live heap
                continue;
            };
            self.stats.tuples_reclassified += 1;
            self.stats.tuples_examined += 1;
            if new != old {
                self.heap
                    .patch_in_place(&mut self.pool, rid, TUPLE_LABEL_OFFSET, &[new as u8])
                    .expect("label byte is in range");
                self.stats.labels_changed += 1;
            }
        }
        self.pool.flush_all();
        self.skiing.add_cost((clock.now_ns() - t0) as f64);
    }

    /// Shared All-Members walk; returns `(positives, examined)`.
    fn scan_positive(&mut self, mut collect: Option<&mut Vec<u64>>) -> (u64, u64) {
        let clock = self.clock();
        let lazy = self.mode == Mode::Lazy;
        if lazy {
            if self.skiing.should_reorganize() {
                self.reorganize_inner();
            }
            self.fold_watermarks();
        }
        let t0 = clock.now_ns();
        let (lw, hw) = (self.wm.low(), self.wm.high());
        let model = self.trainer.model().clone();
        let mut positives = 0u64;
        let mut examined = 0u64;
        let mut sorted_seen = 0u64;
        let n_sorted = self.n_sorted;
        {
            let stats = &mut self.stats;
            let mut visit = |bytes: &[u8]| -> bool {
                let (_, label, eps) = decode_tuple_header(bytes).expect("well-formed tuple");
                if !lazy {
                    clock.charge_cpu_ops(1);
                    label > 0
                } else if eps >= hw {
                    clock.charge_cpu_ops(1);
                    true
                } else if eps <= lw {
                    clock.charge_cpu_ops(1);
                    false
                } else {
                    // uncertain band: classify straight off the page bytes
                    let t = decode_tuple_ref(bytes).expect("well-formed tuple");
                    charge_classify(&clock, &t.f);
                    stats.tuples_reclassified += 1;
                    model.predict(&t.f) > 0
                }
            };
            // sorted segment: descending eps, so stop at the low watermark
            // (everything below is certainly negative); the tail is visited
            // separately below, so stop at the segment boundary regardless
            self.heap.scan(&mut self.pool, |_, bytes| {
                if sorted_seen >= n_sorted {
                    return false; // reached the tail region
                }
                sorted_seen += 1;
                let (_, _, eps) = decode_tuple_header(bytes).expect("well-formed tuple");
                if eps < lw {
                    return false;
                }
                examined += 1;
                if visit(bytes) {
                    positives += 1;
                    if let Some(ids) = collect.as_deref_mut() {
                        let (id, ..) = decode_tuple_header(bytes).expect("well-formed tuple");
                        ids.push(id);
                    }
                }
                true
            });
            // tail tuples (inserted since the reorg) are unordered: visit all
            if let Some(first) = self.first_tail_rid {
                self.heap.scan_from(&mut self.pool, first, |_, bytes| {
                    examined += 1;
                    if visit(bytes) {
                        positives += 1;
                        if let Some(ids) = collect.as_deref_mut() {
                            let (id, ..) = decode_tuple_header(bytes).expect("well-formed tuple");
                            ids.push(id);
                        }
                    }
                    true
                });
            }
        }
        self.stats.tuples_examined += examined;
        if lazy && examined > 0 {
            let elapsed = (clock.now_ns() - t0) as f64;
            let waste = (examined - positives) as f64 / examined as f64 * elapsed;
            self.skiing.add_cost(waste);
        }
        (positives, examined)
    }
}

impl Durable for HazyDiskView {
    fn save_state(&self, out: &mut Vec<u8>) {
        out.push(tag::HAZY_DISK);
        out.push(self.mode.tag());
        self.trainer.save_state(out);
        self.stats.save_state(out);
        out.push(self.pair.p.tag());
        out.push(self.pair.q.tag());
        out.push(self.policy.tag());
        out.extend_from_slice(&self.m_norm.to_bits().to_le_bytes());
        out.extend_from_slice(&self.n_sorted.to_le_bytes());
        out.extend_from_slice(&self.rounds_at_reorg.to_le_bytes());
        out.extend_from_slice(&self.reorg_epoch.to_le_bytes());
        out.extend_from_slice(
            &self.first_tail_rid.map_or(u64::MAX, Rid::to_u64).to_le_bytes(),
        );
        self.wm.save_state(out);
        self.tracker.save_state(out);
        self.skiing.save_state(out);
        self.pool.disk().save_state(out);
        self.pool.save_state(out);
        self.heap.save_state(out);
        self.btree.save_state(out);
        self.hash.save_state(out);
    }
}

impl ClassifierView for HazyDiskView {
    fn describe(&self) -> String {
        format!("hazy-od ({})", self.mode.name())
    }

    fn mode(&self) -> Mode {
        self.mode
    }

    fn update(&mut self, ex: &TrainingExample) {
        self.update_batch(std::slice::from_ref(ex));
    }

    fn update_batch(&mut self, batch: &[TrainingExample]) {
        if batch.is_empty() {
            return;
        }
        // one statement's overhead and one maintenance round for the whole
        // batch: page pins for the band walk are paid once instead of once
        // per example (the accumulated watermark band covers every label
        // any intermediate model round could have flipped)
        let clock = self.clock();
        clock.charge_ns(self.overheads.update_ns);
        for ex in batch {
            charge_classify(&clock, &ex.f);
            let info = self.trainer.step(&ex.f, ex.y);
            self.tracker.apply(&info, &ex.f);
            self.stats.updates += 1;
        }
        if self.mode == Mode::Eager {
            if self.skiing.should_reorganize() {
                self.reorganize_inner();
            } else {
                self.incremental_step();
            }
        }
    }

    fn reorganize(&mut self) {
        self.reorganize_inner();
    }

    fn read_single(&mut self, id: u64) -> Option<Label> {
        let clock = self.clock();
        clock.charge_ns(self.overheads.read_ns);
        self.stats.single_reads += 1;
        self.read_single_inner(id)
    }

    fn entity_count(&self) -> u64 {
        self.heap.len()
    }

    fn count_positive(&mut self) -> u64 {
        self.clock().charge_ns(self.overheads.scan_ns);
        self.stats.all_members += 1;
        self.scan_positive(None).0
    }

    fn positive_ids(&mut self) -> Vec<u64> {
        self.clock().charge_ns(self.overheads.scan_ns);
        self.stats.all_members += 1;
        let mut ids = Vec::new();
        self.scan_positive(Some(&mut ids));
        ids
    }

    fn top_k(&mut self, k: usize) -> Vec<(u64, f64)> {
        let clock = self.clock();
        clock.charge_ns(self.overheads.scan_ns);
        self.stats.all_members += 1;
        // exact margins are needed, so the clustered eps keys (stale by up
        // to the watermark band) cannot prune: one sequential pass over the
        // whole heap — sorted segment and tail alike — scoring off borrowed
        // page bytes
        let model = self.trainer.model().clone();
        let mut scored = Vec::new();
        let mut examined = 0u64;
        self.heap.scan(&mut self.pool, |_, bytes| {
            examined += 1;
            let t = decode_tuple_ref(bytes).expect("well-formed tuple");
            charge_classify(&clock, &t.f);
            scored.push((t.id, model.margin(&t.f)));
            true
        });
        self.stats.tuples_examined += examined;
        crate::view::take_top_k(scored, k, &clock)
    }

    fn insert_entity(&mut self, e: Entity) {
        let clock = self.clock();
        charge_classify(&clock, &e.f);
        let eps = self.wm.stored_model().margin(&e.f);
        self.m_norm = self.m_norm.max(e.f.norm(self.pair.q));
        self.wm.raise_m(self.m_norm);
        let label = match self.mode {
            Mode::Eager => {
                charge_classify(&clock, &e.f);
                self.trainer.model().predict(&e.f)
            }
            Mode::Lazy => sign(eps),
        };
        let id = e.id;
        self.scratch.clear();
        encode_tuple(&HTuple { id, label, eps, f: e.f }, &mut self.scratch);
        let rid = self.heap.append(&mut self.pool, &self.scratch).expect("tuple fits a page");
        if self.first_tail_rid.is_none() {
            self.first_tail_rid = Some(rid);
        }
        // upsert: a removed entity leaves its stale key in the tree (no
        // delete path); re-inserting the same id at the same eps must
        // redirect that key at the live record
        self.btree.upsert(&mut self.pool, eps_key(eps, id), rid.to_u64());
        self.hash.insert(&mut self.pool, id, rid.to_u64()).expect("unique entity ids");
    }

    fn remove_entity(&mut self, id: u64) -> bool {
        let Some(raw) = self.hash.get(&mut self.pool, id) else {
            return false;
        };
        let rid = Rid::from_u64(raw);
        // tombstone the record and drop the hash entry; the B+-tree keeps a
        // stale entry (it has no delete path) — every consumer of index
        // rids tolerates dead records, and the next reorganization rebuilds
        // the tree from the live heap. Slots are never reused, so the dead
        // rid can never alias a later record.
        self.heap.delete(&mut self.pool, rid).expect("indexed rid resolves");
        self.hash.remove(&mut self.pool, id).expect("indexed key removes");
        if self.first_tail_rid.is_none_or(|t| rid < t) {
            // the record sat in the ε-sorted segment: the All-Members walk
            // counts *live* sorted records, so the boundary moves up by one
            self.n_sorted -= 1;
        }
        self.pool.flush_all();
        true
    }

    fn model(&self) -> &LinearModel {
        self.trainer.model()
    }

    fn stats(&self) -> ViewStats {
        let mut s = self.stats;
        s.reorgs = self.skiing.reorgs();
        s
    }

    fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            entities_bytes: 0,
            eps_map_bytes: 0,
            buffer_bytes: 0,
            model_bytes: self.trainer.model().mem_bytes(),
        }
    }

    fn clock(&self) -> &VirtualClock {
        self.pool.disk().clock()
    }

    fn snapshot_state(&mut self) -> Option<(Vec<Entity>, LinearModel)> {
        // a sequential heap scan (charged through the pool) copies the
        // population out; the view lives on
        Some((
            crate::migrate::evacuate_heap(&self.heap, &mut self.pool),
            self.trainer.model().clone(),
        ))
    }

    fn export_migration(&mut self) -> Option<crate::MigrationState> {
        // clustering order is irrelevant: the target re-organizes from
        // scratch
        Some(crate::MigrationState {
            entities: crate::migrate::evacuate_heap(&self.heap, &mut self.pool),
            trainer: self.trainer.clone(),
            carry: crate::MigrationCarry {
                skiing: Some(self.skiing.clone()),
                stats: self.stats(),
            },
        })
    }

    fn adopt_migration_carry(&mut self, carry: &crate::MigrationCarry) {
        // construction already ran the initial organization: continue the
        // source's counters, keeping the rebuild as the most recent reorg
        let built_reorg_ns = self.stats.last_reorg_ns;
        self.stats = carry.stats;
        self.stats.last_reorg_ns = built_reorg_ns;
        self.stats.migrations += 1;
        match &carry.skiing {
            Some(prior) => self.skiing.carry_from(prior),
            // naive source: no controller to carry, but the lifetime
            // reorganization count still continues (stats() reads it off
            // the controller for hazy architectures)
            None => self.skiing.carry_reorg_count(carry.stats.reorgs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazy_learn::SgdConfig;
    use hazy_linalg::FeatureVec;
    use hazy_storage::{CostModel, SimDisk};

    fn entities(n: usize) -> Vec<Entity> {
        (0..n)
            .map(|k| {
                Entity::new(
                    k as u64,
                    FeatureVec::dense(vec![(k % 13) as f32 / 13.0 - 0.5, (k % 7) as f32 / 7.0 - 0.5]),
                )
            })
            .collect()
    }

    fn view(mode: Mode) -> HazyDiskView {
        let pool =
            BufferPool::new(SimDisk::new(VirtualClock::new(CostModel::sata_2008())), 128);
        HazyDiskView::new(
            entities(300),
            SgdTrainer::new(SgdConfig::svm(), 2),
            pool,
            OpOverheads::free(),
            mode,
            NormPair::EUCLIDEAN,
            WatermarkPolicy::Monotone,
            1.0,
        )
    }

    fn ex(k: usize) -> TrainingExample {
        let x0 = (k % 11) as f32 / 11.0 - 0.5;
        let x1 = (k % 17) as f32 / 17.0 - 0.5;
        let y = if x0 + 0.3 * x1 >= 0.0 { 1 } else { -1 };
        TrainingExample::new(0, FeatureVec::dense(vec![x0, x1]), y)
    }

    /// The load-bearing invariant: hazy-od serves exactly what a fresh
    /// classification of every entity would, across updates, reads and
    /// reorganizations.
    #[test]
    fn matches_ground_truth_after_updates() {
        for mode in [Mode::Eager, Mode::Lazy] {
            let mut v = view(mode);
            for k in 0..400 {
                v.update(&ex(k));
                if k % 83 == 0 {
                    v.count_positive();
                }
            }
            let model = v.model().clone();
            for e in entities(300) {
                assert_eq!(v.read_single(e.id), Some(model.predict(&e.f)), "{mode:?} id {}", e.id);
            }
            let expect = entities(300).iter().filter(|e| model.predict(&e.f) > 0).count() as u64;
            assert_eq!(v.count_positive(), expect, "{mode:?}");
            let mut ids = v.positive_ids();
            ids.sort_unstable();
            let mut want: Vec<u64> =
                entities(300).iter().filter(|e| model.predict(&e.f) > 0).map(|e| e.id).collect();
            want.sort_unstable();
            assert_eq!(ids, want, "{mode:?}");
        }
    }

    #[test]
    fn eager_examines_fewer_tuples_than_naive_would() {
        let mut v = view(Mode::Eager);
        for k in 0..200 {
            v.update(&ex(k));
        }
        let before = v.stats().tuples_examined;
        for k in 200..300 {
            v.update(&ex(k));
        }
        let touched = v.stats().tuples_examined - before;
        assert!(touched < 100 * 300 / 2, "examined {touched} tuples over 100 updates");
    }

    #[test]
    fn reorganizes_under_sustained_updates() {
        let mut v = view(Mode::Eager);
        for k in 0..1500 {
            v.update(&ex(k));
        }
        assert!(v.stats().reorgs >= 1);
    }

    #[test]
    fn inserted_entities_survive_reorganization() {
        for mode in [Mode::Eager, Mode::Lazy] {
            let mut v = view(mode);
            for k in 0..50 {
                v.update(&ex(k));
            }
            v.insert_entity(Entity::new(7777, FeatureVec::dense(vec![0.45, -0.2])));
            v.insert_entity(Entity::new(8888, FeatureVec::dense(vec![-0.45, 0.2])));
            // push through enough updates to force at least one reorg
            for k in 50..2000 {
                v.update(&ex(k));
            }
            if mode == Mode::Lazy {
                v.count_positive(); // give lazy a chance to reorganize
            }
            let m = v.model().clone();
            assert_eq!(v.read_single(7777), Some(m.predict(&FeatureVec::dense(vec![0.45, -0.2]))));
            assert_eq!(v.read_single(8888), Some(m.predict(&FeatureVec::dense(vec![-0.45, 0.2]))));
        }
    }

    /// A reorganization with an unchanged model and no tail is free; with
    /// inserts only, it takes the merge path (no reclassification pass) and
    /// leaves the view serving exactly the right answers.
    #[test]
    fn clean_model_reorgs_are_free_or_merge() {
        let mut v = view(Mode::Eager);
        for k in 0..100 {
            v.update(&ex(k));
        }
        ClassifierView::reorganize(&mut v);
        let epoch = v.reorg_epoch();
        let before = v.clock().now_ns();
        ClassifierView::reorganize(&mut v); // nothing to fold in
        assert_eq!(v.clock().now_ns(), before, "free reorg advanced the clock");
        assert_eq!(v.reorg_epoch(), epoch, "free reorg must not invalidate the hybrid's ε-map");

        let before_reclassified = v.stats().tuples_reclassified;
        for k in 0..40u64 {
            let x = (k % 9) as f32 / 9.0 - 0.5;
            v.insert_entity(Entity::new(20_000 + k, FeatureVec::dense(vec![x, -x])));
        }
        ClassifierView::reorganize(&mut v); // merge path: folds the tail in
        assert_eq!(
            v.stats().tuples_reclassified,
            before_reclassified,
            "merge reorg must not reclassify"
        );
        let model = v.model().clone();
        for k in 0..40u64 {
            let x = (k % 9) as f32 / 9.0 - 0.5;
            let expect = model.predict(&FeatureVec::dense(vec![x, -x]));
            assert_eq!(v.read_single(20_000 + k), Some(expect));
        }
        // the clustered index still agrees with a physical scan
        let (lw, hw) = v.waterband();
        let mut by_scan = 0u64;
        v.for_each_tuple(|t| {
            if t.eps >= lw && t.eps <= hw {
                by_scan += 1;
            }
        });
        assert_eq!(v.tuples_in_band(), by_scan);
    }

    #[test]
    fn band_count_matches_scan() {
        let mut v = view(Mode::Eager);
        for k in 0..300 {
            v.update(&ex(k));
        }
        let (lw, hw) = v.waterband();
        let mut by_scan = 0u64;
        v.for_each_tuple(|t| {
            if t.eps >= lw && t.eps <= hw {
                by_scan += 1;
            }
        });
        assert_eq!(v.tuples_in_band(), by_scan);
    }

    #[test]
    fn missing_id_is_none() {
        let mut v = view(Mode::Lazy);
        assert_eq!(v.read_single(424_242), None);
    }

    #[test]
    fn forced_band_controls_certainty() {
        let mut v = view(Mode::Lazy);
        for k in 0..100 {
            v.update(&ex(k));
        }
        v.force_waterband(f64::NEG_INFINITY, f64::INFINITY);
        // nothing is certain: every read must classify, but results stay
        // correct
        let m = v.model().clone();
        for e in entities(300).iter().step_by(29) {
            assert_eq!(v.read_single(e.id), Some(m.predict(&e.f)));
        }
    }
}
