//! Hazy's main-memory architecture (Section 3.5.1).
//!
//! The same clustering-plus-Skiing machinery as the on-disk design, over an
//! in-memory vector sorted by `eps` descending. Because classification
//! output is a pure function of examples + entities, nothing here needs to
//! be persistent — on memory pressure the structure can simply be dropped
//! and recomputed, which is why the paper calls main memory "safe" for this
//! view.

use std::cmp::Ordering;
use std::collections::HashMap;

use hazy_learn::{sign, Label, LinearModel, SgdTrainer, TrainingExample};
use hazy_linalg::{decode_fvec, encode_fvec, wire, FeatureVec, Norm, NormPair};
use hazy_storage::VirtualClock;

use crate::cost::{charge_classify, OpOverheads};
use crate::durable::{tag, Durable};
use crate::entity::Entity;
use crate::merge::merge_sorted_tail;
use crate::migrate::{MigrationCarry, MigrationState};
use crate::skiing::Skiing;
use crate::stats::{MemoryFootprint, ViewStats};
use crate::view::{ClassifierView, Mode};
use crate::watermark::{DeltaTracker, WaterMarks, WatermarkPolicy};

struct MemTuple {
    id: u64,
    /// Margin under the stored model (the cluster key).
    eps: f64,
    /// Materialized label (current in eager mode; reorg-time snapshot in
    /// lazy mode, never trusted by lazy reads).
    label: Label,
    f: FeatureVec,
}

/// The clustering order: eps descending, ids breaking ties.
fn tuple_cmp(a: &MemTuple, b: &MemTuple) -> Ordering {
    b.eps.total_cmp(&a.eps).then(a.id.cmp(&b.id))
}

/// `a` may precede `b` under [`tuple_cmp`] (the merge predicate).
fn tuple_le(a: &MemTuple, b: &MemTuple) -> bool {
    tuple_cmp(a, b) != Ordering::Greater
}

/// Hazy main-memory view (`Hazy-MM`).
pub struct HazyMemView {
    mode: Mode,
    clock: VirtualClock,
    overheads: OpOverheads,
    trainer: SgdTrainer,
    /// `[0, sorted_len)` is sorted by eps descending; the rest is the
    /// unsorted tail of entities inserted since the last reorganization.
    data: Vec<MemTuple>,
    sorted_len: usize,
    /// Trainer rounds at the last reorganization; when the model has not
    /// advanced since, the sorted run's eps keys are still exact and a
    /// reorganization reduces to folding the tail in by merge.
    rounds_at_reorg: u64,
    idmap: HashMap<u64, u32>,
    wm: WaterMarks,
    tracker: DeltaTracker,
    skiing: Skiing,
    pair: NormPair,
    policy: WatermarkPolicy,
    m_norm: f64,
    stats: ViewStats,
}

impl HazyMemView {
    /// Builds the view and performs the initial organization (which also
    /// measures the first `S` for Skiing).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        entities: Vec<Entity>,
        trainer: SgdTrainer,
        clock: VirtualClock,
        overheads: OpOverheads,
        mode: Mode,
        pair: NormPair,
        policy: WatermarkPolicy,
        alpha: f64,
    ) -> HazyMemView {
        let m_norm = entities.iter().map(|e| e.f.norm(pair.q)).fold(0.0f64, f64::max);
        let data: Vec<MemTuple> = entities
            .into_iter()
            .map(|e| MemTuple { id: e.id, eps: 0.0, label: 1, f: e.f })
            .collect();
        let wm = WaterMarks::new(trainer.model().clone(), pair, m_norm, policy);
        let tracker = DeltaTracker::new(trainer.model(), pair.p);
        let mut view = HazyMemView {
            mode,
            clock,
            overheads,
            trainer,
            data,
            sorted_len: 0,
            // sentinel: entities start unkeyed (eps = 0), so the first
            // organization must always take the full re-keying path
            rounds_at_reorg: u64::MAX,
            idmap: HashMap::new(),
            wm,
            tracker,
            skiing: Skiing::new(alpha, 0.0),
            pair,
            policy,
            m_norm,
            stats: ViewStats::default(),
        };
        view.reorganize_inner();
        view
    }

    /// Inverse of this view's [`Durable::save_state`] (tag byte already
    /// consumed). The id map is rebuilt from the tuple order.
    pub(crate) fn restore_state(
        b: &mut &[u8],
        clock: VirtualClock,
        overheads: OpOverheads,
    ) -> Option<HazyMemView> {
        let mode = Mode::from_tag(wire::take_u8(b)?)?;
        let trainer = SgdTrainer::restore_state(b)?;
        let stats = ViewStats::restore_state(b)?;
        let p = Norm::from_tag(wire::take_u8(b)?)?;
        let q = Norm::from_tag(wire::take_u8(b)?)?;
        let policy = WatermarkPolicy::from_tag(wire::take_u8(b)?)?;
        let m_norm = wire::take_f64(b)?;
        let sorted_len = wire::take_u64(b)? as usize;
        let rounds_at_reorg = wire::take_u64(b)?;
        let wm = WaterMarks::restore_state(b)?;
        let tracker = DeltaTracker::restore_state(b)?;
        let skiing = Skiing::restore_state(b)?;
        let n = wire::take_u64(b)? as usize;
        if sorted_len > n {
            return None;
        }
        let mut data = Vec::with_capacity(n);
        let mut idmap = HashMap::with_capacity(n);
        for i in 0..n {
            let id = wire::take_u64(b)?;
            let eps = wire::take_f64(b)?;
            let label = wire::take_u8(b)? as i8;
            if label != 1 && label != -1 {
                return None;
            }
            let f = decode_fvec(b)?;
            idmap.insert(id, i as u32);
            data.push(MemTuple { id, eps, label, f });
        }
        Some(HazyMemView {
            mode,
            clock,
            overheads,
            trainer,
            data,
            sorted_len,
            rounds_at_reorg,
            idmap,
            wm,
            tracker,
            skiing,
            pair: NormPair { p, q },
            policy,
            m_norm,
            stats,
        })
    }

    /// Current `[lw, hw]` band (Figure 13's y-axis needs the count below).
    pub fn waterband(&self) -> (f64, f64) {
        (self.wm.low(), self.wm.high())
    }

    /// Number of tuples whose `eps` lies inside the current band — the
    /// quantity Figure 13 plots against update count.
    pub fn tuples_in_band(&self) -> u64 {
        let (lw, hw) = self.waterband();
        let (start, end) = self.band_range(lw, hw);
        let tail = self.data[self.sorted_len..]
            .iter()
            .filter(|t| t.eps >= lw && t.eps <= hw)
            .count();
        (end - start + tail) as u64
    }

    /// Access to the Skiing controller (ablation benches).
    pub fn skiing(&self) -> &Skiing {
        &self.skiing
    }

    /// Shared-reference single-entity read for concurrent readers (the
    /// Figure 11(B) scale-up experiment). Safe while no updates run
    /// concurrently: eager mode reads the materialized label; lazy mode uses
    /// the *current* watermark band without folding the model round in, so
    /// callers must invoke [`ClassifierView::read_single`] (or any other
    /// `&mut` operation) once after the last update to fold watermarks.
    ///
    /// The paper's observation that "locking protocols are trivial for
    /// Single Entity reads" is exactly this: the read path is pure.
    pub fn read_single_shared(&self, id: u64) -> Option<Label> {
        self.clock.charge_ns(self.overheads.read_ns);
        let idx = *self.idmap.get(&id)? as usize;
        let t = &self.data[idx];
        match self.mode {
            Mode::Eager => Some(t.label),
            Mode::Lazy => {
                if let Some(l) = self.wm.certain_label(t.eps) {
                    self.clock.charge_cpu_ops(1);
                    Some(l)
                } else {
                    charge_classify(&self.clock, &t.f);
                    Some(self.trainer.model().predict(&t.f))
                }
            }
        }
    }

    /// Indices `[start, end)` of the sorted segment intersecting `[lw, hw]`.
    fn band_range(&self, lw: f64, hw: f64) -> (usize, usize) {
        let seg = &self.data[..self.sorted_len];
        let start = seg.partition_point(|t| t.eps > hw);
        let end = seg.partition_point(|t| t.eps >= lw);
        (start, end)
    }

    /// Reorganization. Three regimes, cheapest applicable wins:
    ///
    /// 1. **Free** — the model has not advanced since the last
    ///    reorganization and no tail exists: every key is exact and in
    ///    place, so there is nothing to fold in and nothing is charged.
    /// 2. **Incremental merge** — the keys of the sorted run are still
    ///    valid (model unchanged, inserts only; or re-keying under the new
    ///    model happened to preserve the run's order): sort the tail of `t`
    ///    entries and fold it in with one merge pass — O(t log t + n)
    ///    charged as `charge_sort(t) + charge_merge(n)`.
    /// 3. **Full** — the model moved enough to scramble the run: re-key
    ///    everything and pay the full `charge_sort(n)`.
    fn reorganize_inner(&mut self) {
        let t0 = self.clock.now_ns();
        let model = self.trainer.model().clone();
        let n = self.data.len();
        let tail_len = n - self.sorted_len;
        let model_clean = self.rounds_at_reorg == self.trainer.steps();
        if model_clean && tail_len == 0 {
            // regime 1: nothing to fold in — reorganization is free
        } else {
            let mergeable = if model_clean {
                // tail entities were keyed under the stored model at insert
                // time; the sorted run is untouched — no re-keying at all
                true
            } else {
                for t in &mut self.data {
                    charge_classify(&self.clock, &t.f);
                    t.eps = model.margin(&t.f);
                    t.label = sign(t.eps);
                }
                // O(n) probe: did re-keying preserve the run's order?
                self.clock.charge_cpu_ops(self.sorted_len as u64);
                self.data[..self.sorted_len].is_sorted_by(tuple_le)
            };
            if mergeable {
                // regime 2: sort-tail-then-merge
                self.clock.charge_sort(tail_len as u64);
                self.data[self.sorted_len..].sort_unstable_by(tuple_cmp);
                // with a single run (empty prefix or empty tail) the merge
                // is a no-op — charge only when two runs actually fold
                if self.sorted_len > 0 && tail_len > 0 {
                    self.clock.charge_merge(n as u64);
                    merge_sorted_tail(&mut self.data, self.sorted_len, tuple_le);
                }
            } else {
                // regime 3: full resort
                self.clock.charge_sort(n as u64);
                self.data.sort_unstable_by(tuple_cmp);
            }
            self.clock.charge_cpu_ops(n as u64);
            self.idmap.clear();
            for (i, t) in self.data.iter().enumerate() {
                self.idmap.insert(t.id, i as u32);
            }
        }
        self.sorted_len = n;
        self.wm = WaterMarks::new(model.clone(), self.pair, self.m_norm, self.policy);
        self.tracker = DeltaTracker::new(&model, self.pair.p);
        self.rounds_at_reorg = self.trainer.steps();
        let s = (self.clock.now_ns() - t0) as f64;
        self.skiing.reorganized(s);
        self.stats.reorgs += 1;
        self.stats.last_reorg_ns = s as u64;
        crate::stats::obs_reorg(s as u64);
    }

    /// Eager incremental step: reclassify exactly the `[lw, hw]` band under
    /// the current model.
    fn incremental_step(&mut self) {
        let t0 = self.clock.now_ns();
        self.wm.observe_bounded(self.tracker.bound(), self.trainer.model().b);
        let (lw, hw) = (self.wm.low(), self.wm.high());
        let (start, end) = self.band_range(lw, hw);
        self.clock.charge_cpu_ops(2 * (usize::BITS - self.sorted_len.leading_zeros()) as u64);
        let model = self.trainer.model().clone();
        for idx in start..end {
            let t = &mut self.data[idx];
            charge_classify(&self.clock, &t.f);
            let l = model.predict(&t.f);
            self.stats.tuples_reclassified += 1;
            if l != t.label {
                t.label = l;
                self.stats.labels_changed += 1;
            }
        }
        self.stats.tuples_examined += (end - start) as u64;
        // unsorted tail: check every tuple's eps against the band
        for idx in self.sorted_len..self.data.len() {
            self.clock.charge_cpu_ops(1);
            let eps = self.data[idx].eps;
            if eps >= lw && eps <= hw {
                let t = &mut self.data[idx];
                charge_classify(&self.clock, &t.f);
                let l = model.predict(&t.f);
                self.stats.tuples_reclassified += 1;
                if l != t.label {
                    t.label = l;
                    self.stats.labels_changed += 1;
                }
                self.stats.tuples_examined += 1;
            }
        }
        self.skiing.add_cost((self.clock.now_ns() - t0) as f64);
    }

    /// Shared lazy/eager All-Members walk; returns `(positives, examined)`
    /// and optionally collects ids.
    fn scan_positive(&mut self, mut collect: Option<&mut Vec<u64>>) -> (u64, u64) {
        let lazy = self.mode == Mode::Lazy;
        if lazy {
            // a lazy read may first trigger the postponed reorganization
            if self.skiing.should_reorganize() {
                self.reorganize_inner();
            }
            self.wm.observe_bounded(self.tracker.bound(), self.trainer.model().b);
        }
        let t0 = self.clock.now_ns();
        let (lw, hw) = (self.wm.low(), self.wm.high());
        let model = self.trainer.model().clone();
        let mut positives = 0u64;
        let mut examined = 0u64;
        let visit = |t: &MemTuple, clock: &VirtualClock, stats: &mut ViewStats| -> bool {
            
            if !lazy {
                clock.charge_cpu_ops(1);
                t.label > 0
            } else if t.eps >= hw {
                clock.charge_cpu_ops(1);
                true
            } else if t.eps <= lw {
                clock.charge_cpu_ops(1);
                false
            } else {
                charge_classify(clock, &t.f);
                stats.tuples_reclassified += 1;
                model.predict(&t.f) > 0
            }
        };
        for idx in 0..self.sorted_len {
            let t = &self.data[idx];
            if t.eps < lw {
                // everything below low water is certainly negative: stop
                break;
            }
            examined += 1;
            if visit(t, &self.clock, &mut self.stats) {
                positives += 1;
                if let Some(ids) = collect.as_deref_mut() {
                    ids.push(t.id);
                }
            }
        }
        for t in &self.data[self.sorted_len..] {
            examined += 1;
            if visit(t, &self.clock, &mut self.stats) {
                positives += 1;
                if let Some(ids) = collect.as_deref_mut() {
                    ids.push(t.id);
                }
            }
        }
        self.stats.tuples_examined += examined;
        if lazy && examined > 0 {
            // Section 3.4: the wasted fraction of this read is the cost the
            // Skiing strategy accumulates
            let elapsed = (self.clock.now_ns() - t0) as f64;
            let waste = (examined - positives) as f64 / examined as f64 * elapsed;
            self.skiing.add_cost(waste);
        }
        (positives, examined)
    }
}

impl Durable for HazyMemView {
    fn save_state(&self, out: &mut Vec<u8>) {
        out.push(tag::HAZY_MEM);
        out.push(self.mode.tag());
        self.trainer.save_state(out);
        self.stats.save_state(out);
        out.push(self.pair.p.tag());
        out.push(self.pair.q.tag());
        out.push(self.policy.tag());
        out.extend_from_slice(&self.m_norm.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.sorted_len as u64).to_le_bytes());
        out.extend_from_slice(&self.rounds_at_reorg.to_le_bytes());
        self.wm.save_state(out);
        self.tracker.save_state(out);
        self.skiing.save_state(out);
        out.extend_from_slice(&(self.data.len() as u64).to_le_bytes());
        for t in &self.data {
            out.extend_from_slice(&t.id.to_le_bytes());
            out.extend_from_slice(&t.eps.to_bits().to_le_bytes());
            out.push(t.label as u8);
            encode_fvec(&t.f, out);
        }
    }
}

impl ClassifierView for HazyMemView {
    fn describe(&self) -> String {
        format!("hazy-mm ({})", self.mode.name())
    }

    fn mode(&self) -> Mode {
        self.mode
    }

    fn update(&mut self, ex: &TrainingExample) {
        self.update_batch(std::slice::from_ref(ex));
    }

    fn update_batch(&mut self, batch: &[TrainingExample]) {
        if batch.is_empty() {
            return;
        }
        // one statement's overhead, k SGD rounds, then a single maintenance
        // decision: the watermark band after the k rounds covers every
        // label any intermediate model could have flipped
        self.clock.charge_ns(self.overheads.update_ns);
        for ex in batch {
            charge_classify(&self.clock, &ex.f);
            let info = self.trainer.step(&ex.f, ex.y);
            self.tracker.apply(&info, &ex.f);
            self.stats.updates += 1;
        }
        if self.mode == Mode::Eager {
            // Figure 7: reorganize when the accumulated waste has reached
            // α·S, otherwise take the incremental step
            if self.skiing.should_reorganize() {
                self.reorganize_inner();
            } else {
                self.incremental_step();
            }
        }
    }

    fn reorganize(&mut self) {
        self.reorganize_inner();
    }

    fn read_single(&mut self, id: u64) -> Option<Label> {
        self.clock.charge_ns(self.overheads.read_ns);
        self.stats.single_reads += 1;
        let idx = *self.idmap.get(&id)? as usize;
        match self.mode {
            Mode::Eager => Some(self.data[idx].label),
            Mode::Lazy => {
                self.wm.observe_bounded(self.tracker.bound(), self.trainer.model().b);
                let t = &self.data[idx];
                if let Some(l) = self.wm.certain_label(t.eps) {
                    self.clock.charge_cpu_ops(1);
                    Some(l)
                } else {
                    charge_classify(&self.clock, &t.f);
                    Some(self.trainer.model().predict(&t.f))
                }
            }
        }
    }

    fn entity_count(&self) -> u64 {
        self.data.len() as u64
    }

    fn count_positive(&mut self) -> u64 {
        self.clock.charge_ns(self.overheads.scan_ns);
        self.stats.all_members += 1;
        self.scan_positive(None).0
    }

    fn positive_ids(&mut self) -> Vec<u64> {
        self.clock.charge_ns(self.overheads.scan_ns);
        self.stats.all_members += 1;
        let mut ids = Vec::new();
        self.scan_positive(Some(&mut ids));
        ids
    }

    fn top_k(&mut self, k: usize) -> Vec<(u64, f64)> {
        self.clock.charge_ns(self.overheads.scan_ns);
        self.stats.all_members += 1;
        self.stats.tuples_examined += self.data.len() as u64;
        // ranked reads need exact margins, so the stored eps keys (stale by
        // up to the watermark band) cannot prune: score everything under the
        // current model
        let model = self.trainer.model();
        let mut scored = Vec::with_capacity(self.data.len());
        for t in &self.data {
            charge_classify(&self.clock, &t.f);
            scored.push((t.id, model.margin(&t.f)));
        }
        crate::view::take_top_k(scored, k, &self.clock)
    }

    fn insert_entity(&mut self, e: Entity) {
        charge_classify(&self.clock, &e.f);
        let eps = self.wm.stored_model().margin(&e.f);
        self.m_norm = self.m_norm.max(e.f.norm(self.pair.q));
        self.wm.raise_m(self.m_norm);
        let label = match self.mode {
            Mode::Eager => {
                charge_classify(&self.clock, &e.f);
                self.trainer.model().predict(&e.f)
            }
            Mode::Lazy => sign(eps),
        };
        self.idmap.insert(e.id, self.data.len() as u32);
        self.data.push(MemTuple { id: e.id, eps, label, f: e.f });
    }

    fn remove_entity(&mut self, id: u64) -> bool {
        let Some(idx) = self.idmap.remove(&id) else {
            return false;
        };
        let idx = idx as usize;
        // order-preserving removal: the sorted run stays sorted and the
        // unsorted tail keeps its insertion order
        self.data.remove(idx);
        if idx < self.sorted_len {
            self.sorted_len -= 1;
        }
        for v in self.idmap.values_mut() {
            if *v > idx as u32 {
                *v -= 1;
            }
        }
        // m_norm stays a valid (possibly loose) upper bound for watermarks
        self.clock.charge_cpu_ops(self.data.len() as u64);
        true
    }

    fn model(&self) -> &LinearModel {
        self.trainer.model()
    }

    fn stats(&self) -> ViewStats {
        let mut s = self.stats;
        s.reorgs = self.skiing.reorgs();
        s
    }

    fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            entities_bytes: self
                .data
                .iter()
                .map(|t| 8 + 8 + 1 + t.f.mem_bytes())
                .sum::<usize>(),
            eps_map_bytes: 0,
            buffer_bytes: 0,
            model_bytes: self.trainer.model().mem_bytes(),
        }
    }

    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn snapshot_state(&mut self) -> Option<(Vec<Entity>, LinearModel)> {
        // one in-memory pass copies the population out; the view lives on
        self.clock.charge_cpu_ops(self.data.len() as u64);
        let entities = self.data.iter().map(|t| Entity::new(t.id, t.f.clone())).collect();
        Some((entities, self.trainer.model().clone()))
    }

    fn export_migration(&mut self) -> Option<MigrationState> {
        // one in-memory pass copies the population out (physical order is
        // irrelevant — the target performs its own initial organization)
        self.clock.charge_cpu_ops(self.data.len() as u64);
        let entities =
            self.data.iter().map(|t| Entity::new(t.id, t.f.clone())).collect();
        Some(MigrationState {
            entities,
            trainer: self.trainer.clone(),
            carry: MigrationCarry { skiing: Some(self.skiing.clone()), stats: self.stats() },
        })
    }

    fn adopt_migration_carry(&mut self, carry: &MigrationCarry) {
        // construction already ran the initial organization (stats holds
        // its reorg accounting; skiing holds its measured S): continue the
        // source's counters, keeping the rebuild as the most recent reorg
        let built_reorg_ns = self.stats.last_reorg_ns;
        self.stats = carry.stats;
        self.stats.last_reorg_ns = built_reorg_ns;
        self.stats.migrations += 1;
        match &carry.skiing {
            Some(prior) => self.skiing.carry_from(prior),
            // naive source: no controller to carry, but the lifetime
            // reorganization count still continues (stats() reads it off
            // the controller for hazy architectures)
            None => self.skiing.carry_reorg_count(carry.stats.reorgs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazy_learn::SgdConfig;
    use hazy_storage::CostModel;

    fn entities(n: usize) -> Vec<Entity> {
        (0..n)
            .map(|k| {
                Entity::new(
                    k as u64,
                    FeatureVec::dense(vec![
                        (k % 13) as f32 / 13.0 - 0.5,
                        (k % 7) as f32 / 7.0 - 0.5,
                    ]),
                )
            })
            .collect()
    }

    fn view(mode: Mode) -> HazyMemView {
        HazyMemView::new(
            entities(200),
            SgdTrainer::new(SgdConfig::svm(), 2),
            VirtualClock::new(CostModel::sata_2008()),
            OpOverheads::free(),
            mode,
            NormPair::EUCLIDEAN,
            WatermarkPolicy::Monotone,
            1.0,
        )
    }

    fn ex(k: usize) -> TrainingExample {
        let x0 = (k % 11) as f32 / 11.0 - 0.5;
        let x1 = (k % 17) as f32 / 17.0 - 0.5;
        let y = if x0 + 0.3 * x1 >= 0.0 { 1 } else { -1 };
        TrainingExample::new(0, FeatureVec::dense(vec![x0, x1]), y)
    }

    /// The load-bearing invariant: under any update stream, hazy-mm serves
    /// exactly the labels a from-scratch classification would.
    #[test]
    fn matches_ground_truth_after_updates() {
        for mode in [Mode::Eager, Mode::Lazy] {
            let mut v = view(mode);
            for k in 0..500 {
                v.update(&ex(k));
                if k % 97 == 0 {
                    // interleave reads so lazy waste accounting runs too
                    v.count_positive();
                }
            }
            let model = v.model().clone();
            for e in entities(200) {
                let expect = model.predict(&e.f);
                assert_eq!(v.read_single(e.id), Some(expect), "{mode:?} id {}", e.id);
            }
            let expect_count =
                entities(200).iter().filter(|e| model.predict(&e.f) > 0).count() as u64;
            assert_eq!(v.count_positive(), expect_count, "{mode:?}");
        }
    }

    #[test]
    fn eager_touches_fewer_tuples_than_naive() {
        let mut v = view(Mode::Eager);
        // warm up so the model stops swinging wildly
        for k in 0..300 {
            v.update(&ex(k));
        }
        let before = v.stats().tuples_reclassified;
        for k in 300..400 {
            v.update(&ex(k));
        }
        let touched = v.stats().tuples_reclassified - before;
        // naive eager would touch 100 × 200 = 20_000 tuples
        assert!(touched < 10_000, "hazy touched {touched}");
    }

    #[test]
    fn reorganizations_happen_and_reset_waste() {
        let mut v = view(Mode::Eager);
        for k in 0..2000 {
            v.update(&ex(k));
        }
        assert!(v.stats().reorgs >= 1, "no reorganizations in 2000 updates");
    }

    #[test]
    fn lazy_update_does_no_maintenance() {
        let mut v = view(Mode::Lazy);
        let before = v.stats().tuples_reclassified;
        for k in 0..100 {
            v.update(&ex(k));
        }
        assert_eq!(v.stats().tuples_reclassified, before);
    }

    #[test]
    fn lazy_scan_prunes_below_low_water() {
        let mut v = view(Mode::Lazy);
        for k in 0..50 {
            v.update(&ex(k));
        }
        let before = v.stats().tuples_examined;
        v.count_positive();
        let examined = v.stats().tuples_examined - before;
        assert!(examined <= 200, "examined {examined}");
        // after a reorganization the scan only reads positives (+ the band)
        let positives = v.count_positive();
        assert!(positives <= examined);
    }

    #[test]
    fn inserted_entities_are_visible_everywhere() {
        for mode in [Mode::Eager, Mode::Lazy] {
            let mut v = view(mode);
            for k in 0..100 {
                v.update(&ex(k));
            }
            v.insert_entity(Entity::new(9999, FeatureVec::dense(vec![0.4, 0.4])));
            let expect = v.model().predict(&FeatureVec::dense(vec![0.4, 0.4]));
            assert_eq!(v.read_single(9999), Some(expect), "{mode:?}");
            let ids = v.positive_ids();
            assert_eq!(ids.contains(&9999), expect > 0, "{mode:?}");
            // keep updating across a reorg; the entity must stay correct
            for k in 100..1500 {
                v.update(&ex(k));
            }
            let expect = v.model().predict(&FeatureVec::dense(vec![0.4, 0.4]));
            assert_eq!(v.read_single(9999), Some(expect), "{mode:?} post-reorg");
        }
    }

    /// Satellite fix for this PR: a reorganization with an unchanged model
    /// and no unsorted tail must not charge anything — previously it paid a
    /// full `charge_sort(n)` plus a reclassification pass for nothing.
    #[test]
    fn reorg_is_free_when_there_is_nothing_to_fold_in() {
        let mut v = view(Mode::Eager);
        for k in 0..100 {
            v.update(&ex(k));
        }
        ClassifierView::reorganize(&mut v); // folds the current model in
        let before = v.clock().now_ns();
        ClassifierView::reorganize(&mut v); // no model change, no tail
        assert_eq!(v.clock().now_ns(), before, "free reorg advanced the clock");
    }

    /// Inserts between reorganizations take the merge path: the clock is
    /// charged O(t log t + n), far below the full O(n log n) resort, and
    /// the structure stays exactly sorted.
    #[test]
    fn insert_only_reorg_merges_instead_of_resorting() {
        let mut v = view(Mode::Eager);
        for k in 0..100 {
            v.update(&ex(k));
        }
        ClassifierView::reorganize(&mut v);
        for k in 0..50u64 {
            let x = (k % 9) as f32 / 9.0 - 0.5;
            v.insert_entity(Entity::new(10_000 + k, FeatureVec::dense(vec![x, -x])));
        }
        let n = v.data.len() as u64;
        let before = v.clock().now_ns();
        ClassifierView::reorganize(&mut v);
        let charged = v.clock().now_ns() - before;
        // full resort would charge at least n·log2(n) cpu ops (plus a
        // reclassification of every tuple); the merge path must come in
        // well under that
        let full_sort_ns = {
            let logn = 64 - n.leading_zeros() as u64;
            n * logn * v.clock().model().cpu_op_ns
        };
        assert!(charged < full_sort_ns, "merge path charged {charged} ≥ full sort {full_sort_ns}");
        assert!(
            v.data.windows(2).all(|w| tuple_le(&w[0], &w[1])),
            "merge left the run unsorted"
        );
        assert_eq!(v.sorted_len, v.data.len());
        // every entity still reads correctly through the rebuilt idmap
        let model = v.model().clone();
        for k in 0..50u64 {
            let x = (k % 9) as f32 / 9.0 - 0.5;
            let expect = model.predict(&FeatureVec::dense(vec![x, -x]));
            assert_eq!(v.read_single(10_000 + k), Some(expect));
        }
    }

    #[test]
    fn band_count_is_consistent_with_range() {
        let mut v = view(Mode::Eager);
        for k in 0..200 {
            v.update(&ex(k));
        }
        let (lw, hw) = v.waterband();
        let by_filter = (0..200u64)
            .filter_map(|id| {
                let idx = *v.idmap.get(&id)? as usize;
                let eps = v.data[idx].eps;
                (eps >= lw && eps <= hw).then_some(())
            })
            .count() as u64;
        assert_eq!(v.tuples_in_band(), by_filter);
    }
}
