//! The hybrid architecture (Section 3.5.2).
//!
//! On disk, everything [`HazyDiskView`] maintains. In memory, two small
//! structures:
//!
//! * the **ε-map** `h(s): id → eps` — one float per entity, *no feature
//!   vectors*, so it is orders of magnitude smaller than the data (the
//!   paper's Citeseer ε-map is 5.4 MB against a 1.3 GB corpus), and
//! * a **buffer** of `B` boundary entities (with feature vectors), chosen
//!   closest to the uncertain band, where label changes concentrate.
//!
//! A single-entity read consults the ε-map against the watermarks first —
//! if `h(id) ≥ hw` or `≤ lw` the answer is certain with zero I/O. Otherwise
//! the buffer is tried, and only on a buffer miss does the read go to disk
//! (Figure 8's lookup algorithm). The Skiing strategy reorganizes disk and
//! memory together.

use std::collections::HashMap;

use hazy_learn::{Label, LinearModel, SgdTrainer, TrainingExample};
use hazy_linalg::{decode_fvec, encode_fvec, wire, FeatureVec, NormPair};
use hazy_storage::{BufferPool, VirtualClock};

use crate::cost::{charge_classify, OpOverheads};
use crate::durable::{tag, Durable};
use crate::entity::Entity;
use crate::hazy_disk::HazyDiskView;
use crate::stats::{MemoryFootprint, ViewStats};
use crate::view::{ClassifierView, Mode};
use crate::watermark::WatermarkPolicy;

/// Hybrid tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Buffer capacity as a fraction of the entity count (the paper's
    /// experiments hold ≤ 1% of entities in memory).
    pub buffer_frac: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig { buffer_frac: 0.01 }
    }
}

/// The hybrid view: on-disk Hazy + ε-map + boundary buffer.
pub struct HybridView {
    inner: HazyDiskView,
    cfg: HybridConfig,
    overheads: OpOverheads,
    eps_map: HashMap<u64, f64>,
    buffer: HashMap<u64, FeatureVec>,
    seen_epoch: u64,
    single_reads: u64,
    eps_map_prunes: u64,
    buffer_hits: u64,
    disk_reads: u64,
}

impl HybridView {
    /// Builds the hybrid: the on-disk structure plus in-memory ε-map and
    /// buffer.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        entities: Vec<Entity>,
        trainer: SgdTrainer,
        pool: BufferPool,
        overheads: OpOverheads,
        mode: Mode,
        pair: NormPair,
        policy: WatermarkPolicy,
        alpha: f64,
        cfg: HybridConfig,
    ) -> HybridView {
        let inner =
            HazyDiskView::new(entities, trainer, pool, overheads, mode, pair, policy, alpha);
        let mut view = HybridView {
            inner,
            cfg,
            overheads,
            eps_map: HashMap::new(),
            buffer: HashMap::new(),
            seen_epoch: 0,
            single_reads: 0,
            eps_map_prunes: 0,
            buffer_hits: 0,
            disk_reads: 0,
        };
        view.rebuild_memory();
        view
    }

    /// Inverse of this view's [`Durable::save_state`] (tag byte already
    /// consumed). The ε-map and buffer are serialized — not rebuilt — so
    /// restoration does not scan the heap (a rebuild would charge the clock
    /// and touch pool frames, making the recovered view diverge from one
    /// that never crashed).
    pub(crate) fn restore_state(
        b: &mut &[u8],
        clock: VirtualClock,
        overheads: OpOverheads,
    ) -> Option<HybridView> {
        if wire::take_u8(b)? != tag::HAZY_DISK {
            return None;
        }
        let inner = HazyDiskView::restore_state(b, clock, overheads)?;
        let buffer_frac = wire::take_f64(b)?;
        let seen_epoch = wire::take_u64(b)?;
        let single_reads = wire::take_u64(b)?;
        let eps_map_prunes = wire::take_u64(b)?;
        let buffer_hits = wire::take_u64(b)?;
        let disk_reads = wire::take_u64(b)?;
        let n_eps = wire::take_u64(b)? as usize;
        let mut eps_map = HashMap::with_capacity(n_eps);
        for _ in 0..n_eps {
            let id = wire::take_u64(b)?;
            eps_map.insert(id, wire::take_f64(b)?);
        }
        let n_buf = wire::take_u64(b)? as usize;
        let mut buffer = HashMap::with_capacity(n_buf);
        for _ in 0..n_buf {
            let id = wire::take_u64(b)?;
            buffer.insert(id, decode_fvec(b)?);
        }
        Some(HybridView {
            inner,
            cfg: HybridConfig { buffer_frac },
            overheads,
            eps_map,
            buffer,
            seen_epoch,
            single_reads,
            eps_map_prunes,
            buffer_hits,
            disk_reads,
        })
    }

    /// Buffer capacity in entities.
    pub fn buffer_capacity(&self) -> usize {
        ((self.eps_map.len() as f64 * self.cfg.buffer_frac) as usize).max(1)
    }

    /// Experiment hook (Figure 6(B)): force the uncertain band to cover the
    /// given fraction of tuples (centered on the decision boundary), then
    /// rebuild the buffer for that band.
    pub fn set_uncertain_fraction(&mut self, frac: f64) {
        assert!((0.0..=1.0).contains(&frac), "fraction out of range");
        let mut eps: Vec<f64> = self.eps_map.values().copied().collect();
        eps.sort_unstable_by(|a, b| b.total_cmp(a)); // descending
        if eps.is_empty() {
            return;
        }
        let n = eps.len();
        let boundary = eps.iter().position(|&e| e < 0.0).unwrap_or(n);
        let half = ((n as f64 * frac) / 2.0).round() as usize;
        let hi_idx = boundary.saturating_sub(half);
        let lo_idx = (boundary + half).min(n - 1);
        let (hw, lw) = (eps[hi_idx], eps[lo_idx]);
        self.inner.force_waterband(lw.min(hw), hw.max(lw));
        self.rebuild_buffer();
    }

    /// Experiment hook: replace the buffer capacity fraction and rebuild.
    pub fn set_buffer_frac(&mut self, frac: f64) {
        self.cfg.buffer_frac = frac.max(0.0);
        self.rebuild_buffer();
    }

    /// Rebuilds ε-map and buffer from the on-disk state (runs after every
    /// reorganization — "the Skiing strategy reorganizes the data on disk
    /// and in memory"). The ε-map needs only `(id, eps)` from each tuple's
    /// fixed prefix, so this is a header-only scan: O(1) per tuple, no
    /// feature payload decoded, nothing materialized.
    fn rebuild_memory(&mut self) {
        let clock = self.inner.clock().clone();
        self.eps_map.clear();
        let eps_map = &mut self.eps_map;
        self.inner.for_each_header(|id, _, eps| {
            eps_map.insert(id, eps);
        });
        clock.charge_cpu_ops(self.eps_map.len() as u64);
        self.seen_epoch = self.inner.reorg_epoch();
        self.rebuild_buffer();
    }

    /// Fills the buffer with the `B` entities nearest the uncertain band's
    /// center — the tuples most likely to need a real dot product.
    fn rebuild_buffer(&mut self) {
        let clock = self.inner.clock().clone();
        let (lw, hw) = self.inner.waterband();
        let center = (lw + hw) / 2.0;
        let cap = self.buffer_capacity();
        // pass 1: find the distance threshold admitting `cap` entities
        let mut dists: Vec<f64> = self.eps_map.values().map(|&e| (e - center).abs()).collect();
        clock.charge_cpu_ops(dists.len() as u64);
        if dists.is_empty() {
            self.buffer.clear();
            return;
        }
        let k = cap.min(dists.len() - 1);
        dists.select_nth_unstable_by(k, |a, b| a.total_cmp(b));
        let threshold = dists[k];
        // pass 2: pull the qualifying feature vectors from disk. The scan
        // borrows page bytes; only the ≤ cap admitted vectors (a ~1%
        // fraction) are materialized.
        let mut buffer = HashMap::with_capacity(cap + 16);
        self.inner.for_each_tuple_ref(|t| {
            if (t.eps - center).abs() <= threshold && buffer.len() <= cap {
                buffer.insert(t.id, t.f.to_owned());
            }
        });
        self.buffer = buffer;
    }
}

impl Durable for HybridView {
    fn save_state(&self, out: &mut Vec<u8>) {
        out.push(tag::HYBRID);
        self.inner.save_state(out);
        out.extend_from_slice(&self.cfg.buffer_frac.to_bits().to_le_bytes());
        out.extend_from_slice(&self.seen_epoch.to_le_bytes());
        for v in [self.single_reads, self.eps_map_prunes, self.buffer_hits, self.disk_reads] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        // hash maps dump in sorted id order so checkpoint bytes are
        // deterministic (same state ⇒ same blob ⇒ same CRC)
        let mut eps: Vec<(u64, f64)> = self.eps_map.iter().map(|(&k, &v)| (k, v)).collect();
        eps.sort_unstable_by_key(|&(k, _)| k);
        out.extend_from_slice(&(eps.len() as u64).to_le_bytes());
        for (id, e) in eps {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&e.to_bits().to_le_bytes());
        }
        let mut buf: Vec<(&u64, &FeatureVec)> = self.buffer.iter().collect();
        buf.sort_unstable_by_key(|&(&k, _)| k);
        out.extend_from_slice(&(buf.len() as u64).to_le_bytes());
        for (&id, f) in buf {
            out.extend_from_slice(&id.to_le_bytes());
            encode_fvec(f, out);
        }
    }
}

impl ClassifierView for HybridView {
    fn describe(&self) -> String {
        format!("hybrid ({})", self.mode().name())
    }

    fn mode(&self) -> Mode {
        self.inner.mode()
    }

    fn update(&mut self, ex: &TrainingExample) {
        self.inner.update(ex);
        if self.inner.reorg_epoch() != self.seen_epoch {
            self.rebuild_memory();
        }
    }

    fn update_batch(&mut self, batch: &[TrainingExample]) {
        self.inner.update_batch(batch);
        if self.inner.reorg_epoch() != self.seen_epoch {
            self.rebuild_memory();
        }
    }

    fn reorganize(&mut self) {
        self.inner.reorganize_inner();
        if self.inner.reorg_epoch() != self.seen_epoch {
            self.rebuild_memory();
        }
    }

    /// Figure 8's lookup: ε-map prune → buffer → disk.
    fn read_single(&mut self, id: u64) -> Option<Label> {
        let clock = self.inner.clock().clone();
        clock.charge_ns(self.overheads.read_ns);
        self.single_reads += 1;
        self.inner.fold_watermarks();
        let eps = match self.eps_map.get(&id) {
            Some(&e) => e,
            None => {
                // unknown to the map (never an entity): confirm via disk
                self.disk_reads += 1;
                return self.inner.read_single_inner(id);
            }
        };
        clock.charge_cpu_ops(2);
        if let Some(l) = self.inner.watermarks().certain_label(eps) {
            self.eps_map_prunes += 1;
            return Some(l);
        }
        if let Some(f) = self.buffer.get(&id) {
            self.buffer_hits += 1;
            charge_classify(&clock, f);
            return Some(self.inner.model().predict(f));
        }
        self.disk_reads += 1;
        self.inner.read_single_inner(id)
    }

    fn entity_count(&self) -> u64 {
        self.inner.entity_count()
    }

    fn count_positive(&mut self) -> u64 {
        let n = self.inner.count_positive();
        if self.inner.reorg_epoch() != self.seen_epoch {
            self.rebuild_memory();
        }
        n
    }

    fn positive_ids(&mut self) -> Vec<u64> {
        let ids = self.inner.positive_ids();
        if self.inner.reorg_epoch() != self.seen_epoch {
            self.rebuild_memory();
        }
        ids
    }

    fn top_k(&mut self, k: usize) -> Vec<(u64, f64)> {
        // ranked reads go to the full on-disk table; the ε-map and buffer
        // only accelerate certain-label lookups, which a ranked read cannot
        // use (it needs exact margins)
        let out = self.inner.top_k(k);
        if self.inner.reorg_epoch() != self.seen_epoch {
            self.rebuild_memory();
        }
        out
    }

    fn insert_entity(&mut self, e: Entity) {
        let eps = self.inner.watermarks().stored_model().margin(&e.f);
        self.eps_map.insert(e.id, eps);
        self.inner.insert_entity(e);
    }

    fn remove_entity(&mut self, id: u64) -> bool {
        // derived state first: the ε-map and buffer must never serve a
        // certain label for an entity the disk no longer holds
        self.eps_map.remove(&id);
        self.buffer.remove(&id);
        self.inner.remove_entity(id)
    }

    fn model(&self) -> &LinearModel {
        self.inner.model()
    }

    fn stats(&self) -> ViewStats {
        let mut s = self.inner.stats();
        s.single_reads += self.single_reads;
        s.eps_map_prunes = self.eps_map_prunes;
        s.buffer_hits = self.buffer_hits;
        s.disk_reads = self.disk_reads;
        s
    }

    /// Figure 6(A)'s breakdown: the ε-map costs `(k + sizeof(double))·N`
    /// bytes and the buffer `B·(k + f)` — tiny next to `N·(k + f)` for the
    /// full data.
    fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            entities_bytes: 0,
            eps_map_bytes: self.eps_map.len() * (8 + std::mem::size_of::<f64>()),
            buffer_bytes: self.buffer.values().map(|f| 8 + f.mem_bytes()).sum(),
            model_bytes: self.inner.model().mem_bytes(),
        }
    }

    fn clock(&self) -> &VirtualClock {
        self.inner.clock()
    }

    fn snapshot_state(&mut self) -> Option<(Vec<Entity>, LinearModel)> {
        // the ε-map and boundary buffer are derived state: the inner
        // on-disk structure holds the authoritative population
        self.inner.snapshot_state()
    }

    fn export_migration(&mut self) -> Option<crate::MigrationState> {
        // evacuate through the on-disk structure (the ε-map and buffer are
        // derived state), but export the *hybrid's* merged counters
        let stats = self.stats();
        let mut state = self.inner.export_migration()?;
        state.carry.stats = stats;
        Some(state)
    }

    fn adopt_migration_carry(&mut self, carry: &crate::MigrationCarry) {
        // the hybrid's read-path counters are reported from its own fields
        // (they overwrite the inner view's at stats() time), so adopt them
        // here; everything else continues inside the inner view
        self.single_reads = 0;
        self.eps_map_prunes = carry.stats.eps_map_prunes;
        self.buffer_hits = carry.stats.buffer_hits;
        self.disk_reads = carry.stats.disk_reads;
        self.inner.adopt_migration_carry(carry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazy_learn::SgdConfig;
    use hazy_storage::{CostModel, SimDisk};

    fn entities(n: usize) -> Vec<Entity> {
        (0..n)
            .map(|k| {
                Entity::new(
                    k as u64,
                    FeatureVec::dense(vec![(k % 13) as f32 / 13.0 - 0.5, (k % 7) as f32 / 7.0 - 0.5]),
                )
            })
            .collect()
    }

    fn view(mode: Mode) -> HybridView {
        let pool =
            BufferPool::new(SimDisk::new(VirtualClock::new(CostModel::sata_2008())), 128);
        HybridView::new(
            entities(300),
            SgdTrainer::new(SgdConfig::svm(), 2),
            pool,
            OpOverheads::free(),
            mode,
            NormPair::EUCLIDEAN,
            WatermarkPolicy::Monotone,
            1.0,
            HybridConfig { buffer_frac: 0.05 },
        )
    }

    fn ex(k: usize) -> TrainingExample {
        let x0 = (k % 11) as f32 / 11.0 - 0.5;
        let x1 = (k % 17) as f32 / 17.0 - 0.5;
        let y = if x0 + 0.3 * x1 >= 0.0 { 1 } else { -1 };
        TrainingExample::new(0, FeatureVec::dense(vec![x0, x1]), y)
    }

    #[test]
    fn labels_always_match_ground_truth() {
        for mode in [Mode::Eager, Mode::Lazy] {
            let mut v = view(mode);
            for k in 0..600 {
                v.update(&ex(k));
                if k % 113 == 0 {
                    v.count_positive();
                }
            }
            let model = v.model().clone();
            for e in entities(300) {
                assert_eq!(v.read_single(e.id), Some(model.predict(&e.f)), "{mode:?} id {}", e.id);
            }
        }
    }

    #[test]
    fn most_reads_avoid_disk() {
        let mut v = view(Mode::Eager);
        for k in 0..300 {
            v.update(&ex(k));
        }
        for id in (0..300u64).cycle().take(3000) {
            v.read_single(id);
        }
        let s = v.stats();
        let from_memory = s.eps_map_prunes + s.buffer_hits;
        assert!(
            from_memory * 10 >= s.disk_reads * 9,
            "memory {from_memory} vs disk {}",
            s.disk_reads
        );
    }

    #[test]
    fn eps_map_is_much_smaller_than_data() {
        let v = view(Mode::Eager);
        let m = v.memory();
        assert!(m.eps_map_bytes > 0);
        // 300 entities × 2 dense floats; map is 16 bytes/entity — smaller
        // than the raw vectors once features are non-trivial, and crucially
        // it carries no feature payload at all
        assert_eq!(m.eps_map_bytes, 300 * 16);
        assert!(m.buffer_bytes < m.eps_map_bytes * 2);
    }

    #[test]
    fn forced_band_fraction_brackets_request() {
        let mut v = view(Mode::Eager);
        for k in 0..300 {
            v.update(&ex(k));
        }
        v.set_uncertain_fraction(0.10);
        let (lw, hw) = v.inner.waterband();
        let inside = v
            .eps_map
            .values()
            .filter(|&&e| e >= lw && e <= hw)
            .count() as f64
            / v.eps_map.len() as f64;
        assert!((0.04..=0.25).contains(&inside), "fraction {inside}");
    }

    #[test]
    fn inserted_entity_readable_through_map() {
        let mut v = view(Mode::Eager);
        for k in 0..100 {
            v.update(&ex(k));
        }
        v.insert_entity(Entity::new(31337, FeatureVec::dense(vec![0.4, 0.4])));
        let expect = v.model().predict(&FeatureVec::dense(vec![0.4, 0.4]));
        assert_eq!(v.read_single(31337), Some(expect));
    }

    #[test]
    fn unknown_id_reads_none() {
        let mut v = view(Mode::Lazy);
        assert_eq!(v.read_single(999_999), None);
    }
}
