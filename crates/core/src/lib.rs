//! Hazy classification views: the paper's core contribution.
//!
//! A *classification view* `V(id, class)` is a relational view whose contents
//! are the output of a linear classifier over an entity table `In(id, f)`
//! (Section 2.1). The model `(w, b)` changes every time a training example is
//! inserted, and this crate implements the machinery that keeps `V` correct
//! without reclassifying the world:
//!
//! * [`WaterMarks`] — the low/high-water bounds of Lemma 3.1 / Eq. 2. `H` is
//!   clustered on `eps = w(s)·f − b(s)` under the *stored* model; after any
//!   number of model rounds, only tuples with `eps ∈ [lw, hw]` can have
//!   changed label.
//! * [`Skiing`] — the ski-rental-style strategy (Section 3.2.1) deciding
//!   *when to recluster*: accumulate the measured incremental cost and
//!   reorganize when it reaches `α·S`. [`opt`] contains the offline
//!   dynamic-programming optimum used to validate the competitive ratio of
//!   Theorem 3.3.
//! * Five architectures × two approaches (Section 2.2, 3.5):
//!   [`NaiveMemView`], [`HazyMemView`], [`NaiveDiskView`], [`HazyDiskView`]
//!   and [`HybridView`], each eager or lazy, all behind the
//!   [`ClassifierView`] trait.
//!
//! On-disk architectures run on `hazy-storage`'s simulated-cost pages;
//! *every* architecture charges CPU work to the same [`VirtualClock`], so
//! throughput comparisons across architectures are apples-to-apples and
//! deterministic.
//!
//! [`VirtualClock`]: hazy_storage::VirtualClock

#![warn(missing_docs)]

mod cost;
mod durable;
mod entity;
mod epoch;
mod hazy_disk;
mod hazy_mem;
mod hybrid;
mod merge;
mod migrate;
mod multiclass_view;
mod naive_disk;
mod naive_mem;
pub mod opt;
mod skiing;
mod stats;
mod view;
mod watermark;

pub use cost::{classify_cost, OpOverheads};
pub use durable::{
    replay_record, CoreRestorer, Durable, DurableClassifierView, DurableView, RecoveryInfo,
    ViewRestorer, SHARDED_VIEW_TAG,
};
pub use entity::{
    decode_tuple, decode_tuple_header, decode_tuple_ref, encode_tuple, Entity, HTuple, HTupleRef,
    TUPLE_HEADER, TUPLE_LABEL_OFFSET,
};
pub use epoch::{EpochCell, EpochPin, EpochPublisher, EpochStats, ModelEpoch};
pub use merge::merge_sorted_tail;
pub use migrate::{MigrationCarry, MigrationState};
pub use hazy_disk::HazyDiskView;
pub use hazy_mem::HazyMemView;
pub use hybrid::{HybridConfig, HybridView};
pub use multiclass_view::MulticlassView;
pub use naive_disk::NaiveDiskView;
pub use naive_mem::NaiveMemView;
pub use skiing::Skiing;
pub use stats::{MemoryFootprint, ViewStats};
pub use view::{rank_order, Architecture, ClassifierView, Mode, ViewBuilder};
pub use watermark::{DeltaTracker, WaterMarks, WatermarkPolicy};
