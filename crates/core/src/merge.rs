//! Run-merge machinery for incremental reorganization.
//!
//! A reorganization folds the unsorted tail (entities inserted since the
//! last reorganization) into the ε-sorted run. The original implementation
//! re-sorted the whole table — O(n log n) even when the tail held a handful
//! of tuples. Folding a sorted tail of `t` entries into a sorted run of
//! `n − t` is a single merge pass: O(t log t) to sort the tail plus O(n) to
//! merge, which is what the virtual clock now charges
//! ([`hazy_storage::VirtualClock::charge_merge`]). This matches the
//! incremental-view-maintenance principle (F-IVM, LFTJ maintenance) that
//! maintenance cost should be proportional to the *delta*, not the view.

/// Merges two consecutive sorted runs `data[..split]` and `data[split..]`
/// into one sorted whole, in one linear pass.
///
/// `le(a, b)` must return `true` when `a` may appear at or before `b` in the
/// output (i.e. `a ≤ b` under the intended total order). The merge is
/// stable: on ties the element from the first run wins.
///
/// Both runs must already be sorted under `le`; the caller sorts the tail
/// (that is the O(t log t) part of the bargain).
pub fn merge_sorted_tail<T>(data: &mut Vec<T>, split: usize, mut le: impl FnMut(&T, &T) -> bool) {
    if split == 0 || split >= data.len() {
        return; // a single run — nothing to merge
    }
    let tail = data.split_off(split);
    let head = std::mem::replace(data, Vec::with_capacity(split + tail.len()));
    let mut hi = head.into_iter();
    let mut ti = tail.into_iter();
    let mut h = hi.next();
    let mut t = ti.next();
    loop {
        match (h.take(), t.take()) {
            (Some(a), Some(b)) => {
                if le(&a, &b) {
                    data.push(a);
                    t = Some(b);
                    h = hi.next();
                } else {
                    data.push(b);
                    h = Some(a);
                    t = ti.next();
                }
            }
            (Some(a), None) => {
                data.push(a);
                data.extend(hi);
                return;
            }
            (None, Some(b)) => {
                data.push(b);
                data.extend(ti);
                return;
            }
            (None, None) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(head: Vec<i64>, tail: Vec<i64>) {
        let split = head.len();
        let mut v = head;
        v.extend(tail);
        let mut expect = v.clone();
        expect.sort_unstable();
        merge_sorted_tail(&mut v, split, |a, b| a <= b);
        assert_eq!(v, expect);
    }

    #[test]
    fn merges_interleaved_runs() {
        check(vec![1, 3, 5, 7], vec![2, 4, 6]);
        check(vec![2, 4, 6], vec![1, 3, 5, 7]);
        check(vec![1, 2, 3], vec![4, 5, 6]);
        check(vec![4, 5, 6], vec![1, 2, 3]);
    }

    #[test]
    fn degenerate_splits_are_noops() {
        check(vec![], vec![1, 2, 3]);
        check(vec![1, 2, 3], vec![]);
        check(vec![], vec![]);
    }

    #[test]
    fn duplicate_keys_are_stable() {
        // tag elements by run to observe stability
        let mut v: Vec<(i64, u8)> = vec![(1, 0), (2, 0), (2, 0), (5, 0), (2, 1), (5, 1)];
        merge_sorted_tail(&mut v, 4, |a, b| a.0 <= b.0);
        assert_eq!(v, vec![(1, 0), (2, 0), (2, 0), (2, 1), (5, 0), (5, 1)]);
    }

}
