//! Live migration between architectures: per-architecture state extraction
//! and rebuilding, the data-plane half of `hazy-tune`'s online advisor.
//!
//! The paper's experiments (Section 4) show that *no architecture wins
//! everywhere*: eager vs. lazy and main-memory vs. on-disk each dominate
//! under different read/update mixes. A deployment whose workload shifts
//! therefore wants to **switch** architectures online. This module makes the
//! switch a first-class, lossless operation:
//!
//! * [`ClassifierView::export_migration`] — each architecture knows how to
//!   pull its *logical* state out of its physical layout: the entity
//!   population (ids + feature vectors), the trainer (bit-exact, so the
//!   model stream continues unchanged), the Skiing accumulator, and the
//!   lifetime operation counters. The extraction pass is charged to the
//!   virtual clock (a disk-resident view really does pay a sequential scan
//!   to evacuate itself).
//! * [`ViewBuilder::build_migrated`] — rebuilds any target architecture ×
//!   mode from an extracted [`MigrationState`]. The build *is* the target's
//!   initial organization: every tuple is re-keyed and (eager) relabeled
//!   under the carried model, so watermarks collapse to the tight band
//!   around the stored model — the correct post-reorganization watermark
//!   state — and the freshly measured organization cost becomes the new
//!   layout's `S`. The carried Skiing accumulator, counters, and trainer
//!   are then adopted via [`ClassifierView::adopt_migration_carry`].
//!
//! What deliberately does **not** carry over is physical state: page
//! images, index directories, buffer residency, clustering order. Migration
//! is precisely the operation that replaces those.
//!
//! [`ClassifierView::export_migration`]: crate::ClassifierView::export_migration
//! [`ClassifierView::adopt_migration_carry`]: crate::ClassifierView::adopt_migration_carry
//! [`ViewBuilder::build_migrated`]: crate::ViewBuilder::build_migrated

use hazy_learn::SgdTrainer;
use hazy_storage::{BufferPool, HeapFile};

use crate::entity::{decode_tuple_ref, Entity};
use crate::skiing::Skiing;
use crate::stats::ViewStats;

/// Evacuates a heap-resident population for migration: one sequential
/// scan, entities materialized off the borrowed page bytes (page reads
/// charged by the pool as usual). Shared by both on-disk architectures.
pub(crate) fn evacuate_heap(heap: &HeapFile, pool: &mut BufferPool) -> Vec<Entity> {
    let mut entities = Vec::with_capacity(heap.len() as usize);
    heap.scan(pool, |_, bytes| {
        let t = decode_tuple_ref(bytes).expect("well-formed tuple");
        entities.push(Entity::new(t.id, t.f.to_owned()));
        true
    });
    entities
}

/// The complete logical state extracted from a view for a live migration.
///
/// Everything needed to rebuild the view under a different architecture
/// with **zero retraining and zero wrong answers**: the served answers of
/// the rebuilt view are a pure function of `entities` × the trainer's
/// model, both carried bit-exactly.
#[derive(Clone, Debug)]
pub struct MigrationState {
    /// The entity population: base rows plus every dynamic insert, with
    /// their feature vectors (decoded exactly as stored).
    pub entities: Vec<Entity>,
    /// The trainer, bit-exact — the model `(w, b)`, learning-rate schedule
    /// position, and step count all continue unchanged.
    pub trainer: SgdTrainer,
    /// The carried controller/counter state (see [`MigrationCarry`]).
    pub carry: MigrationCarry,
}

/// The control-plane state a freshly built target view adopts after a
/// migration: the source's Skiing controller (if it had one) and its
/// lifetime operation counters.
#[derive(Clone, Debug)]
pub struct MigrationCarry {
    /// The source's Skiing controller. `None` when the source was a naive
    /// architecture (no reorganization strategy to carry); a hazy target
    /// then starts its controller fresh from the rebuild's measured `S`.
    pub skiing: Option<Skiing>,
    /// The source's lifetime [`ViewStats`] — counters keep accumulating
    /// across the switch, and [`ViewStats::migrations`] is incremented by
    /// the adopting view.
    pub stats: ViewStats,
}
