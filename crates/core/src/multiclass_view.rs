//! Multiclass classification views (Appendix B.5.4 / C.3).
//!
//! The paper turns a `k`-class problem into `k` binary classification
//! views and resolves predictions *sequentially one-versus-all*: ask the
//! class-0 view, then class-1, ... and return the first view that claims
//! the entity; if no view claims it, fall back to the final class. Each
//! binary view is a full Hazy view — clustered, watermarked, Skiing-managed
//! — so all of the incremental-maintenance savings carry over per class
//! (the Figure 12(B) experiment).

use hazy_learn::TrainingExample;
use hazy_linalg::FeatureVec;

use crate::entity::Entity;
use crate::stats::ViewStats;
use crate::view::{ClassifierView, ViewBuilder};

/// `k` binary Hazy views resolved sequentially one-versus-all.
pub struct MulticlassView {
    views: Vec<Box<dyn crate::durable::DurableClassifierView + Send>>,
}

impl MulticlassView {
    /// Builds `k` binary views over the same entities with the builder's
    /// configuration. `warm` provides multiclass warm-up examples as
    /// `(example, class)` pairs.
    ///
    /// # Panics
    /// Panics when `k < 2`.
    pub fn new(
        builder: &ViewBuilder,
        entities: Vec<Entity>,
        k: usize,
        warm: &[(TrainingExample, usize)],
    ) -> MulticlassView {
        assert!(k >= 2, "multiclass needs at least two classes");
        let views = (0..k)
            .map(|c| {
                let warm_c: Vec<TrainingExample> = warm
                    .iter()
                    .map(|(ex, class)| {
                        TrainingExample::new(ex.id, ex.f.clone(), if *class == c { 1 } else { -1 })
                    })
                    .collect();
                builder.build(entities.clone(), &warm_c)
            })
            .collect();
        MulticlassView { views }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.views.len()
    }

    /// Consumes one multiclass training example: the labeled class's view
    /// gets a positive step, every other view a negative one.
    ///
    /// # Panics
    /// Panics when `class` is out of range.
    pub fn update(&mut self, f: &FeatureVec, id: u64, class: usize) {
        assert!(class < self.views.len(), "class {class} out of range");
        for (c, view) in self.views.iter_mut().enumerate() {
            view.update(&TrainingExample::new(id, f.clone(), if c == class { 1 } else { -1 }));
        }
    }

    /// Sequential one-versus-all prediction: the first view claiming the
    /// entity wins; if none claims it, the final class is returned (the
    /// "everything else" bucket). `None` when the entity does not exist.
    pub fn classify(&mut self, id: u64) -> Option<usize> {
        let k = self.views.len();
        for (c, view) in self.views.iter_mut().enumerate() {
            match view.read_single(id)? {
                1 => return Some(c),
                _ => continue,
            }
        }
        Some(k - 1)
    }

    /// Ids currently claimed by class `c`'s binary view. Under sequential
    /// resolution an id may appear in several views' member lists; exact
    /// multiclass membership goes through [`MulticlassView::classify`].
    pub fn members_of(&mut self, c: usize) -> Vec<u64> {
        self.views[c].positive_ids()
    }

    /// A brand-new entity, classified and stored in all `k` views.
    pub fn insert_entity(&mut self, e: Entity) {
        for view in self.views.iter_mut() {
            view.insert_entity(e.clone());
        }
    }

    /// Aggregated operation counters over all `k` binary views.
    pub fn stats(&self) -> ViewStats {
        let mut total = ViewStats::default();
        for v in &self.views {
            let s = v.stats();
            total.updates += s.updates;
            total.single_reads += s.single_reads;
            total.all_members += s.all_members;
            total.tuples_reclassified += s.tuples_reclassified;
            total.tuples_examined += s.tuples_examined;
            total.labels_changed += s.labels_changed;
            total.reorgs += s.reorgs;
        }
        total
    }

    /// The binary view of class `c` (for per-class inspection).
    pub fn view(&self, c: usize) -> &dyn ClassifierView {
        self.views[c].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::OpOverheads;
    use crate::view::{Architecture, Mode};
    use hazy_linalg::NormPair;

    fn tri_feature(k: usize) -> (FeatureVec, usize) {
        // three clusters on a triangle, deterministic jitter
        let centers = [(0.0f32, 2.0f32), (-2.0, -1.0), (2.0, -1.0)];
        let c = k % 3;
        let jx = ((k * 7) % 11) as f32 / 11.0 - 0.5;
        let jy = ((k * 13) % 17) as f32 / 17.0 - 0.5;
        (FeatureVec::dense(vec![centers[c].0 + jx, centers[c].1 + jy, 1.0]), c)
    }

    fn builder() -> ViewBuilder {
        ViewBuilder::new(Architecture::HazyMem, Mode::Eager)
            .norm_pair(NormPair::EUCLIDEAN)
            .overheads(OpOverheads::free())
            .dim(3)
    }

    fn entities(n: usize) -> Vec<Entity> {
        (0..n).map(|k| Entity::new(k as u64, tri_feature(k).0)).collect()
    }

    #[test]
    fn separates_three_classes() {
        let mut mv = MulticlassView::new(&builder(), entities(120), 3, &[]);
        for round in 0..15 {
            for k in 0..120 {
                let (f, c) = tri_feature(k + round * 120);
                mv.update(&f, 0, c);
            }
        }
        let correct = (0..120)
            .filter(|&k| mv.classify(k as u64) == Some(tri_feature(k).1))
            .count();
        assert!(correct >= 110, "correct {correct}/120");
    }

    #[test]
    fn warm_examples_seed_all_views() {
        let warm: Vec<(TrainingExample, usize)> = (0..300)
            .map(|k| {
                let (f, c) = tri_feature(k);
                (TrainingExample::new(0, f, 1), c)
            })
            .collect();
        let mut mv = MulticlassView::new(&builder(), entities(120), 3, &warm);
        let correct = (0..120)
            .filter(|&k| mv.classify(k as u64) == Some(tri_feature(k).1))
            .count();
        assert!(correct >= 100, "correct {correct}/120 from warm start alone");
    }

    #[test]
    fn missing_entities_are_none() {
        let mut mv = MulticlassView::new(&builder(), entities(10), 2, &[]);
        assert_eq!(mv.classify(999), None);
    }

    #[test]
    fn inserted_entities_are_classified() {
        let mut mv = MulticlassView::new(&builder(), entities(120), 3, &[]);
        for k in 0..600 {
            let (f, c) = tri_feature(k);
            mv.update(&f, 0, c);
        }
        let (f, c) = tri_feature(4);
        mv.insert_entity(Entity::new(7777, f));
        assert_eq!(mv.classify(7777), Some(c));
    }

    #[test]
    fn stats_aggregate_across_views() {
        let mut mv = MulticlassView::new(&builder(), entities(30), 3, &[]);
        for k in 0..10 {
            let (f, c) = tri_feature(k);
            mv.update(&f, 0, c);
        }
        assert_eq!(mv.stats().updates, 30, "10 multiclass updates × 3 views");
        assert_eq!(mv.classes(), 3);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn one_class_rejected() {
        let _ = MulticlassView::new(&builder(), entities(5), 1, &[]);
    }
}
