//! The naive on-disk architecture — the state of the art the paper compares
//! against (Section 4.1: "The state-of-the-art approach to integrate
//! classification with an RDBMS is captured by the na¨ıve on-disk
//! approach").
//!
//! `V` is a heap file of `(id, label, eps, f)` tuples with a hash index on
//! `id`. An eager update retrains and then rescans the entire heap,
//! rewriting labels that changed; a lazy All-Members scan classifies every
//! tuple. No clustering, no watermarks, no Skiing.

use hazy_learn::{Label, LinearModel, SgdTrainer, TrainingExample};
use hazy_linalg::wire;
use hazy_storage::{BufferPool, HashIndex, HeapFile, Rid, SimDisk, VirtualClock};

use crate::cost::{charge_classify, OpOverheads};
use crate::durable::{tag, Durable};
use crate::entity::{
    decode_tuple_header, decode_tuple_ref, encode_tuple, Entity, HTuple, TUPLE_LABEL_OFFSET,
};
use crate::stats::{MemoryFootprint, ViewStats};
use crate::view::{ClassifierView, Mode};

/// Naive on-disk view.
pub struct NaiveDiskView {
    mode: Mode,
    overheads: OpOverheads,
    pool: BufferPool,
    heap: HeapFile,
    hash: HashIndex,
    trainer: SgdTrainer,
    stats: ViewStats,
    scratch: Vec<u8>,
}

impl NaiveDiskView {
    /// Builds the materialized view on disk, classifying every entity under
    /// the initial model.
    pub fn new(
        entities: Vec<Entity>,
        trainer: SgdTrainer,
        mut pool: BufferPool,
        overheads: OpOverheads,
        mode: Mode,
    ) -> NaiveDiskView {
        let mut heap = HeapFile::new();
        let mut hash = HashIndex::with_capacity(&mut pool, entities.len());
        let mut scratch = Vec::new();
        let clock = pool.disk().clock().clone();
        for e in entities {
            charge_classify(&clock, &e.f);
            let eps = trainer.model().margin(&e.f);
            let label = trainer.model().predict(&e.f);
            scratch.clear();
            encode_tuple(&HTuple { id: e.id, label, eps, f: e.f }, &mut scratch);
            let rid = heap.append(&mut pool, &scratch).expect("entity tuple fits a page");
            hash.insert(&mut pool, e.id, rid.to_u64()).expect("unique entity ids");
        }
        pool.flush_all();
        NaiveDiskView { mode, overheads, pool, heap, hash, trainer, stats: ViewStats::default(), scratch }
    }

    fn clock(&self) -> VirtualClock {
        self.pool.disk().clock().clone()
    }

    /// Inverse of this view's [`Durable::save_state`] (tag byte already
    /// consumed): disk image first, then the pool over it, then the
    /// directories that wire records to pages.
    pub(crate) fn restore_state(
        b: &mut &[u8],
        clock: VirtualClock,
        overheads: OpOverheads,
    ) -> Option<NaiveDiskView> {
        let mode = Mode::from_tag(wire::take_u8(b)?)?;
        let trainer = SgdTrainer::restore_state(b)?;
        let stats = ViewStats::restore_state(b)?;
        let disk = SimDisk::restore_state(b, clock)?;
        let pool = BufferPool::restore_state(b, disk)?;
        let heap = HeapFile::restore_state(b)?;
        let hash = HashIndex::restore_state(b)?;
        Some(NaiveDiskView { mode, overheads, pool, heap, hash, trainer, stats, scratch: Vec::new() })
    }

    /// Full-scan relabel: the eager update's second half. Classifies off
    /// borrowed page bytes (no per-tuple materialization) and patches
    /// flipped labels as single bytes after the scan (the scan closure
    /// holds the pool).
    fn relabel_all(&mut self) {
        let clock = self.clock();
        let model = self.trainer.model().clone();
        let mut changed: Vec<(Rid, Label)> = Vec::new();
        let mut examined = 0u64;
        let stats = &mut self.stats;
        self.heap.scan(&mut self.pool, |rid, bytes| {
            examined += 1;
            let t = decode_tuple_ref(bytes).expect("well-formed tuple");
            charge_classify(&clock, &t.f);
            let l = model.predict(&t.f);
            stats.tuples_reclassified += 1;
            if l != t.label {
                changed.push((rid, l));
            }
            true
        });
        self.stats.tuples_examined += examined;
        for (rid, l) in changed {
            self.heap
                .patch_in_place(&mut self.pool, rid, TUPLE_LABEL_OFFSET, &[l as u8])
                .expect("label byte is in range");
            self.stats.labels_changed += 1;
        }
        self.pool.flush_all();
    }
}

impl Durable for NaiveDiskView {
    fn save_state(&self, out: &mut Vec<u8>) {
        out.push(tag::NAIVE_DISK);
        out.push(self.mode.tag());
        self.trainer.save_state(out);
        self.stats.save_state(out);
        self.pool.disk().save_state(out);
        self.pool.save_state(out);
        self.heap.save_state(out);
        self.hash.save_state(out);
    }
}

impl ClassifierView for NaiveDiskView {
    fn describe(&self) -> String {
        format!("naive-od ({})", self.mode.name())
    }

    fn mode(&self) -> Mode {
        self.mode
    }

    fn update(&mut self, ex: &TrainingExample) {
        self.update_batch(std::slice::from_ref(ex));
    }

    fn update_batch(&mut self, batch: &[TrainingExample]) {
        if batch.is_empty() {
            return;
        }
        // one statement, k SGD rounds, ONE full-heap relabel: the naive
        // architecture's relabel reads every tuple regardless of which
        // model rounds happened, so running it once after the batch gives
        // the same labels for 1/k of the page pins
        let clock = self.clock();
        clock.charge_ns(self.overheads.update_ns);
        for ex in batch {
            charge_classify(&clock, &ex.f);
            self.trainer.step(&ex.f, ex.y);
            self.stats.updates += 1;
        }
        if self.mode == Mode::Eager {
            self.relabel_all();
        }
    }

    fn read_single(&mut self, id: u64) -> Option<Label> {
        let clock = self.clock();
        clock.charge_ns(self.overheads.read_ns);
        self.stats.single_reads += 1;
        let rid = Rid::from_u64(self.hash.get(&mut self.pool, id)?);
        match self.mode {
            Mode::Eager => {
                let (_, label, _) = self
                    .heap
                    .get(&mut self.pool, rid, decode_tuple_header)
                    .ok()?
                    .ok()?;
                Some(label)
            }
            Mode::Lazy => {
                let trainer = &self.trainer;
                self.heap
                    .get(&mut self.pool, rid, |bytes| {
                        decode_tuple_ref(bytes).ok().map(|t| {
                            charge_classify(&clock, &t.f);
                            trainer.model().predict(&t.f)
                        })
                    })
                    .ok()?
            }
        }
    }

    fn entity_count(&self) -> u64 {
        self.heap.len()
    }

    fn count_positive(&mut self) -> u64 {
        let clock = self.clock();
        clock.charge_ns(self.overheads.scan_ns);
        self.stats.all_members += 1;
        let model = self.trainer.model().clone();
        let lazy = self.mode == Mode::Lazy;
        let mut n = 0u64;
        let mut examined = 0u64;
        self.heap.scan(&mut self.pool, |_, bytes| {
            examined += 1;
            if lazy {
                let t = decode_tuple_ref(bytes).expect("well-formed tuple");
                charge_classify(&clock, &t.f);
                if model.predict(&t.f) > 0 {
                    n += 1;
                }
            } else {
                clock.charge_cpu_ops(1);
                let (_, label, _) = decode_tuple_header(bytes).expect("well-formed tuple");
                if label > 0 {
                    n += 1;
                }
            }
            true
        });
        self.stats.tuples_examined += examined;
        n
    }

    fn positive_ids(&mut self) -> Vec<u64> {
        let clock = self.clock();
        clock.charge_ns(self.overheads.scan_ns);
        self.stats.all_members += 1;
        let model = self.trainer.model().clone();
        let lazy = self.mode == Mode::Lazy;
        let mut out = Vec::new();
        let mut examined = 0u64;
        self.heap.scan(&mut self.pool, |_, bytes| {
            examined += 1;
            if lazy {
                let t = decode_tuple_ref(bytes).expect("well-formed tuple");
                charge_classify(&clock, &t.f);
                if model.predict(&t.f) > 0 {
                    out.push(t.id);
                }
            } else {
                clock.charge_cpu_ops(1);
                let (id, label, _) = decode_tuple_header(bytes).expect("well-formed tuple");
                if label > 0 {
                    out.push(id);
                }
            }
            true
        });
        self.stats.tuples_examined += examined;
        out
    }

    fn top_k(&mut self, k: usize) -> Vec<(u64, f64)> {
        let clock = self.clock();
        clock.charge_ns(self.overheads.scan_ns);
        self.stats.all_members += 1;
        let model = self.trainer.model().clone();
        let mut scored = Vec::new();
        let mut examined = 0u64;
        self.heap.scan(&mut self.pool, |_, bytes| {
            examined += 1;
            let t = decode_tuple_ref(bytes).expect("well-formed tuple");
            charge_classify(&clock, &t.f);
            scored.push((t.id, model.margin(&t.f)));
            true
        });
        self.stats.tuples_examined += examined;
        crate::view::take_top_k(scored, k, &clock)
    }

    fn insert_entity(&mut self, e: Entity) {
        let clock = self.clock();
        charge_classify(&clock, &e.f);
        let eps = self.trainer.model().margin(&e.f);
        let label = self.trainer.model().predict(&e.f);
        self.scratch.clear();
        encode_tuple(&HTuple { id: e.id, label, eps, f: e.f }, &mut self.scratch);
        let rid = self.heap.append(&mut self.pool, &self.scratch).expect("tuple fits a page");
        self.hash.insert(&mut self.pool, e.id, rid.to_u64()).expect("unique entity ids");
    }

    fn remove_entity(&mut self, id: u64) -> bool {
        let Some(raw) = self.hash.get(&mut self.pool, id) else {
            return false;
        };
        let rid = Rid::from_u64(raw);
        // tombstone the heap record; slots are never reused, so the rid can
        // never alias a later record
        self.heap.delete(&mut self.pool, rid).expect("indexed rid resolves");
        self.hash.remove(&mut self.pool, id).expect("indexed key removes");
        self.pool.flush_all();
        true
    }

    fn model(&self) -> &LinearModel {
        self.trainer.model()
    }

    fn stats(&self) -> ViewStats {
        self.stats
    }

    fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            entities_bytes: 0,
            eps_map_bytes: 0,
            buffer_bytes: 0,
            model_bytes: self.trainer.model().mem_bytes(),
        }
    }

    fn clock(&self) -> &VirtualClock {
        self.pool.disk().clock()
    }

    fn snapshot_state(&mut self) -> Option<(Vec<Entity>, LinearModel)> {
        // a sequential heap scan (charged through the pool) copies the
        // population out; the view lives on
        Some((
            crate::migrate::evacuate_heap(&self.heap, &mut self.pool),
            self.trainer.model().clone(),
        ))
    }

    fn export_migration(&mut self) -> Option<crate::MigrationState> {
        Some(crate::MigrationState {
            entities: crate::migrate::evacuate_heap(&self.heap, &mut self.pool),
            trainer: self.trainer.clone(),
            carry: crate::MigrationCarry { skiing: None, stats: self.stats() },
        })
    }

    fn adopt_migration_carry(&mut self, carry: &crate::MigrationCarry) {
        // construction left our counters at zero: continue the source's
        self.stats = carry.stats;
        self.stats.migrations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazy_learn::SgdConfig;
    use hazy_linalg::FeatureVec;
    use hazy_storage::{CostModel, SimDisk};

    fn entities(n: usize) -> Vec<Entity> {
        (0..n)
            .map(|k| {
                Entity::new(
                    k as u64,
                    FeatureVec::dense(vec![(k % 13) as f32 / 13.0 - 0.5, (k % 7) as f32 / 7.0 - 0.5]),
                )
            })
            .collect()
    }

    fn view(mode: Mode, pool_pages: usize) -> NaiveDiskView {
        let pool = BufferPool::new(SimDisk::new(VirtualClock::new(CostModel::sata_2008())), pool_pages);
        NaiveDiskView::new(entities(300), SgdTrainer::new(SgdConfig::svm(), 2), pool, OpOverheads::free(), mode)
    }

    fn ex(k: usize) -> TrainingExample {
        let x0 = (k % 11) as f32 / 11.0 - 0.5;
        let x1 = (k % 17) as f32 / 17.0 - 0.5;
        let y = if x0 + 0.3 * x1 >= 0.0 { 1 } else { -1 };
        TrainingExample::new(0, FeatureVec::dense(vec![x0, x1]), y)
    }

    #[test]
    fn labels_match_model_after_updates() {
        for mode in [Mode::Eager, Mode::Lazy] {
            let mut v = view(mode, 64);
            for k in 0..60 {
                v.update(&ex(k));
            }
            let model = v.model().clone();
            for e in entities(300) {
                assert_eq!(v.read_single(e.id), Some(model.predict(&e.f)), "{mode:?}");
            }
            let expect = entities(300).iter().filter(|e| model.predict(&e.f) > 0).count() as u64;
            assert_eq!(v.count_positive(), expect);
            assert_eq!(v.positive_ids().len() as u64, expect);
        }
    }

    #[test]
    fn survives_a_tiny_buffer_pool() {
        let mut v = view(Mode::Eager, 4);
        for k in 0..20 {
            v.update(&ex(k));
        }
        let model = v.model().clone();
        for e in entities(300).iter().step_by(17) {
            assert_eq!(v.read_single(e.id), Some(model.predict(&e.f)));
        }
    }

    #[test]
    fn eager_update_scans_whole_heap() {
        let mut v = view(Mode::Eager, 64);
        v.update(&ex(0));
        assert_eq!(v.stats().tuples_reclassified, 300);
    }

    #[test]
    fn lazy_update_touches_nothing() {
        let mut v = view(Mode::Lazy, 64);
        v.update(&ex(0));
        assert_eq!(v.stats().tuples_reclassified, 0);
        assert_eq!(v.stats().tuples_examined, 0);
    }

    #[test]
    fn inserted_entity_readable() {
        let mut v = view(Mode::Eager, 64);
        v.update(&ex(3));
        v.insert_entity(Entity::new(5555, FeatureVec::dense(vec![0.3, 0.1])));
        let expect = v.model().predict(&FeatureVec::dense(vec![0.3, 0.1]));
        assert_eq!(v.read_single(5555), Some(expect));
    }

    #[test]
    fn missing_id_is_none() {
        let mut v = view(Mode::Lazy, 64);
        assert_eq!(v.read_single(123_456), None);
    }
}
