//! The naive main-memory architecture (baseline).
//!
//! Entities live in a `Vec`. Eager updates retrain and then relabel *every*
//! entity; lazy updates retrain only, and every read classifies from
//! scratch. This is the "na¨ıve MM" row of Figure 4 — fast storage, no
//! algorithmic savings — and the gap between it and [`HazyMemView`] is the
//! paper's claim that the Skiing/watermark strategy, not main memory alone,
//! provides an order of magnitude.
//!
//! [`HazyMemView`]: crate::hazy_mem::HazyMemView

use std::collections::HashMap;

use hazy_learn::{Label, LinearModel, SgdTrainer, TrainingExample};
use hazy_linalg::{decode_fvec, encode_fvec, wire};
use hazy_storage::VirtualClock;

use crate::cost::{charge_classify, OpOverheads};
use crate::durable::{tag, Durable};
use crate::entity::Entity;
use crate::migrate::{MigrationCarry, MigrationState};
use crate::stats::{MemoryFootprint, ViewStats};
use crate::view::{ClassifierView, Mode};

/// Naive in-memory view.
pub struct NaiveMemView {
    mode: Mode,
    clock: VirtualClock,
    overheads: OpOverheads,
    trainer: SgdTrainer,
    entities: Vec<Entity>,
    /// Materialized labels; authoritative only in eager mode.
    labels: Vec<Label>,
    idmap: HashMap<u64, u32>,
    stats: ViewStats,
}

impl NaiveMemView {
    /// Builds the view, classifying every entity under the initial model.
    pub fn new(
        entities: Vec<Entity>,
        trainer: SgdTrainer,
        clock: VirtualClock,
        overheads: OpOverheads,
        mode: Mode,
    ) -> NaiveMemView {
        let mut labels = Vec::with_capacity(entities.len());
        let mut idmap = HashMap::with_capacity(entities.len());
        for (i, e) in entities.iter().enumerate() {
            charge_classify(&clock, &e.f);
            labels.push(trainer.model().predict(&e.f));
            idmap.insert(e.id, i as u32);
        }
        NaiveMemView { mode, clock, overheads, trainer, entities, labels, idmap, stats: ViewStats::default() }
    }

    /// Inverse of this view's [`Durable::save_state`] (tag byte already
    /// consumed by the dispatcher). The id map is rebuilt from the entity
    /// list — derived structure, not serialized state.
    pub(crate) fn restore_state(
        b: &mut &[u8],
        clock: VirtualClock,
        overheads: OpOverheads,
    ) -> Option<NaiveMemView> {
        let mode = Mode::from_tag(wire::take_u8(b)?)?;
        let trainer = SgdTrainer::restore_state(b)?;
        let stats = ViewStats::restore_state(b)?;
        let n = wire::take_u64(b)? as usize;
        let mut entities = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut idmap = HashMap::with_capacity(n);
        for i in 0..n {
            let id = wire::take_u64(b)?;
            let label = wire::take_u8(b)? as i8;
            if label != 1 && label != -1 {
                return None;
            }
            let f = decode_fvec(b)?;
            idmap.insert(id, i as u32);
            entities.push(Entity::new(id, f));
            labels.push(label);
        }
        Some(NaiveMemView { mode, clock, overheads, trainer, entities, labels, idmap, stats })
    }

    fn relabel_all(&mut self) {
        for (i, e) in self.entities.iter().enumerate() {
            charge_classify(&self.clock, &e.f);
            let l = self.trainer.model().predict(&e.f);
            self.stats.tuples_reclassified += 1;
            if l != self.labels[i] {
                self.labels[i] = l;
                self.stats.labels_changed += 1;
            }
        }
        self.stats.tuples_examined += self.entities.len() as u64;
    }
}

impl Durable for NaiveMemView {
    fn save_state(&self, out: &mut Vec<u8>) {
        out.push(tag::NAIVE_MEM);
        out.push(self.mode.tag());
        self.trainer.save_state(out);
        self.stats.save_state(out);
        out.extend_from_slice(&(self.entities.len() as u64).to_le_bytes());
        for (e, label) in self.entities.iter().zip(self.labels.iter()) {
            out.extend_from_slice(&e.id.to_le_bytes());
            out.push(*label as u8);
            encode_fvec(&e.f, out);
        }
    }
}

impl ClassifierView for NaiveMemView {
    fn describe(&self) -> String {
        format!("naive-mm ({})", self.mode.name())
    }

    fn mode(&self) -> Mode {
        self.mode
    }

    fn update(&mut self, ex: &TrainingExample) {
        self.update_batch(std::slice::from_ref(ex));
    }

    fn update_batch(&mut self, batch: &[TrainingExample]) {
        if batch.is_empty() {
            return;
        }
        // one statement, k SGD rounds, one relabel pass — identical labels
        // to k sequential updates at 1/k of the maintenance scans
        self.clock.charge_ns(self.overheads.update_ns);
        for ex in batch {
            charge_classify(&self.clock, &ex.f);
            self.trainer.step(&ex.f, ex.y);
            self.stats.updates += 1;
        }
        if self.mode == Mode::Eager {
            self.relabel_all();
        }
    }

    fn read_single(&mut self, id: u64) -> Option<Label> {
        self.clock.charge_ns(self.overheads.read_ns);
        self.stats.single_reads += 1;
        let idx = *self.idmap.get(&id)? as usize;
        match self.mode {
            Mode::Eager => Some(self.labels[idx]),
            Mode::Lazy => {
                let f = &self.entities[idx].f;
                charge_classify(&self.clock, f);
                Some(self.trainer.model().predict(f))
            }
        }
    }

    fn entity_count(&self) -> u64 {
        self.entities.len() as u64
    }

    fn count_positive(&mut self) -> u64 {
        self.clock.charge_ns(self.overheads.scan_ns);
        self.stats.all_members += 1;
        self.stats.tuples_examined += self.entities.len() as u64;
        match self.mode {
            Mode::Eager => {
                self.clock.charge_cpu_ops(self.entities.len() as u64);
                self.labels.iter().filter(|&&l| l > 0).count() as u64
            }
            Mode::Lazy => {
                let mut n = 0;
                for e in &self.entities {
                    charge_classify(&self.clock, &e.f);
                    if self.trainer.model().predict(&e.f) > 0 {
                        n += 1;
                    }
                }
                n
            }
        }
    }

    fn positive_ids(&mut self) -> Vec<u64> {
        self.clock.charge_ns(self.overheads.scan_ns);
        self.stats.all_members += 1;
        self.stats.tuples_examined += self.entities.len() as u64;
        let mut out = Vec::new();
        for (i, e) in self.entities.iter().enumerate() {
            let positive = match self.mode {
                Mode::Eager => {
                    self.clock.charge_cpu_ops(1);
                    self.labels[i] > 0
                }
                Mode::Lazy => {
                    charge_classify(&self.clock, &e.f);
                    self.trainer.model().predict(&e.f) > 0
                }
            };
            if positive {
                out.push(e.id);
            }
        }
        out
    }

    fn top_k(&mut self, k: usize) -> Vec<(u64, f64)> {
        self.clock.charge_ns(self.overheads.scan_ns);
        self.stats.all_members += 1;
        self.stats.tuples_examined += self.entities.len() as u64;
        let mut scored = Vec::with_capacity(self.entities.len());
        for e in &self.entities {
            charge_classify(&self.clock, &e.f);
            scored.push((e.id, self.trainer.model().margin(&e.f)));
        }
        crate::view::take_top_k(scored, k, &self.clock)
    }

    fn insert_entity(&mut self, e: Entity) {
        charge_classify(&self.clock, &e.f);
        let label = self.trainer.model().predict(&e.f);
        self.idmap.insert(e.id, self.entities.len() as u32);
        self.labels.push(label);
        self.entities.push(e);
    }

    fn remove_entity(&mut self, id: u64) -> bool {
        let Some(idx) = self.idmap.remove(&id) else {
            return false;
        };
        let idx = idx as usize;
        self.entities.remove(idx);
        self.labels.remove(idx);
        // every entity behind the removed slot shifts down one position
        for v in self.idmap.values_mut() {
            if *v > idx as u32 {
                *v -= 1;
            }
        }
        self.clock.charge_cpu_ops(self.entities.len() as u64);
        true
    }

    fn model(&self) -> &LinearModel {
        self.trainer.model()
    }

    fn stats(&self) -> ViewStats {
        self.stats
    }

    fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            entities_bytes: self.entities.iter().map(|e| 8 + e.f.mem_bytes()).sum::<usize>()
                + self.labels.len(),
            eps_map_bytes: 0,
            buffer_bytes: 0,
            model_bytes: self.trainer.model().mem_bytes(),
        }
    }

    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn snapshot_state(&mut self) -> Option<(Vec<Entity>, LinearModel)> {
        // one in-memory pass copies the population out; the view lives on
        self.clock.charge_cpu_ops(self.entities.len() as u64);
        Some((self.entities.clone(), self.trainer.model().clone()))
    }

    fn export_migration(&mut self) -> Option<MigrationState> {
        // one in-memory pass copies the population out
        self.clock.charge_cpu_ops(self.entities.len() as u64);
        Some(MigrationState {
            entities: self.entities.clone(),
            trainer: self.trainer.clone(),
            carry: MigrationCarry { skiing: None, stats: self.stats() },
        })
    }

    fn adopt_migration_carry(&mut self, carry: &MigrationCarry) {
        // construction left our counters at zero: continue the source's
        self.stats = carry.stats;
        self.stats.migrations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazy_learn::SgdConfig;
    use hazy_linalg::FeatureVec;
    use hazy_storage::CostModel;

    fn entities(n: usize) -> Vec<Entity> {
        (0..n)
            .map(|k| {
                Entity::new(
                    k as u64,
                    FeatureVec::dense(vec![(k % 7) as f32 / 7.0 - 0.4, (k % 5) as f32 / 5.0 - 0.3]),
                )
            })
            .collect()
    }

    fn view(mode: Mode) -> NaiveMemView {
        NaiveMemView::new(
            entities(100),
            SgdTrainer::new(SgdConfig::svm(), 2),
            VirtualClock::new(CostModel::free()),
            OpOverheads::free(),
            mode,
        )
    }

    fn ex(x0: f32, x1: f32, y: i8) -> TrainingExample {
        TrainingExample::new(0, FeatureVec::dense(vec![x0, x1]), y)
    }

    #[test]
    fn eager_and_lazy_agree_on_labels() {
        let mut eager = view(Mode::Eager);
        let mut lazy = view(Mode::Lazy);
        for k in 0..50 {
            let e = ex(0.3 + (k % 3) as f32 * 0.1, -0.2, if k % 2 == 0 { 1 } else { -1 });
            eager.update(&e);
            lazy.update(&e);
        }
        for id in 0..100u64 {
            assert_eq!(eager.read_single(id), lazy.read_single(id), "id {id}");
        }
        assert_eq!(eager.count_positive(), lazy.count_positive());
        assert_eq!(eager.positive_ids(), lazy.positive_ids());
    }

    #[test]
    fn eager_update_touches_every_entity() {
        let mut v = view(Mode::Eager);
        v.update(&ex(0.5, 0.5, 1));
        assert_eq!(v.stats().tuples_reclassified, 100);
        let mut l = view(Mode::Lazy);
        l.update(&ex(0.5, 0.5, 1));
        assert_eq!(l.stats().tuples_reclassified, 0);
    }

    #[test]
    fn missing_id_reads_none() {
        let mut v = view(Mode::Eager);
        assert_eq!(v.read_single(10_000), None);
    }

    #[test]
    fn inserted_entity_is_classified_and_readable() {
        let mut v = view(Mode::Eager);
        v.update(&ex(1.0, 0.0, 1));
        v.insert_entity(Entity::new(777, FeatureVec::dense(vec![1.0, 0.0])));
        assert_eq!(v.read_single(777), Some(1));
    }

    #[test]
    fn counts_match_reads(){
        let mut v = view(Mode::Eager);
        for k in 0..30 {
            v.update(&ex((k % 4) as f32 * 0.2 - 0.3, 0.4, if k % 3 == 0 { -1 } else { 1 }));
        }
        let count = v.count_positive();
        let by_read = (0..100u64).filter(|&id| v.read_single(id) == Some(1)).count() as u64;
        assert_eq!(count, by_read);
    }
}
