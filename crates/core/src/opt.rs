//! Offline optimum for the reorganization-scheduling problem.
//!
//! Section 3.3 frames maintenance as an online problem: at round `i` either
//! pay the incremental cost `c(s,i)` (where `s` is the last reorganization)
//! or pay `S` to reorganize. A *schedule* `u̅ = (u₁ < u₂ < … < u_M)` lists the
//! reorganization rounds; its cost is `Σᵢ c(⌊i⌋_u̅, i) + M·S`. This module
//! computes the best schedule by dynamic programming — the `Opt` that
//! Lemma 3.2's competitive ratio is measured against — and simulates the
//! Skiing strategy on the same costs so tests and the `skiing_vs_opt`
//! example can compare them.

/// A cost matrix `c(s, i)` for `0 ≤ s ≤ i < n`, provided as a closure.
///
/// The paper's assumptions (Section 3.3): costs are nonnegative, at most
/// `S`, and reorganizing more recently never raises the cost
/// (`c(s,i) ≤ c(s',i)` for `s ≥ s'`).
pub trait CostMatrix {
    /// Incremental cost at round `i` given the last reorganization happened
    /// at round `s` (`s ≤ i`).
    fn cost(&self, s: usize, i: usize) -> f64;
    /// Number of rounds.
    fn rounds(&self) -> usize;
}

impl<F: Fn(usize, usize) -> f64> CostMatrix for (F, usize) {
    fn cost(&self, s: usize, i: usize) -> f64 {
        (self.0)(s, i)
    }
    fn rounds(&self) -> usize {
        self.1
    }
}

/// Result of evaluating a strategy on a cost matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleOutcome {
    /// Rounds at which the strategy reorganized (1-based round indices in
    /// `1..=n`), excluding the implicit initial organization at round 0.
    pub reorgs: Vec<usize>,
    /// Total cost `Σ c + M·S`.
    pub cost: f64,
}

/// Exact offline optimum via dynamic programming, O(n²) over the cost
/// matrix.
///
/// `best[j]` is the minimum cost of serving rounds `1..=j` given the most
/// recent reorganization is *at* round `j` (having already paid its `S`
/// unless `j = 0`, which is the free initial organization).
pub fn optimal_schedule<C: CostMatrix + ?Sized>(costs: &C, s: f64) -> ScheduleOutcome {
    let n = costs.rounds();
    // suffix_cost[j] computed lazily: cost of running rounds j+1..=end from
    // base j is Σ_{i=j+1..end} c(j, i); we need partial sums per (j, end).
    // best[j] = min over previous base k < j of best[k] + Σ_{i=k+1..j-? }
    // Work with: f(j) = best cost covering rounds 1..=j with last reorg at j.
    // f(0) = 0. f(j) = min_{0 ≤ k < j} f(k) + Σ_{i=k+1..j} c(k, i) − c(k, j)
    // ... careful: reorganizing *at* round j replaces paying c(k, j) with S.
    // Define g(k, j) = Σ_{i=k+1..j-1} c(k, i). Then
    //   f(j) = min_k f(k) + g(k, j) + S          (reorg at j, rounds k+1..j-1 incremental)
    // and the answer = min_k f(k) + Σ_{i=k+1..n} c(k, i)   (no further reorgs).
    let mut f = vec![0.0f64; n + 1];
    let mut parent = vec![usize::MAX; n + 1];
    // prefix[k][j] = Σ_{i=k+1..j} c(k,i) computed incrementally per k to stay
    // O(n²) time, O(n) space per row.
    let mut best_answer = f64::INFINITY;
    let mut best_last = 0usize;
    // We fill f by increasing j; for that we need, for every base k < j, the
    // running sum Σ_{i=k+1..j-1} c(k,i). Keep a vector of running sums.
    let mut running: Vec<f64> = vec![0.0; n + 1]; // running[k] = Σ_{i=k+1..j-1} c(k,i)
    for j in 1..=n {
        // extend running sums to include round j-1 (they lag one round)
        if j >= 2 {
            for (k, r) in running.iter_mut().enumerate().take(j - 1) {
                *r += costs.cost(k, j - 1);
            }
        }
        f[j] = f64::INFINITY;
        // the paper's schedule cost charges c(⌊j⌋, j) = c(j, j) on the
        // reorganization round itself, on top of M·S
        let self_cost = costs.cost(j, j);
        for k in 0..j {
            let cand = f[k] + running[k] + s + self_cost;
            if cand < f[j] {
                f[j] = cand;
                parent[j] = k;
            }
        }
    }
    // close out: last reorg at k, then incremental to the end
    {
        let mut tail: Vec<f64> = vec![0.0; n + 1];
        for (k, slot) in tail.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in k + 1..=n {
                acc += costs.cost(k, i);
            }
            *slot = acc;
        }
        for k in 0..=n {
            let total = f[k] + tail[k];
            if total < best_answer {
                best_answer = total;
                best_last = k;
            }
        }
    }
    // reconstruct the schedule
    let mut reorgs = Vec::new();
    let mut j = best_last;
    while j != 0 && j != usize::MAX {
        reorgs.push(j);
        j = parent[j];
    }
    reorgs.reverse();
    ScheduleOutcome { reorgs, cost: best_answer }
}

/// Simulates the Skiing strategy over the same cost matrix, following the
/// paper's Figure 7 exactly: at round `i`, if the *already accumulated*
/// waste `a` satisfies `a ≥ α·S`, reorganize (paying `S + c(i,i)`) and reset
/// `a`; otherwise take the incremental step and add its cost to `a`. The
/// strategy never peeks at the current round's cost before deciding — that
/// is what makes it a deterministic *online* strategy.
pub fn skiing_schedule<C: CostMatrix + ?Sized>(costs: &C, s: f64, alpha: f64) -> ScheduleOutcome {
    let n = costs.rounds();
    let mut base = 0usize;
    let mut acc = 0.0f64;
    let mut total = 0.0f64;
    let mut reorgs = Vec::new();
    for i in 1..=n {
        if acc >= alpha * s {
            total += s + costs.cost(i, i);
            reorgs.push(i);
            base = i;
            acc = 0.0;
        } else {
            let c = costs.cost(base, i);
            acc += c;
            total += c;
        }
    }
    ScheduleOutcome { reorgs, cost: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A matrix where cost jumps to S-ish immediately: Opt reorganizes every
    /// round is wrong (it pays M·S); Opt should balance.
    fn step_costs(n: usize, after: usize, hi: f64) -> impl CostMatrix {
        (move |s: usize, i: usize| if i - s > after { hi } else { 0.0 }, n)
    }

    #[test]
    fn opt_on_free_costs_never_reorganizes() {
        let costs = (|_s: usize, _i: usize| 0.0, 50usize);
        let out = optimal_schedule(&costs, 10.0);
        assert_eq!(out.cost, 0.0);
        assert!(out.reorgs.is_empty());
    }

    #[test]
    fn opt_reorganizes_when_waste_exceeds_s() {
        // after 3 rounds from a base, each round costs 10; S = 15
        let costs = step_costs(20, 3, 10.0);
        let out = optimal_schedule(&costs, 15.0);
        assert!(!out.reorgs.is_empty());
        // schedule must beat both extremes
        let never: f64 = (1..=20).map(|i| costs.cost(0, i)).sum();
        assert!(out.cost < never);
    }

    #[test]
    fn opt_is_no_worse_than_any_periodic_schedule() {
        let costs = (|s: usize, i: usize| 0.5 * (i - s) as f64, 30usize);
        let s = 12.0;
        let opt = optimal_schedule(&costs, s);
        for period in 1..=30 {
            // build periodic schedule cost
            let mut base = 0;
            let mut total = 0.0;
            for i in 1..=30 {
                if i - base >= period {
                    total += s;
                    base = i;
                } else {
                    total += costs.cost(base, i);
                }
            }
            assert!(opt.cost <= total + 1e-9, "period {period}: opt {} vs {total}", opt.cost);
        }
    }

    #[test]
    fn skiing_simulation_matches_hand_trace() {
        // c(s,i) = 2 per round, S = 5, α = 1. Figure 7 checks `a ≥ αS`
        // *before* paying: a = 0,2,4,6 → first reorg fires at round 4, then
        // every 4 rounds.
        let costs = (|s: usize, i: usize| if s == i { 0.0 } else { 2.0 }, 9usize);
        let out = skiing_schedule(&costs, 5.0, 1.0);
        assert_eq!(out.reorgs, vec![4, 8]);
        // rounds 1-3: 6, round 4: S=5, rounds 5-7: 6, round 8: 5, round 9: 2
        assert!((out.cost - (6.0 + 5.0 + 6.0 + 5.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn skiing_respects_competitive_bound_on_adversarial_step_costs() {
        let s = 10.0;
        let (sigma, alpha) = (0.0, 1.0);
        for after in 0..5 {
            for hi in [1.0f64, 3.0, 9.99] {
                let costs = step_costs(60, after, hi);
                let ski = skiing_schedule(&costs, s, alpha);
                let opt = optimal_schedule(&costs, s);
                let bound = Skiing_bound(sigma, alpha) * opt.cost + 2.0 * s;
                assert!(
                    ski.cost <= bound + 1e-9,
                    "after={after} hi={hi}: ski {} opt {}",
                    ski.cost,
                    opt.cost
                );
            }
        }
    }

    #[allow(non_snake_case)]
    fn Skiing_bound(sigma: f64, alpha: f64) -> f64 {
        crate::Skiing::competitive_ratio(sigma, alpha)
    }
}
