//! The Skiing strategy (Section 3.2.1, analysis Section 3.3).
//!
//! At each round the strategy either (1) takes an incremental step of cost
//! `c(i)` — unknown until taken — or (2) reorganizes at fixed, known cost
//! `S`. Skiing accumulates `a += c(i)` and reorganizes once `a ≥ α·S`, the
//! classic ski-rental rule. With `α` the positive root of `x² + σx − 1`
//! (where `σ·S` is the time to scan `H`), Lemma 3.2 shows the competitive
//! ratio is exactly `1 + σ + α`, optimal among deterministic online
//! strategies; as data grows, `σ → 0`, `α → 1` and the ratio tends to 2
//! (Theorem 3.3). The paper (and this engine) defaults to `α = 1`.

/// Online reorganization controller. All costs are in virtual nanoseconds.
#[derive(Clone, Debug)]
pub struct Skiing {
    alpha: f64,
    accumulated: f64,
    reorg_cost: f64,
    reorgs: u64,
    rounds: u64,
}

impl Skiing {
    /// Strategy with parameter `alpha` and an initial estimate of the
    /// reorganization cost `S` (Hazy measures the real `S` at each
    /// reorganization and updates it).
    ///
    /// # Panics
    /// Panics when `alpha ≤ 0` or `initial_s < 0`.
    pub fn new(alpha: f64, initial_s: f64) -> Skiing {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(initial_s >= 0.0, "reorg cost cannot be negative");
        Skiing { alpha, accumulated: 0.0, reorg_cost: initial_s, reorgs: 0, rounds: 0 }
    }

    /// The strategy parameter `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The current estimate of the reorganization cost `S`.
    pub fn reorg_cost(&self) -> f64 {
        self.reorg_cost
    }

    /// Accumulated waste `a(i)` since the last reorganization.
    pub fn accumulated(&self) -> f64 {
        self.accumulated
    }

    /// Reorganizations triggered so far.
    pub fn reorgs(&self) -> u64 {
        self.reorgs
    }

    /// Rounds (incremental steps) observed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Figure 7's test, made *before* each round's work: should this round
    /// be a reorganization (`a ≥ α·S`)?
    pub fn should_reorganize(&self) -> bool {
        self.accumulated >= self.alpha * self.reorg_cost
    }

    /// Adds the measured cost of an incremental step just taken.
    pub fn add_cost(&mut self, cost: f64) {
        self.rounds += 1;
        self.accumulated += cost.max(0.0);
    }

    /// Records the measured cost of the incremental step just taken and
    /// reports whether the *next* round should reorganize (`a ≥ α·S`).
    #[must_use = "ignoring the decision defeats the strategy"]
    pub fn record_cost(&mut self, cost: f64) -> bool {
        self.add_cost(cost);
        self.should_reorganize()
    }

    /// Tells the strategy a reorganization was performed, with its measured
    /// cost (the new `S`), and resets the accumulator.
    pub fn reorganized(&mut self, measured_s: f64) {
        self.reorgs += 1;
        self.accumulated = 0.0;
        if measured_s > 0.0 {
            self.reorg_cost = measured_s;
        }
    }

    /// Adopts the history of a prior controller across a **live
    /// migration**: the accumulated waste `a(i)`, the round count, and the
    /// lifetime reorganization count carry over, while the reorganization
    /// cost estimate `S` stays *this* controller's — the migration rebuild
    /// just measured the real `S` of the new physical layout, and the old
    /// layout's `S` says nothing about it. Carrying `a` is what makes the
    /// strategy seamless: waste accumulated before the switch still counts
    /// toward the next reorganization decision, exactly as if the view had
    /// always lived in the new architecture.
    pub fn carry_from(&mut self, prior: &Skiing) {
        self.accumulated = prior.accumulated;
        self.reorgs += prior.reorgs;
        self.rounds += prior.rounds;
    }

    /// Adopts only a prior *count* of reorganizations — the migration path
    /// from an architecture with no controller to carry (naive source), so
    /// the lifetime [`ViewStats::reorgs`](crate::ViewStats::reorgs) history
    /// survives a hazy → naive → hazy round trip.
    pub fn carry_reorg_count(&mut self, prior_reorgs: u64) {
        self.reorgs += prior_reorgs;
    }

    /// Serializes the controller bit-exactly (checkpoint path). The
    /// accumulated waste and measured `S` are virtual-time floats; restoring
    /// exact bits is what makes a recovered view reorganize at exactly the
    /// same future rounds as one that never crashed.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        for x in [self.alpha, self.accumulated, self.reorg_cost] {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&self.reorgs.to_le_bytes());
        out.extend_from_slice(&self.rounds.to_le_bytes());
    }

    /// Inverse of [`Skiing::save_state`]; `None` on truncated input.
    pub fn restore_state(b: &mut &[u8]) -> Option<Skiing> {
        use hazy_linalg::wire::{take_f64, take_u64};
        let alpha = take_f64(b)?;
        let accumulated = take_f64(b)?;
        let reorg_cost = take_f64(b)?;
        let reorgs = take_u64(b)?;
        let rounds = take_u64(b)?;
        if !alpha.is_finite() || alpha <= 0.0 {
            return None;
        }
        Some(Skiing { alpha, accumulated, reorg_cost, reorgs, rounds })
    }

    /// The α that minimizes the competitive ratio for a given `σ` (scan
    /// time over reorganization time): the positive root of `x² + σx − 1`.
    pub fn alpha_optimal(sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "sigma cannot be negative");
        (-sigma + (sigma * sigma + 4.0).sqrt()) / 2.0
    }

    /// The competitive ratio `1 + σ + α` of Lemma 3.2.
    pub fn competitive_ratio(sigma: f64, alpha: f64) -> f64 {
        1.0 + sigma + alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_exactly_at_alpha_s() {
        let mut sk = Skiing::new(1.0, 100.0);
        assert!(!sk.record_cost(40.0));
        assert!(!sk.record_cost(40.0));
        assert!(sk.record_cost(40.0), "120 ≥ 100 must trigger");
        sk.reorganized(100.0);
        assert_eq!(sk.accumulated(), 0.0);
        assert_eq!(sk.reorgs(), 1);
    }

    #[test]
    fn alpha_scales_the_threshold() {
        let mut lazy = Skiing::new(2.0, 100.0);
        assert!(!lazy.record_cost(150.0));
        assert!(lazy.record_cost(60.0));
        let mut eager = Skiing::new(0.5, 100.0);
        assert!(eager.record_cost(60.0));
    }

    #[test]
    fn measured_s_replaces_estimate() {
        let mut sk = Skiing::new(1.0, 1.0);
        assert!(sk.record_cost(5.0));
        sk.reorganized(1000.0);
        assert_eq!(sk.reorg_cost(), 1000.0);
        assert!(!sk.record_cost(5.0), "threshold is now 1000");
    }

    #[test]
    fn zero_measured_s_keeps_old_estimate() {
        // a free-cost-model test run measures S = 0; the strategy must not
        // divide its threshold to zero and reorganize every round
        let mut sk = Skiing::new(1.0, 50.0);
        sk.reorganized(0.0);
        assert_eq!(sk.reorg_cost(), 50.0);
    }

    #[test]
    fn alpha_optimal_solves_the_quadratic() {
        for sigma in [0.0, 0.1, 0.5, 1.0, 3.0] {
            let a = Skiing::alpha_optimal(sigma);
            assert!((a * a + sigma * a - 1.0).abs() < 1e-12, "sigma {sigma}");
            assert!(a > 0.0);
        }
        // σ → 0 gives the classic ski-rental α = 1 and ratio 2 (Thm 3.3)
        assert!((Skiing::alpha_optimal(0.0) - 1.0).abs() < 1e-12);
        assert!((Skiing::competitive_ratio(0.0, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_costs_are_clamped() {
        let mut sk = Skiing::new(1.0, 10.0);
        assert!(!sk.record_cost(-5.0));
        assert_eq!(sk.accumulated(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_rejected() {
        let _ = Skiing::new(0.0, 1.0);
    }
}
