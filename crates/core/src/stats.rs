//! Per-view operation statistics and memory accounting.

/// Counters a view maintains across its lifetime. The bench harness diffs
/// snapshots around a measured phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ViewStats {
    /// Training examples consumed (`Update` operations).
    pub updates: u64,
    /// Single-entity reads served.
    pub single_reads: u64,
    /// All-Members queries served.
    pub all_members: u64,
    /// Tuples whose labels were recomputed by incremental steps.
    pub tuples_reclassified: u64,
    /// Tuples examined (read) by scans of any kind.
    pub tuples_examined: u64,
    /// Labels that actually flipped during maintenance.
    pub labels_changed: u64,
    /// Reorganizations performed (Skiing choice 2).
    pub reorgs: u64,
    /// Virtual ns spent in the most recent reorganization (the measured S).
    pub last_reorg_ns: u64,
    /// Single-entity reads the hybrid answered from the ε-map alone.
    pub eps_map_prunes: u64,
    /// Single-entity reads the hybrid answered from its buffer.
    pub buffer_hits: u64,
    /// Single-entity reads that had to go to disk.
    pub disk_reads: u64,
    /// Live migrations this view has survived (architecture/mode switches
    /// performed by `hazy-tune`'s advisor or an explicit `ALTER ... SET
    /// ARCH`). Carried across migrations like every other counter, so the
    /// value is the view's lifetime total.
    pub migrations: u64,
    /// Snapshot epochs published for this view (serving layers that answer
    /// reads from [`ModelEpoch`](crate::ModelEpoch)s). **Ephemeral**: epochs
    /// live only in process memory, so this counter is excluded from
    /// [`save_state`](ViewStats::save_state) — recovery must not resurrect
    /// epochs, and a recovered view restarts its publication count.
    pub epochs_published: u64,
    /// Reader pins taken against this view's epochs. Ephemeral, like
    /// [`epochs_published`](ViewStats::epochs_published).
    pub epoch_pins: u64,
}

impl ViewStats {
    /// This snapshot with the ephemeral epoch counters zeroed — what the
    /// durable paths persist and what recovery-equivalence suites compare
    /// (two runs that served different reader populations still have
    /// identical logical state).
    pub fn durable(mut self) -> ViewStats {
        self.epochs_published = 0;
        self.epoch_pins = 0;
        self
    }

    /// Serializes every **durable** counter (checkpoint path); the epoch
    /// counters are ephemeral and excluded (restore leaves them zero).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        for v in [
            self.updates,
            self.single_reads,
            self.all_members,
            self.tuples_reclassified,
            self.tuples_examined,
            self.labels_changed,
            self.reorgs,
            self.last_reorg_ns,
            self.eps_map_prunes,
            self.buffer_hits,
            self.disk_reads,
            self.migrations,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Inverse of [`ViewStats::save_state`]; `None` on truncated input.
    pub fn restore_state(b: &mut &[u8]) -> Option<ViewStats> {
        use hazy_linalg::wire::take_u64;
        Some(ViewStats {
            updates: take_u64(b)?,
            single_reads: take_u64(b)?,
            all_members: take_u64(b)?,
            tuples_reclassified: take_u64(b)?,
            tuples_examined: take_u64(b)?,
            labels_changed: take_u64(b)?,
            reorgs: take_u64(b)?,
            last_reorg_ns: take_u64(b)?,
            eps_map_prunes: take_u64(b)?,
            buffer_hits: take_u64(b)?,
            disk_reads: take_u64(b)?,
            migrations: take_u64(b)?,
            epochs_published: 0,
            epoch_pins: 0,
        })
    }
}

/// Memory footprint breakdown (Figure 6(A)).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemoryFootprint {
    /// Bytes held by entity feature vectors resident in memory.
    pub entities_bytes: usize,
    /// Bytes of the hybrid's ε-map (`id → eps`).
    pub eps_map_bytes: usize,
    /// Bytes of the hybrid's boundary buffer (ids + feature vectors).
    pub buffer_bytes: usize,
    /// Bytes of the model itself.
    pub model_bytes: usize,
}

impl MemoryFootprint {
    /// Total resident bytes.
    pub fn total(&self) -> usize {
        self.entities_bytes + self.eps_map_bytes + self.buffer_bytes + self.model_bytes
    }
}

/// Reports one completed reorganization to the global observability
/// layer (counter + trace event). Shared by the main-memory and on-disk
/// views so the sites stay one line.
pub(crate) fn obs_reorg(ns: u64) {
    static REORGS: std::sync::OnceLock<&'static hazy_obs::Counter> = std::sync::OnceLock::new();
    REORGS.get_or_init(|| hazy_obs::counter("core_reorgs_total")).inc();
    hazy_obs::emit(hazy_obs::EventKind::Reorg, ns, 0, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_total_sums_parts() {
        let fp = MemoryFootprint {
            entities_bytes: 100,
            eps_map_bytes: 20,
            buffer_bytes: 30,
            model_bytes: 8,
        };
        assert_eq!(fp.total(), 158);
    }

    #[test]
    fn stats_default_to_zero() {
        let s = ViewStats::default();
        assert_eq!(s.updates + s.single_reads + s.reorgs, 0);
    }
}
