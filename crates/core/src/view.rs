//! The common interface over all five architectures, and a builder.

use std::cmp::Ordering;

use hazy_learn::{Label, LinearModel, SgdConfig, TrainingExample};
use hazy_linalg::NormPair;
use hazy_storage::{BufferPool, CostModel, SimDisk, SimFs, VirtualClock, PAGE_SIZE};

use crate::cost::OpOverheads;
use crate::durable::{tag, CoreRestorer, DurableClassifierView, DurableView};
use crate::entity::Entity;
use crate::hazy_disk::HazyDiskView;
use crate::hazy_mem::HazyMemView;
use crate::hybrid::{HybridConfig, HybridView};
use crate::naive_disk::NaiveDiskView;
use crate::naive_mem::NaiveMemView;
use crate::stats::{MemoryFootprint, ViewStats};
use crate::watermark::WatermarkPolicy;

/// Eager (labels materialized on update) vs lazy (labels computed on read)
/// — Section 2.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Maintain `V` after every update.
    Eager,
    /// Apply updates only in response to reads.
    Lazy,
}

impl Mode {
    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Eager => "eager",
            Mode::Lazy => "lazy",
        }
    }

    /// Stable one-byte wire tag for durable state.
    pub fn tag(self) -> u8 {
        match self {
            Mode::Eager => 0,
            Mode::Lazy => 1,
        }
    }

    /// Inverse of [`Mode::tag`].
    pub fn from_tag(t: u8) -> Option<Mode> {
        match t {
            0 => Some(Mode::Eager),
            1 => Some(Mode::Lazy),
            _ => None,
        }
    }
}

/// The five physical designs of Sections 2.2 / 3.5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Architecture {
    /// Materialized view in a heap file; full rescan per update.
    NaiveDisk,
    /// `H` clustered on eps with B+-tree + Skiing, on disk.
    HazyDisk,
    /// Naive strategy over an in-memory vector.
    NaiveMem,
    /// Hazy strategy over an in-memory sorted vector.
    HazyMem,
    /// On-disk Hazy plus in-memory ε-map and boundary buffer.
    Hybrid,
}

impl Architecture {
    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Architecture::NaiveDisk => "naive-od",
            Architecture::HazyDisk => "hazy-od",
            Architecture::NaiveMem => "naive-mm",
            Architecture::HazyMem => "hazy-mm",
            Architecture::Hybrid => "hybrid",
        }
    }

    /// Stable one-byte wire tag for durable state and WAL migration
    /// records. The values coincide with the checkpoint-blob architecture
    /// tags, so a blob's leading byte and an `ALTER ... SET ARCH` redo
    /// record speak the same dialect.
    pub fn tag(self) -> u8 {
        match self {
            Architecture::NaiveMem => 1,
            Architecture::HazyMem => 2,
            Architecture::NaiveDisk => 3,
            Architecture::HazyDisk => 4,
            Architecture::Hybrid => 5,
        }
    }

    /// Inverse of [`Architecture::tag`].
    pub fn from_tag(t: u8) -> Option<Architecture> {
        match t {
            1 => Some(Architecture::NaiveMem),
            2 => Some(Architecture::HazyMem),
            3 => Some(Architecture::NaiveDisk),
            4 => Some(Architecture::HazyDisk),
            5 => Some(Architecture::Hybrid),
            _ => None,
        }
    }

    /// All architectures, in the order the paper's tables list them.
    pub fn all() -> [Architecture; 5] {
        [
            Architecture::NaiveDisk,
            Architecture::HazyDisk,
            Architecture::Hybrid,
            Architecture::NaiveMem,
            Architecture::HazyMem,
        ]
    }
}

/// The total order of ranked reads: margin descending, ids ascending on
/// ties. Shared by every [`ClassifierView::top_k`] implementation and by
/// the cross-shard merge in `hazy-serve`, so a sharded deployment's merged
/// answer is bit-identical to the unsharded one.
pub fn rank_order(a: &(u64, f64), b: &(u64, f64)) -> Ordering {
    b.1.total_cmp(&a.1).then(a.0.cmp(&b.0))
}

/// Keeps the best `k` of `scored` under [`rank_order`] and sorts them:
/// O(n) selection plus an O(k log k) sort, charged to `clock` as such.
pub(crate) fn take_top_k(
    mut scored: Vec<(u64, f64)>,
    k: usize,
    clock: &VirtualClock,
) -> Vec<(u64, f64)> {
    if k == 0 {
        return Vec::new();
    }
    if k < scored.len() {
        clock.charge_cpu_ops(scored.len() as u64);
        scored.select_nth_unstable_by(k - 1, rank_order);
        scored.truncate(k);
    }
    clock.charge_sort(scored.len() as u64);
    scored.sort_unstable_by(rank_order);
    scored
}

/// A maintained classification view. All methods take `&mut self`: even
/// reads may move internal state (lazy waste accounting, buffer-pool
/// faults, Skiing-triggered reorganizations).
///
/// Every implementation is `Send` (enforced on the boxes [`ViewBuilder`]
/// hands out), so views can be moved into worker threads — the basis of the
/// sharded serving layer in `hazy-serve`.
pub trait ClassifierView {
    /// Table label, e.g. `"hazy-od (eager)"`.
    fn describe(&self) -> String;

    /// Eager or lazy.
    fn mode(&self) -> Mode;

    /// `Update`: insert one training example; the model advances one round
    /// and (eager) `V` is maintained.
    fn update(&mut self, ex: &TrainingExample);

    /// Batched `Update`: insert a run of training examples arriving as one
    /// statement (the `INSERT ... SELECT` pattern of a bulk example load).
    ///
    /// Equivalent to calling [`update`](ClassifierView::update) once per
    /// example — the model takes the same SGD steps in the same order, and
    /// every subsequent read serves the same answers. Architectures override
    /// this to amortize per-statement maintenance: the watermark band after
    /// `k` rounds covers every label that any of the `k` intermediate
    /// models could have flipped, so eager maintenance runs **once** over
    /// the accumulated band instead of `k` times — on disk, that is one
    /// round of page pins instead of `k`.
    fn update_batch(&mut self, batch: &[TrainingExample]) {
        for ex in batch {
            self.update(ex);
        }
    }

    /// Forces a reorganization right now (`VACUUM`-style maintenance entry
    /// point): recluster `H` on the current model and fold the unsorted
    /// tail into the ε-sorted run. Architectures without physical
    /// organization treat this as a no-op. Hazy architectures make it cheap
    /// when there is little to do — free when the model has not advanced
    /// and no tail exists, one sort-tail-and-merge pass when only inserts
    /// arrived since the last reorganization.
    fn reorganize(&mut self) {}

    /// `Single Entity` read: the label of entity `id`, or `None` if absent.
    fn read_single(&mut self, id: u64) -> Option<Label>;

    /// Number of entities the view currently holds (base rows + dynamic
    /// inserts). The engine is the authority — after a crash recovery the
    /// durable state, not any external bookkeeping, says what exists.
    fn entity_count(&self) -> u64;

    /// `All Members` query: how many entities currently carry label +1
    /// (the paper's repeated query in Section 4.1.2).
    fn count_positive(&mut self) -> u64;

    /// `All Members` returning the ids themselves.
    fn positive_ids(&mut self) -> Vec<u64>;

    /// Ranked read: the `k` entities with the greatest margin `w·f − b`
    /// under the **current** model, sorted by margin descending with ties
    /// broken by ascending id (the total order of [`rank_order`]). This is
    /// the "most confidently positive" listing a serving tier paginates —
    /// e.g. the top database papers in the paper's portal application
    /// (Section 1). Every architecture answers with a single scan that
    /// scores each entity and keeps the best `k`; the deterministic tie
    /// order is what lets a sharded deployment merge per-shard answers into
    /// exactly the unsharded list.
    fn top_k(&mut self, k: usize) -> Vec<(u64, f64)>;

    /// Type-(1) dynamic data: a brand-new entity arrives and is classified
    /// under the current model.
    fn insert_entity(&mut self, e: Entity);

    /// Retracts entity `id` from the view: the inverse of
    /// [`insert_entity`](ClassifierView::insert_entity), driven by a base
    /// table `DELETE` (or the retract half of an `UPDATE`) propagated
    /// through a dataflow graph. The model is untouched — training examples
    /// are append-only, only the entity population shrinks. Returns `true`
    /// when the entity existed and was removed, `false` when the id was
    /// unknown (a retraction of an absent entity is a no-op, which makes
    /// WAL replay of removals idempotent).
    fn remove_entity(&mut self, id: u64) -> bool {
        let _ = id;
        false
    }

    /// The current model `(w(i), b(i))`.
    fn model(&self) -> &LinearModel;

    /// Operation counters.
    fn stats(&self) -> ViewStats;

    /// Resident-memory accounting (Figure 6(A)).
    fn memory(&self) -> MemoryFootprint;

    /// The virtual clock all costs are charged to.
    fn clock(&self) -> &VirtualClock;

    /// Extracts the complete **logical** state of the view for a live
    /// migration (see [`MigrationState`](crate::MigrationState)): entities,
    /// trainer, Skiing controller, counters. The extraction pass is charged
    /// to the clock (a disk view pays a sequential scan to evacuate
    /// itself). Returns `None` for views with no extraction path (wrappers
    /// delegate; a sharded view migrates shard-by-shard instead).
    ///
    /// The view is conceptually consumed: callers discard it and rebuild
    /// via [`ViewBuilder::build_migrated`].
    fn export_migration(&mut self) -> Option<crate::MigrationState> {
        None
    }

    /// Adopts carried control-plane state after a migration rebuild: the
    /// lifetime counters continue (with
    /// [`migrations`](crate::ViewStats::migrations) incremented) and, for
    /// hazy architectures, the Skiing accumulator carries over while the
    /// rebuild's freshly measured `S` is kept. Called exactly once, by
    /// [`ViewBuilder::build_migrated`], immediately after construction.
    fn adopt_migration_carry(&mut self, carry: &crate::MigrationCarry) {
        let _ = carry;
    }

    /// Extracts a point-in-time copy of the view's **answer state** — the
    /// entity population and the current model — for publishing an epoch
    /// snapshot (see [`EpochPublisher::from_view`](crate::EpochPublisher)).
    /// Every read a view serves is a pure function of exactly this pair
    /// (the observational-equivalence property the cross-architecture
    /// suites enforce), so an epoch built from it answers bit-identically
    /// to the live view at this instant.
    ///
    /// Unlike [`export_migration`](ClassifierView::export_migration) the
    /// view is **not** consumed — trainer, Skiing state and counters stay
    /// put. The copy pass is charged to the clock; `&mut self` because a
    /// disk view faults its pages through the buffer pool to evacuate
    /// itself. Returns `None` for wrappers with no single flat population
    /// (a sharded view snapshots shard-by-shard instead).
    fn snapshot_state(&mut self) -> Option<(Vec<Entity>, LinearModel)> {
        None
    }

    /// Requests a live migration to `arch` × `mode`. Only adaptive wrappers
    /// (and the layers above them: durable logging, sharded fan-out)
    /// support this; plain architecture views return `false` — they *are*
    /// their architecture.
    fn set_architecture(&mut self, arch: Architecture, mode: Mode) -> bool {
        let _ = (arch, mode);
        false
    }
}

/// Builds any architecture × mode over a set of entities, with shared
/// configuration. One builder = one virtual clock = one comparable cost
/// universe.
#[derive(Clone, Debug)]
pub struct ViewBuilder {
    arch: Architecture,
    mode: Mode,
    sgd: SgdConfig,
    pair: NormPair,
    policy: WatermarkPolicy,
    alpha: f64,
    overheads: OpOverheads,
    cost_model: CostModel,
    /// Buffer-pool capacity as a fraction of the data's pages (on-disk
    /// architectures). Stands in for shared_buffers + OS cache.
    pool_frac: f64,
    hybrid: HybridConfig,
    dim: usize,
    /// When set, [`build`](ViewBuilder::build) produces a [`DurableView`]
    /// backed by this simulated file system path (recovering from it when a
    /// checkpoint already exists).
    durable: Option<(SimFs, String)>,
    /// Auto-checkpoint every this many logged operations (0 = manual only).
    ckpt_interval: u64,
}

impl ViewBuilder {
    /// Defaults: SVM via SGD, α = 1 (the paper's setting for all
    /// experiments), monotone watermarks, 2008-SATA cost model, pool sized
    /// to 95% of the data (a mostly-cached working set, like the paper's).
    pub fn new(arch: Architecture, mode: Mode) -> ViewBuilder {
        ViewBuilder {
            arch,
            mode,
            sgd: SgdConfig::svm(),
            pair: NormPair::TEXT,
            policy: WatermarkPolicy::Monotone,
            alpha: 1.0,
            overheads: OpOverheads::pg_2008(),
            cost_model: CostModel::sata_2008(),
            // The paper's machine keeps nearly all of FC/DB (and most of CS)
            // in shared buffers + OS cache; 95% residency reproduces its
            // on-disk read rates.
            pool_frac: 0.95,
            hybrid: HybridConfig::default(),
            dim: 0,
            durable: None,
            ckpt_interval: 256,
        }
    }

    /// Sets the SGD configuration (loss selects SVM/logistic/ridge).
    pub fn sgd(mut self, cfg: SgdConfig) -> Self {
        self.sgd = cfg;
        self
    }

    /// Sets the Hölder pair (`NormPair::TEXT` or `NormPair::EUCLIDEAN`).
    pub fn norm_pair(mut self, pair: NormPair) -> Self {
        self.pair = pair;
        self
    }

    /// Sets the watermark policy.
    pub fn watermark_policy(mut self, policy: WatermarkPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets Skiing's α.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets per-operation overheads.
    pub fn overheads(mut self, o: OpOverheads) -> Self {
        self.overheads = o;
        self
    }

    /// Sets the storage cost model.
    pub fn cost_model(mut self, m: CostModel) -> Self {
        self.cost_model = m;
        self
    }

    /// Sets buffer-pool capacity as a fraction of the data's pages.
    pub fn pool_frac(mut self, f: f64) -> Self {
        self.pool_frac = f.max(0.0);
        self
    }

    /// Sets hybrid-architecture parameters.
    pub fn hybrid_config(mut self, h: HybridConfig) -> Self {
        self.hybrid = h;
        self
    }

    /// Sets the feature-space dimensionality (otherwise inferred from the
    /// entities).
    pub fn dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Makes the built view durable: operations are write-ahead logged to
    /// the store at `path_sim` inside `fs`, and [`build`](ViewBuilder::build)
    /// **recovers** from that store instead of building fresh when it
    /// already holds a valid checkpoint — the reopen-database flow.
    pub fn durable(mut self, fs: &SimFs, path_sim: &str) -> Self {
        self.durable = Some((fs.clone(), path_sim.to_string()));
        self
    }

    /// Sets the automatic checkpoint interval in logged operations for
    /// durable builds (0 disables auto-checkpointing; default 256).
    pub fn checkpoint_interval(mut self, ops: u64) -> Self {
        self.ckpt_interval = ops;
        self
    }

    /// The configured dimensionality; 0 means "infer from the entities at
    /// build time". A sharded build must pin this globally **before**
    /// partitioning — per-shard inference would give shards models of
    /// different dimension.
    pub fn configured_dim(&self) -> usize {
        self.dim
    }

    /// The architecture this builder constructs.
    pub fn architecture(&self) -> Architecture {
        self.arch
    }

    /// The maintenance mode this builder constructs.
    pub fn build_mode(&self) -> Mode {
        self.mode
    }

    /// The configured buffer-pool residency fraction (the advisor's cost
    /// models use it to predict on-disk miss rates).
    pub fn configured_pool_frac(&self) -> f64 {
        self.pool_frac
    }

    /// The configured per-statement overheads.
    pub fn configured_overheads(&self) -> OpOverheads {
        self.overheads
    }

    /// The configured Hölder pair (epoch publishers built over this
    /// builder's views must measure feature norms under the same `q`).
    pub fn configured_norm_pair(&self) -> NormPair {
        self.pair
    }

    /// Builds the view over `entities`, optionally warm-starting the model
    /// with `warm` training examples **before** the initial organization
    /// (equivalent to having processed them as updates, without paying for
    /// thousands of naive maintenance rounds during setup — the experiments
    /// in Section 4.1.1 all start from a 12k-example warm model).
    ///
    /// When [`durable`](ViewBuilder::durable) is configured, the result is a
    /// [`DurableView`]: if the store already holds a valid checkpoint the
    /// view is **recovered** from checkpoint + WAL (ignoring `entities` and
    /// `warm` — the durable state is authoritative); otherwise it is built
    /// fresh and a genesis checkpoint is written.
    pub fn build(
        &self,
        entities: Vec<Entity>,
        warm: &[TrainingExample],
    ) -> Box<dyn DurableClassifierView + Send> {
        let Some((fs, path)) = self.durable.clone() else {
            return self.build_with_clock(entities, warm, self.new_clock());
        };
        if fs.has_checkpoint(&path) {
            let store = fs.open(&path, self.new_clock());
            let dv = DurableView::recover(self, store, self.ckpt_interval, &CoreRestorer)
                .expect("durable store holds a checkpoint but recovery failed");
            return Box::new(dv);
        }
        let inner = self.build_with_clock(entities, warm, self.new_clock());
        let store = fs.open(&path, inner.clock().clone());
        Box::new(DurableView::create(inner, store, self.ckpt_interval))
    }

    /// A fresh virtual clock under this builder's cost model. Pass clones of
    /// one clock to several [`build_with_clock`](ViewBuilder::build_with_clock)
    /// calls to keep their views in a single cost universe (what the sharded
    /// serving layer does for its shards).
    pub fn new_clock(&self) -> VirtualClock {
        VirtualClock::new(self.cost_model)
    }

    /// Like [`build`](ViewBuilder::build), but charges all costs to the
    /// caller's `clock` instead of a fresh one — the hook that lets many
    /// views (e.g. the shards of one logical view) share a cost universe.
    /// Always builds raw (never applies the [`durable`](ViewBuilder::durable)
    /// wrapping — shards of a durable sharded view are logged and
    /// checkpointed by the coordinator, not individually).
    pub fn build_with_clock(
        &self,
        entities: Vec<Entity>,
        warm: &[TrainingExample],
        clock: VirtualClock,
    ) -> Box<dyn DurableClassifierView + Send> {
        let dim = if self.dim > 0 {
            self.dim
        } else {
            entities.iter().map(|e| e.f.dim() as usize).max().unwrap_or(0)
        };
        let mut trainer = hazy_learn::SgdTrainer::new(self.sgd, dim);
        for ex in warm {
            trainer.step(&ex.f, ex.y);
        }
        self.assemble(self.arch, self.mode, entities, trainer, clock)
    }

    /// Rebuilds a view under `arch` × `mode` from the logical state a
    /// source view exported via
    /// [`ClassifierView::export_migration`] — the second half of a live
    /// migration. The construction is the target's initial organization
    /// (every tuple re-keyed and relabeled under the carried model, charged
    /// to `clock`), after which the carried Skiing accumulator and lifetime
    /// counters are adopted. The returned view serves **exactly** the same
    /// answers as the source did at extraction time: both are pure
    /// functions of the carried entities × the carried model.
    pub fn build_migrated(
        &self,
        arch: Architecture,
        mode: Mode,
        state: crate::MigrationState,
        clock: VirtualClock,
    ) -> Box<dyn DurableClassifierView + Send> {
        let crate::MigrationState { entities, trainer, carry } = state;
        let mut view = self.assemble(arch, mode, entities, trainer, clock);
        view.adopt_migration_carry(&carry);
        view
    }

    /// Shared constructor dispatch: a concrete architecture × mode over a
    /// ready-made trainer (warm-started or carried from a migration).
    fn assemble(
        &self,
        arch: Architecture,
        mode: Mode,
        entities: Vec<Entity>,
        trainer: hazy_learn::SgdTrainer,
        clock: VirtualClock,
    ) -> Box<dyn DurableClassifierView + Send> {
        match arch {
            Architecture::NaiveMem => {
                Box::new(NaiveMemView::new(entities, trainer, clock, self.overheads, mode))
            }
            Architecture::HazyMem => Box::new(HazyMemView::new(
                entities,
                trainer,
                clock,
                self.overheads,
                mode,
                self.pair,
                self.policy,
                self.alpha,
            )),
            Architecture::NaiveDisk => {
                let pool = self.make_pool(&entities, clock);
                Box::new(NaiveDiskView::new(entities, trainer, pool, self.overheads, mode))
            }
            Architecture::HazyDisk => {
                let pool = self.make_pool(&entities, clock);
                Box::new(HazyDiskView::new(
                    entities,
                    trainer,
                    pool,
                    self.overheads,
                    mode,
                    self.pair,
                    self.policy,
                    self.alpha,
                ))
            }
            Architecture::Hybrid => {
                let pool = self.make_pool(&entities, clock);
                Box::new(HybridView::new(
                    entities,
                    trainer,
                    pool,
                    self.overheads,
                    mode,
                    self.pair,
                    self.policy,
                    self.alpha,
                    self.hybrid,
                ))
            }
        }
    }

    /// Builds a concrete [`HybridView`] (rather than a trait object) so
    /// experiment code can reach its hooks (`set_uncertain_fraction`,
    /// `set_buffer_frac`). Ignores the builder's `arch`.
    pub fn build_hybrid(&self, entities: Vec<Entity>, warm: &[TrainingExample]) -> HybridView {
        let dim = if self.dim > 0 {
            self.dim
        } else {
            entities.iter().map(|e| e.f.dim() as usize).max().unwrap_or(0)
        };
        let mut trainer = hazy_learn::SgdTrainer::new(self.sgd, dim);
        for ex in warm {
            trainer.step(&ex.f, ex.y);
        }
        let clock = VirtualClock::new(self.cost_model);
        let pool = self.make_pool(&entities, clock);
        HybridView::new(
            entities,
            trainer,
            pool,
            self.overheads,
            self.mode,
            self.pair,
            self.policy,
            self.alpha,
            self.hybrid,
        )
    }

    /// Builds a concrete [`HazyMemView`] so experiment code can reach its
    /// hooks (`waterband`, `tuples_in_band`, `skiing`). Ignores the
    /// builder's `arch`.
    pub fn build_hazy_mem(&self, entities: Vec<Entity>, warm: &[TrainingExample]) -> HazyMemView {
        let dim = if self.dim > 0 {
            self.dim
        } else {
            entities.iter().map(|e| e.f.dim() as usize).max().unwrap_or(0)
        };
        let mut trainer = hazy_learn::SgdTrainer::new(self.sgd, dim);
        for ex in warm {
            trainer.step(&ex.f, ex.y);
        }
        let clock = VirtualClock::new(self.cost_model);
        HazyMemView::new(
            entities,
            trainer,
            clock,
            self.overheads,
            self.mode,
            self.pair,
            self.policy,
            self.alpha,
        )
    }

    /// Restores an unsharded view from a checkpoint blob written by its
    /// [`Durable::save_state`](crate::Durable::save_state), dispatching on
    /// the architecture tag. The builder contributes only non-stateful
    /// configuration (per-operation overheads); everything behavioral —
    /// trainer, watermarks, Skiing state, disk image — comes from the blob,
    /// so the restored view is bit-identical to the serialized one.
    ///
    /// Returns `None` on unknown tags or malformed input (a torn checkpoint
    /// must fail loudly, not build a half-view).
    pub fn restore_unsharded(
        &self,
        bytes: &mut &[u8],
        clock: VirtualClock,
    ) -> Option<Box<dyn DurableClassifierView + Send>> {
        match hazy_linalg::wire::take_u8(bytes)? {
            tag::NAIVE_MEM => {
                Some(Box::new(NaiveMemView::restore_state(bytes, clock, self.overheads)?))
            }
            tag::HAZY_MEM => {
                Some(Box::new(HazyMemView::restore_state(bytes, clock, self.overheads)?))
            }
            tag::NAIVE_DISK => {
                Some(Box::new(NaiveDiskView::restore_state(bytes, clock, self.overheads)?))
            }
            tag::HAZY_DISK => {
                Some(Box::new(HazyDiskView::restore_state(bytes, clock, self.overheads)?))
            }
            tag::HYBRID => {
                Some(Box::new(HybridView::restore_state(bytes, clock, self.overheads)?))
            }
            _ => None,
        }
    }

    fn make_pool(&self, entities: &[Entity], clock: VirtualClock) -> BufferPool {
        let bytes: usize = entities
            .iter()
            .map(|e| crate::entity::TUPLE_HEADER + hazy_linalg::encoded_len(&e.f) + 4)
            .sum();
        // heap + clustered index + hash index ≈ 1.4× the raw tuple bytes
        let est_pages = (bytes * 14 / 10) / PAGE_SIZE + 8;
        let cap = ((est_pages as f64 * self.pool_frac) as usize).max(64);
        BufferPool::new(SimDisk::new(clock), cap)
    }
}
