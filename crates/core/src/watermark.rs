//! Low/high watermarks: the sufficient condition of Lemma 3.1.
//!
//! `H` is clustered on `eps = w(s)·f − b(s)` under the *stored* model from
//! the last reorganization at round `s`. When the model has moved on to round
//! `j`, Hölder's inequality bounds how far any tuple's margin can have
//! shifted:
//!
//! ```text
//! ε_high(s,j) =  M·‖w(j) − w(s)‖_p + (b(j) − b(s))
//! ε_low(s,j)  = −M·‖w(j) − w(s)‖_p + (b(j) − b(s))
//! ```
//!
//! with `M = max_t ‖f(t)‖_q` over the corpus and `(p, q)` Hölder conjugates.
//! Any tuple with `eps ≥ ε_high` is certainly positive at round `j`; any
//! tuple with `eps ≤ ε_low` certainly negative. Running extrema over rounds
//! (Eq. 2) give `lw(s,j) ≤ hw(s,j)` such that only tuples in `[lw, hw]` can
//! ever have changed label since `s` — those are the only tuples the
//! incremental step must touch.

use hazy_learn::{LinearModel, StepInfo};
use hazy_linalg::{FeatureVec, Norm, NormPair};

/// How the running watermarks evolve over rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WatermarkPolicy {
    /// Eq. 2: running min/max over **all** rounds since the reorganization.
    /// Monotone — the property the Skiing analysis needs (Section 3.3).
    Monotone,
    /// Appendix B.3 variant: extrema over only the last two rounds. Tighter
    /// bounds (fewer tuples touched) but non-monotone, which voids the
    /// competitive guarantee; the paper reports the practical difference is
    /// small. Correct for *eager* maintenance only, where every round's
    /// changed tuples are relabeled as soon as the model moves.
    Window2,
}

impl WatermarkPolicy {
    /// Stable one-byte wire tag for durable state.
    pub fn tag(self) -> u8 {
        match self {
            WatermarkPolicy::Monotone => 0,
            WatermarkPolicy::Window2 => 1,
        }
    }

    /// Inverse of [`WatermarkPolicy::tag`].
    pub fn from_tag(t: u8) -> Option<WatermarkPolicy> {
        match t {
            0 => Some(WatermarkPolicy::Monotone),
            1 => Some(WatermarkPolicy::Window2),
            _ => None,
        }
    }
}

/// Watermark state for one stored model.
#[derive(Clone, Debug)]
pub struct WaterMarks {
    /// The stored model `(w(s), b(s))` that `eps` values are measured under.
    stored: LinearModel,
    pair: NormPair,
    /// `M = max ‖f‖_q` over the entities.
    m_norm: f64,
    policy: WatermarkPolicy,
    /// Running (or windowed) low/high water.
    lw: f64,
    hw: f64,
    /// Previous round's instantaneous bounds (for `Window2`).
    prev_low: f64,
    prev_high: f64,
}

impl WaterMarks {
    /// Fresh watermarks right after a reorganization at the given stored
    /// model. Both waters start at 0 relative-margin (the stored model
    /// itself): `eps ≥ 0 ⇔ positive`.
    pub fn new(stored: LinearModel, pair: NormPair, m_norm: f64, policy: WatermarkPolicy) -> Self {
        debug_assert!(pair.is_conjugate(), "need a Hölder pair");
        WaterMarks { stored, pair, m_norm, policy, lw: 0.0, hw: 0.0, prev_low: 0.0, prev_high: 0.0 }
    }

    /// The stored model.
    pub fn stored_model(&self) -> &LinearModel {
        &self.stored
    }

    /// `M`, the corpus feature-norm bound.
    pub fn m_norm(&self) -> f64 {
        self.m_norm
    }

    /// Raises `M` (a new entity with a larger `‖f‖_q` arrived). Safe at any
    /// time: growing `M` only widens future bounds.
    pub fn raise_m(&mut self, m: f64) {
        if m > self.m_norm {
            self.m_norm = m;
        }
    }

    /// Current low water `lw(s,i)`.
    pub fn low(&self) -> f64 {
        self.lw
    }

    /// Current high water `hw(s,i)`.
    pub fn high(&self) -> f64 {
        self.hw
    }

    /// The margin of `f` under the stored model (the tuple's `eps`).
    pub fn eps(&self, f: &FeatureVec) -> f64 {
        self.stored.margin(f)
    }

    /// Folds in the round-`j` model by computing `‖w(j) − w(s)‖_p` exactly
    /// (O(d)); see [`WaterMarks::observe_bounded`] for the O(1) path driven
    /// by a [`DeltaTracker`]. Returns the instantaneous bounds
    /// `(ε_low, ε_high)` for this round (callers usually want
    /// [`WaterMarks::low`]/[`WaterMarks::high`] afterwards).
    pub fn observe(&mut self, current: &LinearModel) -> (f64, f64) {
        let delta_w = current.delta_norm(&self.stored, self.pair.p);
        self.fold(delta_w, current.b)
    }

    /// Folds in the round-`j` model using a caller-maintained **upper
    /// bound** on `‖w(j) − w(s)‖_p` (from a [`DeltaTracker`]). Upper bounds
    /// keep Lemma 3.1 sound — they can only widen the uncertain band.
    pub fn observe_bounded(&mut self, delta_w_bound: f64, current_b: f64) -> (f64, f64) {
        self.fold(delta_w_bound, current_b)
    }

    fn fold(&mut self, delta_w: f64, current_b: f64) -> (f64, f64) {
        let delta_b = current_b - self.stored.b;
        let eps_high = self.m_norm * delta_w + delta_b;
        let eps_low = -self.m_norm * delta_w + delta_b;
        match self.policy {
            WatermarkPolicy::Monotone => {
                self.lw = self.lw.min(eps_low);
                self.hw = self.hw.max(eps_high);
            }
            WatermarkPolicy::Window2 => {
                self.lw = eps_low.min(self.prev_low);
                self.hw = eps_high.max(self.prev_high);
                self.prev_low = eps_low;
                self.prev_high = eps_high;
            }
        }
        (eps_low, eps_high)
    }

    /// Experiment hook: force the band to `[lw, hw]`. Used by the
    /// Figure 6(B) harness, which constructs models with a prescribed
    /// fraction of tuples between the waters (S1/S10/S50).
    ///
    /// # Panics
    /// Panics when `lw > hw`.
    pub fn set_band(&mut self, lw: f64, hw: f64) {
        assert!(lw <= hw, "low water above high water");
        self.lw = lw;
        self.hw = hw;
        self.prev_low = lw;
        self.prev_high = hw;
    }

    /// Serializes the complete watermark state bit-exactly (checkpoint
    /// path): stored model, Hölder pair, `M`, policy, and both the running
    /// and windowed waters.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        self.stored.save_state(out);
        out.push(self.pair.p.tag());
        out.push(self.pair.q.tag());
        out.push(self.policy.tag());
        for v in [self.m_norm, self.lw, self.hw, self.prev_low, self.prev_high] {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Inverse of [`WaterMarks::save_state`]; `None` on malformed input.
    pub fn restore_state(b: &mut &[u8]) -> Option<WaterMarks> {
        use hazy_linalg::wire::{take_f64, take_u8};
        let stored = LinearModel::restore_state(b)?;
        let p = hazy_linalg::Norm::from_tag(take_u8(b)?)?;
        let q = hazy_linalg::Norm::from_tag(take_u8(b)?)?;
        let policy = WatermarkPolicy::from_tag(take_u8(b)?)?;
        let m_norm = take_f64(b)?;
        let lw = take_f64(b)?;
        let hw = take_f64(b)?;
        let prev_low = take_f64(b)?;
        let prev_high = take_f64(b)?;
        Some(WaterMarks {
            stored,
            pair: NormPair { p, q },
            m_norm,
            policy,
            lw,
            hw,
            prev_low,
            prev_high,
        })
    }

    /// Sufficient-condition test: `Some(label)` when the tuple's stored
    /// `eps` alone decides its current class, `None` when it falls in the
    /// uncertain band and must be reclassified.
    pub fn certain_label(&self, eps: f64) -> Option<i8> {
        if eps >= self.hw {
            Some(1)
        } else if eps <= self.lw {
            Some(-1)
        } else {
            None
        }
    }
}

/// Incremental upper bound on `‖w(i) − w(s)‖_p`, maintained in O(nnz) per
/// SGD step instead of the O(d) an exact norm costs (Citeseer's vocabulary
/// is ~682k dimensions — recomputing the delta norm on every update would
/// dwarf the sparse gradient step itself).
///
/// Each SGD step applies `w ← k·w + a·f` (plus possibly an ℓ1
/// soft-threshold of width τ on the touched coordinates). Unrolling from the
/// stored model `w_s`, with `K = Π k_t`:
///
/// ```text
/// w(T) = K·w_s + G   where   G = Σ_t (Π_{r>t} k_r) · a_t · f_t
/// δ    = w(T) − w_s = (K − 1)·w_s + G
/// ‖δ‖_p ≤ (1 − K)·‖w_s‖_p + ‖G‖_p   (+ τ terms)
/// ```
///
/// The tracker maintains `G` *coordinate-exactly* (a scaled dense vector,
/// O(nnz) per step) plus p-norm bookkeeping:
///
/// * `p ∈ {1, 2}`: the norm of `G` is updated exactly from the touched
///   coordinates' before/after values;
/// * `p = ∞`: an upper bound — scaling by `k ≤ 1` shrinks every coordinate,
///   so `ub·k` stays valid, and sparse additions only need `max` against the
///   touched coordinates' new values. Crucially, steps touching *disjoint*
///   coordinates do not accumulate, which is what keeps the watermark band
///   narrow (a scalar triangle-inequality bound would grow linearly in the
///   number of rounds and defeat the whole pruning strategy).
///
/// The result never underestimates `‖δ‖_p`, so the watermark band built
/// from it stays sound (it can only be wider than the exact band).
#[derive(Clone, Debug)]
pub struct DeltaTracker {
    /// Gradient accumulation `G`, stored as `scale · v`.
    v: Vec<f64>,
    scale: f64,
    /// Valid upper bound on `‖G‖_∞`.
    linf_ub: f64,
    /// Exactly `‖G‖₂²` (modulo float rounding, inflated on read).
    l2_sq: f64,
    /// Exactly `‖G‖₁` (modulo float rounding, inflated on read).
    l1: f64,
    /// Running product `K = Π k_t`.
    k_prod: f64,
    /// Accumulated ℓ1 soft-threshold allowance.
    tau_term: f64,
    stored_norm_p: f64,
    p: Norm,
}

impl DeltaTracker {
    /// Tracker starting at the reorganization point (`δ = 0`).
    pub fn new(stored: &LinearModel, p: Norm) -> DeltaTracker {
        DeltaTracker {
            v: vec![0.0; stored.w.dim()],
            scale: 1.0,
            linf_ub: 0.0,
            l2_sq: 0.0,
            l1: 0.0,
            k_prod: 1.0,
            tau_term: 0.0,
            stored_norm_p: stored.w.norm(p),
            p,
        }
    }

    /// Current upper bound on `‖w(i) − w(s)‖_p`.
    pub fn bound(&self) -> f64 {
        let g_norm = match self.p {
            Norm::LInf => self.linf_ub,
            Norm::L2 => self.l2_sq.max(0.0).sqrt(),
            Norm::L1 => self.l1.max(0.0),
        };
        // inflate by one part in 1e12 to absorb float rounding in the
        // incremental norm bookkeeping — the bound must never dip below the
        // true norm
        ((1.0 - self.k_prod) * self.stored_norm_p + g_norm + self.tau_term) * (1.0 + 1e-12)
    }

    /// Serializes the tracker bit-exactly (checkpoint path). The bound is a
    /// running float computation, so restoring anything but the exact bits
    /// would shift future watermark bands and break bit-identical recovery.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        hazy_linalg::wire::put_f64s(out, &self.v);
        for x in
            [self.scale, self.linf_ub, self.l2_sq, self.l1, self.k_prod, self.tau_term, self.stored_norm_p]
        {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        out.push(self.p.tag());
    }

    /// Inverse of [`DeltaTracker::save_state`]; `None` on malformed input.
    pub fn restore_state(b: &mut &[u8]) -> Option<DeltaTracker> {
        use hazy_linalg::wire::{take_f64, take_f64s, take_u8};
        let v = take_f64s(b)?;
        let scale = take_f64(b)?;
        let linf_ub = take_f64(b)?;
        let l2_sq = take_f64(b)?;
        let l1 = take_f64(b)?;
        let k_prod = take_f64(b)?;
        let tau_term = take_f64(b)?;
        let stored_norm_p = take_f64(b)?;
        let p = Norm::from_tag(take_u8(b)?)?;
        Some(DeltaTracker { v, scale, linf_ub, l2_sq, l1, k_prod, tau_term, stored_norm_p, p })
    }

    /// Folds in one SGD step applied to feature vector `f`.
    pub fn apply(&mut self, info: &StepInfo, f: &FeatureVec) {
        let k = info.shrink.clamp(0.0, 1.0);
        if k != 1.0 {
            self.scale *= k;
            self.k_prod *= k;
            self.linf_ub *= k;
            self.l2_sq *= k * k;
            self.l1 *= k;
            if self.scale < 1e-9 {
                let s = self.scale;
                self.v.iter_mut().for_each(|x| *x *= s);
                self.scale = 1.0;
            }
        }
        if info.grad_coef != 0.0 {
            let a = info.grad_coef;
            if (f.dim() as usize) > self.v.len() {
                self.v.resize(f.dim() as usize, 0.0);
            }
            if self.scale == 0.0 {
                // fully shrunk to zero: restart the accumulation
                self.v.iter_mut().for_each(|x| *x = 0.0);
                self.scale = 1.0;
            }
            for (j, x) in f.iter() {
                let j = j as usize;
                let old = self.scale * self.v[j];
                let new = old + a * f64::from(x);
                self.v[j] = new / self.scale;
                self.linf_ub = self.linf_ub.max(new.abs());
                self.l2_sq += new * new - old * old;
                self.l1 += new.abs() - old.abs();
            }
        }
        if info.l1_tau > 0.0 {
            // the soft-threshold moves each touched coordinate by ≤ τ
            let ones = match self.p {
                Norm::LInf => 1.0,
                Norm::L2 => (f.nnz() as f64).sqrt(),
                Norm::L1 => f.nnz() as f64,
            };
            self.tau_term += info.l1_tau * ones;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazy_learn::sign;
    use hazy_linalg::Norm;

    fn model(w: Vec<f64>, b: f64) -> LinearModel {
        LinearModel::from_parts(w, b)
    }

    #[test]
    fn waters_start_closed_at_zero() {
        let wm = WaterMarks::new(model(vec![1.0, 0.0], 0.0), NormPair::EUCLIDEAN, 1.0, WatermarkPolicy::Monotone);
        assert_eq!(wm.low(), 0.0);
        assert_eq!(wm.high(), 0.0);
        // with waters at 0, every tuple is decided by its eps sign
        assert_eq!(wm.certain_label(0.1), Some(1));
        assert_eq!(wm.certain_label(0.0), Some(1)); // sign(0) = +1 convention
        assert_eq!(wm.certain_label(-0.1), Some(-1));
    }

    #[test]
    fn bounds_match_hand_computation() {
        // stored w=(1,0), b=0; current w=(1,1), b=0.5; p=2 ⇒ ‖δw‖=1
        let mut wm = WaterMarks::new(model(vec![1.0, 0.0], 0.0), NormPair::EUCLIDEAN, 2.0, WatermarkPolicy::Monotone);
        let (lo, hi) = wm.observe(&model(vec![1.0, 1.0], 0.5));
        assert!((hi - (2.0 * 1.0 + 0.5)).abs() < 1e-12);
        assert!((lo - (-2.0 * 1.0 + 0.5)).abs() < 1e-12);
        assert!(wm.low() <= lo && wm.high() >= hi);
    }

    /// Lemma 3.1 on random-ish data: tuples outside [lw, hw] keep the label
    /// the watermark predicts, under an arbitrary sequence of model moves.
    #[test]
    fn certain_labels_are_correct() {
        let stored = model(vec![0.5, -0.25, 1.0], 0.1);
        for pair in [NormPair::EUCLIDEAN, NormPair::TEXT] {
            let entities: Vec<FeatureVec> = (0..200)
                .map(|k| {
                    FeatureVec::dense(vec![
                        ((k * 7) % 13) as f32 / 13.0 - 0.5,
                        ((k * 11) % 17) as f32 / 17.0 - 0.5,
                        ((k * 3) % 19) as f32 / 19.0 - 0.5,
                    ])
                })
                .collect();
            let m = entities.iter().map(|f| f.norm(pair.q)).fold(0.0f64, f64::max);
            let mut wm = WaterMarks::new(stored.clone(), pair, m, WatermarkPolicy::Monotone);
            for round in 0..20 {
                // drift the model a bit each round
                let drift = 0.02 * (round as f64 + 1.0);
                let current =
                    model(vec![0.5 + drift, -0.25 - drift / 2.0, 1.0 + drift / 3.0], 0.1 - drift / 4.0);
                wm.observe(&current);
                for f in &entities {
                    if let Some(l) = wm.certain_label(wm.eps(f)) {
                        assert_eq!(l, sign(current.margin(f)), "round {round}");
                    }
                }
            }
        }
    }

    #[test]
    fn monotone_policy_never_tightens() {
        let stored = model(vec![1.0], 0.0);
        let mut wm = WaterMarks::new(stored.clone(), NormPair::EUCLIDEAN, 1.0, WatermarkPolicy::Monotone);
        let mut widest = (0.0f64, 0.0f64);
        for k in 0..10 {
            // model oscillates toward and away from the stored model
            let w = if k % 2 == 0 { 1.5 } else { 1.05 };
            wm.observe(&model(vec![w], 0.0));
            assert!(wm.low() <= widest.0 + 1e-15);
            assert!(wm.high() >= widest.1 - 1e-15);
            widest = (wm.low(), wm.high());
        }
    }

    #[test]
    fn window2_policy_can_tighten() {
        let stored = model(vec![1.0], 0.0);
        let mut wm = WaterMarks::new(stored.clone(), NormPair::EUCLIDEAN, 1.0, WatermarkPolicy::Window2);
        wm.observe(&model(vec![2.0], 0.0)); // wide: ‖δ‖=1
        let wide_hw = wm.high();
        wm.observe(&model(vec![1.01], 0.0)); // near stored
        wm.observe(&model(vec![1.01], 0.0)); // window forgets the wide round
        assert!(wm.high() < wide_hw);
    }

    /// The incremental tracker bound always dominates the exact delta norm,
    /// for both norm pairs, over a real SGD run.
    #[test]
    fn delta_tracker_upper_bounds_exact_norm() {
        use hazy_learn::{SgdConfig, SgdTrainer};
        for pair in [NormPair::EUCLIDEAN, NormPair::TEXT] {
            let mut trainer = SgdTrainer::new(SgdConfig::svm(), 8);
            // pre-train a bit so the stored model is non-trivial
            for k in 0..50u32 {
                let f = FeatureVec::sparse(8, vec![(k % 8, 0.5), ((k + 3) % 8, -0.25)]);
                trainer.step(&f, if k % 2 == 0 { 1 } else { -1 });
            }
            let stored = trainer.model().clone();
            let mut tracker = DeltaTracker::new(&stored, pair.p);
            for k in 0..200u32 {
                let f = FeatureVec::sparse(8, vec![(k % 8, 1.0), ((k * 5 + 1) % 8, -0.5)]);
                let info = trainer.step(&f, if k % 3 == 0 { 1 } else { -1 });
                tracker.apply(&info, &f);
                let exact = trainer.model().delta_norm(&stored, pair.p);
                assert!(
                    tracker.bound() + 1e-9 >= exact,
                    "{pair:?} step {k}: bound {} < exact {exact}",
                    tracker.bound()
                );
            }
        }
    }

    /// The bound is reasonably tight for unregularized steps (pure sparse
    /// additions), where the triangle inequality is the only slack.
    #[test]
    fn delta_tracker_is_tight_without_regularization() {
        use hazy_learn::{LossKind, Regularizer, SgdConfig, SgdTrainer};
        let cfg = SgdConfig {
            loss: LossKind::Hinge,
            reg: Regularizer::None,
            eta0: 0.1,
            bias_rate: 1.0,
        };
        let mut trainer = SgdTrainer::new(cfg, 4);
        let stored = trainer.model().clone();
        let mut tracker = DeltaTracker::new(&stored, Norm::LInf);
        // all steps move the same single coordinate in the same direction:
        // the triangle inequality is exact
        let f = FeatureVec::sparse(4, vec![(2, 1.0)]);
        for _ in 0..20 {
            let info = trainer.step(&f, 1);
            tracker.apply(&info, &f);
        }
        let exact = trainer.model().delta_norm(&stored, Norm::LInf);
        assert!(tracker.bound() >= exact - 1e-12);
        assert!(tracker.bound() <= exact * 1.0 + 1e-9, "bound {} exact {exact}", tracker.bound());
    }

    #[test]
    fn raise_m_only_grows() {
        let mut wm = WaterMarks::new(model(vec![1.0], 0.0), NormPair::TEXT, 1.0, WatermarkPolicy::Monotone);
        wm.raise_m(0.5);
        assert_eq!(wm.m_norm(), 1.0);
        wm.raise_m(2.0);
        assert_eq!(wm.m_norm(), 2.0);
    }

    #[test]
    fn text_pair_uses_linf_on_model_delta() {
        // p=∞: ‖δw‖_∞ = 3 even though the ℓ2 norm is larger
        let stored = model(vec![0.0, 0.0], 0.0);
        let mut wm = WaterMarks::new(stored, NormPair::TEXT, 1.0, WatermarkPolicy::Monotone);
        let (_, hi) = wm.observe(&model(vec![3.0, -3.0], 0.0));
        assert!((hi - 3.0).abs() < 1e-12, "hi {hi}");
        let _ = Norm::LInf; // silence unused import lint paths in some configs
    }
}
