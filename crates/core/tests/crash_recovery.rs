//! Crash-injection differential suite: for every architecture × lazy/eager
//! mode × shard count, run a long random operation script against a durable
//! view, simulate a crash at **every WAL record boundary**, recover, and
//! diff the recovered view against an oracle that executed only the durable
//! prefix of the script.
//!
//! The oracle is a plain (non-durable) view of the identical configuration,
//! advanced incrementally as the crash boundary walks forward — so the
//! whole suite replays the script exactly once per oracle, not once per
//! boundary. Two oracles are kept:
//!
//! * a **clean** oracle that sees only script operations — its
//!   [`ViewStats`] must equal the recovered view's *exactly* (recovery is
//!   bit-identical, down to the Skiing accumulator and reorganization
//!   counts), and
//! * a **probe** oracle that additionally serves the differential reads —
//!   its classify / scan_positive / top_k answers must equal the recovered
//!   view's at every boundary.
//!
//! Sharded configurations assert answers and model bits but not exact
//! stats: shards share one virtual clock, and the fan-out's thread
//! interleaving makes per-shard waste attribution (a cost *measurement*,
//! not an answer) host-dependent.
//!
//! The crash seed is taken from `HAZY_CRASH_SEED` so CI can run a
//! deterministic seed matrix.

use std::sync::{Arc, Mutex};

use hazy_core::{
    Architecture, ClassifierView, CoreRestorer, DurableClassifierView, DurableView, Entity, Mode,
    OpOverheads, ViewBuilder, ViewRestorer,
};
use hazy_learn::TrainingExample;
use hazy_linalg::{FeatureVec, NormPair};
use hazy_serve::{ServeRestorer, ShardedView};
use hazy_storage::{DurableImage, DurableStore, WalReader};

/// Operations per script — the acceptance floor is 500.
const SCRIPT_OPS: usize = 520;
/// Auto-checkpoint interval (every boundary replays at most this many ops).
const CKPT_INTERVAL: u64 = 48;
const N_ENTITIES: usize = 72;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn seed() -> u64 {
    std::env::var("HAZY_CRASH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

#[derive(Clone, Debug)]
enum Op {
    Update(Vec<TrainingExample>),
    Insert(Entity),
    Read(u64),
    Count,
    Members,
    TopK(usize),
    Reorg,
}

fn feature(r: &mut u64) -> FeatureVec {
    let a = (splitmix64(r) % 256) as f32 / 255.0 - 0.5;
    let b = (splitmix64(r) % 256) as f32 / 255.0 - 0.5;
    FeatureVec::dense(vec![a, b, 1.0])
}

fn base_entities() -> Vec<Entity> {
    let mut r = 0x00E1_7A11_u64;
    (0..N_ENTITIES).map(|k| Entity::new(k as u64, feature(&mut r))).collect()
}

/// Generates a concrete script (ids resolved) so the durable run and every
/// oracle apply byte-identical operations.
fn script(seed: u64) -> (Vec<Op>, Vec<u64>) {
    let mut r = seed ^ 0x5C21_97A3_0000_0001;
    let mut population: Vec<u64> = (0..N_ENTITIES as u64).collect();
    let mut next_id = 10_000u64;
    let mut ops = Vec::with_capacity(SCRIPT_OPS);
    for _ in 0..SCRIPT_OPS {
        let roll = splitmix64(&mut r) % 100;
        let op = if roll < 45 {
            let n = 1 + (splitmix64(&mut r) % 3) as usize;
            let batch = (0..n)
                .map(|_| {
                    let f = feature(&mut r);
                    let y = if splitmix64(&mut r).is_multiple_of(2) { 1 } else { -1 };
                    TrainingExample::new(0, f, y)
                })
                .collect();
            Op::Update(batch)
        } else if roll < 53 {
            let e = Entity::new(next_id, feature(&mut r));
            next_id += 1;
            population.push(e.id);
            Op::Insert(e)
        } else if roll < 78 {
            let idx = (splitmix64(&mut r) as usize) % population.len();
            Op::Read(population[idx])
        } else if roll < 86 {
            Op::Count
        } else if roll < 93 {
            Op::Members
        } else if roll < 98 {
            Op::TopK(1 + (splitmix64(&mut r) % 9) as usize)
        } else {
            Op::Reorg
        };
        ops.push(op);
    }
    (ops, population)
}

fn apply(v: &mut (dyn DurableClassifierView + Send), op: &Op) {
    match op {
        Op::Update(batch) => v.update_batch(batch),
        Op::Insert(e) => v.insert_entity(e.clone()),
        Op::Read(id) => {
            let _ = v.read_single(*id);
        }
        Op::Count => {
            let _ = v.count_positive();
        }
        Op::Members => {
            let _ = v.positive_ids();
        }
        Op::TopK(k) => {
            let _ = v.top_k(*k);
        }
        Op::Reorg => v.reorganize(),
    }
}

fn builder(arch: Architecture, mode: Mode) -> ViewBuilder {
    ViewBuilder::new(arch, mode)
        .norm_pair(NormPair::EUCLIDEAN)
        .overheads(OpOverheads::free())
        .dim(3)
}

fn build_plain(b: &ViewBuilder, shards: usize) -> Box<dyn DurableClassifierView + Send> {
    if shards <= 1 {
        b.build(base_entities(), &[])
    } else {
        Box::new(ShardedView::build(b, shards, base_entities(), &[]))
    }
}

fn assert_models_bit_identical(a: &hazy_learn::LinearModel, b: &hazy_learn::LinearModel, ctx: &str) {
    assert_eq!(a.b.to_bits(), b.b.to_bits(), "{ctx}: bias diverged");
    let (wa, wb) = (a.w.to_vec(), b.w.to_vec());
    assert_eq!(wa.len(), wb.len(), "{ctx}: weight dim diverged");
    for (i, (x, y)) in wa.iter().zip(wb.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: weight {i} diverged");
    }
}

/// Full differential probe: classify every live entity, count, list
/// members, and rank — answers must match bit-for-bit.
fn assert_answers_match(
    recovered: &mut dyn ClassifierView,
    probe: &mut (dyn DurableClassifierView + Send),
    population: &[u64],
    ctx: &str,
) {
    assert_eq!(recovered.count_positive(), probe.count_positive(), "{ctx}: count_positive");
    let mut got = recovered.positive_ids();
    let mut want = probe.positive_ids();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "{ctx}: scan_positive");
    let rk = recovered.top_k(7);
    let pk = probe.top_k(7);
    assert_eq!(rk.len(), pk.len(), "{ctx}: top_k length");
    for ((id_a, m_a), (id_b, m_b)) in rk.iter().zip(pk.iter()) {
        assert_eq!(id_a, id_b, "{ctx}: top_k order");
        assert_eq!(m_a.to_bits(), m_b.to_bits(), "{ctx}: top_k margin");
    }
    for &id in population {
        assert_eq!(recovered.read_single(id), probe.read_single(id), "{ctx}: classify({id})");
    }
    // an id that never existed stays absent after recovery
    assert_eq!(recovered.read_single(u64::MAX - 7), None, "{ctx}: ghost id");
}

fn run_config(arch: Architecture, mode: Mode, shards: usize) {
    let seed = seed();
    let (ops, population) = script(seed);
    let b = builder(arch, mode);
    let restorer: &dyn ViewRestorer = if shards <= 1 { &CoreRestorer } else { &ServeRestorer };
    let ctx_base = format!("{}/{}/shards={shards}/seed={seed}", arch.name(), mode.name());

    // ---- the durable run: capture a crash image at every record boundary
    let inner = build_plain(&b, shards);
    let store = Arc::new(Mutex::new(DurableStore::new(inner.clock().clone())));
    let mut dv = DurableView::create(inner, store, CKPT_INTERVAL);
    let mut images: Vec<DurableImage> = Vec::with_capacity(ops.len() + 1);
    images.push(dv.durable_image());
    for op in &ops {
        apply(&mut dv, op);
        images.push(dv.durable_image());
    }

    // ---- oracles, advanced as the boundary walks forward
    let mut clean = build_plain(&b, shards);
    let mut probe = build_plain(&b, shards);
    let mut applied = 0usize;

    for (boundary, image) in images.iter().enumerate() {
        // the durable prefix: exactly the ops whose WAL records survived
        let durable_ops = WalReader::new(image.wal_bytes()).count();
        assert_eq!(
            durable_ops, boundary,
            "{ctx_base}: boundary {boundary} should have {boundary} durable records"
        );
        while applied < durable_ops {
            apply(clean.as_mut(), &ops[applied]);
            apply(probe.as_mut(), &ops[applied]);
            applied += 1;
        }
        let mut recovered = DurableView::recover_image(&b, image, CKPT_INTERVAL, restorer)
            .unwrap_or_else(|e| panic!("{ctx_base}: recovery at boundary {boundary} failed: {e}"));
        let ctx = format!("{ctx_base}@{boundary}");
        // stats first (before the differential reads mutate them): exact
        // bit-identity for unsharded deployments
        if shards <= 1 {
            assert_eq!(recovered.stats(), clean.stats(), "{ctx}: ViewStats diverged");
        } else {
            let (rs, cs) = (recovered.stats(), clean.stats());
            assert_eq!(rs.updates, cs.updates, "{ctx}: update count diverged");
            assert_eq!(rs.labels_changed, cs.labels_changed, "{ctx}: label flips diverged");
        }
        assert_models_bit_identical(recovered.model(), clean.model(), &ctx);
        // probe only a sample of boundaries exhaustively — every boundary
        // still recovers + checks stats/model above; full answer sweeps at
        // every 7th boundary (and the last) keep the suite fast
        if boundary % 7 == 0 || boundary == images.len() - 1 {
            assert_answers_match(&mut recovered, probe.as_mut(), &population, &ctx);
        } else {
            assert_eq!(
                recovered.count_positive(),
                probe.count_positive(),
                "{ctx}: count_positive"
            );
        }
    }
    assert_eq!(applied, ops.len(), "{ctx_base}: script fully replayed");
}

macro_rules! crash_matrix {
    ($($name:ident => ($arch:expr, $mode:expr, $shards:expr);)*) => {
        $(
            #[test]
            fn $name() {
                run_config($arch, $mode, $shards);
            }
        )*
    };
}

crash_matrix! {
    naive_mem_eager_unsharded => (Architecture::NaiveMem, Mode::Eager, 1);
    naive_mem_lazy_unsharded => (Architecture::NaiveMem, Mode::Lazy, 1);
    naive_mem_eager_sharded => (Architecture::NaiveMem, Mode::Eager, 3);
    naive_mem_lazy_sharded => (Architecture::NaiveMem, Mode::Lazy, 3);
    hazy_mem_eager_unsharded => (Architecture::HazyMem, Mode::Eager, 1);
    hazy_mem_lazy_unsharded => (Architecture::HazyMem, Mode::Lazy, 1);
    hazy_mem_eager_sharded => (Architecture::HazyMem, Mode::Eager, 3);
    hazy_mem_lazy_sharded => (Architecture::HazyMem, Mode::Lazy, 3);
    naive_disk_eager_unsharded => (Architecture::NaiveDisk, Mode::Eager, 1);
    naive_disk_lazy_unsharded => (Architecture::NaiveDisk, Mode::Lazy, 1);
    naive_disk_eager_sharded => (Architecture::NaiveDisk, Mode::Eager, 3);
    naive_disk_lazy_sharded => (Architecture::NaiveDisk, Mode::Lazy, 3);
    hazy_disk_eager_unsharded => (Architecture::HazyDisk, Mode::Eager, 1);
    hazy_disk_lazy_unsharded => (Architecture::HazyDisk, Mode::Lazy, 1);
    hazy_disk_eager_sharded => (Architecture::HazyDisk, Mode::Eager, 3);
    hazy_disk_lazy_sharded => (Architecture::HazyDisk, Mode::Lazy, 3);
    hybrid_eager_unsharded => (Architecture::Hybrid, Mode::Eager, 1);
    hybrid_lazy_unsharded => (Architecture::Hybrid, Mode::Lazy, 1);
    hybrid_eager_sharded => (Architecture::Hybrid, Mode::Eager, 3);
    hybrid_lazy_sharded => (Architecture::Hybrid, Mode::Lazy, 3);
}

/// A torn WAL tail (power loss mid-fsync) recovers to exactly the durable
/// prefix — the CRC rejects the half-record.
#[test]
fn torn_wal_tail_recovers_to_prefix() {
    let b = builder(Architecture::HazyMem, Mode::Eager);
    let (ops, population) = script(seed());
    let inner = build_plain(&b, 1);
    let store = Arc::new(Mutex::new(DurableStore::new(inner.clock().clone())));
    let mut dv = DurableView::create(inner, store, CKPT_INTERVAL);
    dv.store().lock().unwrap().wal.arm_crash(hazy_storage::CrashPoint::TornAfterRecords(90));
    for op in &ops {
        apply(&mut dv, op);
    }
    let image = dv.durable_image();
    assert_eq!(WalReader::new(image.wal_bytes()).count(), 90, "torn record must not parse");
    let mut recovered =
        DurableView::recover_image(&b, &image, CKPT_INTERVAL, &CoreRestorer).unwrap();
    let mut oracle = build_plain(&b, 1);
    for op in &ops[..90] {
        apply(oracle.as_mut(), op);
    }
    assert_eq!(recovered.stats(), oracle.stats());
    assert_models_bit_identical(recovered.model(), oracle.model(), "torn tail");
    assert_answers_match(&mut recovered, oracle.as_mut(), &population, "torn tail");
}

/// A crash mid-checkpoint leaves the previous checkpoint authoritative and
/// the view recovers through the longer WAL replay — no half-written
/// checkpoint is ever observable.
#[test]
fn torn_checkpoint_recovers_through_previous_slot() {
    let b = builder(Architecture::Hybrid, Mode::Lazy);
    let (ops, population) = script(seed());
    let inner = build_plain(&b, 1);
    let store = Arc::new(Mutex::new(DurableStore::new(inner.clock().clone())));
    // manual checkpointing only
    let mut dv = DurableView::create(inner, store, 0);
    for op in &ops[..200] {
        apply(&mut dv, op);
    }
    dv.checkpoint();
    for op in &ops[200..300] {
        apply(&mut dv, op);
    }
    dv.store().lock().unwrap().checkpoints.arm_torn_write();
    dv.checkpoint(); // torn — never lands
    for op in &ops[300..320] {
        apply(&mut dv, op);
    }
    let mut recovered =
        DurableView::recover_image(&b, &dv.durable_image(), 0, &CoreRestorer).unwrap();
    let mut oracle = build_plain(&b, 1);
    for op in &ops[..320] {
        apply(oracle.as_mut(), op);
    }
    assert_eq!(recovered.stats(), oracle.stats());
    assert_answers_match(&mut recovered, oracle.as_mut(), &population, "torn checkpoint");
}

/// PR 8, epochs × durability: readers hold epoch pins across a crash at
/// **every WAL record boundary** while a publisher mirrors the durable
/// write stream. For each boundary the recovered view republishes epoch 0
/// from scratch (`published == 1`, `reclaimed == 0` — recovery never
/// resurrects an epoch, because epoch state is deliberately excluded from
/// checkpoints and the WAL), and the *recovered* snapshot must answer
/// bit-identically to the pin that was taken live at that same LSN — the
/// held pins from the pre-crash run are the oracle. The live cell's
/// retired chain then drains completely once the pins drop, proving no
/// recovery ever freed (or double-freed) an epoch it did not own.
#[test]
fn epoch_pins_survive_crash_at_every_wal_boundary() {
    use hazy_core::EpochPublisher;

    let b = builder(Architecture::HazyMem, Mode::Eager);
    let (ops, _population) = script(seed());
    let inner = build_plain(&b, 1);
    let store = Arc::new(Mutex::new(DurableStore::new(inner.clock().clone())));
    let mut dv = DurableView::create(inner, store, CKPT_INTERVAL);

    let (entities, model) = dv.snapshot_state().expect("durable views snapshot");
    let mut publisher = EpochPublisher::new(entities, model, NormPair::EUCLIDEAN, 0);
    let cell = publisher.handle();

    let mut images: Vec<DurableImage> = Vec::with_capacity(ops.len() + 1);
    images.push(dv.durable_image());
    let mut pins = Vec::new();
    let mut pinned_at = Vec::new();
    pins.push(cell.pin());
    pinned_at.push(0u64);
    for (i, op) in ops.iter().enumerate() {
        apply(&mut dv, op);
        match op {
            Op::Update(_) => {
                let m = dv.model().clone();
                publisher.apply_update(&m);
            }
            Op::Insert(e) => publisher.apply_insert(e.clone()),
            Op::Reorg => publisher.apply_reorganize(),
            // reads advance the logical LSN without changing answers
            Op::Read(_) | Op::Count | Op::Members | Op::TopK(_) => publisher.apply_noop(),
        }
        images.push(dv.durable_image());
        if (i + 1).is_multiple_of(13) {
            // a reader pins here and holds across every later write,
            // checkpoint, crash and recovery below
            pins.push(cell.pin());
            pinned_at.push((i + 1) as u64);
        }
    }
    assert_eq!(publisher.lsn(), ops.len() as u64, "one publication per logical statement");

    // crash at every boundary that has a held pin: the recovered view's
    // fresh epoch must agree with the live pin taken at that LSN
    for (pin, &lsn) in pins.iter().zip(pinned_at.iter()) {
        let image = &images[lsn as usize];
        let mut recovered = DurableView::recover_image(&b, image, CKPT_INTERVAL, &CoreRestorer)
            .unwrap_or_else(|e| panic!("recovery at boundary {lsn} failed: {e}"));
        let (entities, model) = recovered.snapshot_state().expect("recovered view snapshots");
        let fresh = EpochPublisher::new(entities, model, NormPair::EUCLIDEAN, lsn);
        let fcell = fresh.handle();
        let es = fcell.stats();
        assert_eq!(es.published, 1, "boundary {lsn}: recovery must not resurrect epochs");
        assert_eq!(es.reclaimed, 0, "boundary {lsn}: recovery must not reclaim epochs");
        let fpin = fcell.pin();
        assert_eq!(fpin.lsn(), pin.lsn(), "boundary {lsn}: LSN");
        assert_eq!(fpin.count_positive(), pin.count_positive(), "boundary {lsn}: count");
        assert_eq!(fpin.positive_ids(), pin.positive_ids(), "boundary {lsn}: members");
        let (fk, lk) = (fpin.top_k(7), pin.top_k(7));
        assert_eq!(fk.len(), lk.len(), "boundary {lsn}: top_k length");
        for ((fa, fm), (la, lm)) in fk.iter().zip(lk.iter()) {
            assert_eq!(fa, la, "boundary {lsn}: top_k order");
            assert_eq!(fm.to_bits(), lm.to_bits(), "boundary {lsn}: top_k margin");
        }
        assert_models_bit_identical(fpin.model(), pin.model(), &format!("boundary {lsn}"));
    }

    // durable ViewStats never carry epoch counters: a recovered view's
    // ephemeral counters restart from its own fresh publications
    let recovered = DurableView::recover_image(&b, images.last().unwrap(), CKPT_INTERVAL, &CoreRestorer).unwrap();
    assert_eq!(recovered.stats().epochs_published, 0, "epoch counters must not be durable");
    assert_eq!(recovered.stats().epoch_pins, 0, "pin counters must not be durable");

    // and the live cell drains exactly once the pins drop
    drop(pins);
    cell.try_collect();
    let es = cell.stats();
    assert_eq!(es.retired_live, 0, "retired chain drained after pins dropped");
    assert_eq!(es.reclaimed + 1, es.published, "exactly the current epoch survives");
}
