//! Property tests for the epoch snapshot machinery, plus a counting
//! allocator shim that proves reclamation discipline at the allocation
//! level:
//!
//! * **immutability** — once pinned, a [`hazy_core::ModelEpoch`]'s answers
//!   are bit-frozen under arbitrary interleavings of model updates,
//!   inserts, removals, reorganizations (rebases) and architecture
//!   migrations happening behind it, with the collector running after
//!   every single operation;
//! * **conservation** — at every step,
//!   `published == reclaimed + retired_live + 1` (the current epoch):
//!   nothing is double-freed, nothing leaks out of the ledger, and a
//!   pinned epoch is never reclaimed while its pin is live;
//! * **allocation balance** — via a thread-local counting
//!   `#[global_allocator]` shim, the bytes live before building a
//!   publisher equal the bytes live after dropping it: every epoch ever
//!   published was freed exactly once (a leak leaves the count high, a
//!   double free — if it survived — would leave it low).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use hazy_core::{
    Architecture, DurableClassifierView, Entity, EpochPublisher, Mode, OpOverheads, ViewBuilder,
};
use hazy_learn::TrainingExample;
use hazy_linalg::{FeatureVec, NormPair};
use proptest::prelude::*;

/// Counts net live bytes per thread. Thread-local so the parallel test
/// harness (and any sibling test) cannot pollute a measurement: everything
/// this suite allocates and frees happens on the measuring thread.
struct CountingAlloc;

thread_local! {
    static LIVE_BYTES: Cell<i64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let _ = LIVE_BYTES.try_with(|c| c.set(c.get() + layout.size() as i64));
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        let _ = LIVE_BYTES.try_with(|c| c.set(c.get() - layout.size() as i64));
        unsafe { System.dealloc(p, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live_bytes() -> i64 {
    LIVE_BYTES.with(|c| c.get())
}

fn grid_feature(a: u8, b: u8) -> FeatureVec {
    FeatureVec::dense(vec![f32::from(a) / 255.0 - 0.5, f32::from(b) / 255.0 - 0.5, 1.0])
}

fn base_entities(n: usize) -> Vec<Entity> {
    (0..n)
        .map(|k| Entity::new(k as u64, grid_feature((k * 37 % 256) as u8, (k * 91 % 256) as u8)))
        .collect()
}

fn build_view(arch: Architecture, mode: Mode) -> Box<dyn DurableClassifierView + Send> {
    ViewBuilder::new(arch, mode)
        .norm_pair(NormPair::EUCLIDEAN)
        .overheads(OpOverheads::free())
        .dim(3)
        .build(base_entities(48), &[])
}

#[derive(Clone, Debug)]
enum Op {
    Update(u8, u8, bool),
    Insert(u8, u8),
    Remove(u16),
    Reorg,
    /// Round-trip migration hop (memory ↔ disk) behind the pin.
    Migrate,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(a, b, y)| Op::Update(a, b, y)),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Insert(a, b)),
        2 => any::<u16>().prop_map(Op::Remove),
        1 => Just(Op::Reorg),
        1 => Just(Op::Migrate),
    ]
}

/// Applies one op to the live view and mirrors it into the publisher the
/// way the serving layer does, collecting after every step so reclamation
/// pressure is maximal while pins are held.
fn writer_step(
    b: &ViewBuilder,
    view: &mut Box<dyn DurableClassifierView + Send>,
    publisher: &mut EpochPublisher,
    next_id: &mut u64,
    op: &Op,
) {
    match op {
        Op::Update(a, bb, y) => {
            let ex = TrainingExample::new(0, grid_feature(*a, *bb), if *y { 1 } else { -1 });
            view.update(&ex);
            let m = view.model().clone();
            publisher.apply_update(&m);
        }
        Op::Insert(a, bb) => {
            *next_id += 1;
            let e = Entity::new(*next_id, grid_feature(*a, *bb));
            view.insert_entity(e.clone());
            publisher.apply_insert(e);
        }
        Op::Remove(raw) => {
            let id = u64::from(*raw) % (*next_id + 1);
            let _ = view.remove_entity(id);
            let _ = publisher.apply_remove(id);
        }
        Op::Reorg => {
            view.reorganize();
            publisher.apply_reorganize();
        }
        Op::Migrate => {
            let clock = view.clock().clone();
            let state = view.export_migration().expect("plain views export migration state");
            let (arch, mode) = if view.describe().contains("mm") {
                (Architecture::HazyDisk, Mode::Eager)
            } else {
                (Architecture::HazyMem, Mode::Eager)
            };
            *view = b.build_migrated(arch, mode, state, clock);
            publisher.apply_noop();
        }
    }
    publisher.handle().try_collect();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A pin taken at an arbitrary point keeps serving bit-identical
    /// answers while the writer applies an arbitrary suffix of operations
    /// — including rebases and migrations — with the collector invoked
    /// after every one of them. The ledger conserves every epoch at every
    /// step, and drains fully once the pin drops.
    #[test]
    fn pinned_answers_are_immutable_under_writer_pressure(
        ops in prop::collection::vec(arb_op(), 1..80),
        pin_at_raw in any::<u16>(),
    ) {
        let b = ViewBuilder::new(Architecture::HazyMem, Mode::Eager)
            .norm_pair(NormPair::EUCLIDEAN)
            .overheads(OpOverheads::free())
            .dim(3);
        let mut view = build_view(Architecture::HazyMem, Mode::Eager);
        let (entities, model) = view.snapshot_state().expect("snapshot");
        let mut publisher = EpochPublisher::new(entities, model, NormPair::EUCLIDEAN, 0);
        let cell = publisher.handle();
        let mut next_id = 47u64;

        let pin_at = usize::from(pin_at_raw) % ops.len();
        for op in &ops[..pin_at] {
            writer_step(&b, &mut view, &mut publisher, &mut next_id, op);
        }

        let pin = cell.pin();
        let frozen_lsn = pin.lsn();
        let frozen_count = pin.count_positive();
        let frozen_members = pin.positive_ids();
        let frozen_top = pin.top_k(5);
        let frozen_model = pin.model().clone();

        for op in &ops[pin_at..] {
            writer_step(&b, &mut view, &mut publisher, &mut next_id, op);
            // conservation at every step, pin still held
            let es = cell.stats();
            prop_assert_eq!(
                es.published, es.reclaimed + es.retired_live + 1,
                "epoch ledger lost or duplicated a node"
            );
            // immutability under maximal collector pressure
            prop_assert_eq!(pin.lsn(), frozen_lsn);
            prop_assert_eq!(pin.count_positive(), frozen_count);
        }
        prop_assert_eq!(pin.positive_ids(), frozen_members);
        let got_top = pin.top_k(5);
        prop_assert_eq!(got_top.len(), frozen_top.len());
        for ((ga, gm), (wa, wm)) in got_top.iter().zip(frozen_top.iter()) {
            prop_assert_eq!(ga, wa);
            prop_assert_eq!(gm.to_bits(), wm.to_bits());
        }
        prop_assert_eq!(pin.model().b.to_bits(), frozen_model.b.to_bits());

        // the pinned epoch was never reclaimed: dropping the pin and
        // collecting once must drain the whole retired chain
        drop(pin);
        cell.try_collect();
        let es = cell.stats();
        prop_assert_eq!(es.retired_live, 0, "retired chain not drained after unpin");
        prop_assert_eq!(es.reclaimed + 1, es.published, "exactly the current epoch survives");
    }
}

/// The allocation-balance proof. One measured scope builds a publisher,
/// storms it with updates/rebases while a pin is held (collector after
/// every publish), then unpins and drops everything: the thread's live
/// byte count must return exactly to its pre-scope value. Run twice — the
/// first pass warms up lazily-initialized runtime state (stdio, TLS) so
/// the second pass measures only the epoch machinery.
#[test]
fn epoch_reclamation_is_allocation_balanced() {
    // prep (unmeasured): a live view generates a realistic model-drift
    // trajectory; the measured scope then exercises *only* the epoch
    // machinery, with every input cloned inside the scope
    let mut view = build_view(Architecture::NaiveMem, Mode::Eager);
    let (entities, model0) = view.snapshot_state().expect("snapshot");
    let mut models = Vec::with_capacity(400);
    let mut r = 0xA_110C_u64;
    for _ in 0..400u64 {
        r = r.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let ex = TrainingExample::new(
            0,
            grid_feature((r >> 16) as u8, (r >> 32) as u8),
            if r.is_multiple_of(2) { 1 } else { -1 },
        );
        view.update(&ex);
        models.push(view.model().clone());
    }

    let run = |measure: bool| -> (i64, i64) {
        let before = live_bytes();
        {
            let mut publisher =
                EpochPublisher::new(entities.clone(), model0.clone(), NormPair::EUCLIDEAN, 0);
            let cell = publisher.handle();
            let mut pin = Some(cell.pin());
            for (i, m) in models.iter().enumerate() {
                publisher.apply_update(m);
                if (i as u64).is_multiple_of(97) {
                    publisher.apply_reorganize();
                }
                cell.try_collect();
                if i == 200 {
                    // re-pin mid-storm: the old pin drains, a fresh epoch
                    // gets held across the rest of the run
                    pin = Some(cell.pin());
                }
                if let Some(p) = &pin {
                    // a freed epoch could not keep answering coherently
                    assert!(p.count_positive() <= p.entity_count());
                }
                let es = cell.stats();
                assert_eq!(
                    es.published,
                    es.reclaimed + es.retired_live + 1,
                    "epoch ledger lost or duplicated a node at step {i}"
                );
            }
            drop(pin);
            cell.try_collect();
            let es = cell.stats();
            assert_eq!(es.retired_live, 0, "retired chain must drain once unpinned");
            assert_eq!(es.reclaimed + 1, es.published);
        }
        let after = live_bytes();
        if measure {
            (before, after)
        } else {
            (0, 0)
        }
    };
    run(false); // warmup
    let (before, after) = run(true);
    assert_eq!(
        after, before,
        "epoch machinery leaked or double-freed {} bytes",
        after - before
    );
}
