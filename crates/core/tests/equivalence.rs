//! Cross-architecture equivalence: all five architectures, eager and lazy,
//! must serve **identical answers** for every operation under the same
//! update stream — they differ only in cost. This is the correctness
//! backbone of the whole reproduction: Hazy's claim is performance, never a
//! different answer.

use hazy_core::{Architecture, DurableClassifierView, Entity, Mode, OpOverheads, ViewBuilder};
use hazy_datagen::{DatasetSpec, ExampleStream};

fn build_all(spec: &hazy_datagen::DatasetSpec, warm: usize) -> Vec<Box<dyn DurableClassifierView + Send>> {
    let ds = spec.generate();
    let entities: Vec<Entity> = ds.entities.iter().map(|e| Entity::new(e.id, e.f.clone())).collect();
    let warm_examples = ExampleStream::new(spec, 99).take_vec(warm);
    let mut views = Vec::new();
    for arch in Architecture::all() {
        for mode in [Mode::Eager, Mode::Lazy] {
            let v = ViewBuilder::new(arch, mode)
                .norm_pair(spec.norm_pair())
                .dim(spec.dim)
                .build(entities.clone(), &warm_examples);
            views.push(v);
        }
    }
    views
}

#[test]
fn all_architectures_serve_identical_answers() {
    let spec = DatasetSpec::dblife().scaled(0.008);
    let mut views = build_all(&spec, 500);
    let n = spec.n_entities as u64;
    let mut stream = ExampleStream::new(&spec, 7);

    for round in 0..120 {
        let ex = stream.next_example();
        for v in views.iter_mut() {
            v.update(&ex);
        }
        if round % 30 == 7 {
            let counts: Vec<u64> = views.iter_mut().map(|v| v.count_positive()).collect();
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "round {round}: count divergence: {:?}",
                views.iter().map(|v| v.describe()).zip(counts.iter()).collect::<Vec<_>>()
            );
        }
    }

    // single-entity reads agree everywhere
    for id in (0..n).step_by(37) {
        let labels: Vec<Option<i8>> = views.iter_mut().map(|v| v.read_single(id)).collect();
        assert!(
            labels.windows(2).all(|w| w[0] == w[1]),
            "id {id}: label divergence {labels:?}"
        );
        assert!(labels[0].is_some(), "id {id} missing");
    }

    // full member lists agree
    let mut lists: Vec<Vec<u64>> = views
        .iter_mut()
        .map(|v| {
            let mut ids = v.positive_ids();
            ids.sort_unstable();
            ids
        })
        .collect();
    let first = lists.remove(0);
    for (v, l) in views.iter().skip(1).zip(lists.iter()) {
        assert_eq!(&first, l, "{} diverges on positive_ids", v.describe());
    }

    // ranked reads agree bit-for-bit: same ids, same margins, same order
    let mut ranked: Vec<Vec<(u64, f64)>> = views.iter_mut().map(|v| v.top_k(25)).collect();
    let first = ranked.remove(0);
    assert_eq!(first.len(), 25);
    assert!(
        first.windows(2).all(|w| hazy_core::rank_order(&w[0], &w[1]) != std::cmp::Ordering::Greater),
        "top_k not in rank order: {first:?}"
    );
    for (v, r) in views.iter().skip(1).zip(ranked.iter()) {
        assert_eq!(&first, r, "{} diverges on top_k", v.describe());
    }
}

#[test]
fn entity_inserts_are_equivalent_across_architectures() {
    let spec = DatasetSpec::forest().scaled(0.001);
    let mut views = build_all(&spec, 300);
    let mut stream = ExampleStream::new(&spec, 13);

    // interleave updates and entity inserts
    let mut extra = ExampleStream::new(&spec, 21);
    for round in 0..60 {
        let ex = stream.next_example();
        for v in views.iter_mut() {
            v.update(&ex);
        }
        if round % 10 == 3 {
            let e = extra.next_example();
            let ent = Entity::new(e.id, e.f.clone());
            for v in views.iter_mut() {
                v.insert_entity(ent.clone());
            }
            let labels: Vec<Option<i8>> = views.iter_mut().map(|v| v.read_single(e.id)).collect();
            assert!(labels.windows(2).all(|w| w[0] == w[1]), "inserted {}: {labels:?}", e.id);
        }
    }
    let counts: Vec<u64> = views.iter_mut().map(|v| v.count_positive()).collect();
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "final counts {counts:?}");
}

/// This PR's tentpole invariant: batched updates (`update_batch`) and
/// explicitly triggered incremental reorganizations (`reorganize`) are pure
/// performance features — interleaved with inserts and reads in any order,
/// all five architectures in both modes still serve identical labels,
/// counts and member lists, and those answers equal a from-scratch
/// classification under the final model.
#[test]
fn update_batches_and_incremental_reorgs_preserve_equivalence() {
    let spec = DatasetSpec::dblife().scaled(0.006);
    let mut views = build_all(&spec, 400);
    let n = spec.n_entities as u64;
    let mut stream = ExampleStream::new(&spec, 17);
    let mut extra = ExampleStream::new(&spec, 29);

    for round in 0..16 {
        // batch sizes vary so maintenance bands of different widths are hit
        let batch = stream.take_vec(1 + (round % 7));
        for v in views.iter_mut() {
            v.update_batch(&batch);
        }
        if round % 3 == 1 {
            // entity inserts grow the unsorted tail between reorgs
            let e = extra.next_example();
            let ent = Entity::new(e.id, e.f.clone());
            for v in views.iter_mut() {
                v.insert_entity(ent.clone());
            }
        }
        if round % 4 == 2 {
            // force the incremental reorganization paths (merge the tail
            // in; free when there is nothing to do)
            for v in views.iter_mut() {
                v.reorganize();
            }
        }
        if round % 5 == 3 {
            let counts: Vec<u64> = views.iter_mut().map(|v| v.count_positive()).collect();
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "round {round}: count divergence: {:?}",
                views.iter().map(|v| v.describe()).zip(counts.iter()).collect::<Vec<_>>()
            );
        }
    }

    // a second reorganize right after the first exercises the free path on
    // every architecture that has one
    for v in views.iter_mut() {
        v.reorganize();
        v.reorganize();
    }

    for id in (0..n).step_by(23) {
        let labels: Vec<Option<i8>> = views.iter_mut().map(|v| v.read_single(id)).collect();
        assert!(labels.windows(2).all(|w| w[0] == w[1]), "id {id}: label divergence {labels:?}");
    }
    let mut lists: Vec<Vec<u64>> = views
        .iter_mut()
        .map(|v| {
            let mut ids = v.positive_ids();
            ids.sort_unstable();
            ids
        })
        .collect();
    let first = lists.remove(0);
    for (v, l) in views.iter().skip(1).zip(lists.iter()) {
        assert_eq!(&first, l, "{} diverges on positive_ids after batches", v.describe());
    }
}

/// `update_batch` must be *observationally identical* to the same examples
/// applied one at a time: same final model, same labels everywhere.
#[test]
fn batched_updates_match_sequential_updates() {
    let spec = DatasetSpec::forest().scaled(0.001);
    let ds = spec.generate();
    let entities: Vec<Entity> =
        ds.entities.iter().map(|e| Entity::new(e.id, e.f.clone())).collect();
    let warm = ExampleStream::new(&spec, 99).take_vec(200);
    let examples = ExampleStream::new(&spec, 41).take_vec(90);

    for arch in Architecture::all() {
        for mode in [Mode::Eager, Mode::Lazy] {
            let builder = ViewBuilder::new(arch, mode).norm_pair(spec.norm_pair()).dim(spec.dim);
            let mut sequential = builder.build(entities.clone(), &warm);
            let mut batched = builder.build(entities.clone(), &warm);
            for ex in &examples {
                sequential.update(ex);
            }
            for chunk in examples.chunks(13) {
                batched.update_batch(chunk);
            }
            assert_eq!(
                sequential.count_positive(),
                batched.count_positive(),
                "{arch:?}/{mode:?} counts diverge"
            );
            for e in entities.iter().step_by(11) {
                assert_eq!(
                    sequential.read_single(e.id),
                    batched.read_single(e.id),
                    "{arch:?}/{mode:?} id {}",
                    e.id
                );
            }
        }
    }
}

#[test]
fn hazy_is_cheaper_than_naive_in_virtual_time() {
    let spec = DatasetSpec::dblife().scaled(0.01);
    let ds = spec.generate();
    let entities: Vec<Entity> =
        ds.entities.iter().map(|e| Entity::new(e.id, e.f.clone())).collect();
    let warm = ExampleStream::new(&spec, 99).take_vec(12_000);

    let mut costs = Vec::new();
    for arch in [Architecture::NaiveMem, Architecture::HazyMem] {
        // free per-statement overheads: this test isolates the algorithmic
        // cost difference (benches measure end-to-end rates separately)
        let mut v = ViewBuilder::new(arch, Mode::Eager)
            .norm_pair(spec.norm_pair())
            .overheads(OpOverheads::free())
            .dim(spec.dim)
            .build(entities.clone(), &warm);
        let mut stream = ExampleStream::new(&spec, 3);
        let t0 = v.clock().now_ns();
        for _ in 0..300 {
            v.update(&stream.next_example());
        }
        costs.push(v.clock().now_ns() - t0);
    }
    let (naive, hazy) = (costs[0], costs[1]);
    assert!(
        hazy * 3 < naive,
        "hazy-mm ({hazy} ns) should be well under naive-mm ({naive} ns) on eager updates"
    );
}

#[test]
fn lazy_hazy_scans_cheaper_than_lazy_naive() {
    let spec = DatasetSpec::dblife().scaled(0.01);
    let ds = spec.generate();
    let entities: Vec<Entity> =
        ds.entities.iter().map(|e| Entity::new(e.id, e.f.clone())).collect();
    let warm = ExampleStream::new(&spec, 99).take_vec(4000);

    let mut costs = Vec::new();
    for arch in [Architecture::NaiveMem, Architecture::HazyMem] {
        let mut v = ViewBuilder::new(arch, Mode::Lazy)
            .norm_pair(spec.norm_pair())
            .overheads(OpOverheads::free())
            .dim(spec.dim)
            .build(entities.clone(), &warm);
        let mut stream = ExampleStream::new(&spec, 3);
        // a few updates, then repeated All-Members queries (the paper's
        // lazy bottleneck)
        for _ in 0..20 {
            v.update(&stream.next_example());
        }
        let t0 = v.clock().now_ns();
        for _ in 0..20 {
            v.count_positive();
        }
        costs.push(v.clock().now_ns() - t0);
    }
    let (naive, hazy) = (costs[0], costs[1]);
    assert!(hazy < naive, "lazy hazy scan ({hazy} ns) vs naive ({naive} ns)");
}
