//! Golden-value regression tests for the paper's Section 3.3 / Section 4
//! numbers: the Skiing ski-rental ratio machinery and the Lemma 3.1
//! watermark bounds.
//!
//! These constants were computed from the implementation once and frozen.
//! They pin the *exact* float semantics: a refactor of `skiing.rs`,
//! `watermark.rs` or the schedule DP that silently shifts any of these
//! values would drift every reproduced figure (and, since the durability
//! subsystem round-trips these floats bit-exactly, would also break
//! recovery equivalence against old checkpoints). Comparisons are
//! bit-exact on purpose — if a change legitimately alters a number, the
//! new value must be reviewed and re-frozen here.

use hazy_core::opt::{optimal_schedule, skiing_schedule, CostMatrix};
use hazy_core::{DeltaTracker, Skiing, WaterMarks, WatermarkPolicy};
use hazy_learn::{LinearModel, SgdConfig, SgdTrainer};
use hazy_linalg::{FeatureVec, NormPair};

fn assert_bits(got: f64, want: f64, what: &str) {
    assert_eq!(
        got.to_bits(),
        want.to_bits(),
        "{what}: got {got:?}, golden {want:?} — a refactor drifted a paper number"
    );
}

/// `α*(σ)` is the positive root of `x² + σx − 1` and the competitive ratio
/// is `1 + σ + α` (Lemma 3.2); as σ → 0 the classic ski-rental limit α = 1,
/// ratio = 2 (Theorem 3.3).
#[test]
fn ski_rental_alpha_and_ratio_goldens() {
    let golden = [
        (0.0, 1.0, 2.0),
        (0.1, 0.9512492197250393, 2.0512492197250394),
        (0.25, 0.8827822185373186, 2.1327822185373186),
        (0.5, 0.7807764064044151, 2.2807764064044154),
        (1.0, 0.6180339887498949, 2.618033988749895),
    ];
    for (sigma, alpha, ratio) in golden {
        assert_bits(Skiing::alpha_optimal(sigma), alpha, "alpha_optimal");
        assert_bits(
            Skiing::competitive_ratio(sigma, Skiing::alpha_optimal(sigma)),
            ratio,
            "competitive_ratio",
        );
    }
    // σ = 1 gives the golden-ratio conjugate — a sanity anchor
    assert!((Skiing::alpha_optimal(1.0) - (5f64.sqrt() - 1.0) / 2.0).abs() < 1e-15);
}

struct Growth {
    g: Vec<f64>,
    s: f64,
}

impl CostMatrix for Growth {
    fn cost(&self, s: usize, i: usize) -> f64 {
        self.g[s..i].iter().sum::<f64>().min(self.s)
    }
    fn rounds(&self) -> usize {
        self.g.len()
    }
}

/// The Skiing strategy and the offline DP optimum on a fixed periodic cost
/// matrix: exact reorganization rounds and exact total costs. The realized
/// ratio (68/65.6 ≈ 1.037) sits far inside the `1 + σ + α` guarantee.
#[test]
fn skiing_vs_optimum_schedule_goldens() {
    let g: Vec<f64> = (0..40).map(|r| ((r * 7) % 5) as f64 * 0.3).collect();
    let m = Growth { g, s: 4.0 };
    let sk = skiing_schedule(&m, 4.0, 1.0);
    assert_eq!(sk.reorgs, vec![5, 10, 15, 20, 25, 30, 35, 40], "skiing reorg rounds drifted");
    assert_bits(sk.cost, 68.0, "skiing schedule cost");
    let opt = optimal_schedule(&m, 4.0);
    assert_eq!(opt.reorgs, vec![3, 8, 13, 18, 23, 28, 33, 38], "optimal reorg rounds drifted");
    assert_bits(opt.cost, 65.6, "optimal schedule cost");
    let ratio = sk.cost / opt.cost;
    assert!(ratio <= Skiing::competitive_ratio(1.0, 1.0), "realized ratio {ratio} out of bound");
}

/// Lemma 3.1 / Eq. 2 watermark bounds under a fixed monotone drift:
/// `hw = M·‖δw‖ + δb` / `lw = −M·‖δw‖ + δb` folded by running extrema.
#[test]
fn watermark_bound_goldens_monotone_drift() {
    let stored = LinearModel::from_parts(vec![0.5, -0.25], 0.1);
    for policy in [WatermarkPolicy::Monotone, WatermarkPolicy::Window2] {
        let mut wm = WaterMarks::new(stored.clone(), NormPair::EUCLIDEAN, 1.75, policy);
        for round in 1..=6 {
            let d = 0.05 * round as f64;
            let cur = LinearModel::from_parts(vec![0.5 + d, -0.25 - d / 2.0], 0.1 - d / 3.0);
            wm.observe(&cur);
        }
        // under monotone drift the window-2 extrema coincide with the
        // running extrema — both must land on the same golden band
        assert_bits(wm.low(), -0.6869678440936949, "lw after drift");
        assert_bits(wm.high(), 0.4869678440936949, "hw after drift");
    }
}

/// Oscillating drift separates the policies' *mechanism* (running extrema
/// vs a two-round window) while this particular script still lands them on
/// one golden band — the point frozen here is the exact arithmetic.
#[test]
fn watermark_bound_goldens_oscillating_drift() {
    let stored = LinearModel::from_parts(vec![0.5, -0.25], 0.1);
    for policy in [WatermarkPolicy::Monotone, WatermarkPolicy::Window2] {
        let mut wm = WaterMarks::new(stored.clone(), NormPair::EUCLIDEAN, 1.75, policy);
        for round in 1..=6 {
            let d = if round % 2 == 0 { 0.3 } else { 0.02 * round as f64 };
            wm.observe(&LinearModel::from_parts(vec![0.5 + d, -0.25], 0.1));
        }
        assert_bits(wm.low(), -0.5250000000000001, "lw after oscillation");
        assert_bits(wm.high(), 0.5250000000000001, "hw after oscillation");
    }
}

/// The O(nnz) incremental delta-norm bound on a fixed SGD script, for both
/// Hölder pairs the paper uses. Also re-checks soundness (bound ≥ exact)
/// and the ℓ2 case's tightness on this script.
#[test]
fn delta_tracker_bound_goldens() {
    let golden = [
        (NormPair::TEXT, 1.4978281491851817, 0.9991745139986835),
        (NormPair::EUCLIDEAN, 1.8016557376151996, 1.8015466350893994),
    ];
    for (pair, bound_golden, exact_golden) in golden {
        let mut t = SgdTrainer::new(SgdConfig::svm(), 4);
        for k in 0..30u32 {
            let f = FeatureVec::sparse(4, vec![(k % 4, 0.5), ((k + 1) % 4, -0.25)]);
            t.step(&f, if k % 2 == 0 { 1 } else { -1 });
        }
        let stored = t.model().clone();
        let mut tracker = DeltaTracker::new(&stored, pair.p);
        for k in 0..25u32 {
            let f = FeatureVec::sparse(4, vec![(k % 4, 1.0)]);
            let info = t.step(&f, if k % 3 == 0 { 1 } else { -1 });
            tracker.apply(&info, &f);
        }
        let exact = t.model().delta_norm(&stored, pair.p);
        assert_bits(tracker.bound(), bound_golden, "tracker bound");
        assert_bits(exact, exact_golden, "exact delta norm");
        assert!(tracker.bound() >= exact, "bound must stay sound");
    }
}
