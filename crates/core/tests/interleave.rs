//! Deterministic interleaving suite for epoch snapshot reads (PR 8's
//! centerpiece deliverable): a seeded single-threaded **step scheduler**
//! interleaves N reader state machines with one writer walking a long
//! random operation script, and proves that every answer served off a
//! pinned [`hazy_core::ModelEpoch`] equals a **prefix-consistent oracle** —
//! a plain view that executed exactly the first `lsn` script operations and
//! nothing else.
//!
//! Why a scheduler instead of threads: thread interleavings are
//! host-dependent, so a failing schedule could never be replayed. Here
//! every actor is a state machine advanced one step at a time in an order
//! drawn from `HAZY_CRASH_SEED` (the same knob the crash matrix uses, so CI
//! runs a seed matrix over this suite too). Readers deliberately *hold
//! their pins across many writer steps* — each probe phase lands at a
//! different writer LSN — so the assertions prove three things at once:
//!
//! 1. **prefix consistency**: a pin taken at LSN `k` answers exactly like a
//!    view that stopped after script op `k`;
//! 2. **immutability**: those answers do not drift while the writer
//!    publishes dozens of newer epochs (including rebases, reorganizations
//!    and architecture migrations) behind the pin;
//! 3. **reclamation safety**: when the run drains, every retired epoch has
//!    been freed except the current one, and nothing was freed while any
//!    reader still held it (the probe would have read garbage).
//!
//! The oracle answers are precomputed once per LSN by advancing a second
//! plain view through the same script, probing after every op — answers
//! are pure functions of (population, model), which the equivalence suites
//! already prove architecture-independent, so one oracle per config serves
//! every pin regardless of how the writer's view has migrated since.

use std::collections::HashMap;

use hazy_core::{
    Architecture, DurableClassifierView, Entity, EpochCell, EpochPin, EpochPublisher, Mode,
    OpOverheads, ViewBuilder,
};
use hazy_learn::{Label, LinearModel, TrainingExample};
use hazy_linalg::{FeatureVec, NormPair};

/// Logical statements per script; matches the crash suite's floor.
const SCRIPT_OPS: usize = 520;
const N_ENTITIES: usize = 72;
const N_READERS: usize = 4;
/// Ranked-read depth checked at every oracle LSN.
const TOP_K: usize = 7;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn seed() -> u64 {
    std::env::var("HAZY_CRASH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// One logical statement. Every variant advances the epoch LSN by exactly
/// one, so `oracle[lsn]` is the state after the first `lsn` ops.
#[derive(Clone, Debug)]
enum Op {
    Update(Vec<TrainingExample>),
    Insert(Entity),
    Remove(u64),
    Read(u64),
    Count,
    Members,
    TopK(usize),
    Reorg,
    /// Live architecture migration mid-script — must be answer-invisible
    /// to both the oracle and every pinned reader.
    Migrate(Architecture, Mode),
}

fn feature(r: &mut u64) -> FeatureVec {
    let a = (splitmix64(r) % 256) as f32 / 255.0 - 0.5;
    let b = (splitmix64(r) % 256) as f32 / 255.0 - 0.5;
    FeatureVec::dense(vec![a, b, 1.0])
}

fn base_entities() -> Vec<Entity> {
    let mut r = 0x00E1_7A11_u64;
    (0..N_ENTITIES).map(|k| Entity::new(k as u64, feature(&mut r))).collect()
}

/// Generates a concrete script plus the set of every id that is ever live,
/// so probes can also assert absence after removals.
fn script(seed: u64, home: Architecture, mode: Mode) -> (Vec<Op>, Vec<u64>) {
    let mut r = seed ^ 0x17E2_11EA_0000_0001;
    let mut live: Vec<u64> = (0..N_ENTITIES as u64).collect();
    let mut dead: Vec<u64> = Vec::new();
    let mut ever: Vec<u64> = live.clone();
    let mut next_id = 10_000u64;
    let mut ops = Vec::with_capacity(SCRIPT_OPS);
    // migration round-trip: away at one third, home at two thirds — pins
    // straddle both hops
    let away = if home == Architecture::HazyMem { Architecture::NaiveDisk } else { Architecture::HazyMem };
    for i in 0..SCRIPT_OPS {
        if i == SCRIPT_OPS / 3 {
            ops.push(Op::Migrate(away, mode));
            continue;
        }
        if i == 2 * SCRIPT_OPS / 3 {
            ops.push(Op::Migrate(home, mode));
            continue;
        }
        let roll = splitmix64(&mut r) % 100;
        let op = if roll < 40 {
            let n = 1 + (splitmix64(&mut r) % 3) as usize;
            let batch = (0..n)
                .map(|_| {
                    let f = feature(&mut r);
                    let y = if splitmix64(&mut r).is_multiple_of(2) { 1 } else { -1 };
                    TrainingExample::new(0, f, y)
                })
                .collect();
            Op::Update(batch)
        } else if roll < 48 {
            // mostly fresh ids; sometimes resurrect a removed one so the
            // overlay's removed/added interaction is exercised
            let id = if !dead.is_empty() && splitmix64(&mut r).is_multiple_of(3) {
                dead.swap_remove((splitmix64(&mut r) as usize) % dead.len())
            } else {
                next_id += 1;
                ever.push(next_id);
                next_id
            };
            live.push(id);
            Op::Insert(Entity::new(id, feature(&mut r)))
        } else if roll < 54 && live.len() > 8 {
            let idx = (splitmix64(&mut r) as usize) % live.len();
            let id = live.swap_remove(idx);
            dead.push(id);
            Op::Remove(id)
        } else if roll < 74 {
            Op::Read(live[(splitmix64(&mut r) as usize) % live.len()])
        } else if roll < 82 {
            Op::Count
        } else if roll < 89 {
            Op::Members
        } else if roll < 97 {
            Op::TopK(1 + (splitmix64(&mut r) % 9) as usize)
        } else {
            Op::Reorg
        };
        ops.push(op);
    }
    (ops, ever)
}

/// What the oracle answered immediately after a given script prefix.
struct OracleState {
    count: u64,
    members: Vec<u64>,
    top_k: Vec<(u64, f64)>,
    labels: HashMap<u64, Option<Label>>,
    model: LinearModel,
}

fn apply(b: &ViewBuilder, v: &mut Box<dyn DurableClassifierView + Send>, op: &Op) {
    match op {
        Op::Update(batch) => v.update_batch(batch),
        Op::Insert(e) => v.insert_entity(e.clone()),
        Op::Remove(id) => {
            let _ = v.remove_entity(*id);
        }
        Op::Read(id) => {
            let _ = v.read_single(*id);
        }
        Op::Count => {
            let _ = v.count_positive();
        }
        Op::Members => {
            let _ = v.positive_ids();
        }
        Op::TopK(k) => {
            let _ = v.top_k(*k);
        }
        Op::Reorg => v.reorganize(),
        Op::Migrate(arch, mode) => {
            // the core-level live migration (what AdaptiveView drives):
            // export, rebuild as the target, adopt the carried counters —
            // answers preserved bit-exactly
            let clock = v.clock().clone();
            let state = v.export_migration().expect("plain views export migration state");
            *v = b.build_migrated(*arch, *mode, state, clock);
        }
    }
}

fn probe(v: &mut (dyn DurableClassifierView + Send), ever: &[u64]) -> OracleState {
    let mut members = v.positive_ids();
    members.sort_unstable();
    OracleState {
        count: v.count_positive(),
        members,
        top_k: v.top_k(TOP_K),
        labels: ever.iter().map(|&id| (id, v.read_single(id))).collect(),
        model: v.model().clone(),
    }
}

/// Precomputes `oracle[k]` = answers after the first `k` ops, for every k.
fn oracle_states(b: &ViewBuilder, ops: &[Op], ever: &[u64]) -> Vec<OracleState> {
    let mut v = b.build(base_entities(), &[]);
    let mut states = Vec::with_capacity(ops.len() + 1);
    states.push(probe(v.as_mut(), ever));
    for op in ops {
        apply(b, &mut v, op);
        states.push(probe(v.as_mut(), ever));
    }
    states
}

fn assert_model_bits(a: &LinearModel, b: &LinearModel, ctx: &str) {
    assert_eq!(a.b.to_bits(), b.b.to_bits(), "{ctx}: bias diverged");
    let (wa, wb) = (a.w.to_vec(), b.w.to_vec());
    assert_eq!(wa.len(), wb.len(), "{ctx}: dim diverged");
    for (i, (x, y)) in wa.iter().zip(wb.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: weight {i} diverged");
    }
}

/// The writer actor: applies one script op per step to the live view and
/// mirrors it into the epoch publisher, exactly as the serving layer does.
struct Writer {
    b: ViewBuilder,
    view: Box<dyn DurableClassifierView + Send>,
    publisher: EpochPublisher,
    ops: Vec<Op>,
    next: usize,
}

impl Writer {
    fn done(&self) -> bool {
        self.next == self.ops.len()
    }

    fn step(&mut self) {
        let op = self.ops[self.next].clone();
        self.next += 1;
        apply(&self.b, &mut self.view, &op);
        match op {
            Op::Update(_) => {
                let m = self.view.model().clone();
                self.publisher.apply_update(&m);
            }
            Op::Insert(e) => self.publisher.apply_insert(e),
            Op::Remove(id) => {
                let _ = self.publisher.apply_remove(id);
            }
            Op::Reorg => self.publisher.apply_reorganize(),
            // reads (which may drive lazy maintenance) and migrations are
            // answer-invisible: the epoch stream advances in lockstep but
            // republishes unchanged answers
            Op::Read(_) | Op::Count | Op::Members | Op::TopK(_) | Op::Migrate(..) => {
                self.publisher.apply_noop()
            }
        }
        assert_eq!(
            self.publisher.lsn(),
            self.next as u64,
            "epoch LSN must advance exactly once per logical statement"
        );
    }
}

/// A reader actor: pins an epoch, then spends several scheduler steps
/// probing it against the oracle at the *pinned* LSN while the writer keeps
/// publishing behind it, then unpins. `probes_per_phase` ids are sampled
/// per classify step from the reader's own seeded stream.
struct Reader<'a> {
    cell: &'a EpochCell,
    pin: Option<(EpochPin<'a>, u64)>,
    phase: u8,
    rng: u64,
    cycles: u64,
}

impl<'a> Reader<'a> {
    fn new(cell: &'a EpochCell, id: usize, seed: u64) -> Reader<'a> {
        Reader { cell, pin: None, phase: 0, rng: seed ^ ((id as u64 + 1) << 40), cycles: 0 }
    }

    fn step(&mut self, oracle: &[OracleState], ever: &[u64], writer_lsn: u64, ctx: &str) {
        match self.phase {
            0 => {
                let pin = self.cell.pin();
                let lsn = pin.lsn();
                assert_eq!(
                    lsn, writer_lsn,
                    "{ctx}: a freshly pinned epoch is the writer's latest publication"
                );
                self.pin = Some((pin, lsn));
            }
            1 => {
                let (pin, lsn) = self.pin.as_ref().expect("phase 1 holds a pin");
                let want = &oracle[*lsn as usize];
                let ctx = format!("{ctx}@lsn={lsn} (writer at {writer_lsn})");
                assert_eq!(pin.count_positive(), want.count, "{ctx}: count_positive");
                assert!(pin.entity_count() > 0, "{ctx}: population vanished");
                assert_model_bits(pin.model(), &want.model, &ctx);
            }
            2 => {
                let (pin, lsn) = self.pin.as_ref().expect("phase 2 holds a pin");
                let want = &oracle[*lsn as usize];
                let ctx = format!("{ctx}@lsn={lsn} (writer at {writer_lsn})");
                for _ in 0..6 {
                    let id = ever[(splitmix64(&mut self.rng) as usize) % ever.len()];
                    assert_eq!(pin.classify(id), want.labels[&id], "{ctx}: classify({id})");
                }
                assert_eq!(pin.classify(u64::MAX - 7), None, "{ctx}: ghost id");
            }
            3 => {
                let (pin, lsn) = self.pin.as_ref().expect("phase 3 holds a pin");
                let want = &oracle[*lsn as usize];
                let ctx = format!("{ctx}@lsn={lsn} (writer at {writer_lsn})");
                assert_eq!(pin.positive_ids(), want.members, "{ctx}: scan_positive");
            }
            4 => {
                let (pin, lsn) = self.pin.as_ref().expect("phase 4 holds a pin");
                let want = &oracle[*lsn as usize];
                let ctx = format!("{ctx}@lsn={lsn} (writer at {writer_lsn})");
                let got = pin.top_k(TOP_K);
                assert_eq!(got.len(), want.top_k.len(), "{ctx}: top_k length");
                for (i, ((ga, gm), (wa, wm))) in got.iter().zip(want.top_k.iter()).enumerate() {
                    assert_eq!(ga, wa, "{ctx}: top_k rank {i} id");
                    assert_eq!(gm.to_bits(), wm.to_bits(), "{ctx}: top_k rank {i} margin");
                }
            }
            _ => {
                self.pin = None; // unpin: the epoch may now be reclaimed
                self.cycles += 1;
            }
        }
        self.phase = (self.phase + 1) % 6;
    }
}

fn run_config(arch: Architecture, mode: Mode) {
    let seed = seed();
    let ctx = format!("{}/{}/seed={seed}", arch.name(), mode.name());
    let (ops, ever) = script(seed, arch, mode);
    let b = ViewBuilder::new(arch, mode)
        .norm_pair(NormPair::EUCLIDEAN)
        .overheads(OpOverheads::free())
        .dim(3);
    let oracle = oracle_states(&b, &ops, &ever);

    let mut view = b.build(base_entities(), &[]);
    let (entities, model) = view.snapshot_state().expect("every architecture snapshots");
    let publisher = EpochPublisher::new(entities, model, NormPair::EUCLIDEAN, 0);
    let cell = publisher.handle();
    let mut writer = Writer { b: b.clone(), view, publisher, ops, next: 0 };

    let mut readers: Vec<Reader<'_>> =
        (0..N_READERS).map(|i| Reader::new(&cell, i, seed)).collect();
    let mut sched = seed ^ 0x5CED_0000_0000_0001;

    // the interleaving: seeded choice each step between the writer and one
    // of the readers; readers keep cycling until the script drains, then
    // run to the end of their current probe cycle so no pin leaks
    while !writer.done() {
        let pick = (splitmix64(&mut sched) as usize) % (N_READERS + 1);
        if pick == 0 {
            writer.step();
        } else {
            let lsn = writer.publisher.lsn();
            readers[pick - 1].step(&oracle, &ever, lsn, &ctx);
        }
    }
    let final_lsn = writer.publisher.lsn();
    for r in &mut readers {
        while r.pin.is_some() || r.phase != 0 {
            r.step(&oracle, &ever, final_lsn, &ctx);
        }
        assert!(r.cycles > 0, "{ctx}: a reader never completed a probe cycle");
    }

    // reclamation: with every pin dropped, one collect pass frees the whole
    // retired chain; only the current epoch stays live
    drop(readers);
    cell.try_collect();
    let es = cell.stats();
    assert_eq!(es.published, final_lsn + 1, "{ctx}: one publication per LSN");
    assert_eq!(es.reclaimed, es.published - 1, "{ctx}: all retired epochs reclaimed");
    assert_eq!(es.retired_live, 0, "{ctx}: retired chain drained");
    assert!(es.pins >= N_READERS as u64, "{ctx}: lifetime pin counter lost pins");

    // and the final epoch answers the full-script oracle
    let pin = cell.pin();
    let want = oracle.last().expect("oracle has a final state");
    assert_eq!(pin.lsn(), final_lsn, "{ctx}: final epoch LSN");
    assert_eq!(pin.count_positive(), want.count, "{ctx}: final count");
    assert_eq!(pin.positive_ids(), want.members, "{ctx}: final members");
}

macro_rules! interleave_matrix {
    ($($name:ident => ($arch:expr, $mode:expr);)*) => {
        $(
            #[test]
            fn $name() {
                run_config($arch, $mode);
            }
        )*
    };
}

interleave_matrix! {
    naive_mem_eager => (Architecture::NaiveMem, Mode::Eager);
    naive_mem_lazy => (Architecture::NaiveMem, Mode::Lazy);
    hazy_mem_eager => (Architecture::HazyMem, Mode::Eager);
    hazy_mem_lazy => (Architecture::HazyMem, Mode::Lazy);
    naive_disk_eager => (Architecture::NaiveDisk, Mode::Eager);
    naive_disk_lazy => (Architecture::NaiveDisk, Mode::Lazy);
    hazy_disk_eager => (Architecture::HazyDisk, Mode::Eager);
    hazy_disk_lazy => (Architecture::HazyDisk, Mode::Lazy);
    hybrid_eager => (Architecture::Hybrid, Mode::Eager);
    hybrid_lazy => (Architecture::Hybrid, Mode::Lazy);
}
