//! Property test: under *arbitrary* interleavings of updates, entity
//! inserts, single reads and All-Members queries, every architecture ×
//! mode serves exactly the answers of the naive in-memory reference.
//!
//! This is the strongest correctness statement the engine can make — the
//! incremental machinery (watermarks, Skiing reorganizations, clustered
//! storage, ε-maps) must be observationally invisible.

use hazy_core::{
    Architecture, DurableClassifierView, Entity, Mode, OpOverheads, ViewBuilder,
    WatermarkPolicy,
};
use hazy_learn::TrainingExample;
use hazy_linalg::FeatureVec;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    /// Train on a point with the given grid coordinates and label.
    Update(u8, u8, bool),
    /// Insert a fresh entity at the given grid coordinates.
    InsertEntity(u8, u8),
    /// Read one entity by (index modulo population).
    ReadSingle(u16),
    /// Count the positive class.
    Count,
    /// List the positive class.
    Members,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(a, b, y)| Op::Update(a, b, y)),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::InsertEntity(a, b)),
        3 => any::<u16>().prop_map(Op::ReadSingle),
        1 => Just(Op::Count),
        1 => Just(Op::Members),
    ]
}

fn grid_feature(a: u8, b: u8) -> FeatureVec {
    FeatureVec::dense(vec![f32::from(a) / 255.0 - 0.5, f32::from(b) / 255.0 - 0.5, 1.0])
}

fn base_entities(n: usize) -> Vec<Entity> {
    (0..n)
        .map(|k| Entity::new(k as u64, grid_feature((k * 37 % 256) as u8, (k * 91 % 256) as u8)))
        .collect()
}

fn build(arch: Architecture, mode: Mode, policy: WatermarkPolicy) -> Box<dyn DurableClassifierView + Send> {
    ViewBuilder::new(arch, mode)
        .norm_pair(hazy_linalg::NormPair::EUCLIDEAN)
        .overheads(OpOverheads::free())
        .watermark_policy(policy)
        .dim(3)
        .build(base_entities(60), &[])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_views_are_observationally_equivalent(
        ops in prop::collection::vec(arb_op(), 1..120),
        alpha_kind in 0usize..3,
    ) {
        let _ = alpha_kind;
        let mut reference = build(Architecture::NaiveMem, Mode::Eager, WatermarkPolicy::Monotone);
        let mut candidates: Vec<Box<dyn DurableClassifierView + Send>> = vec![
            build(Architecture::HazyMem, Mode::Eager, WatermarkPolicy::Monotone),
            build(Architecture::HazyMem, Mode::Lazy, WatermarkPolicy::Monotone),
            build(Architecture::HazyMem, Mode::Eager, WatermarkPolicy::Window2),
            build(Architecture::HazyDisk, Mode::Eager, WatermarkPolicy::Monotone),
            build(Architecture::HazyDisk, Mode::Lazy, WatermarkPolicy::Monotone),
            build(Architecture::Hybrid, Mode::Eager, WatermarkPolicy::Monotone),
            build(Architecture::Hybrid, Mode::Lazy, WatermarkPolicy::Monotone),
            build(Architecture::NaiveDisk, Mode::Lazy, WatermarkPolicy::Monotone),
        ];
        let mut population: Vec<u64> = (0..60).collect();
        let mut next_id = 1000u64;

        for op in &ops {
            match *op {
                Op::Update(a, b, pos) => {
                    let ex = TrainingExample::new(0, grid_feature(a, b), if pos { 1 } else { -1 });
                    reference.update(&ex);
                    for v in candidates.iter_mut() {
                        v.update(&ex);
                    }
                }
                Op::InsertEntity(a, b) => {
                    let e = Entity::new(next_id, grid_feature(a, b));
                    next_id += 1;
                    population.push(e.id);
                    reference.insert_entity(e.clone());
                    for v in candidates.iter_mut() {
                        v.insert_entity(e.clone());
                    }
                }
                Op::ReadSingle(raw) => {
                    let id = population[raw as usize % population.len()];
                    let expect = reference.read_single(id);
                    for v in candidates.iter_mut() {
                        prop_assert_eq!(
                            v.read_single(id), expect,
                            "{} diverges on read({})", v.describe(), id
                        );
                    }
                }
                Op::Count => {
                    let expect = reference.count_positive();
                    for v in candidates.iter_mut() {
                        prop_assert_eq!(
                            v.count_positive(), expect,
                            "{} diverges on count", v.describe()
                        );
                    }
                }
                Op::Members => {
                    let mut expect = reference.positive_ids();
                    expect.sort_unstable();
                    for v in candidates.iter_mut() {
                        let mut got = v.positive_ids();
                        got.sort_unstable();
                        prop_assert_eq!(
                            &got, &expect,
                            "{} diverges on members", v.describe()
                        );
                    }
                }
            }
        }
        // final sweep: every entity agrees everywhere
        for &id in population.iter().step_by(7) {
            let expect = reference.read_single(id);
            for v in candidates.iter_mut() {
                prop_assert_eq!(v.read_single(id), expect, "{} final sweep", v.describe());
            }
        }
    }
}
