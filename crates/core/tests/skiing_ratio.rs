//! Property test for Theorem 3.3 / Lemma 3.2: on any cost matrix satisfying
//! the paper's assumptions, the Skiing strategy's total cost is within the
//! competitive ratio `1 + σ + α` of the offline optimum (up to an additive
//! boundary term for the final, unfinished interval).

use hazy_core::opt::{optimal_schedule, skiing_schedule, CostMatrix};
use hazy_core::Skiing;
use proptest::prelude::*;

/// A random cost matrix honoring Section 3.3's assumptions:
/// * `c(s, i) ∈ [0, S]`,
/// * monotone nondecreasing in `i` for fixed `s` (the band only widens),
/// * monotone nonincreasing in `s` for fixed `i` (reorganizing more
///   recently never raises the cost),
/// * `c(i, i) = 0` (a freshly reorganized round costs nothing).
///
/// Construction: `c(s, i) = min(S, Σ_{r=s+1..i} g_r)` for nonnegative
/// per-round growth `g_r` — sums of nonnegative terms are monotone in both
/// arguments as required.
struct GrowthCosts {
    growth: Vec<f64>,
    s: f64,
}

impl CostMatrix for GrowthCosts {
    fn cost(&self, s: usize, i: usize) -> f64 {
        let sum: f64 = self.growth[s..i].iter().sum();
        sum.min(self.s)
    }
    fn rounds(&self) -> usize {
        self.growth.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn skiing_is_competitive(
        growth in prop::collection::vec(0.0f64..2.0, 5..120),
        s in 1.0f64..50.0,
    ) {
        let alpha = 1.0; // the paper's experimental setting
        // σ is the paper's scan bound: every incremental cost is at most
        // σ·S (the cost of scanning H). For a synthetic matrix that is the
        // largest per-round cost over S.
        let n = growth.len();
        let costs = GrowthCosts { growth, s };
        let max_c = (1..=n)
            .flat_map(|i| (0..i).map(move |k| (k, i)))
            .map(|(k, i)| costs.cost(k, i))
            .fold(0.0f64, f64::max);
        let sigma = max_c / s;
        let ski = skiing_schedule(&costs, s, alpha);
        let opt = optimal_schedule(&costs, s);
        // Lemma B.1's bound for α = 1 (ratio max{(1+α)/α, 1+σ+α} = 2+σ),
        // plus a 2S boundary allowance: the analysis assumes the run ends at
        // a reorganization boundary; an unfinished final interval can carry
        // up to (α+σ)S un-amortized waste plus one reorganization.
        let bound = Skiing::competitive_ratio(sigma, alpha) * opt.cost + 2.0 * s;
        prop_assert!(
            ski.cost <= bound + 1e-6,
            "ski {} > bound {} (opt {}, sigma {})", ski.cost, bound, opt.cost, sigma
        );
    }

    /// The optimum never beats zero and never loses to "never reorganize"
    /// or "reorganize every k rounds".
    #[test]
    fn optimum_is_a_lower_bound(
        growth in prop::collection::vec(0.0f64..2.0, 5..60),
        s in 1.0f64..20.0,
        k in 1usize..20,
    ) {
        let costs = GrowthCosts { growth: growth.clone(), s };
        let opt = optimal_schedule(&costs, s);
        prop_assert!(opt.cost >= 0.0);
        // never reorganize
        let never: f64 = (1..=costs.rounds()).map(|i| costs.cost(0, i)).sum();
        prop_assert!(opt.cost <= never + 1e-9, "opt {} > never {}", opt.cost, never);
        // periodic-k
        let mut base = 0;
        let mut periodic = 0.0;
        for i in 1..=costs.rounds() {
            if i - base >= k {
                periodic += s + costs.cost(i, i);
                base = i;
            } else {
                periodic += costs.cost(base, i);
            }
        }
        prop_assert!(opt.cost <= periodic + 1e-9, "opt {} > periodic {}", opt.cost, periodic);
    }

    /// With the α tuned to the instance's σ (the root of x² + σx − 1),
    /// Skiing meets Lemma 3.2's ratio 1 + σ + α on adversarial step costs.
    #[test]
    fn optimal_alpha_meets_the_lemma_bound_on_step_costs(hi in 0.5f64..5.0, after in 0usize..6) {
        let n = 80;
        struct Step { n: usize, after: usize, hi: f64, s: f64 }
        impl CostMatrix for Step {
            fn cost(&self, s: usize, i: usize) -> f64 {
                if i - s > self.after { self.hi.min(self.s) } else { 0.0 }
            }
            fn rounds(&self) -> usize { self.n }
        }
        let s = 5.0;
        let costs = Step { n, after, hi, s };
        let sigma = hi.min(s) / s;
        let alpha = Skiing::alpha_optimal(sigma);
        let tuned = skiing_schedule(&costs, s, alpha);
        let opt = optimal_schedule(&costs, s);
        let bound = Skiing::competitive_ratio(sigma, alpha) * opt.cost + 2.0 * s;
        prop_assert!(tuned.cost <= bound + 1e-9,
            "tuned {} > bound {} (opt {}, sigma {})", tuned.cost, bound, opt.cost, sigma);
    }
}
