//! Synthetic *document* corpora, for the feature-function pipeline.
//!
//! The RDBMS layer registers feature functions (`tf_bag_of_words`,
//! `tf_idf_bag_of_words`, Appendix A.2) that turn raw text tuples into
//! vectors. To exercise that whole path — tokenization, corpus statistics,
//! incremental statistics — we need actual strings, not ready-made vectors.
//! This generator emits papers with a title and abstract whose tokens follow
//! Zipf's law, with two topic-word pools ("database papers" vs the rest)
//! mixed according to the ground-truth label.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Recipe for a document corpus.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Number of documents.
    pub n_docs: usize,
    /// Background vocabulary size.
    pub vocab: usize,
    /// Words per abstract (titles get ~1/6 of this).
    pub abstract_len: usize,
    /// Number of topic words per class pool.
    pub topic_words: usize,
    /// Fraction of a positive document's tokens drawn from its topic pool.
    pub topic_mix: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_docs: 2_000,
            vocab: 8_000,
            abstract_len: 60,
            topic_words: 40,
            topic_mix: 0.35,
            seed: 0xD0C5,
        }
    }
}

/// One generated paper.
#[derive(Clone, Debug)]
pub struct Document {
    /// Document key.
    pub id: u64,
    /// Short title (topic-bearing).
    pub title: String,
    /// Longer abstract.
    pub body: String,
    /// Ground truth: is this a "database paper"?
    pub label: i8,
}

/// A generated corpus plus its configuration.
#[derive(Clone, Debug)]
pub struct DocumentCorpus {
    /// The recipe used.
    pub config: CorpusConfig,
    /// All documents.
    pub docs: Vec<Document>,
}

/// Renders word rank `i` as a token (`w0`, `w1`, ...). Topic pools use
/// distinct prefixes so tests can spot them, but the feature functions treat
/// all tokens uniformly.
fn word(i: usize) -> String {
    format!("w{i}")
}

fn topic_word(class: char, i: usize) -> String {
    format!("t{class}{i}")
}

impl DocumentCorpus {
    /// Generates the corpus deterministically.
    pub fn generate(config: CorpusConfig) -> DocumentCorpus {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let zipf = Zipf::new(config.vocab, 1.05);
        let mut docs = Vec::with_capacity(config.n_docs);
        for id in 0..config.n_docs as u64 {
            let label: i8 = if rng.gen_bool(0.5) { 1 } else { -1 };
            let class = if label > 0 { 'p' } else { 'n' };
            let emit = |len: usize, rng: &mut StdRng| {
                let mut words = Vec::with_capacity(len);
                for _ in 0..len {
                    if rng.gen::<f64>() < config.topic_mix {
                        words.push(topic_word(class, rng.gen_range(0..config.topic_words)));
                    } else {
                        words.push(word(zipf.sample(rng)));
                    }
                }
                words.join(" ")
            };
            let title = emit((config.abstract_len / 6).max(3), &mut rng);
            let body = emit(config.abstract_len, &mut rng);
            docs.push(Document { id, title, body, label });
        }
        DocumentCorpus { config, docs }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn corpus_has_requested_shape() {
        let c = DocumentCorpus::generate(CorpusConfig { n_docs: 100, ..Default::default() });
        assert_eq!(c.len(), 100);
        for d in &c.docs {
            assert!(!d.title.is_empty());
            assert!(d.body.split_whitespace().count() == c.config.abstract_len);
        }
    }

    #[test]
    fn labels_are_mixed() {
        let c = DocumentCorpus::generate(CorpusConfig { n_docs: 400, ..Default::default() });
        let pos = c.docs.iter().filter(|d| d.label > 0).count();
        assert!((100..300).contains(&pos), "positives {pos}");
    }

    #[test]
    fn topic_words_separate_classes() {
        let c = DocumentCorpus::generate(CorpusConfig { n_docs: 200, ..Default::default() });
        for d in &c.docs {
            let tokens: HashSet<&str> = d.body.split_whitespace().collect();
            let wrong_prefix = if d.label > 0 { "tn" } else { "tp" };
            assert!(
                !tokens.iter().any(|t| t.starts_with(wrong_prefix)),
                "doc {} leaks other topic's words",
                d.id
            );
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = DocumentCorpus::generate(CorpusConfig::default());
        let b = DocumentCorpus::generate(CorpusConfig::default());
        assert_eq!(a.docs.len(), b.docs.len());
        assert!(a.docs.iter().zip(b.docs.iter()).all(|(x, y)| x.body == y.body));
    }
}
