//! Seeded synthetic datasets standing in for the paper's corpora.
//!
//! The paper evaluates on three proprietary-or-bulky corpora — **Forest**
//! (UCI covertype: 582k entities, 54 dense features), **DBLife** (124k paper
//! references, 41k-word vocabulary, ~7 nonzeros/title) and **Citeseer**
//! (721k papers, 682k-word vocabulary, ~60 nonzeros/abstract; Figure 3) —
//! plus UCI **MAGIC** and **ADULT** for the learning-overhead table
//! (Figure 10). None are shipped here, so this crate generates seeded
//! synthetic equivalents that preserve everything the algorithms under test
//! are sensitive to:
//!
//! * entity count, dimensionality, nonzeros per entity (dense vs sparse),
//! * a ground-truth linear concept with controllable margin and label noise
//!   (so incremental SGD drifts toward it the way a real training stream
//!   drifts),
//! * Zipf-distributed token frequencies for the text-like corpora,
//! * ℓ1 (text) / ℓ2 (numeric) input normalization, matching the norm pairs
//!   the paper picks in Section 3.2.2.
//!
//! Every generator is deterministic in its seed; scale factors shrink corpora
//! for CI while preserving their shape.

mod corpus;
mod presets;
mod stream;
mod zipf;

pub use corpus::{CorpusConfig, Document, DocumentCorpus};
pub use presets::{Dataset, DatasetKind, DatasetSpec, LabeledEntity};
pub use stream::ExampleStream;
pub use zipf::Zipf;
