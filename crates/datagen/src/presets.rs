//! Dataset specifications and generation.

use hazy_linalg::{FeatureVec, Norm, NormPair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Which corpus a spec models (Figure 3 plus the Figure 10 UCI sets).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// UCI covertype: dense, 54 features (treated as binary, footnote 3).
    Forest,
    /// DBLife paper titles: sparse, 41k vocabulary, ~7 nnz.
    DbLife,
    /// Citeseer abstracts: sparse, 682k vocabulary, ~60 nnz.
    Citeseer,
    /// UCI MAGIC gamma telescope: dense, 10 features.
    Magic,
    /// UCI ADULT (a9a encoding): sparse binary, 123 features, ~14 nnz.
    Adult,
    /// Free-form synthetic.
    Synthetic,
}

/// A fully deterministic dataset recipe.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Which corpus this models.
    pub kind: DatasetKind,
    /// Human-readable name for tables.
    pub name: String,
    /// Number of entities to generate.
    pub n_entities: usize,
    /// Feature-space dimensionality (vocabulary size for text).
    pub dim: usize,
    /// Average nonzeros per entity (= `dim` when dense).
    pub avg_nnz: usize,
    /// Dense (`FeatureVec::Dense`) vs sparse representation.
    pub dense: bool,
    /// Zipf exponent for word-frequency skew (sparse only).
    pub zipf_s: f64,
    /// Probability a generated label is flipped (concept noise).
    pub label_noise: f64,
    /// RNG seed; same spec + seed ⇒ identical bytes.
    pub seed: u64,
}

impl DatasetSpec {
    /// Full-size Forest (582k × 54 dense) — Figure 3 row 1.
    pub fn forest() -> DatasetSpec {
        DatasetSpec {
            kind: DatasetKind::Forest,
            name: "FC".into(),
            n_entities: 581_012,
            dim: 54,
            avg_nnz: 54,
            dense: true,
            zipf_s: 0.0,
            label_noise: 0.02,
            seed: 0xF04E57,
        }
    }

    /// Full-size DBLife (124k entities, 41k vocab, 7 nnz) — Figure 3 row 2.
    pub fn dblife() -> DatasetSpec {
        DatasetSpec {
            kind: DatasetKind::DbLife,
            name: "DB".into(),
            n_entities: 124_000,
            dim: 41_000,
            avg_nnz: 7,
            dense: false,
            zipf_s: 1.05,
            label_noise: 0.02,
            seed: 0xDB11FE,
        }
    }

    /// Full-size Citeseer (721k entities, 682k vocab, 60 nnz) — Figure 3
    /// row 3.
    pub fn citeseer() -> DatasetSpec {
        DatasetSpec {
            kind: DatasetKind::Citeseer,
            name: "CS".into(),
            n_entities: 721_000,
            dim: 682_000,
            avg_nnz: 60,
            dense: false,
            zipf_s: 1.05,
            label_noise: 0.02,
            seed: 0xC17E5E,
        }
    }

    /// UCI MAGIC (19k × 10 dense) — Figure 10 row 1.
    pub fn magic() -> DatasetSpec {
        DatasetSpec {
            kind: DatasetKind::Magic,
            name: "MAGIC".into(),
            n_entities: 19_020,
            dim: 10,
            avg_nnz: 10,
            dense: true,
            zipf_s: 0.0,
            label_noise: 0.12,
            seed: 0x4A61C,
        }
    }

    /// UCI ADULT / a9a (49k entities, 123 binary features) — Figure 10
    /// row 2.
    pub fn adult() -> DatasetSpec {
        DatasetSpec {
            kind: DatasetKind::Adult,
            name: "ADULT".into(),
            n_entities: 48_842,
            dim: 123,
            avg_nnz: 14,
            dense: false,
            zipf_s: 0.6,
            label_noise: 0.08,
            seed: 0xAD017,
        }
    }

    /// Scales entity count (and vocabulary, for sparse corpora) by `f`,
    /// keeping per-entity shape. Used to run paper-shaped experiments at CI
    /// sizes.
    pub fn scaled(mut self, f: f64) -> DatasetSpec {
        assert!(f > 0.0, "scale must be positive");
        self.n_entities = ((self.n_entities as f64 * f) as usize).max(500);
        if !self.dense {
            self.dim = ((self.dim as f64 * f) as usize).max(2_000).max(self.avg_nnz * 4);
        }
        self.name = format!("{}x{f}", self.name);
        self
    }

    /// The Hölder pair appropriate for this data (Section 3.2.2): text uses
    /// `(p=∞, q=1)` over ℓ1-normalized vectors, numeric data `(p=2, q=2)`.
    pub fn norm_pair(&self) -> NormPair {
        if self.dense {
            NormPair::EUCLIDEAN
        } else {
            NormPair::TEXT
        }
    }

    /// Materializes the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = (!self.dense).then(|| Zipf::new(self.dim, self.zipf_s));
        let mut entities = Vec::with_capacity(self.n_entities);
        for id in 0..self.n_entities as u64 {
            let f = gen_feature(self, zipf.as_ref(), &mut rng);
            let label = truth_label(self, &f, &mut rng);
            entities.push(LabeledEntity { id, f, label });
        }
        Dataset { spec: self.clone(), entities }
    }
}

/// The hidden concept: a deterministic Rademacher (±1) weight per dimension,
/// derived from the spec seed (never materialized as a vector —
/// Citeseer-sized vocabularies would waste 5 MB per stream).
pub(crate) fn concept_weight(seed: u64, j: u32) -> f64 {
    let mut h = seed ^ u64::from(j).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    if h & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

/// How many leading dimensions carry concept signal. For text corpora the
/// informative words are the frequent/mid-frequency ones (topic terms like
/// "database" or "transaction" are common in their class); rare tail words
/// are noise. Word ids coincide with Zipf frequency ranks in the generator,
/// so restricting the concept to the head both matches real text
/// classification and keeps the concept learnable from the few thousand
/// examples the paper's update experiments insert. Dense data uses every
/// dimension.
pub(crate) fn informative_dims(spec: &DatasetSpec) -> u32 {
    if spec.dense {
        spec.dim as u32
    } else {
        ((spec.dim / 10).max(64).min(spec.dim)) as u32
    }
}

/// True margin of `f` under the spec's hidden concept (bias 0 — the
/// generators draw symmetric features, so classes stay near-balanced).
pub(crate) fn concept_margin(spec: &DatasetSpec, f: &FeatureVec) -> f64 {
    let cutoff = informative_dims(spec);
    f.iter()
        .filter(|&(j, _)| j < cutoff)
        .map(|(j, v)| f64::from(v) * concept_weight(spec.seed, j))
        .sum()
}

/// Draws one feature vector from the spec's distribution.
pub(crate) fn gen_feature(
    spec: &DatasetSpec,
    zipf: Option<&Zipf>,
    rng: &mut StdRng,
) -> FeatureVec {
    if spec.dense {
        let comps: Vec<f32> = (0..spec.dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        FeatureVec::dense(comps).normalized(Norm::L2)
    } else {
        let zipf = zipf.expect("sparse spec needs a zipf sampler");
        // distinct-word target: uniform in [nnz/2, 3·nnz/2], ≥ 1 — Figure 3's
        // "≠ 0" column counts distinct words per entity
        let lo = (spec.avg_nnz / 2).max(1);
        let hi = (spec.avg_nnz * 3 / 2).max(lo + 1);
        let want = rng.gen_range(lo..=hi);
        // Zipf head words repeat constantly; keep drawing (bounded) until the
        // distinct count is reached, letting repeats raise term frequencies.
        let mut pairs: Vec<(u32, f32)> = Vec::with_capacity(want * 2);
        let mut distinct = std::collections::HashSet::with_capacity(want * 2);
        let mut draws = 0;
        while distinct.len() < want && draws < want * 8 {
            let w = zipf.sample(rng) as u32;
            distinct.insert(w);
            pairs.push((w, 1.0));
            draws += 1;
        }
        FeatureVec::sparse(spec.dim as u32, pairs).normalized(Norm::L1)
    }
}

/// Ground-truth label: the concept's sign, flipped with `label_noise`.
pub(crate) fn truth_label(spec: &DatasetSpec, f: &FeatureVec, rng: &mut StdRng) -> i8 {
    let y = if concept_margin(spec, f) >= 0.0 { 1i8 } else { -1 };
    if rng.gen::<f64>() < spec.label_noise {
        -y
    } else {
        y
    }
}

/// One generated entity with its ground-truth label.
#[derive(Clone, Debug)]
pub struct LabeledEntity {
    /// Entity key (dense 0..n).
    pub id: u64,
    /// Feature vector (already input-normalized).
    pub f: FeatureVec,
    /// Ground-truth binary label.
    pub label: i8,
}

/// A materialized dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The recipe that produced this data.
    pub spec: DatasetSpec,
    /// All entities, ids dense in `0..n`.
    pub entities: Vec<LabeledEntity>,
}

impl Dataset {
    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Approximate in-memory size in bytes (Figure 3's "Size" column).
    pub fn total_bytes(&self) -> usize {
        self.entities.iter().map(|e| 8 + e.f.mem_bytes()).sum()
    }

    /// Number of ground-truth positive entities.
    pub fn positives(&self) -> usize {
        self.entities.iter().filter(|e| e.label > 0).count()
    }

    /// Mean nonzeros per entity (Figure 3's "≠ 0" column).
    pub fn mean_nnz(&self) -> f64 {
        if self.entities.is_empty() {
            return 0.0;
        }
        self.entities.iter().map(|e| e.f.nnz()).sum::<usize>() as f64 / self.len() as f64
    }

    /// Multiclass ground truth with `k` classes: argmax over `k` hashed
    /// concept vectors (used by the Figure 12(B) experiment, which coalesces
    /// Forest classes).
    pub fn multiclass_truth(&self, k: usize) -> Vec<usize> {
        assert!(k >= 2, "need at least two classes");
        self.entities
            .iter()
            .map(|e| {
                let mut best = 0;
                let mut best_score = f64::NEG_INFINITY;
                for c in 0..k {
                    let seed = self.spec.seed.wrapping_add(0x1000 + c as u64);
                    let score: f64 =
                        e.f.iter().map(|(j, v)| f64::from(v) * concept_weight(seed, j)).sum();
                    if score > best_score {
                        best_score = score;
                        best = c;
                    }
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_presets_match_figure3_shape() {
        let fc = DatasetSpec::forest().scaled(0.01).generate();
        assert!(fc.len() >= 5_000);
        assert!(fc.entities.iter().all(|e| e.f.dim() == 54 && e.f.nnz() == 54));

        let db = DatasetSpec::dblife().scaled(0.02).generate();
        let nnz = db.mean_nnz();
        assert!((5.0..=9.0).contains(&nnz), "DBLife mean nnz {nnz}");

        let cs = DatasetSpec::citeseer().scaled(0.002).generate();
        let nnz = cs.mean_nnz();
        assert!((45.0..=75.0).contains(&nnz), "Citeseer mean nnz {nnz}");
        // Citeseer rows are ~8.5x heavier than DBLife rows (60 vs 7 nnz)
        let cs_row = cs.total_bytes() / cs.len();
        let db_row = db.total_bytes() / db.len();
        assert!(cs_row > db_row * 4, "row sizes {cs_row} vs {db_row}");
    }

    #[test]
    fn classes_are_roughly_balanced() {
        for spec in [
            DatasetSpec::forest().scaled(0.005),
            DatasetSpec::dblife().scaled(0.02),
            DatasetSpec::magic().scaled(0.2),
            DatasetSpec::adult().scaled(0.05),
        ] {
            let d = spec.generate();
            let pos = d.positives() as f64 / d.len() as f64;
            assert!((0.25..=0.75).contains(&pos), "{}: positive rate {pos}", d.spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetSpec::dblife().scaled(0.01).generate();
        let b = DatasetSpec::dblife().scaled(0.01).generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.entities.iter().zip(b.entities.iter()) {
            assert_eq!(x.f, y.f);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn text_vectors_are_l1_normalized() {
        let d = DatasetSpec::dblife().scaled(0.01).generate();
        for e in d.entities.iter().take(50) {
            let n = e.f.norm(hazy_linalg::Norm::L1);
            assert!((n - 1.0).abs() < 1e-5, "l1 norm {n}");
        }
    }

    #[test]
    fn dense_vectors_are_l2_normalized() {
        let d = DatasetSpec::forest().scaled(0.002).generate();
        for e in d.entities.iter().take(50) {
            let n = e.f.norm(hazy_linalg::Norm::L2);
            assert!((n - 1.0).abs() < 1e-5, "l2 norm {n}");
        }
    }

    #[test]
    fn multiclass_truth_uses_all_classes() {
        let d = DatasetSpec::forest().scaled(0.005).generate();
        let labels = d.multiclass_truth(5);
        let mut seen = [false; 5];
        for &l in &labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "class coverage {seen:?}");
    }

    #[test]
    fn concept_is_learnable_by_sgd() {
        use hazy_learn::{SgdConfig, SgdTrainer};
        let d = DatasetSpec::dblife().scaled(0.01).generate();
        let mut t = SgdTrainer::new(SgdConfig::svm(), d.spec.dim);
        for _ in 0..10 {
            for e in &d.entities {
                t.step(&e.f, e.label);
            }
        }
        let correct = d.entities.iter().filter(|e| t.model().predict(&e.f) == e.label).count();
        let acc = correct as f64 / d.len() as f64;
        assert!(acc > 0.85, "training accuracy {acc}");
    }
}
