//! Streams of training examples (the paper's `Example_Papers` table).
//!
//! The update experiments insert thousands of fresh training examples and
//! measure per-update cost (Section 4.1.1: 12k warm-up examples, then 3k
//! measured). Examples are drawn from the *same distribution* as the
//! entities but are not entities themselves — exactly the situation when
//! user feedback or crowdsourcing supplies labeled items.

use hazy_learn::TrainingExample;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::presets::{gen_feature, truth_label, Dataset, DatasetSpec};
use crate::zipf::Zipf;

/// An infinite, deterministic iterator of labeled examples matching a
/// dataset's distribution.
pub struct ExampleStream {
    spec: DatasetSpec,
    zipf: Option<Zipf>,
    rng: StdRng,
    next_id: u64,
}

impl ExampleStream {
    /// Stream for `spec`, independent of the entity table, seeded by
    /// `seed` (use different seeds for warm-up vs measurement).
    pub fn new(spec: &DatasetSpec, seed: u64) -> ExampleStream {
        let zipf = (!spec.dense).then(|| Zipf::new(spec.dim, spec.zipf_s));
        ExampleStream {
            spec: spec.clone(),
            zipf,
            rng: StdRng::seed_from_u64(seed ^ 0x5742_EA4A),
            next_id: 1 << 40, // avoid colliding with entity ids
        }
    }

    /// Stream matching an already-generated dataset.
    pub fn for_dataset(ds: &Dataset, seed: u64) -> ExampleStream {
        ExampleStream::new(&ds.spec, seed)
    }

    /// Draws the next example.
    pub fn next_example(&mut self) -> TrainingExample {
        let f = gen_feature(&self.spec, self.zipf.as_ref(), &mut self.rng);
        let y = truth_label(&self.spec, &f, &mut self.rng);
        let id = self.next_id;
        self.next_id += 1;
        TrainingExample::new(id, f, y)
    }

    /// Materializes the next `n` examples.
    pub fn take_vec(&mut self, n: usize) -> Vec<TrainingExample> {
        (0..n).map(|_| self.next_example()).collect()
    }
}

impl Iterator for ExampleStream {
    type Item = TrainingExample;

    fn next(&mut self) -> Option<TrainingExample> {
        Some(self.next_example())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::DatasetSpec;

    #[test]
    fn stream_is_deterministic_per_seed() {
        let spec = DatasetSpec::dblife().scaled(0.01);
        let a: Vec<_> = ExampleStream::new(&spec, 1).take_vec(10);
        let b: Vec<_> = ExampleStream::new(&spec, 1).take_vec(10);
        let c: Vec<_> = ExampleStream::new(&spec, 2).take_vec(10);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.f, y.f);
            assert_eq!(x.y, y.y);
        }
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.f != y.f));
    }

    #[test]
    fn examples_match_entity_distribution_shape() {
        let spec = DatasetSpec::citeseer().scaled(0.002);
        let mut s = ExampleStream::new(&spec, 7);
        let exs = s.take_vec(200);
        let mean_nnz: f64 = exs.iter().map(|e| e.f.nnz()).sum::<usize>() as f64 / 200.0;
        assert!((45.0..=75.0).contains(&mean_nnz), "mean nnz {mean_nnz}");
        assert!(exs.iter().all(|e| e.f.dim() as usize == spec.dim));
    }

    #[test]
    fn ids_do_not_collide_with_entities() {
        let spec = DatasetSpec::magic().scaled(0.1);
        let mut s = ExampleStream::new(&spec, 3);
        assert!(s.next_example().id >= 1 << 40);
    }

    #[test]
    fn examples_train_a_model_that_labels_entities() {
        use hazy_learn::{SgdConfig, SgdTrainer};
        let spec = DatasetSpec::dblife().scaled(0.01);
        let ds = spec.generate();
        let mut t = SgdTrainer::new(SgdConfig::svm(), spec.dim);
        for ex in ExampleStream::new(&spec, 11).take_vec(12_000) {
            t.step(&ex.f, ex.y);
        }
        let correct = ds.entities.iter().filter(|e| t.model().predict(&e.f) == e.label).count();
        let acc = correct as f64 / ds.len() as f64;
        // The paper's own models do not fully converge on text corpora
        // (Section 4.1.1 notes Citeseer had not converged); 12k examples is
        // the paper's warm-up budget.
        assert!(acc > 0.75, "entity accuracy from example stream {acc}");
    }
}
