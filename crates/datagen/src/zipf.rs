//! Zipf-distributed sampling over a finite vocabulary.

use rand::Rng;

/// A Zipf(s) sampler over ranks `0..n` via inverse-CDF on a precomputed
/// table. Word frequencies in real corpora follow Zipf's law closely, and
//  the skew is what makes tf/tf-idf feature vectors look the way they do.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Sampler over `n` ranks with exponent `s` (classic Zipf is `s ≈ 1`).
    ///
    /// # Panics
    /// Panics when `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "empty vocabulary");
        assert!(s >= 0.0, "negative exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Vocabulary size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `0..n` (0 = most frequent).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_are_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0;
        let trials = 20_000;
        for _ in 0..trials {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // the 10 most frequent of 1000 words should carry ~40% of the mass
        assert!(head > trials / 4, "head mass {head}/{trials}");
    }

    #[test]
    fn zero_exponent_is_uniform_ish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "empty vocabulary")]
    fn empty_vocab_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
