//! The change currency: a row with a signed multiplicity.

/// One change to a relation: `row` appears `diff` more times than before.
///
/// `diff = +1` is an insert, `diff = −1` a retract; operators may scale
/// multiplicities (a join emits `d₁·d₂`), so any non-zero value is legal in
/// flight. A base-table `UPDATE` is a retract of the old row followed by an
/// insert of the new one — there is deliberately no third verb.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta<R> {
    /// The changed row.
    pub row: R,
    /// Signed multiplicity change (never zero for a meaningful delta).
    pub diff: i64,
}

impl<R> Delta<R> {
    /// An insertion of `row` (`diff = +1`).
    pub fn insert(row: R) -> Delta<R> {
        Delta { row, diff: 1 }
    }

    /// A retraction of `row` (`diff = −1`).
    pub fn retract(row: R) -> Delta<R> {
        Delta { row, diff: -1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_signs() {
        assert_eq!(Delta::insert(7).diff, 1);
        assert_eq!(Delta::retract(7).diff, -1);
        assert_eq!(Delta::insert("r").row, "r");
    }
}
