//! The dataflow graph: sources, incremental operators, sinks, and the
//! topological delta propagation that connects them.

use std::collections::HashMap;

use hazy_storage::VirtualClock;

use crate::delta::Delta;

/// Global dataflow metrics mirroring [`FlowStats`] so per-node delta
/// traffic is visible in `SHOW METRICS` across every graph instance.
struct FlowObs {
    deltas_in: &'static hazy_obs::Counter,
    deltas_processed: &'static hazy_obs::Counter,
    join_pairs: &'static hazy_obs::Counter,
    rows_emitted: &'static hazy_obs::Counter,
}

fn flow_obs() -> &'static FlowObs {
    static OBS: std::sync::OnceLock<FlowObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| FlowObs {
        deltas_in: hazy_obs::counter("flow_deltas_in_total"),
        deltas_processed: hazy_obs::counter("flow_deltas_processed_total"),
        join_pairs: hazy_obs::counter("flow_join_pairs_total"),
        rows_emitted: hazy_obs::counter("flow_rows_emitted_total"),
    })
}


/// Handle to a node in a [`Dataflow`] graph.
///
/// Node ids are assigned in construction order, and every edge runs from a
/// lower id to a higher one — the builder API only lets you wire *existing*
/// nodes into a new node — so ascending id order **is** a topological
/// order. Propagation exploits this: one forward pass over the node vector
/// delivers every delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// A delta tagged with the input port it arrives on (joins have two ports,
/// sinks one per wired input).
pub type PortDelta<R> = (usize, Delta<R>);

type Pred<R> = Box<dyn Fn(&R) -> bool + Send>;
type RowFn<R> = Box<dyn Fn(&R) -> R + Send>;
type KeyFn<R> = Box<dyn Fn(&R) -> Option<i64> + Send>;
type MergeFn<R> = Box<dyn Fn(&R, &R) -> R + Send>;

/// One join side's indexed state: key → bag of (row, multiplicity).
/// Multiplicities consolidate on fold-in, so a row retracted back to zero
/// leaves no residue (and the bag for a dead key is dropped).
type JoinIndex<R> = HashMap<i64, Vec<(R, i64)>>;

struct JoinOp<R> {
    left_key: KeyFn<R>,
    right_key: KeyFn<R>,
    merge: MergeFn<R>,
    left: JoinIndex<R>,
    right: JoinIndex<R>,
}

enum Operator<R> {
    /// Entry point for one base table's deltas.
    Source,
    /// Keeps rows satisfying the predicate. Linear: `σ(Δ)` passes through.
    Filter(Pred<R>),
    /// Projects / rewrites each row. Linear: `π(Δ)` passes through with the
    /// multiplicity unchanged.
    Map(RowFn<R>),
    /// Incremental equi-join with indexed build state on both sides.
    Join(Box<JoinOp<R>>),
    /// Collects arriving deltas (in arrival order) until drained.
    Sink(Vec<PortDelta<R>>),
}

struct Node<R> {
    op: Operator<R>,
    /// Downstream edges: (target node index, target input port).
    outs: Vec<(usize, usize)>,
}

/// Maintenance counters for a [`Dataflow`] graph — the observable basis of
/// the `O(|Δ| × matching keys)` claim: one ingested delta contributes
/// `join_pairs_examined` growth bounded by the number of rows its key
/// matches on the opposite side, never by table size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Base-table deltas accepted by [`Dataflow::ingest`].
    pub deltas_in: u64,
    /// Deltas processed across all operators (internal traffic).
    pub deltas_processed: u64,
    /// (delta, indexed row) pairs examined by join probes.
    pub join_pairs_examined: u64,
    /// Deltas delivered into sinks.
    pub rows_emitted: u64,
}

/// A delta-dataflow graph over rows of type `R`.
///
/// Build it once (sources → operators → sinks), then [`ingest`] base-table
/// deltas as statements execute and [`drain`] the sinks. All operator
/// closures receive rows by reference; the graph owns all intermediate
/// state (the join indexes), so a `Dataflow<R>` is `Send` whenever its
/// closures are.
///
/// [`ingest`]: Dataflow::ingest
/// [`drain`]: Dataflow::drain
pub struct Dataflow<R> {
    nodes: Vec<Node<R>>,
    stats: FlowStats,
    clock: Option<VirtualClock>,
}

impl<R: Clone + PartialEq> Default for Dataflow<R> {
    fn default() -> Self {
        Dataflow::new()
    }
}

impl<R: Clone + PartialEq> Dataflow<R> {
    /// An empty graph.
    pub fn new() -> Dataflow<R> {
        Dataflow { nodes: Vec::new(), stats: FlowStats::default(), clock: None }
    }

    /// An empty graph charging its maintenance work (one CPU op per
    /// processed delta and per join pair examined) to `clock`, so derived
    /// views live in the same cost universe as the classifier they feed.
    pub fn with_clock(clock: VirtualClock) -> Dataflow<R> {
        Dataflow { nodes: Vec::new(), stats: FlowStats::default(), clock: Some(clock) }
    }

    /// Attaches (or replaces) the clock charged for maintenance work from
    /// now on. Lets a graph be built and seeded for free before the view
    /// engine — whose clock defines the cost universe — exists.
    pub fn set_clock(&mut self, clock: VirtualClock) {
        self.clock = Some(clock);
    }

    fn push_node(&mut self, op: Operator<R>) -> NodeId {
        self.nodes.push(Node { op, outs: Vec::new() });
        NodeId(self.nodes.len() - 1)
    }

    fn wire(&mut self, from: NodeId, to: NodeId, port: usize) {
        debug_assert!(from.0 < to.0, "edges must run construction-order forward");
        self.nodes[from.0].outs.push((to.0, port));
    }

    /// Adds a source — the entry point for one base table's deltas.
    pub fn source(&mut self) -> NodeId {
        self.push_node(Operator::Source)
    }

    /// Adds a filter over `input`: rows failing `pred` are dropped
    /// (inserts and retracts alike, so the two always cancel consistently).
    pub fn filter(&mut self, input: NodeId, pred: impl Fn(&R) -> bool + Send + 'static) -> NodeId {
        let id = self.push_node(Operator::Filter(Box::new(pred)));
        self.wire(input, id, 0);
        id
    }

    /// Adds a projection over `input`: each row is rewritten by `f`, the
    /// multiplicity passes through unchanged.
    pub fn map(&mut self, input: NodeId, f: impl Fn(&R) -> R + Send + 'static) -> NodeId {
        let id = self.push_node(Operator::Map(Box::new(f)));
        self.wire(input, id, 0);
        id
    }

    /// Adds an incremental equi-join of `left` and `right`.
    ///
    /// `left_key` / `right_key` extract the join key (`None` = SQL NULL:
    /// the row joins nothing and is not indexed). A delta arriving on one
    /// side probes the *other* side's index — cost proportional to the
    /// rows its key matches, not to either input's size — emits one merged
    /// delta per match with multiplicity `d₁·d₂`, then folds into its own
    /// side's index. Processing deltas in arrival order against the
    /// current indexes realizes all three terms of
    /// `Δ(A ⋈ B) = ΔA ⋈ B + A ⋈ ΔB + ΔA ⋈ ΔB`.
    pub fn join(
        &mut self,
        left: NodeId,
        right: NodeId,
        left_key: impl Fn(&R) -> Option<i64> + Send + 'static,
        right_key: impl Fn(&R) -> Option<i64> + Send + 'static,
        merge: impl Fn(&R, &R) -> R + Send + 'static,
    ) -> NodeId {
        let id = self.push_node(Operator::Join(Box::new(JoinOp {
            left_key: Box::new(left_key),
            right_key: Box::new(right_key),
            merge: Box::new(merge),
            left: HashMap::new(),
            right: HashMap::new(),
        })));
        self.wire(left, id, 0);
        self.wire(right, id, 1);
        id
    }

    /// Adds a sink collecting the outputs of `inputs` (input `i` arrives
    /// tagged with port `i`, so a consumer can tell an entity stream from
    /// an example stream).
    pub fn sink(&mut self, inputs: &[NodeId]) -> NodeId {
        let id = self.push_node(Operator::Sink(Vec::new()));
        for (port, &input) in inputs.iter().enumerate() {
            self.wire(input, id, port);
        }
        id
    }

    /// Number of nodes in the graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maintenance counters so far.
    pub fn stats(&self) -> FlowStats {
        self.stats
    }

    /// Feeds `deltas` into `source` and propagates them topologically until
    /// every downstream sink has absorbed its share. Returns the number of
    /// deltas delivered into sinks.
    ///
    /// # Panics
    /// Panics when `source` is not a [`source`](Dataflow::source) node.
    pub fn ingest(&mut self, source: NodeId, deltas: Vec<Delta<R>>) -> u64 {
        assert!(
            matches!(self.nodes[source.0].op, Operator::Source),
            "ingest targets must be source nodes"
        );
        self.stats.deltas_in += deltas.len() as u64;
        flow_obs().deltas_in.add(deltas.len() as u64);
        let deltas_in = deltas.len() as u64;
        let emitted_before = self.stats.rows_emitted;
        let mut inbox: Vec<Vec<PortDelta<R>>> = self.nodes.iter().map(|_| Vec::new()).collect();
        inbox[source.0] = deltas.into_iter().map(|d| (0, d)).collect();
        for i in source.0..self.nodes.len() {
            let input = std::mem::take(&mut inbox[i]);
            if input.is_empty() {
                continue;
            }
            self.stats.deltas_processed += input.len() as u64;
            flow_obs().deltas_processed.add(input.len() as u64);
            if let Some(clock) = &self.clock {
                clock.charge_cpu_ops(input.len() as u64);
            }
            let mut pairs = 0u64;
            let node = &mut self.nodes[i];
            let mut out: Vec<Delta<R>> = Vec::new();
            match &mut node.op {
                Operator::Source => out.extend(input.into_iter().map(|(_, d)| d)),
                Operator::Filter(pred) => {
                    out.extend(input.into_iter().filter(|(_, d)| pred(&d.row)).map(|(_, d)| d));
                }
                Operator::Map(f) => {
                    out.extend(
                        input.into_iter().map(|(_, d)| Delta { row: f(&d.row), diff: d.diff }),
                    );
                }
                Operator::Join(j) => {
                    for (port, d) in input {
                        pairs += j.process(port, d, &mut out);
                    }
                }
                Operator::Sink(collected) => {
                    self.stats.rows_emitted += input.len() as u64;
                    collected.extend(input);
                }
            }
            self.stats.join_pairs_examined += pairs;
            flow_obs().join_pairs.add(pairs);
            if pairs > 0 {
                if let Some(clock) = &self.clock {
                    clock.charge_cpu_ops(pairs);
                }
            }
            if out.is_empty() {
                continue;
            }
            // fan the output to every downstream edge (clone per extra edge)
            let outs = std::mem::take(&mut self.nodes[i].outs);
            for (k, &(tgt, port)) in outs.iter().enumerate() {
                if k + 1 == outs.len() {
                    inbox[tgt].extend(std::mem::take(&mut out).into_iter().map(|d| (port, d)));
                } else {
                    inbox[tgt].extend(out.iter().cloned().map(|d| (port, d)));
                }
            }
            self.nodes[i].outs = outs;
        }
        let emitted = self.stats.rows_emitted - emitted_before;
        flow_obs().rows_emitted.add(emitted);
        hazy_obs::emit(hazy_obs::EventKind::FlowIngest, deltas_in, emitted, 0);
        emitted
    }

    /// Takes everything `sink` has collected since the last drain, in
    /// arrival order.
    ///
    /// # Panics
    /// Panics when `sink` is not a [`sink`](Dataflow::sink) node.
    pub fn drain(&mut self, sink: NodeId) -> Vec<PortDelta<R>> {
        match &mut self.nodes[sink.0].op {
            Operator::Sink(collected) => std::mem::take(collected),
            _ => panic!("drain targets must be sink nodes"),
        }
    }
}

impl<R: Clone + PartialEq> JoinOp<R> {
    /// Handles one delta on `port` (0 = left, 1 = right): probe the
    /// opposite index, emit merged deltas, fold into the own index.
    /// Returns the number of indexed rows examined.
    fn process(&mut self, port: usize, d: Delta<R>, out: &mut Vec<Delta<R>>) -> u64 {
        let (key_fn, own, other, left_first) = match port {
            0 => (&self.left_key, &mut self.left, &self.right, true),
            1 => (&self.right_key, &mut self.right, &self.left, false),
            _ => panic!("joins have exactly two input ports"),
        };
        let Some(k) = key_fn(&d.row) else {
            return 0; // NULL join key: matches nothing, indexes nothing
        };
        let mut pairs = 0u64;
        if let Some(bag) = other.get(&k) {
            for (row2, m2) in bag {
                pairs += 1;
                let merged = if left_first {
                    (self.merge)(&d.row, row2)
                } else {
                    (self.merge)(row2, &d.row)
                };
                out.push(Delta { row: merged, diff: d.diff * m2 });
            }
        }
        index_fold(own, k, d);
        pairs
    }
}

/// Folds a delta into a join index, consolidating multiplicities so a row
/// retracted back to zero disappears entirely.
fn index_fold<R: PartialEq>(index: &mut JoinIndex<R>, key: i64, d: Delta<R>) {
    let bag = index.entry(key).or_default();
    if let Some(pos) = bag.iter().position(|(row, _)| *row == d.row) {
        bag[pos].1 += d.diff;
        if bag[pos].1 == 0 {
            bag.swap_remove(pos);
        }
    } else {
        bag.push((d.row, d.diff));
    }
    if bag.is_empty() {
        index.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (key, payload) test rows.
    type Row = (i64, i64);

    fn inserts(rows: &[Row]) -> Vec<Delta<Row>> {
        rows.iter().map(|&r| Delta::insert(r)).collect()
    }

    #[test]
    fn filter_drops_inserts_and_retracts_alike() {
        let mut g: Dataflow<Row> = Dataflow::new();
        let src = g.source();
        let f = g.filter(src, |r| r.1 > 0);
        let sink = g.sink(&[f]);
        g.ingest(src, inserts(&[(1, 5), (2, -3)]));
        g.ingest(src, vec![Delta::retract((1, 5))]);
        let got: Vec<_> = g.drain(sink);
        assert_eq!(got, vec![(0, Delta::insert((1, 5))), (0, Delta::retract((1, 5)))]);
    }

    #[test]
    fn map_rewrites_rows_preserving_diff() {
        let mut g: Dataflow<Row> = Dataflow::new();
        let src = g.source();
        let m = g.map(src, |r| (r.0, r.1 * 10));
        let sink = g.sink(&[m]);
        g.ingest(src, vec![Delta::retract((4, 2))]);
        assert_eq!(g.drain(sink), vec![(0, Delta { row: (4, 20), diff: -1 })]);
    }

    #[test]
    fn join_emits_all_three_delta_terms() {
        let mut g: Dataflow<Row> = Dataflow::new();
        let a = g.source();
        let b = g.source();
        let j = g.join(a, b, |r| Some(r.0), |r| Some(r.0), |x, y| (x.0, x.1 + y.1));
        let sink = g.sink(&[j]);
        // ΔA ⋈ B: b indexed first, then a arrives
        g.ingest(b, inserts(&[(1, 100)]));
        assert!(g.drain(sink).is_empty(), "no match yet");
        g.ingest(a, inserts(&[(1, 1)]));
        assert_eq!(g.drain(sink), vec![(0, Delta::insert((1, 101)))]);
        // A ⋈ ΔB: second b row matches the indexed a row
        g.ingest(b, inserts(&[(1, 200)]));
        assert_eq!(g.drain(sink), vec![(0, Delta::insert((1, 201)))]);
        // retract the a row: both join results retract
        g.ingest(a, vec![Delta::retract((1, 1))]);
        let mut got = g.drain(sink);
        got.sort_by_key(|(_, d)| d.row.1);
        assert_eq!(
            got,
            vec![(0, Delta::retract((1, 101))), (0, Delta::retract((1, 201)))]
        );
    }

    #[test]
    fn join_cost_tracks_matching_keys_not_table_size() {
        let mut g: Dataflow<Row> = Dataflow::new();
        let a = g.source();
        let b = g.source();
        let j = g.join(a, b, |r| Some(r.0), |r| Some(r.0), |x, y| (x.0, x.1 + y.1));
        let _sink = g.sink(&[j]);
        // index 1000 b rows under distinct keys
        g.ingest(b, inserts(&(0..1000).map(|k| (k, k)).collect::<Vec<_>>()));
        let before = g.stats().join_pairs_examined;
        g.ingest(a, inserts(&[(500, 1)]));
        // one delta, one matching key: exactly one pair examined
        assert_eq!(g.stats().join_pairs_examined - before, 1);
    }

    #[test]
    fn null_keys_join_nothing() {
        let mut g: Dataflow<Row> = Dataflow::new();
        let a = g.source();
        let b = g.source();
        let j = g.join(
            a,
            b,
            |r| (r.0 >= 0).then_some(r.0),
            |r| Some(r.0),
            |x, y| (x.0, x.1 + y.1),
        );
        let sink = g.sink(&[j]);
        g.ingest(b, inserts(&[(-1, 9)]));
        g.ingest(a, inserts(&[(-1, 9)]));
        assert!(g.drain(sink).is_empty());
    }

    #[test]
    fn retract_consolidates_out_of_join_index() {
        let mut g: Dataflow<Row> = Dataflow::new();
        let a = g.source();
        let b = g.source();
        let j = g.join(a, b, |r| Some(r.0), |r| Some(r.0), |x, y| (x.0, x.1 + y.1));
        let sink = g.sink(&[j]);
        g.ingest(b, inserts(&[(1, 50)]));
        g.ingest(b, vec![Delta::retract((1, 50))]);
        g.ingest(a, inserts(&[(1, 1)]));
        assert!(g.drain(sink).is_empty(), "retracted build row must not match");
        assert_eq!(g.stats().join_pairs_examined, 0);
    }

    #[test]
    fn sink_ports_identify_inputs() {
        let mut g: Dataflow<Row> = Dataflow::new();
        let a = g.source();
        let b = g.source();
        let sink = g.sink(&[a, b]);
        g.ingest(b, inserts(&[(2, 2)]));
        g.ingest(a, inserts(&[(1, 1)]));
        let got = g.drain(sink);
        assert_eq!(got, vec![(1, Delta::insert((2, 2))), (0, Delta::insert((1, 1)))]);
    }

    #[test]
    fn one_source_can_feed_two_consumers() {
        let mut g: Dataflow<Row> = Dataflow::new();
        let src = g.source();
        let pos = g.filter(src, |r| r.1 > 0);
        let neg = g.filter(src, |r| r.1 < 0);
        let sink = g.sink(&[pos, neg]);
        g.ingest(src, inserts(&[(1, 5), (2, -5)]));
        let got = g.drain(sink);
        assert_eq!(got, vec![(0, Delta::insert((1, 5))), (1, Delta::insert((2, -5)))]);
    }

    #[test]
    fn clocked_graph_charges_maintenance() {
        use hazy_storage::CostModel;
        let clock = VirtualClock::new(CostModel::sata_2008());
        let mut g: Dataflow<Row> = Dataflow::with_clock(clock.clone());
        let src = g.source();
        let f = g.filter(src, |_| true);
        let _sink = g.sink(&[f]);
        let t0 = clock.now_ns();
        g.ingest(src, inserts(&[(1, 1), (2, 2)]));
        assert!(clock.now_ns() > t0, "delta propagation must cost virtual time");
    }
}
