//! Delta dataflow for derived classification views.
//!
//! The paper puts a classification view *on a table*. Real deployments put
//! views on **derived relations** — a projection of a fact table joined
//! against a dimension, filtered to a slice. This crate supplies the
//! machinery that keeps such a view incrementally maintained without ever
//! recomputing the derived relation:
//!
//! * a [`Delta`] — a row tagged with a signed multiplicity (`+1` insert,
//!   `−1` retract), the currency every operator trades in;
//! * typed-row operators ([`Dataflow::filter`], [`Dataflow::map`],
//!   [`Dataflow::join`]) that transform *changes* into changes — the join
//!   keeps indexed state per side so a one-row delta costs
//!   `O(matching keys)`, not `O(|table|)`;
//! * a [`Dataflow`] graph that propagates base-table deltas topologically
//!   from sources to sinks, and
//! * a [`ViewSink`] that collapses bag multiplicities back to the set
//!   semantics a [`ClassifierView`](hazy_core::ClassifierView) speaks —
//!   an entity enters the view when its derived multiplicity first turns
//!   positive and leaves when it returns to zero.
//!
//! The delta algebra is the standard bilinear one: for linear operators
//! (filter, map) `op(Δ)` is the output change; for the join,
//! `Δ(A ⋈ B) = ΔA ⋈ B + A ⋈ ΔB + ΔA ⋈ ΔB`, realized by processing deltas
//! in arrival order against the *current* opposite-side index and folding
//! each delta into its own side's index afterwards.

#![warn(missing_docs)]

mod delta;
mod graph;
mod sink;

pub use delta::Delta;
pub use graph::{Dataflow, FlowStats, NodeId, PortDelta};
pub use sink::{apply_to_view, RowAction, ViewSink};
