//! Set-semantics collapse: from bag-multiplicity deltas to the
//! entity-level insert/remove verbs a classifier view speaks.

use std::collections::HashMap;

use hazy_core::{ClassifierView, Entity};

use crate::delta::Delta;

/// An entity-level action produced by a [`ViewSink`]: what the derived
/// relation's *set* projection did, after bag multiplicities cancel.
#[derive(Clone, Debug, PartialEq)]
pub enum RowAction<R> {
    /// Entity `id` entered the derived relation with `row` as its
    /// representative tuple.
    Insert {
        /// The entity key extracted from the row.
        id: u64,
        /// The row to featurize.
        row: R,
    },
    /// Entity `id` left the derived relation.
    Remove {
        /// The entity key that went away.
        id: u64,
    },
}

/// Collapses a stream of deltas into set-level [`RowAction`]s, keyed by an
/// entity id extracted from each row.
///
/// A join can legitimately derive the same entity more than once (two
/// matching dimension rows), and a retract+insert pair (an `UPDATE`)
/// passes through as remove-then-insert. The sink tracks the net
/// multiplicity per id and emits an action only on the two transitions a
/// [`ClassifierView`] can observe: `0 → positive` (insert) and
/// `positive → 0` (remove). While the multiplicity stays positive the
/// first-arrived row remains the representative; pipelines where one id
/// maps to conflicting payloads should retract before re-deriving.
pub struct ViewSink<R> {
    key: Box<dyn Fn(&R) -> u64 + Send>,
    counts: HashMap<u64, i64>,
}

impl<R: Clone> ViewSink<R> {
    /// A sink extracting entity ids with `key`.
    pub fn new(key: impl Fn(&R) -> u64 + Send + 'static) -> ViewSink<R> {
        ViewSink { key: Box::new(key), counts: HashMap::new() }
    }

    /// Entities currently in the derived relation (positive multiplicity).
    pub fn len(&self) -> usize {
        self.counts.values().filter(|&&c| c > 0).count()
    }

    /// `true` when no entity has positive multiplicity.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids of the entities currently in the derived relation, unsorted.
    pub fn ids(&self) -> Vec<u64> {
        self.counts.iter().filter(|&(_, &c)| c > 0).map(|(&id, _)| id).collect()
    }

    /// Absorbs one delta; returns the set-level action it caused, if any.
    ///
    /// Over-retraction (a retract for an id that was never derived) drives
    /// the count negative and emits nothing — the later matching insert
    /// then cancels back to zero, also silently. This makes replaying a
    /// prefix of a delta stream safe.
    pub fn absorb(&mut self, d: &Delta<R>) -> Option<RowAction<R>> {
        let id = (self.key)(&d.row);
        let count = self.counts.entry(id).or_insert(0);
        let was = *count > 0;
        *count += d.diff;
        let now = *count > 0;
        if *count == 0 {
            self.counts.remove(&id);
        }
        match (was, now) {
            (false, true) => Some(RowAction::Insert { id, row: d.row.clone() }),
            (true, false) => Some(RowAction::Remove { id }),
            _ => None,
        }
    }

    /// Absorbs a drained batch in order, collecting every action.
    pub fn absorb_batch<'a>(
        &mut self,
        deltas: impl IntoIterator<Item = &'a Delta<R>>,
    ) -> Vec<RowAction<R>>
    where
        R: 'a,
    {
        deltas.into_iter().filter_map(|d| self.absorb(d)).collect()
    }
}

/// Feeds a batch of [`RowAction`]s into a classifier view: inserts
/// featurize through `to_entity`, removes go through
/// [`ClassifierView::remove_entity`]. The bridge that makes a derived
/// relation look like the paper's entity table to any architecture.
pub fn apply_to_view<R>(
    view: &mut (dyn ClassifierView + '_),
    actions: Vec<RowAction<R>>,
    mut to_entity: impl FnMut(u64, &R) -> Entity,
) {
    for a in actions {
        match a {
            RowAction::Insert { id, row } => view.insert_entity(to_entity(id, &row)),
            RowAction::Remove { id } => {
                let _ = view.remove_entity(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Row = (u64, i64);

    fn sink() -> ViewSink<Row> {
        ViewSink::new(|r: &Row| r.0)
    }

    #[test]
    fn first_insert_and_last_retract_are_the_only_actions() {
        let mut s = sink();
        assert_eq!(
            s.absorb(&Delta::insert((7, 1))),
            Some(RowAction::Insert { id: 7, row: (7, 1) })
        );
        // second derivation of the same entity: no action
        assert_eq!(s.absorb(&Delta::insert((7, 2))), None);
        assert_eq!(s.absorb(&Delta::retract((7, 1))), None);
        assert_eq!(s.absorb(&Delta::retract((7, 2))), Some(RowAction::Remove { id: 7 }));
        assert!(s.is_empty());
    }

    #[test]
    fn update_shape_is_remove_then_insert() {
        let mut s = sink();
        s.absorb(&Delta::insert((3, 10)));
        let actions =
            s.absorb_batch(&[Delta::retract((3, 10)), Delta::insert((3, 99))]);
        assert_eq!(
            actions,
            vec![
                RowAction::Remove { id: 3 },
                RowAction::Insert { id: 3, row: (3, 99) },
            ]
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn over_retraction_is_silent_and_cancels() {
        let mut s = sink();
        assert_eq!(s.absorb(&Delta::retract((5, 0))), None);
        // the matching insert only cancels the debt: still not present
        assert_eq!(s.absorb(&Delta::insert((5, 0))), None);
        assert!(s.is_empty());
        // a further insert genuinely enters
        assert!(matches!(s.absorb(&Delta::insert((5, 0))), Some(RowAction::Insert { .. })));
    }

    #[test]
    fn join_multiplicity_collapses_to_set_semantics() {
        let mut s = sink();
        // a join emitting multiplicity 2 in one delta
        assert!(matches!(
            s.absorb(&Delta { row: (1, 0), diff: 2 }),
            Some(RowAction::Insert { .. })
        ));
        assert_eq!(s.absorb(&Delta { row: (1, 0), diff: -1 }), None);
        assert_eq!(
            s.absorb(&Delta { row: (1, 0), diff: -1 }),
            Some(RowAction::Remove { id: 1 })
        );
    }
}
