//! Crash-injection differential suite for a **durable derived view**: a
//! random script of base-table inserts / deletes / updates flows through a
//! filter→join→project dataflow into a WAL-logged classifier engine. We
//! capture a crash image at **every WAL record boundary**, recover, and
//! diff the recovered view against an oracle that executed only the
//! durable prefix of the engine-op stream.
//!
//! This extends the PR 4 crash harness (`crates/core/tests/crash_recovery`)
//! to the dataflow world: here the logged stream contains *retractions*
//! (`DELETE FROM` a base table, or the retract half of an `UPDATE`,
//! propagated through the join), so recovery must replay entity removals
//! idempotently and land bit-identical to the prefix oracle.
//!
//! The crash seed comes from `HAZY_CRASH_SEED` so CI can run a
//! deterministic seed matrix.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use hazy_core::{
    Architecture, ClassifierView, CoreRestorer, DurableClassifierView, DurableView, Entity, Mode,
    OpOverheads, ViewBuilder, ViewRestorer,
};
use hazy_flow::{Dataflow, Delta, NodeId, RowAction, ViewSink};
use hazy_learn::TrainingExample;
use hazy_linalg::{FeatureVec, NormPair};
use hazy_serve::{ServeRestorer, ShardedView};
use hazy_storage::{DurableImage, DurableStore, WalReader};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type Row = Vec<f64>;

const BASE_OPS: usize = 70;
const CKPT_INTERVAL: u64 = 16;
const JK_SPACE: i64 = 6;

fn seed() -> u64 {
    std::env::var("HAZY_CRASH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// One WAL-record-sized engine operation, derived from a sink action.
#[derive(Clone, Debug)]
enum EngineOp {
    Insert(Entity),
    Train(TrainingExample),
    Remove(u64),
}

fn apply(v: &mut (dyn DurableClassifierView + Send), op: &EngineOp) {
    match op {
        EngineOp::Insert(e) => v.insert_entity(e.clone()),
        EngineOp::Train(ex) => v.update(ex),
        EngineOp::Remove(id) => {
            let _ = v.remove_entity(*id);
        }
    }
}

/// Lowers a sink action to its engine-op records (an arriving labeled row
/// is two records: the entity insert, then the training step).
fn lower(action: &RowAction<Row>) -> Vec<EngineOp> {
    match action {
        RowAction::Insert { id, row } => {
            let f = FeatureVec::dense([row[1] as f32, row[2] as f32]);
            let mut ops = vec![EngineOp::Insert(Entity::new(*id, f.clone()))];
            if row[3] != 0.0 {
                ops.push(EngineOp::Train(TrainingExample::new(
                    *id,
                    f,
                    if row[3] > 0.0 { 1 } else { -1 },
                )));
            }
            ops
        }
        RowAction::Remove { id } => vec![EngineOp::Remove(*id)],
    }
}

/// The same filter→join→project pipeline the equivalence suite uses:
/// `A = [id, jk, x]` (filtered on `x ≥ 0`) joined against `B = [key, y,
/// label]`, projected to `[id, x, y, label]`.
fn pipeline() -> (Dataflow<Row>, NodeId, NodeId, NodeId) {
    let mut graph: Dataflow<Row> = Dataflow::new();
    let src_a = graph.source();
    let src_b = graph.source();
    let fa = graph.filter(src_a, |r: &Row| r[2] >= 0.0);
    let joined = graph.join(
        fa,
        src_b,
        |r: &Row| Some(r[1] as i64),
        |r: &Row| Some(r[0] as i64),
        |l: &Row, r: &Row| {
            let mut out = l.clone();
            out.extend(r.iter().cloned());
            out
        },
    );
    let proj = graph.map(joined, |r: &Row| vec![r[0], r[2], r[4], r[5]]);
    let sink = graph.sink(&[proj]);
    (graph, src_a, src_b, sink)
}

/// Runs the random base-op script through the pipeline once and returns
/// the flat engine-op stream plus every id that ever appeared.
fn engine_op_stream(seed: u64) -> (Vec<EngineOp>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut graph, src_a, src_b, sink) = pipeline();
    let mut entity_sink = ViewSink::new(|r: &Row| r[0] as u64);
    let mut a: BTreeMap<i64, Row> = BTreeMap::new();
    let mut b: BTreeMap<i64, Row> = BTreeMap::new();
    let mut next_id = 1i64;
    let mut ops = Vec::new();
    let mut ids = Vec::new();
    for _ in 0..BASE_OPS {
        let (side, deltas) = loop {
            match rng.gen_range(0..9) {
                0..=2 => {
                    let id = next_id;
                    next_id += 1;
                    let row = vec![
                        id as f64,
                        rng.gen_range(0..JK_SPACE) as f64,
                        rng.gen_range(-1.0..1.0),
                    ];
                    a.insert(id, row.clone());
                    ids.push(id as u64);
                    break (0, vec![Delta::insert(row)]);
                }
                3 if !a.is_empty() => {
                    let id = *pick(&mut rng, &a);
                    let old = a.remove(&id).unwrap();
                    break (0, vec![Delta::retract(old)]);
                }
                4 if !a.is_empty() => {
                    let id = *pick(&mut rng, &a);
                    let old = a[&id].clone();
                    let mut new = old.clone();
                    new[2] = rng.gen_range(-1.0..1.0);
                    if rng.gen_bool(0.5) {
                        new[1] = rng.gen_range(0..JK_SPACE) as f64;
                    }
                    a.insert(id, new.clone());
                    break (0, vec![Delta::retract(old), Delta::insert(new)]);
                }
                5..=6 if (b.len() as i64) < JK_SPACE => {
                    let key = (0..JK_SPACE).find(|k| !b.contains_key(k)).unwrap();
                    let row = vec![
                        key as f64,
                        rng.gen_range(-1.0..1.0),
                        [-1.0, 0.0, 1.0][rng.gen_range(0..3)],
                    ];
                    b.insert(key, row.clone());
                    break (1, vec![Delta::insert(row)]);
                }
                7 if !b.is_empty() => {
                    let key = *pick(&mut rng, &b);
                    let old = b.remove(&key).unwrap();
                    break (1, vec![Delta::retract(old)]);
                }
                8 if !b.is_empty() => {
                    let key = *pick(&mut rng, &b);
                    let old = b[&key].clone();
                    let mut new = old.clone();
                    new[1] = rng.gen_range(-1.0..1.0);
                    b.insert(key, new.clone());
                    break (1, vec![Delta::retract(old), Delta::insert(new)]);
                }
                _ => {}
            }
        };
        graph.ingest(if side == 0 { src_a } else { src_b }, deltas);
        for (_, d) in graph.drain(sink) {
            if let Some(action) = entity_sink.absorb(&d) {
                ops.extend(lower(&action));
            }
        }
    }
    (ops, ids)
}

fn builder(arch: Architecture, mode: Mode) -> ViewBuilder {
    ViewBuilder::new(arch, mode)
        .norm_pair(NormPair::EUCLIDEAN)
        .overheads(OpOverheads::free())
        .dim(2)
}

fn build_plain(b: &ViewBuilder, shards: usize) -> Box<dyn DurableClassifierView + Send> {
    if shards <= 1 {
        b.build(Vec::new(), &[])
    } else {
        Box::new(ShardedView::build(b, shards, Vec::new(), &[]))
    }
}

fn pick<'m>(rng: &mut StdRng, m: &'m BTreeMap<i64, Row>) -> &'m i64 {
    m.keys().nth(rng.gen_range(0..m.len())).unwrap()
}

fn assert_models_bit_identical(
    a: &hazy_learn::LinearModel,
    b: &hazy_learn::LinearModel,
    ctx: &str,
) {
    assert_eq!(a.b.to_bits(), b.b.to_bits(), "{ctx}: bias diverged");
    let (wa, wb) = (a.w.to_vec(), b.w.to_vec());
    assert_eq!(wa.len(), wb.len(), "{ctx}: weight dim diverged");
    for (i, (x, y)) in wa.iter().zip(wb.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: weight {i} diverged");
    }
}

fn assert_answers_match(
    recovered: &mut dyn ClassifierView,
    probe: &mut (dyn DurableClassifierView + Send),
    ids: &[u64],
    ctx: &str,
) {
    assert_eq!(recovered.entity_count(), probe.entity_count(), "{ctx}: entity_count");
    assert_eq!(recovered.count_positive(), probe.count_positive(), "{ctx}: count_positive");
    let mut got = recovered.positive_ids();
    let mut want = probe.positive_ids();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "{ctx}: positive_ids");
    for &id in ids {
        assert_eq!(recovered.read_single(id), probe.read_single(id), "{ctx}: classify({id})");
    }
}

fn run_config(arch: Architecture, mode: Mode, shards: usize) {
    let seed = seed();
    let (ops, ids) = engine_op_stream(seed);
    assert!(
        ops.iter().any(|o| matches!(o, EngineOp::Remove(_))),
        "script must exercise retractions (seed {seed})"
    );
    let b = builder(arch, mode);
    let restorer: &dyn ViewRestorer = if shards <= 1 { &CoreRestorer } else { &ServeRestorer };
    let ctx_base = format!("{}/{}/shards={shards}/seed={seed}", arch.name(), mode.name());

    // ---- durable run: a crash image at every WAL record boundary
    let inner = build_plain(&b, shards);
    let store = Arc::new(Mutex::new(DurableStore::new(inner.clock().clone())));
    let mut dv = DurableView::create(inner, store, CKPT_INTERVAL);
    let mut images: Vec<DurableImage> = Vec::with_capacity(ops.len() + 1);
    images.push(dv.durable_image());
    for op in &ops {
        apply(&mut dv, op);
        images.push(dv.durable_image());
    }

    // ---- oracles advanced along the durable prefix: `clean` for exact
    // stats/model, `probe` additionally serving the differential reads
    let mut clean = build_plain(&b, shards);
    let mut probe = build_plain(&b, shards);
    let mut applied = 0usize;

    for (boundary, image) in images.iter().enumerate() {
        let durable_ops = WalReader::new(image.wal_bytes()).count();
        assert_eq!(durable_ops, boundary, "{ctx_base}: one WAL record per engine op");
        while applied < durable_ops {
            apply(clean.as_mut(), &ops[applied]);
            apply(probe.as_mut(), &ops[applied]);
            applied += 1;
        }
        let mut recovered = DurableView::recover_image(&b, image, CKPT_INTERVAL, restorer)
            .unwrap_or_else(|e| panic!("{ctx_base}: recovery at boundary {boundary} failed: {e}"));
        let ctx = format!("{ctx_base}@{boundary}");
        if shards <= 1 {
            assert_eq!(recovered.stats(), clean.stats(), "{ctx}: ViewStats diverged");
        } else {
            assert_eq!(recovered.stats().updates, clean.stats().updates, "{ctx}: updates");
        }
        assert_models_bit_identical(recovered.model(), clean.model(), &ctx);
        if boundary % 5 == 0 || boundary == images.len() - 1 {
            assert_answers_match(&mut recovered, probe.as_mut(), &ids, &ctx);
        } else {
            assert_eq!(recovered.entity_count(), probe.entity_count(), "{ctx}: entity_count");
        }
    }
    assert_eq!(applied, ops.len(), "{ctx_base}: stream fully replayed");
}

macro_rules! crash_matrix {
    ($($name:ident => ($arch:expr, $mode:expr, $shards:expr);)*) => {
        $(
            #[test]
            fn $name() {
                run_config($arch, $mode, $shards);
            }
        )*
    };
}

crash_matrix! {
    derived_hazy_mem_eager_unsharded => (Architecture::HazyMem, Mode::Eager, 1);
    derived_naive_mem_lazy_unsharded => (Architecture::NaiveMem, Mode::Lazy, 1);
    derived_hybrid_lazy_unsharded => (Architecture::Hybrid, Mode::Lazy, 1);
    derived_hazy_disk_eager_unsharded => (Architecture::HazyDisk, Mode::Eager, 1);
    derived_hazy_mem_eager_sharded => (Architecture::HazyMem, Mode::Eager, 3);
}
