//! Differential proof of observational equivalence: an incrementally
//! maintained derived view must be indistinguishable from recomputing the
//! derived relation from scratch after every base-table operation.
//!
//! Random scripts of inserts / deletes / updates run against a fact table
//! `A = [id, jk, x]` and a dimension table `B = [key, y, label]`, flowing
//! through the pipeline
//!
//! ```text
//! A --filter(x >= 0)--+
//!                     +--join(A.jk = B.key)--project[id, x, y, label]--sink
//! B ------------------+
//! ```
//!
//! After each op the sink's actions are diffed against a naive from-scratch
//! evaluation of the query (the oracle), and both action streams feed twin
//! classifier engines whose answers AND model bits must agree — across
//! eager/lazy modes, multiple architectures, and 1 vs 3 shards.

use std::collections::BTreeMap;

use hazy_core::{Architecture, ClassifierView, Entity, Mode, ViewBuilder};
use hazy_flow::{Dataflow, Delta, RowAction, ViewSink};
use hazy_learn::{SgdConfig, TrainingExample};
use hazy_linalg::{FeatureVec, NormPair};
use hazy_serve::ShardedView;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rows on both sides are untyped float tuples; keys are small exact ints.
type Row = Vec<f64>;

const JK_SPACE: i64 = 8;

fn features(row: &Row) -> FeatureVec {
    FeatureVec::dense([row[1] as f32, row[2] as f32])
}

fn build_engine(
    arch: Architecture,
    mode: Mode,
    shards: usize,
) -> Box<dyn ClassifierView + Send> {
    let builder =
        ViewBuilder::new(arch, mode).sgd(SgdConfig::svm()).norm_pair(NormPair::EUCLIDEAN).dim(2);
    if shards > 1 {
        Box::new(ShardedView::build(&builder, shards, Vec::new(), &[]))
    } else {
        builder.build(Vec::new(), &[])
    }
}

/// Applies one entity action to an engine: arrivals are classified and
/// (when labeled) trained; departures are retracted.
fn apply(engine: &mut dyn ClassifierView, action: &RowAction<Row>) {
    match action {
        RowAction::Insert { id, row } => {
            let f = features(row);
            engine.insert_entity(Entity::new(*id, f.clone()));
            let label = row[3];
            if label != 0.0 {
                engine.update(&TrainingExample::new(*id, f, if label > 0.0 { 1 } else { -1 }));
            }
        }
        RowAction::Remove { id } => {
            let _ = engine.remove_entity(*id);
        }
    }
}

/// From-scratch evaluation of the pipeline over the current base tables.
fn naive_eval(a: &BTreeMap<i64, Row>, b: &BTreeMap<i64, Row>) -> BTreeMap<u64, Row> {
    let mut out = BTreeMap::new();
    for ar in a.values() {
        if ar[2] < 0.0 {
            continue; // filter
        }
        if let Some(br) = b.get(&(ar[1] as i64)) {
            out.insert(ar[0] as u64, vec![ar[0], ar[2], br[1], br[2]]);
        }
    }
    out
}

/// Diff of two naive snapshots as an id-sorted action stream with the
/// remove-before-insert convention for a changed row.
fn naive_diff(prev: &BTreeMap<u64, Row>, next: &BTreeMap<u64, Row>) -> Vec<RowAction<Row>> {
    let mut out = Vec::new();
    for (&id, row) in prev {
        match next.get(&id) {
            Some(n) if n == row => {}
            _ => out.push(RowAction::Remove { id }),
        }
    }
    for (&id, row) in next {
        if prev.get(&id) != Some(row) {
            out.push(RowAction::Insert { id, row: row.clone() });
        }
    }
    out.sort_by_key(|a| match a {
        // stable: for the same id the Remove (pushed first) stays first
        RowAction::Insert { id, .. } | RowAction::Remove { id } => *id,
    });
    out
}

/// One random base-table op, mirrored into the driver's table copies;
/// returns which source it hits and the delta batch it produces.
fn random_op(
    rng: &mut StdRng,
    next_id: &mut i64,
    a: &mut BTreeMap<i64, Row>,
    b: &mut BTreeMap<i64, Row>,
) -> (usize, Vec<Delta<Row>>) {
    loop {
        match rng.gen_range(0..9) {
            0..=2 => {
                // insert a fact row (possibly matching no dimension row)
                let id = *next_id;
                *next_id += 1;
                let row =
                    vec![id as f64, rng.gen_range(0..JK_SPACE) as f64, rng.gen_range(-1.0..1.0)];
                a.insert(id, row.clone());
                return (0, vec![Delta::insert(row)]);
            }
            3 if !a.is_empty() => {
                let id = *pick(rng, a);
                let old = a.remove(&id).unwrap();
                return (0, vec![Delta::retract(old)]);
            }
            4 if !a.is_empty() => {
                // move the fact row: new feature and (sometimes) new key,
                // so it can cross the filter or re-join elsewhere
                let id = *pick(rng, a);
                let old = a[&id].clone();
                let mut new = old.clone();
                new[2] = rng.gen_range(-1.0..1.0);
                if rng.gen_bool(0.5) {
                    new[1] = rng.gen_range(0..JK_SPACE) as f64;
                }
                a.insert(id, new.clone());
                return (0, vec![Delta::retract(old), Delta::insert(new)]);
            }
            5..=6 if (b.len() as i64) < JK_SPACE => {
                let key = (0..JK_SPACE).find(|k| !b.contains_key(k)).unwrap();
                let row =
                    vec![key as f64, rng.gen_range(-1.0..1.0), [-1.0, 0.0, 1.0][rng.gen_range(0..3)]];
                b.insert(key, row.clone());
                return (1, vec![Delta::insert(row)]);
            }
            7 if !b.is_empty() => {
                let key = *pick(rng, b);
                let old = b.remove(&key).unwrap();
                return (1, vec![Delta::retract(old)]);
            }
            8 if !b.is_empty() => {
                let key = *pick(rng, b);
                let old = b[&key].clone();
                let mut new = old.clone();
                new[1] = rng.gen_range(-1.0..1.0);
                b.insert(key, new.clone());
                return (1, vec![Delta::retract(old), Delta::insert(new)]);
            }
            _ => {} // op not applicable to current state; redraw
        }
    }
}

fn pick<'m>(rng: &mut StdRng, m: &'m BTreeMap<i64, Row>) -> &'m i64 {
    m.keys().nth(rng.gen_range(0..m.len())).unwrap()
}

/// Answers + model bits of an engine, in comparable form.
fn observe(engine: &mut dyn ClassifierView, ids: &[u64]) -> (u64, u64, Vec<u64>, Vec<Option<i8>>, String) {
    let mut positives = engine.positive_ids();
    positives.sort_unstable();
    let singles = ids.iter().map(|&id| engine.read_single(id)).collect();
    (
        engine.entity_count(),
        engine.count_positive(),
        positives,
        singles,
        format!("{:?}", engine.model()),
    )
}

fn run_script(seed: u64, arch: Architecture, mode: Mode, shards: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = BTreeMap::new();
    let mut b = BTreeMap::new();
    let mut next_id = 1i64;

    // incremental side: the dataflow pipeline + sink + engine
    let mut graph: Dataflow<Row> = Dataflow::new();
    let src_a = graph.source();
    let src_b = graph.source();
    let fa = graph.filter(src_a, |r: &Row| r[2] >= 0.0);
    let joined = graph.join(
        fa,
        src_b,
        |r: &Row| Some(r[1] as i64),
        |r: &Row| Some(r[0] as i64),
        |l: &Row, r: &Row| {
            let mut out = l.clone();
            out.extend(r.iter().cloned());
            out
        },
    );
    let proj = graph.map(joined, |r: &Row| vec![r[0], r[2], r[4], r[5]]);
    let sink = graph.sink(&[proj]);
    let mut entity_sink = ViewSink::new(|r: &Row| r[0] as u64);
    let mut inc_engine = build_engine(arch, mode, shards);

    // oracle side: from-scratch recomputation + twin engine
    let mut prev_naive = BTreeMap::new();
    let mut oracle_engine = build_engine(arch, mode, shards);

    let mut all_ids = Vec::new();
    for step in 0..60 {
        let (side, deltas) = random_op(&mut rng, &mut next_id, &mut a, &mut b);
        for d in &deltas {
            if side == 0 && !all_ids.contains(&(d.row[0] as u64)) {
                all_ids.push(d.row[0] as u64);
            }
        }

        graph.ingest(if side == 0 { src_a } else { src_b }, deltas);
        let drained = graph.drain(sink);
        let mut inc_actions = entity_sink.absorb_batch(drained.iter().map(|(_, d)| d));
        inc_actions.sort_by_key(|act| match act {
            RowAction::Insert { id, .. } | RowAction::Remove { id } => *id,
        });

        let naive = naive_eval(&a, &b);
        let oracle_actions = naive_diff(&prev_naive, &naive);
        prev_naive = naive;

        assert_eq!(
            inc_actions, oracle_actions,
            "step {step}: incremental actions diverge from from-scratch diff \
             (seed {seed}, {arch:?} {mode:?} shards {shards})"
        );

        for act in &inc_actions {
            apply(inc_engine.as_mut(), act);
        }
        for act in &oracle_actions {
            apply(oracle_engine.as_mut(), act);
        }

        if step % 10 == 9 {
            assert_eq!(
                observe(inc_engine.as_mut(), &all_ids),
                observe(oracle_engine.as_mut(), &all_ids),
                "step {step}: answers/model diverge (seed {seed}, {arch:?} {mode:?} shards {shards})"
            );
        }
    }
    // final check: population, answers, and exact model bits agree
    assert_eq!(
        observe(inc_engine.as_mut(), &all_ids),
        observe(oracle_engine.as_mut(), &all_ids),
        "final state diverges (seed {seed}, {arch:?} {mode:?} shards {shards})"
    );
    assert_eq!(inc_engine.entity_count() as usize, prev_naive.len());
}

#[test]
fn incremental_view_matches_from_scratch_oracle() {
    for seed in [11, 42, 77] {
        for (arch, mode) in [
            (Architecture::HazyMem, Mode::Eager),
            (Architecture::HazyMem, Mode::Lazy),
            (Architecture::NaiveMem, Mode::Eager),
            (Architecture::Hybrid, Mode::Lazy),
        ] {
            for shards in [1, 3] {
                run_script(seed, arch, mode, shards);
            }
        }
    }
}
