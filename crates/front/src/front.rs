//! The front end proper: admission → batch → epoch-read pipeline.
//!
//! A [`Front`] owns the serving threads ("lanes") behind a cloneable
//! [`FrontHandle`]. Submitting a request either admits it into a bounded
//! queue (returning a [`Ticket`] that resolves to exactly one
//! [`Response`]) or sheds it immediately with
//! [`Response::Rejected`] — the queue can never grow without bound, so
//! overload degrades into an explicit, client-visible retry signal
//! instead of unbounded tail latency.
//!
//! Batching is where the engine's amortization is recovered: the paper
//! maintains the view once per *statement*, and `update_batch` (PR 2)
//! makes one maintenance round serve a whole batch. The write lane
//! therefore coalesces every queued `Train` run into a single
//! `update_batch` call, and the read lane groups queued `Classify`
//! requests **per shard** and answers each shard's group from one pinned
//! epoch (PR 8) — one pin, many lookups, zero locks.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use hazy_core::{DurableClassifierView, Entity};
use hazy_serve::{shard_of, ReadHandle, ShardedView, WriteHandle};

use crate::proto::{Request, Response};
use crate::queue::Bounded;

/// Registered-once metric handles for the front end (see `hazy-obs`):
/// admission counters, queue depth/high-water gauges, batch-size and
/// per-request latency histograms, and the drain-rate gauge backing the
/// `retry_after_ms` hint.
struct FrontObs {
    admitted: &'static hazy_obs::Counter,
    shed: &'static hazy_obs::Counter,
    batches: &'static hazy_obs::Counter,
    batch_size: &'static hazy_obs::Histogram,
    request_ns: &'static hazy_obs::Histogram,
    drain_ns_per_req: &'static hazy_obs::Gauge,
    read_queue_depth: &'static hazy_obs::Gauge,
    write_queue_depth: &'static hazy_obs::Gauge,
    read_queue_high_water: &'static hazy_obs::Gauge,
    write_queue_high_water: &'static hazy_obs::Gauge,
}

fn front_obs() -> &'static FrontObs {
    static OBS: std::sync::OnceLock<FrontObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| FrontObs {
        admitted: hazy_obs::counter("front_admitted_total"),
        shed: hazy_obs::counter("front_shed_total"),
        batches: hazy_obs::counter("front_batches_total"),
        batch_size: hazy_obs::histogram("front_batch_size"),
        request_ns: hazy_obs::histogram("front_request_ns"),
        drain_ns_per_req: hazy_obs::gauge("front_drain_ns_per_req"),
        read_queue_depth: hazy_obs::gauge("front_read_queue_depth"),
        write_queue_depth: hazy_obs::gauge("front_write_queue_depth"),
        read_queue_high_water: hazy_obs::gauge("front_read_queue_high_water"),
        write_queue_high_water: hazy_obs::gauge("front_write_queue_high_water"),
    })
}

/// Front-end tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct FrontConfig {
    /// Bound on the read-lane admission queue; a `Classify` / `Count` /
    /// `TopK` arriving while it holds this many requests is shed.
    pub read_queue: usize,
    /// Bound on the write-lane admission queue.
    pub write_queue: usize,
    /// Most requests one lane iteration drains — the batch the per-shard
    /// pinned reads and the coalesced `update_batch` rounds amortize over.
    /// `1` degenerates to per-request dispatch (the A/B baseline the
    /// `slo_front` bench measures against).
    pub batch_max: usize,
    /// Backoff hint carried by [`Response::Rejected`].
    pub retry_after_ms: u32,
}

impl Default for FrontConfig {
    fn default() -> FrontConfig {
        FrontConfig { read_queue: 1024, write_queue: 1024, batch_max: 256, retry_after_ms: 1 }
    }
}

/// Counters describing a front end's admission and batching behavior.
/// Snapshot via [`FrontHandle::stats`]; all counters are cumulative.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontStats {
    /// Requests admitted into a queue.
    pub admitted: u64,
    /// Requests shed at admission ([`Response::Rejected`]).
    pub shed: u64,
    /// Responses delivered to tickets (every admitted request gets exactly
    /// one; at quiescence `completed == admitted`).
    pub completed: u64,
    /// Responses that were [`Response::Error`] (structural failures the
    /// front survived).
    pub errors: u64,
    /// Panics recovered inside a serve lane (the request got an `Error`
    /// response; the lane kept serving).
    pub panics_recovered: u64,
    /// Read-lane batches drained.
    pub read_batches: u64,
    /// Requests inside those read batches.
    pub batched_reads: u64,
    /// Largest read batch drained at once.
    pub max_read_batch: u64,
    /// Write-lane batches drained.
    pub write_batches: u64,
    /// Requests inside those write batches.
    pub batched_writes: u64,
    /// Largest write batch drained at once.
    pub max_write_batch: u64,
    /// Current read-queue depth.
    pub read_queue_depth: u64,
    /// Current write-queue depth.
    pub write_queue_depth: u64,
    /// Deepest the read queue ever got (always ≤ the configured bound).
    pub read_queue_high_water: u64,
    /// Deepest the write queue ever got (always ≤ the configured bound).
    pub write_queue_high_water: u64,
    /// EWMA of per-request service time observed by the lanes, in
    /// nanoseconds (0 until the first batch drains). Feeds the
    /// [`Response::Rejected`] backoff hint via [`estimate_retry_after_ms`].
    pub drain_ns_per_req: u64,
}

impl FrontStats {
    /// Fraction of arrivals shed at admission.
    pub fn shed_rate(&self) -> f64 {
        let total = self.admitted + self.shed;
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }

    /// Mean requests per drained read batch — how much amortization the
    /// arrival pattern actually bought.
    pub fn mean_read_batch(&self) -> f64 {
        if self.read_batches == 0 {
            0.0
        } else {
            self.batched_reads as f64 / self.read_batches as f64
        }
    }
}

#[derive(Default)]
struct StatsInner {
    admitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    read_batches: AtomicU64,
    batched_reads: AtomicU64,
    max_read_batch: AtomicU64,
    write_batches: AtomicU64,
    batched_writes: AtomicU64,
    max_write_batch: AtomicU64,
    /// EWMA of lane service time per request (ns); see
    /// [`StatsInner::observe_drain`].
    drain_ns_per_req: AtomicU64,
}

impl StatsInner {
    /// Folds one drained batch's wall time into the per-request drain
    /// EWMA (weight 1/8 on the new sample — jitter-tolerant but converges
    /// within a few batches after a load shift).
    fn observe_drain(&self, batch_len: usize, elapsed_ns: u64) {
        if batch_len == 0 {
            return;
        }
        let sample = elapsed_ns / batch_len as u64;
        let old = self.drain_ns_per_req.load(Ordering::Relaxed);
        let new = if old == 0 { sample } else { old.saturating_mul(7).saturating_add(sample) / 8 };
        self.drain_ns_per_req.store(new, Ordering::Relaxed);
    }
}

/// The backoff hint for a shed request: the time the lanes would need to
/// drain the queue standing between the client and service, from the
/// observed per-request drain EWMA. Clamped to `[floor_ms, 60_000]`;
/// `floor_ms` alone while the drain rate is still unmeasured. Monotone in
/// `queue_depth` (unit-tested): a deeper queue never hints a shorter wait.
pub fn estimate_retry_after_ms(queue_depth: u64, drain_ns_per_req: u64, floor_ms: u32) -> u32 {
    let floor = u64::from(floor_ms.max(1));
    if drain_ns_per_req == 0 {
        return floor as u32;
    }
    let drain_ns = queue_depth.saturating_mul(drain_ns_per_req);
    drain_ns.div_ceil(1_000_000).clamp(floor, floor.max(60_000)) as u32
}

fn fetch_max(cell: &AtomicU64, v: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while v > cur {
        match cell.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(now) => cur = now,
        }
    }
}

/// One response slot, completed exactly once. The mutex is uncontended
/// (one producer, one consumer, one hand-off).
struct Slot {
    state: Mutex<Option<Response>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot { state: Mutex::new(None), ready: Condvar::new() })
    }

    /// First completion wins; a second is dropped (and reported by the
    /// `false` return so lanes can count it as a bug instead of
    /// overwriting a delivered answer).
    fn fill(&self, resp: Response) -> bool {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.is_some() {
            return false;
        }
        *s = Some(resp);
        drop(s);
        self.ready.notify_all();
        true
    }
}

/// A pending response: resolves to exactly one [`Response`] — the
/// completion side of a submitted request. Obtained from
/// [`FrontHandle::submit`].
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the response arrives.
    pub fn wait(self) -> Response {
        let mut s = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(resp) = s.take() {
                return resp;
            }
            s = self.slot.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking poll: the response if it has arrived. After `Some`,
    /// the ticket is spent (a second call returns `None`).
    pub fn try_take(&self) -> Option<Response> {
        self.slot.state.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

/// One queued unit of work: the request plus its completion slot.
struct Job {
    req: Request,
    slot: Arc<Slot>,
    /// Admission timestamp (obs clock, ns); 0 when recording was off at
    /// submit, so completion knows not to record a latency sample.
    t0_ns: u64,
}

/// Completes `job`, counting the delivery (and double-completion bugs)
/// and recording queue+service latency when the job was stamped.
fn complete(job: Job, resp: Response, stats: &StatsInner) {
    if matches!(resp, Response::Error(_)) {
        stats.errors.fetch_add(1, Ordering::Relaxed);
    }
    if job.slot.fill(resp) {
        stats.completed.fetch_add(1, Ordering::Relaxed);
        if job.t0_ns != 0 {
            front_obs().request_ns.record(hazy_obs::now_ns().saturating_sub(job.t0_ns));
        }
    }
}

/// The client side of a [`Front`]: clone one per client thread (or hand it
/// to the TCP adapter). Submission never blocks on the serving lanes —
/// it either enqueues or sheds.
#[derive(Clone)]
pub struct FrontHandle {
    read_q: Arc<Bounded<Job>>,
    write_q: Arc<Bounded<Job>>,
    stats: Arc<StatsInner>,
    retry_after_ms: u32,
    /// Engine mode: one lane serves both request classes, so everything
    /// routes through `read_q` (one queue, one bound).
    unified: bool,
}

impl FrontHandle {
    /// Submits a request; the returned [`Ticket`] resolves to exactly one
    /// [`Response`]. When the admission queue is full the ticket is
    /// already resolved to [`Response::Rejected`] — the request was never
    /// queued and will not be executed.
    pub fn submit(&self, req: Request) -> Ticket {
        let slot = Slot::new();
        let ticket = Ticket { slot: Arc::clone(&slot) };
        if matches!(req, Request::MetricsDump) {
            // answered at admission, bypassing both queues: the metrics
            // plane stays scrapeable while the serving plane saturates.
            // Counted as admitted + completed so the exactly-once ledger
            // (`completed == admitted` at quiescence) still balances.
            self.stats.admitted.fetch_add(1, Ordering::Relaxed);
            front_obs().admitted.inc();
            slot.fill(Response::Metrics(hazy_obs::render_prometheus()));
            self.stats.completed.fetch_add(1, Ordering::Relaxed);
            return ticket;
        }
        let q = if req.is_read() || self.unified { &self.read_q } else { &self.write_q };
        let t0_ns = if hazy_obs::enabled() { hazy_obs::now_ns() } else { 0 };
        match q.try_push(Job { req, slot, t0_ns }) {
            Ok(()) => {
                self.stats.admitted.fetch_add(1, Ordering::Relaxed);
                front_obs().admitted.inc();
            }
            Err(job) => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                let depth = q.depth() as u64;
                let hint = estimate_retry_after_ms(
                    depth,
                    self.stats.drain_ns_per_req.load(Ordering::Relaxed),
                    self.retry_after_ms,
                );
                front_obs().shed.inc();
                hazy_obs::emit(hazy_obs::EventKind::FrontShed, depth, u64::from(hint), 0);
                job.slot.fill(Response::Rejected { retry_after_ms: hint });
            }
        }
        ticket
    }

    /// Synchronous convenience: submit and wait.
    pub fn call(&self, req: Request) -> Response {
        self.submit(req).wait()
    }

    /// Cumulative admission / batching counters.
    pub fn stats(&self) -> FrontStats {
        let s = &self.stats;
        FrontStats {
            admitted: s.admitted.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            errors: s.errors.load(Ordering::Relaxed),
            panics_recovered: s.panics.load(Ordering::Relaxed),
            read_batches: s.read_batches.load(Ordering::Relaxed),
            batched_reads: s.batched_reads.load(Ordering::Relaxed),
            max_read_batch: s.max_read_batch.load(Ordering::Relaxed),
            write_batches: s.write_batches.load(Ordering::Relaxed),
            batched_writes: s.batched_writes.load(Ordering::Relaxed),
            max_write_batch: s.max_write_batch.load(Ordering::Relaxed),
            read_queue_depth: self.read_q.depth() as u64,
            write_queue_depth: self.write_q.depth() as u64,
            read_queue_high_water: self.read_q.high_water() as u64,
            write_queue_high_water: self.write_q.high_water() as u64,
            drain_ns_per_req: s.drain_ns_per_req.load(Ordering::Relaxed),
        }
    }
}

/// A running front end: serving lanes over a classification view. Create
/// with [`Front::serve_sharded`] (read lane + write lane over the
/// epoch-read serving tier) or [`Front::serve_engine`] (one lane over any
/// single engine — e.g. one detached from an RDBMS catalog). Dropping the
/// `Front` without [`shutdown`](Front::shutdown) detaches the lanes; they
/// keep serving for as long as handles feed them.
pub struct Front {
    handle: FrontHandle,
    lanes: Vec<JoinHandle<()>>,
}

impl Front {
    /// Serves a [`ShardedView`] with two independent lanes: the read lane
    /// answers `Classify`/`Count`/`TopK` batches from pinned per-shard
    /// epochs (never blocked by maintenance — a live migration inside the
    /// write lane does not move read tail latency), and the write lane
    /// applies coalesced `update_batch` rounds through the unique
    /// [`WriteHandle`], preserving the single-writer discipline by
    /// construction.
    pub fn serve_sharded(view: ShardedView, cfg: FrontConfig) -> Front {
        let (rh, wh) = view.into_handles();
        Front::serve_handles(rh, wh, cfg)
    }

    /// [`serve_sharded`](Front::serve_sharded) with the handle split done
    /// by the caller — who can therefore keep a [`ReadHandle`] clone as an
    /// out-of-band probe (the `slo_front` bench watches
    /// `ViewStats::migrations` through one while the front serves).
    pub fn serve_handles(rh: ReadHandle, wh: WriteHandle, cfg: FrontConfig) -> Front {
        let (front, read_q, write_q, stats) = Front::skeleton(cfg, false);
        let mut front = front;
        let s = Arc::clone(&stats);
        front.lanes.push(
            std::thread::Builder::new()
                .name("hazy-front-read".into())
                .spawn(move || read_lane(rh, read_q, s, cfg.batch_max))
                .expect("spawn read lane"),
        );
        front.lanes.push(
            std::thread::Builder::new()
                .name("hazy-front-write".into())
                .spawn(move || write_lane(wh, write_q, stats, cfg.batch_max))
                .expect("spawn write lane"),
        );
        front
    }

    /// Serves any single engine — the route by which a view declared in
    /// SQL and detached from the RDBMS catalog
    /// (`Db::detach_view_engine`) goes behind the front end. One lane,
    /// one queue (the engine is a single-threaded object): reads and
    /// writes are served in arrival order, `Train` runs still coalesce
    /// into one maintenance round.
    pub fn serve_engine(engine: Box<dyn DurableClassifierView + Send>, cfg: FrontConfig) -> Front {
        let (front, read_q, _write_q, stats) = Front::skeleton(cfg, true);
        let mut front = front;
        front.lanes.push(
            std::thread::Builder::new()
                .name("hazy-front-engine".into())
                .spawn(move || engine_lane(engine, read_q, stats, cfg.batch_max))
                .expect("spawn engine lane"),
        );
        front
    }

    #[allow(clippy::type_complexity)]
    fn skeleton(
        cfg: FrontConfig,
        unified: bool,
    ) -> (Front, Arc<Bounded<Job>>, Arc<Bounded<Job>>, Arc<StatsInner>) {
        let read_q = Arc::new(Bounded::new(cfg.read_queue));
        let write_q = Arc::new(Bounded::new(cfg.write_queue));
        let stats = Arc::new(StatsInner::default());
        let handle = FrontHandle {
            read_q: Arc::clone(&read_q),
            write_q: Arc::clone(&write_q),
            stats: Arc::clone(&stats),
            retry_after_ms: cfg.retry_after_ms,
            unified,
        };
        (Front { handle, lanes: Vec::new() }, read_q, write_q, stats)
    }

    /// A client handle (clone freely).
    pub fn handle(&self) -> FrontHandle {
        self.handle.clone()
    }

    /// See [`FrontHandle::stats`].
    pub fn stats(&self) -> FrontStats {
        self.handle.stats()
    }

    /// Graceful shutdown: closes admission (new arrivals are shed), drains
    /// every queued request through its lane — no admitted request is
    /// dropped — then joins the lanes and returns the final counters.
    pub fn shutdown(self) -> FrontStats {
        self.handle.read_q.close();
        self.handle.write_q.close();
        for lane in self.lanes {
            // a lane that panicked outside a recovered region is a bug,
            // but shutdown still must not propagate: report via stats
            let _ = lane.join();
        }
        self.handle.stats()
    }
}

/// Lane tags carried in [`hazy_obs::EventKind::FrontBatch`] events.
const LANE_READ: u64 = 0;
const LANE_WRITE: u64 = 1;
const LANE_ENGINE: u64 = 2;

/// Per-batch bookkeeping shared by every lane: feeds the drain-rate EWMA
/// behind the `retry_after_ms` hint, then (when recording is on) the
/// batch-size histogram, queue gauges, and a `FrontBatch` trace event.
fn observe_batch(stats: &StatsInner, q: &Bounded<Job>, len: usize, t0_ns: u64, lane: u64) {
    stats.observe_drain(len, hazy_obs::now_ns().saturating_sub(t0_ns));
    if !hazy_obs::enabled() {
        return;
    }
    let obs = front_obs();
    obs.batches.inc();
    obs.batch_size.record(len as u64);
    obs.drain_ns_per_req.set(stats.drain_ns_per_req.load(Ordering::Relaxed) as f64);
    let (depth_g, hw_g) = if lane == LANE_WRITE {
        (obs.write_queue_depth, obs.write_queue_high_water)
    } else {
        (obs.read_queue_depth, obs.read_queue_high_water)
    };
    let depth = q.depth();
    depth_g.set(depth as f64);
    hw_g.set(q.high_water() as f64);
    hazy_obs::emit(hazy_obs::EventKind::FrontBatch, len as u64, lane, depth as u64);
}

/// Runs `f`, converting a panic into a structured [`Response::Error`] —
/// the serve path must outlive any single bad request.
fn guarded(stats: &StatsInner, what: &str, f: impl FnOnce() -> Response) -> Response {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(resp) => resp,
        Err(_) => {
            stats.panics.fetch_add(1, Ordering::Relaxed);
            Response::Error(format!("serve path panicked during {what}"))
        }
    }
}

/// The read lane: drain a batch, group `Classify` requests by home shard,
/// answer each group from **one** pinned epoch, then serve the fan-out
/// reads. Per-request cost under load collapses to a hash + a pinned
/// binary search; the pin's three atomics amortize across the group.
fn read_lane(rh: ReadHandle, q: Arc<Bounded<Job>>, stats: Arc<StatsInner>, batch_max: usize) {
    let n = rh.n_shards();
    while let Some(jobs) = q.pop_batch(batch_max) {
        let t0_ns = hazy_obs::now_ns();
        let batch_len = jobs.len();
        stats.read_batches.fetch_add(1, Ordering::Relaxed);
        stats.batched_reads.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        fetch_max(&stats.max_read_batch, jobs.len() as u64);
        let mut answers: Vec<Option<Response>> = jobs.iter().map(|_| None).collect();
        let mut per_shard: Vec<Vec<usize>> = (0..n).map(|_| Vec::new()).collect();
        for (i, job) in jobs.iter().enumerate() {
            if let Request::Classify { id } = job.req {
                per_shard[shard_of(id, n)].push(i);
            }
        }
        for (s, group) in per_shard.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let batch = catch_unwind(AssertUnwindSafe(|| {
                let pin = rh.pin_shard(s);
                group
                    .iter()
                    .map(|&i| match jobs[i].req {
                        Request::Classify { id } => Response::Label(pin.classify(id)),
                        _ => unreachable!("group holds classify requests only"),
                    })
                    .collect::<Vec<Response>>()
            }));
            match batch {
                Ok(resps) => {
                    for (&i, resp) in group.iter().zip(resps) {
                        answers[i] = Some(resp);
                    }
                }
                Err(_) => {
                    stats.panics.fetch_add(1, Ordering::Relaxed);
                    for &i in group {
                        answers[i] =
                            Some(Response::Error("serve path panicked during classify".into()));
                    }
                }
            }
        }
        for (i, job) in jobs.into_iter().enumerate() {
            let resp = match answers[i].take() {
                Some(resp) => resp,
                None => match &job.req {
                    Request::CountPositive => {
                        guarded(&stats, "count", || Response::Count(rh.count_positive()))
                    }
                    Request::TopK { k } => {
                        let k = *k as usize;
                        guarded(&stats, "top_k", || Response::Ranked(rh.top_k(k)))
                    }
                    _ => Response::Error("write request reached the read lane".into()),
                },
            };
            complete(job, resp, &stats);
        }
        // fold the batch's pin-derived read counts into the registry so a
        // metrics scrape is at most one batch stale
        rh.sync_obs();
        observe_batch(&stats, &q, batch_len, t0_ns, LANE_READ);
    }
}

/// The write lane: drain a batch and apply it in arrival order, with every
/// maximal run of consecutive `Train` requests coalesced into **one**
/// `update_batch` maintenance round — the amortization the engine already
/// implements (one watermark-band pass per batch), now recovered from
/// concurrent client traffic.
fn write_lane(mut wh: WriteHandle, q: Arc<Bounded<Job>>, stats: Arc<StatsInner>, batch_max: usize) {
    while let Some(jobs) = q.pop_batch(batch_max) {
        let t0_ns = hazy_obs::now_ns();
        let batch_len = jobs.len();
        stats.write_batches.fetch_add(1, Ordering::Relaxed);
        stats.batched_writes.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        fetch_max(&stats.max_write_batch, jobs.len() as u64);
        serve_writes(jobs, &stats, &mut wh);
        observe_batch(&stats, &q, batch_len, t0_ns, LANE_WRITE);
    }
}

/// The three write entry points, abstracted so the sharded write lane
/// (handle-based) and the engine lane (trait-object-based) share the
/// coalescing walk in [`serve_writes`] and its panic recovery.
trait WriteSink {
    fn apply_batch(&mut self, batch: &[hazy_learn::TrainingExample]);
    fn apply_insert(&mut self, e: Entity);
    fn apply_remove(&mut self, id: u64) -> bool;
}

impl WriteSink for WriteHandle {
    fn apply_batch(&mut self, batch: &[hazy_learn::TrainingExample]) {
        self.update_batch(batch);
    }
    fn apply_insert(&mut self, e: Entity) {
        self.insert_entity(e);
    }
    fn apply_remove(&mut self, id: u64) -> bool {
        self.remove_entity(id)
    }
}

impl WriteSink for Box<dyn DurableClassifierView + Send> {
    fn apply_batch(&mut self, batch: &[hazy_learn::TrainingExample]) {
        self.update_batch(batch);
    }
    fn apply_insert(&mut self, e: Entity) {
        self.insert_entity(e);
    }
    fn apply_remove(&mut self, id: u64) -> bool {
        self.remove_entity(id)
    }
}

/// Applies one drained write batch in arrival order with `Train` runs
/// coalesced; shared by both write-capable lanes.
fn serve_writes(jobs: Vec<Job>, stats: &StatsInner, sink: &mut impl WriteSink) {
    let mut it = jobs.into_iter().peekable();
    while let Some(job) = it.next() {
        match job.req {
            Request::Train { .. } => {
                // maximal run of consecutive Train requests → one round
                let mut run = vec![job];
                while matches!(it.peek(), Some(j) if matches!(j.req, Request::Train { .. })) {
                    run.push(it.next().expect("peeked"));
                }
                let mut examples = Vec::new();
                let mut sizes = Vec::with_capacity(run.len());
                for j in &run {
                    if let Request::Train { batch } = &j.req {
                        sizes.push(batch.len() as u64);
                        examples.extend(batch.iter().cloned());
                    }
                }
                let ok = catch_unwind(AssertUnwindSafe(|| sink.apply_batch(&examples))).is_ok();
                if !ok {
                    stats.panics.fetch_add(1, Ordering::Relaxed);
                }
                for (j, applied) in run.into_iter().zip(sizes) {
                    let resp = if ok {
                        Response::Done { applied }
                    } else {
                        Response::Error("serve path panicked during update_batch".into())
                    };
                    complete(j, resp, stats);
                }
            }
            Request::Insert { id, ref f } => {
                let e = Entity::new(id, f.clone());
                let resp = guarded(stats, "insert", || {
                    sink.apply_insert(e);
                    Response::Done { applied: 1 }
                });
                complete(job, resp, stats);
            }
            Request::Remove { id } => {
                let resp = guarded(stats, "remove", || Response::Done {
                    applied: u64::from(sink.apply_remove(id)),
                });
                complete(job, resp, stats);
            }
            _ => complete(job, Response::Error("read request reached the write lane".into()), stats),
        }
    }
}

/// The engine lane: one thread, one queue, any [`DurableClassifierView`].
/// Reads are answered from the engine in arrival order (its `read_single`
/// is stateful — lazy modes do maintenance on read, exactly as inside the
/// RDBMS); `Train` runs coalesce the same way as in the write lane.
fn engine_lane(
    mut engine: Box<dyn DurableClassifierView + Send>,
    q: Arc<Bounded<Job>>,
    stats: Arc<StatsInner>,
    batch_max: usize,
) {
    while let Some(jobs) = q.pop_batch(batch_max) {
        let t0_ns = hazy_obs::now_ns();
        let batch_len = jobs.len();
        stats.read_batches.fetch_add(1, Ordering::Relaxed);
        stats.batched_reads.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        fetch_max(&stats.max_read_batch, jobs.len() as u64);
        // split serving: reads answered inline, writes via the shared walk
        let mut writes = Vec::new();
        for job in jobs {
            match &job.req {
                Request::Classify { id } => {
                    let id = *id;
                    let resp =
                        guarded(&stats, "classify", || Response::Label(engine.read_single(id)));
                    complete(job, resp, &stats);
                }
                Request::CountPositive => {
                    let resp =
                        guarded(&stats, "count", || Response::Count(engine.count_positive()));
                    complete(job, resp, &stats);
                }
                Request::TopK { k } => {
                    let k = *k as usize;
                    let resp = guarded(&stats, "top_k", || Response::Ranked(engine.top_k(k)));
                    complete(job, resp, &stats);
                }
                _ => writes.push(job),
            }
        }
        if !writes.is_empty() {
            serve_writes(writes, &stats, &mut engine);
        }
        observe_batch(&stats, &q, batch_len, t0_ns, LANE_ENGINE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_hint_is_monotone_in_queue_depth() {
        // fixed drain rate: a deeper queue never hints a shorter wait
        let drain = 750_000; // 0.75 ms per queued request
        let mut prev = 0;
        for depth in [0u64, 1, 2, 3, 10, 100, 1_000, 10_000, 1 << 40, u64::MAX] {
            let hint = estimate_retry_after_ms(depth, drain, 1);
            assert!(hint >= prev, "depth {depth} hinted {hint} < {prev}");
            prev = hint;
        }
    }

    #[test]
    fn retry_hint_tracks_drain_rate_and_clamps() {
        // 100 queued × 2ms each = 200ms of backlog
        assert_eq!(estimate_retry_after_ms(100, 2_000_000, 1), 200);
        // sub-millisecond backlog rounds up, never to zero
        assert_eq!(estimate_retry_after_ms(1, 10_000, 1), 1);
        // unmeasured drain rate falls back to the configured floor
        assert_eq!(estimate_retry_after_ms(1_000_000, 0, 7), 7);
        // the hint never exceeds the 60 s ceiling
        assert_eq!(estimate_retry_after_ms(u64::MAX, u64::MAX, 1), 60_000);
        // a floor above the ceiling wins (degenerate config, still total)
        assert_eq!(estimate_retry_after_ms(10, 1_000_000, 100_000), 100_000);
    }

    #[test]
    fn ewma_converges_toward_observed_drain() {
        let stats = StatsInner::default();
        // first sample seeds the EWMA directly
        stats.observe_drain(10, 10_000);
        assert_eq!(stats.drain_ns_per_req.load(Ordering::Relaxed), 1_000);
        // repeated faster batches pull the estimate down toward 100ns
        for _ in 0..64 {
            stats.observe_drain(10, 1_000);
        }
        let est = stats.drain_ns_per_req.load(Ordering::Relaxed);
        assert!(est < 200, "EWMA failed to converge: {est}");
        // empty batches are ignored
        stats.observe_drain(0, 999_999);
        assert_eq!(stats.drain_ns_per_req.load(Ordering::Relaxed), est);
    }
}
