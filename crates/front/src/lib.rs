//! # hazy-front — the batched serving front end
//!
//! The paper's argument is that incremental maintenance makes
//! classification cheap enough to live *inside* the data system; this
//! crate is the layer that lets the outside world use it without giving
//! the amortization back. Three pieces:
//!
//! - **Wire protocol** ([`proto`]): six request / six response opcodes in
//!   length-framed messages, total decoding (garbage never panics), usable
//!   in-process or over TCP.
//! - **Admission + batching** ([`Front`]): every request enters a
//!   *bounded* queue or is shed with [`Response::Rejected`] — overload is
//!   an explicit, client-visible signal, never unbounded memory or tail
//!   latency. The serving lanes drain whatever has queued in one sweep:
//!   `Classify` requests group per shard and answer from **one** pinned
//!   epoch per shard per batch (PR 8's three-atomic snapshot reads),
//!   consecutive `Train` requests coalesce into **one** `update_batch`
//!   maintenance round (the paper's batched eager/lazy strategy, PR 2).
//!   Under load, batching happens for free — no batching delay taxes the
//!   unloaded path. Lane panics are caught, answered as
//!   [`Response::Error`], and counted; the front keeps serving.
//! - **TCP adapter** ([`TcpFront`]): a hand-rolled nonblocking poll loop
//!   (vendored-deps constraint — no async runtime) with per-connection
//!   pipelining; [`TcpClient`] is the matching blocking client.
//!
//! In-process round-trip:
//!
//! ```
//! use hazy_core::{Architecture, Mode, ViewBuilder};
//! use hazy_front::{Front, FrontConfig, Request, Response};
//! use hazy_linalg::FeatureVec;
//! use hazy_serve::ShardedView;
//!
//! let builder = ViewBuilder::new(Architecture::HazyMem, Mode::Eager).dim(2);
//! let view = ShardedView::build(&builder, 4, Vec::new(), &[]);
//! let front = Front::serve_sharded(view, FrontConfig::default());
//! let client = front.handle();
//!
//! // a new entity arrives, is classified on insert, and reads back
//! let f = FeatureVec::dense(vec![1.0, 0.5]);
//! assert_eq!(client.call(Request::Insert { id: 7, f }), Response::Done { applied: 1 });
//! assert!(matches!(client.call(Request::Classify { id: 7 }), Response::Label(Some(_))));
//! assert_eq!(client.call(Request::Classify { id: 99 }), Response::Label(None));
//!
//! let stats = front.shutdown();
//! assert_eq!(stats.admitted, 3);
//! assert_eq!(stats.completed, 3);
//! ```

#![warn(missing_docs)]

mod front;
pub mod proto;
mod queue;
mod tcp;

pub use front::{estimate_retry_after_ms, Front, FrontConfig, FrontHandle, FrontStats, Ticket};
pub use proto::{Request, Response};
pub use tcp::{TcpClient, TcpFront};
