//! The wire protocol: a small, length-framed binary encoding of serving
//! requests and responses.
//!
//! One frame is a little-endian `u32` payload length followed by the
//! payload; a payload is an opcode byte followed by opcode-specific
//! fields. Feature vectors reuse the storage-tier tuple encoding
//! ([`hazy_linalg::encode_fvec`]), so a front-end `TRAIN` frame carries
//! exactly the bytes the scratch table would store.
//!
//! Decoding is total: any malformed, truncated, or over-long input yields
//! `None` (the TCP adapter then drops the connection) — never a panic.
//! Round-trip identity is property-tested in this module.

use hazy_core::Entity;
use hazy_learn::{Label, TrainingExample};
use hazy_linalg::{decode_fvec, encode_fvec, wire, FeatureVec};

/// Hard ceiling on one frame's payload, defending the server against a
/// garbage length prefix (a connection streaming noise must not make the
/// poll loop allocate gigabytes before the CRC-less payload fails to
/// decode).
pub const MAX_FRAME: usize = 16 << 20;

/// A serving request, as submitted by in-process clients and decoded from
/// TCP frames.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `Single Entity` read: the current label of entity `id`.
    Classify {
        /// Entity key.
        id: u64,
    },
    /// `All Members` count of positively classified entities.
    CountPositive,
    /// Ranked read: top `k` entities by margin.
    TopK {
        /// Result size bound.
        k: u32,
    },
    /// Training examples to fold into the model — the write lane coalesces
    /// consecutive `Train` requests into one `update_batch` maintenance
    /// round.
    Train {
        /// The examples, in arrival order.
        batch: Vec<TrainingExample>,
    },
    /// New-entity arrival (classified on insert).
    Insert {
        /// Entity key.
        id: u64,
        /// Feature vector.
        f: FeatureVec,
    },
    /// Entity retraction.
    Remove {
        /// Entity key.
        id: u64,
    },
    /// Observability scrape: a Prometheus-style text dump of every
    /// registered metric. Answered at admission, bypassing both queues,
    /// so the serving plane stays scrapeable even when saturated.
    MetricsDump,
}

impl Request {
    /// `true` for requests the read lane serves from pinned epochs.
    pub fn is_read(&self) -> bool {
        matches!(self, Request::Classify { .. } | Request::CountPositive | Request::TopK { .. })
    }
}

/// A serving response. Every submitted request gets exactly one.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Classify`] (`None`: no such entity).
    Label(Option<Label>),
    /// Answer to [`Request::CountPositive`].
    Count(u64),
    /// Answer to [`Request::TopK`].
    Ranked(Vec<(u64, f64)>),
    /// A write was applied; `applied` counts the training examples (or 1
    /// for an insert, 1/0 for a remove that did/did not find its entity).
    Done {
        /// Operations applied.
        applied: u64,
    },
    /// Admission control shed the request: the bounded queue was full.
    /// The request was **not** executed; retry after the hinted delay.
    Rejected {
        /// Client backoff hint in milliseconds.
        retry_after_ms: u32,
    },
    /// The serve path failed structurally (e.g. a panic recovered inside
    /// the batcher). The request may not have been applied; the front end
    /// keeps serving.
    Error(String),
    /// Answer to [`Request::MetricsDump`]: Prometheus-style text.
    Metrics(String),
}

const REQ_CLASSIFY: u8 = 1;
const REQ_COUNT: u8 = 2;
const REQ_TOP_K: u8 = 3;
const REQ_TRAIN: u8 = 4;
const REQ_INSERT: u8 = 5;
const REQ_REMOVE: u8 = 6;
const REQ_METRICS: u8 = 7;

const RESP_LABEL: u8 = 1;
const RESP_COUNT: u8 = 2;
const RESP_RANKED: u8 = 3;
const RESP_DONE: u8 = 4;
const RESP_REJECTED: u8 = 5;
const RESP_ERROR: u8 = 6;
const RESP_METRICS: u8 = 7;

/// Encodes one request payload (no frame header).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Classify { id } => {
            out.push(REQ_CLASSIFY);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Request::CountPositive => out.push(REQ_COUNT),
        Request::TopK { k } => {
            out.push(REQ_TOP_K);
            out.extend_from_slice(&k.to_le_bytes());
        }
        Request::Train { batch } => {
            out.push(REQ_TRAIN);
            out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
            for ex in batch {
                out.extend_from_slice(&ex.id.to_le_bytes());
                out.push(ex.y as u8);
                encode_fvec(&ex.f, out);
            }
        }
        Request::Insert { id, f } => {
            out.push(REQ_INSERT);
            out.extend_from_slice(&id.to_le_bytes());
            encode_fvec(f, out);
        }
        Request::Remove { id } => {
            out.push(REQ_REMOVE);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Request::MetricsDump => out.push(REQ_METRICS),
    }
}

/// Decodes one request payload; `None` on any malformation.
pub fn decode_request(b: &mut &[u8]) -> Option<Request> {
    match wire::take_u8(b)? {
        REQ_CLASSIFY => Some(Request::Classify { id: wire::take_u64(b)? }),
        REQ_COUNT => Some(Request::CountPositive),
        REQ_TOP_K => Some(Request::TopK { k: wire::take_u32(b)? }),
        REQ_TRAIN => {
            let n = wire::take_u32(b)? as usize;
            // each example is at least id(8) + label(1) + fvec tag(1)
            if n > b.len() / 10 + 1 {
                return None;
            }
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                let id = wire::take_u64(b)?;
                let y = wire::take_u8(b)? as i8;
                if y != 1 && y != -1 {
                    return None;
                }
                let f = decode_fvec(b)?;
                batch.push(TrainingExample::new(id, f, y));
            }
            Some(Request::Train { batch })
        }
        REQ_INSERT => {
            let id = wire::take_u64(b)?;
            let f = decode_fvec(b)?;
            Some(Request::Insert { id, f })
        }
        REQ_REMOVE => Some(Request::Remove { id: wire::take_u64(b)? }),
        REQ_METRICS => Some(Request::MetricsDump),
        _ => None,
    }
}

/// Encodes one response payload (no frame header).
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Label(l) => {
            out.push(RESP_LABEL);
            match l {
                Some(y) => {
                    out.push(1);
                    out.push(*y as u8);
                }
                None => out.push(0),
            }
        }
        Response::Count(c) => {
            out.push(RESP_COUNT);
            out.extend_from_slice(&c.to_le_bytes());
        }
        Response::Ranked(rows) => {
            out.push(RESP_RANKED);
            out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            for (id, margin) in rows {
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&margin.to_le_bytes());
            }
        }
        Response::Done { applied } => {
            out.push(RESP_DONE);
            out.extend_from_slice(&applied.to_le_bytes());
        }
        Response::Rejected { retry_after_ms } => {
            out.push(RESP_REJECTED);
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        Response::Error(msg) => {
            out.push(RESP_ERROR);
            let bytes = msg.as_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        Response::Metrics(text) => {
            out.push(RESP_METRICS);
            let bytes = text.as_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
    }
}

/// Decodes one response payload; `None` on any malformation.
pub fn decode_response(b: &mut &[u8]) -> Option<Response> {
    match wire::take_u8(b)? {
        RESP_LABEL => match wire::take_u8(b)? {
            0 => Some(Response::Label(None)),
            1 => Some(Response::Label(Some(wire::take_u8(b)? as i8))),
            _ => None,
        },
        RESP_COUNT => Some(Response::Count(wire::take_u64(b)?)),
        RESP_RANKED => {
            let n = wire::take_u32(b)? as usize;
            if n > b.len() / 16 + 1 {
                return None;
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push((wire::take_u64(b)?, wire::take_f64(b)?));
            }
            Some(Response::Ranked(rows))
        }
        RESP_DONE => Some(Response::Done { applied: wire::take_u64(b)? }),
        RESP_REJECTED => Some(Response::Rejected { retry_after_ms: wire::take_u32(b)? }),
        RESP_ERROR => {
            let len = wire::take_u32(b)? as usize;
            let bytes = wire::take_bytes(b, len)?;
            Some(Response::Error(String::from_utf8(bytes.to_vec()).ok()?))
        }
        RESP_METRICS => {
            let len = wire::take_u32(b)? as usize;
            let bytes = wire::take_bytes(b, len)?;
            Some(Response::Metrics(String::from_utf8(bytes.to_vec()).ok()?))
        }
        _ => None,
    }
}

/// Appends `payload` as one frame (length prefix + bytes) to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Frames decode incrementally off a connection buffer: `None` until a
/// whole frame is buffered, `Some(Err(()))` when the length prefix is
/// over [`MAX_FRAME`] (drop the connection), `Some(Ok(...))` with the
/// payload range otherwise. The caller consumes `4 + len` bytes.
pub fn peek_frame(buf: &[u8]) -> Option<Result<std::ops::Range<usize>, ()>> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Some(Err(()));
    }
    if buf.len() < 4 + len {
        return None;
    }
    Some(Ok(4..4 + len))
}

/// Builds an [`Entity`] from an [`Request::Insert`]'s fields (the engine
/// type the backend speaks).
pub fn insert_entity(id: u64, f: FeatureVec) -> Entity {
    Entity::new(id, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_fvec() -> impl Strategy<Value = FeatureVec> {
        prop_oneof![
            proptest::collection::vec(any::<f32>().prop_map(|x| x % 100.0), 1..8)
                .prop_map(FeatureVec::dense),
            proptest::collection::vec((0u32..64, any::<f32>().prop_map(|x| x % 100.0)), 0..6)
                .prop_map(|pairs| FeatureVec::sparse(64, pairs)),
        ]
    }

    fn arb_request() -> impl Strategy<Value = Request> {
        prop_oneof![
            any::<u64>().prop_map(|id| Request::Classify { id }),
            Just(Request::CountPositive),
            any::<u32>().prop_map(|k| Request::TopK { k }),
            proptest::collection::vec((any::<u64>(), arb_fvec(), any::<bool>()), 0..4).prop_map(
                |rows| Request::Train {
                    batch: rows
                        .into_iter()
                        .map(|(id, f, y)| TrainingExample::new(id, f, if y { 1 } else { -1 }))
                        .collect(),
                }
            ),
            (any::<u64>(), arb_fvec()).prop_map(|(id, f)| Request::Insert { id, f }),
            any::<u64>().prop_map(|id| Request::Remove { id }),
            Just(Request::MetricsDump),
        ]
    }

    fn arb_response() -> impl Strategy<Value = Response> {
        prop_oneof![
            prop_oneof![Just(None), Just(Some(1i8)), Just(Some(-1i8))].prop_map(Response::Label),
            any::<u64>().prop_map(Response::Count),
            proptest::collection::vec((any::<u64>(), any::<f64>().prop_map(|x| x % 1e9)), 0..5)
                .prop_map(Response::Ranked),
            any::<u64>().prop_map(|applied| Response::Done { applied }),
            any::<u32>().prop_map(|retry_after_ms| Response::Rejected { retry_after_ms }),
            "[a-z ]{0,12}".prop_map(Response::Error),
            "[a-z_ \\n]{0,24}".prop_map(Response::Metrics),
        ]
    }

    proptest! {
        // round trips are checked by re-encoding: bitwise fidelity, which
        // (unlike `==`) also holds for NaN payloads in feature vectors
        #[test]
        fn request_round_trips(req in arb_request()) {
            let mut buf = Vec::new();
            encode_request(&req, &mut buf);
            let mut b = buf.as_slice();
            let decoded = decode_request(&mut b).expect("well-formed request decodes");
            prop_assert!(b.is_empty(), "no trailing bytes");
            let mut buf2 = Vec::new();
            encode_request(&decoded, &mut buf2);
            prop_assert_eq!(buf, buf2);
        }

        #[test]
        fn response_round_trips(resp in arb_response()) {
            let mut buf = Vec::new();
            encode_response(&resp, &mut buf);
            let mut b = buf.as_slice();
            let decoded = decode_response(&mut b).expect("well-formed response decodes");
            prop_assert!(b.is_empty(), "no trailing bytes");
            let mut buf2 = Vec::new();
            encode_response(&decoded, &mut buf2);
            prop_assert_eq!(buf, buf2);
        }

        #[test]
        fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut b = bytes.as_slice();
            let _ = decode_request(&mut b);
            let mut b = bytes.as_slice();
            let _ = decode_response(&mut b);
        }
    }

    #[test]
    fn frames_decode_incrementally() {
        let mut wire_bytes = Vec::new();
        let mut payload = Vec::new();
        encode_request(&Request::Classify { id: 7 }, &mut payload);
        write_frame(&mut wire_bytes, &payload);
        // no prefix yet
        assert_eq!(peek_frame(&wire_bytes[..3]), None);
        // prefix but truncated payload
        assert_eq!(peek_frame(&wire_bytes[..4]), None);
        let range = peek_frame(&wire_bytes).expect("whole frame").expect("sane length");
        let mut b = &wire_bytes[range];
        assert_eq!(decode_request(&mut b), Some(Request::Classify { id: 7 }));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert_eq!(peek_frame(&buf), Some(Err(())));
    }
}
