//! The bounded admission queue: the single point where backpressure is
//! decided.
//!
//! A front end that buffers without bound converts overload into
//! unbounded memory growth and unbounded tail latency; this queue instead
//! **rejects at the door**. [`Bounded::try_push`] either admits a request
//! (depth strictly below the cap, so depth never exceeds it — the
//! invariant the backpressure property test pins) or returns it to the
//! caller for an immediate `Rejected { retry_after_ms }` response. The
//! batcher side drains with [`Bounded::pop_batch`]: it blocks while the
//! queue is empty, then takes *everything buffered* up to the batch cap in
//! one mutex acquisition — under load, coalescing happens for free,
//! without a batching delay that would tax the unloaded latency.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Largest depth ever observed right after an admit — the queue's own
    /// ledger, maintained under the same lock as the depth itself, so the
    /// bound proof does not depend on racy external sampling.
    high_water: usize,
}

/// A bounded MPMC queue with admission-or-reject semantics. Hand-rolled on
/// a mutex + condvar (the vendored `crossbeam` stand-in only ships
/// unbounded channels, and admission control needs the bound enforced
/// atomically with the push).
pub(crate) struct Bounded<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> Bounded<T> {
    pub(crate) fn new(cap: usize) -> Bounded<T> {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                high_water: 0,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Recovers the guard even if a holder panicked: the state is a plain
    /// FIFO whose invariants hold between every push/pop, so poisoning
    /// carries no information — and the serve path must stay panic-free.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits `item` unless the queue is at capacity or closed; on
    /// rejection the item comes straight back so the caller can answer
    /// `Rejected` without ever cloning a request.
    pub(crate) fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.lock();
        if s.closed || s.items.len() >= self.cap {
            return Err(item);
        }
        s.items.push_back(item);
        s.high_water = s.high_water.max(s.items.len());
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is queued (or the queue is closed),
    /// then drains up to `max` items in arrival order. `None` means closed
    /// *and* fully drained — the batcher's exit condition, which by
    /// construction leaves no admitted request unanswered.
    pub(crate) fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut s = self.lock();
        loop {
            if !s.items.is_empty() {
                let take = s.items.len().min(max.max(1));
                return Some(s.items.drain(..take).collect());
            }
            if s.closed {
                return None;
            }
            s = self
                .ready
                .wait_timeout(s, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Closes the queue: future pushes are rejected, and `pop_batch`
    /// returns `None` once the backlog is drained.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current depth (diagnostic; the authoritative bound lives in
    /// `try_push`).
    pub(crate) fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Largest depth ever reached, maintained under the queue lock.
    pub(crate) fn high_water(&self) -> usize {
        self.lock().high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_beyond_cap_and_drains_in_order() {
        let q = Bounded::new(3);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.try_push(4), Err(4));
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.pop_batch(2), Some(vec![1, 2]));
        assert!(q.try_push(5).is_ok());
        assert_eq!(q.pop_batch(16), Some(vec![3, 5]));
    }

    #[test]
    fn close_drains_backlog_then_signals_exit() {
        let q = Bounded::new(8);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue must not admit");
        assert_eq!(q.pop_batch(4), Some(vec![7]), "backlog survives close");
        assert_eq!(q.pop_batch(4), None, "drained + closed = exit");
    }

    #[test]
    fn pop_batch_wakes_on_push_across_threads() {
        let q = Arc::new(Bounded::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop_batch(4));
        std::thread::sleep(Duration::from_millis(10));
        q.try_push(42).unwrap();
        assert_eq!(popper.join().unwrap(), Some(vec![42]));
    }

    #[test]
    fn queue_survives_a_panicking_holder() {
        let q = Arc::new(Bounded::new(4));
        let q2 = Arc::clone(&q);
        // poison the mutex by panicking mid-push (the guard is held inside
        // try_push; panic in a thread that owns the lock via depth())
        let h = std::thread::spawn(move || {
            let _guard = q2.state.lock().unwrap();
            panic!("holder dies");
        });
        assert!(h.join().is_err());
        // the queue still admits, drains, and reports — no poison panic
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.depth(), 1);
        assert_eq!(q.pop_batch(1), Some(vec![1]));
    }
}
