//! The TCP adapter: the wire protocol of [`crate::proto`] over real
//! sockets, served by a hand-rolled nonblocking poll loop (one thread,
//! `O(connections)` per sweep — the vendored-deps constraint rules out an
//! async runtime, and the front end's concurrency already lives in the
//! lanes, so the adapter only has to shuttle bytes).
//!
//! Per-connection pipelining works the obvious way: requests are answered
//! in the order they arrived on that connection (a FIFO of [`Ticket`]s
//! preserves the order even though the lanes complete out of order), so a
//! client may stream many frames before reading any response. Framing
//! violations — an oversized length prefix or an undecodable payload —
//! close the connection; backpressure does not (the client gets a
//! `Rejected` frame and decides when to retry).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::front::{FrontHandle, Ticket};
use crate::proto::{
    decode_request, decode_response, encode_request, encode_response, peek_frame, write_frame,
    Request, Response,
};

/// One accepted connection's state in the poll loop.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet framed.
    inbuf: Vec<u8>,
    /// Encoded response frames not yet written.
    outbuf: Vec<u8>,
    /// In-flight requests, in arrival order — responses go out in this
    /// order regardless of lane completion order.
    pending: std::collections::VecDeque<Ticket>,
    dead: bool,
}

impl Conn {
    /// Pulls available bytes; marks the connection dead on EOF or error.
    fn fill(&mut self) {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF: the peer is done sending; stay alive until the
                    // pending responses flush, unless nothing is in flight
                    if self.pending.is_empty() && self.outbuf.is_empty() {
                        self.dead = true;
                    }
                    return;
                }
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Frames + decodes buffered requests and submits them to the front.
    fn submit_frames(&mut self, handle: &FrontHandle) {
        loop {
            match peek_frame(&self.inbuf) {
                None => return,
                Some(Err(())) => {
                    self.dead = true;
                    return;
                }
                Some(Ok(range)) => {
                    let end = range.end;
                    let mut payload = &self.inbuf[range];
                    match decode_request(&mut payload) {
                        Some(req) if payload.is_empty() => {
                            self.pending.push_back(handle.submit(req));
                        }
                        // undecodable or trailing garbage: protocol error
                        _ => {
                            self.dead = true;
                            return;
                        }
                    }
                    self.inbuf.drain(..end);
                }
            }
        }
    }

    /// Encodes every completed head-of-line response into the out buffer.
    fn collect_responses(&mut self) {
        let mut scratch = Vec::new();
        while let Some(front) = self.pending.front() {
            match front.try_take() {
                None => return,
                Some(resp) => {
                    self.pending.pop_front();
                    scratch.clear();
                    encode_response(&resp, &mut scratch);
                    write_frame(&mut self.outbuf, &scratch);
                }
            }
        }
    }

    /// Writes as much of the out buffer as the socket accepts.
    fn flush(&mut self) {
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.outbuf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }
}

/// A TCP listener serving a [`FrontHandle`]. Bind with
/// [`TcpFront::bind`]; the poll loop runs on its own thread until
/// [`TcpFront::shutdown`].
pub struct TcpFront {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    looper: Option<JoinHandle<()>>,
}

impl TcpFront {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the poll loop.
    pub fn bind(addr: impl ToSocketAddrs, handle: FrontHandle) -> std::io::Result<TcpFront> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let looper = std::thread::Builder::new()
            .name("hazy-front-tcp".into())
            .spawn(move || poll_loop(listener, handle, stop2))
            .expect("spawn tcp poll loop");
        Ok(TcpFront { addr, stop, looper: Some(looper) })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, lets in-flight responses flush, and joins the
    /// poll thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.looper.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpFront {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.looper.take() {
            let _ = h.join();
        }
    }
}

fn poll_loop(listener: TcpListener, handle: FrontHandle, stop: Arc<AtomicBool>) {
    let mut conns: Vec<Conn> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let mut progressed = false;
        // accept everything waiting
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    conns.push(Conn {
                        stream,
                        inbuf: Vec::new(),
                        outbuf: Vec::new(),
                        pending: std::collections::VecDeque::new(),
                        dead: false,
                    });
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        // sweep every connection: read → frame/submit → collect → write
        for conn in conns.iter_mut() {
            let before_in = conn.inbuf.len();
            let before_out = conn.outbuf.len();
            let before_pending = conn.pending.len();
            conn.fill();
            conn.submit_frames(&handle);
            conn.collect_responses();
            conn.flush();
            progressed |= conn.inbuf.len() != before_in
                || conn.outbuf.len() != before_out
                || conn.pending.len() != before_pending;
        }
        conns.retain(|c| !c.dead);
        if !progressed {
            // idle: park briefly instead of spinning a core
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    // best-effort final flush so shutdown does not eat completed responses
    for conn in conns.iter_mut() {
        conn.collect_responses();
        conn.flush();
    }
}

/// A minimal blocking client for the wire protocol — what the bench's
/// simulated clients and the tests speak.
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpClient {
    /// Connects to a [`TcpFront`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient { stream })
    }

    /// Sends one request frame without waiting (pipelining).
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        let mut payload = Vec::new();
        encode_request(req, &mut payload);
        let mut frame = Vec::new();
        write_frame(&mut frame, &payload);
        self.stream.write_all(&frame)
    }

    /// Blocks for the next response frame.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let mut len = [0u8; 4];
        self.stream.read_exact(&mut len)?;
        let n = u32::from_le_bytes(len) as usize;
        if n > crate::proto::MAX_FRAME {
            return Err(std::io::Error::new(ErrorKind::InvalidData, "oversized frame"));
        }
        let mut payload = vec![0u8; n];
        self.stream.read_exact(&mut payload)?;
        let mut b = payload.as_slice();
        match decode_response(&mut b) {
            Some(resp) if b.is_empty() => Ok(resp),
            _ => Err(std::io::Error::new(ErrorKind::InvalidData, "undecodable response")),
        }
    }

    /// One synchronous round-trip.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(req)?;
        self.recv()
    }
}
