//! The admission-control property: under **any** arrival pattern —
//! whatever mix of reads and writes, however bursty, from however many
//! client threads — the front end's queues never exceed their configured
//! bounds, and every submitted request resolves to exactly one response
//! (admitted requests are answered, shed requests get `Rejected`; nothing
//! is dropped, nothing is answered twice).

use hazy_core::{Architecture, Entity, Mode, ViewBuilder};
use hazy_front::{Front, FrontConfig, Request, Response};
use hazy_learn::TrainingExample;
use hazy_linalg::FeatureVec;
use hazy_serve::ShardedView;
use proptest::prelude::*;
use proptest::test_runner::Config;

fn dense2(a: f32, b: f32) -> FeatureVec {
    FeatureVec::dense(vec![a, b])
}

/// Decodes one arrival-pattern byte into a request (a compact encoding so
/// the strategy explores read/write interleavings cheaply).
fn nth_request(code: u8, i: usize) -> Request {
    match code % 5 {
        0 => Request::Classify { id: (i as u64 * 13) % 64 },
        1 => Request::CountPositive,
        2 => Request::TopK { k: 3 },
        3 => Request::Train {
            batch: vec![TrainingExample::new(
                0,
                dense2((i % 17) as f32 / 17.0 - 0.5, 0.25),
                if i.is_multiple_of(2) { 1 } else { -1 },
            )],
        },
        _ => Request::Remove { id: 1_000_000 + i as u64 },
    }
}

proptest! {
    #![proptest_config(Config::with_cases(48))]

    #[test]
    fn any_arrival_pattern_respects_bounds_and_answers_exactly_once(
        pattern in proptest::collection::vec(any::<u8>(), 0..160),
        read_cap in 1usize..6,
        write_cap in 1usize..6,
        batch_max in 1usize..5,
        clients in 1usize..4,
    ) {
        let entities: Vec<Entity> =
            (0..64).map(|id| Entity::new(id, dense2(id as f32 / 64.0 - 0.5, 0.1))).collect();
        let builder = ViewBuilder::new(Architecture::HazyMem, Mode::Eager).dim(2);
        let view = ShardedView::build(&builder, 2, entities, &[]);
        let cfg = FrontConfig {
            read_queue: read_cap,
            write_queue: write_cap,
            batch_max,
            retry_after_ms: 1,
        };
        let front = Front::serve_sharded(view, cfg);

        // fan the pattern out over `clients` submitting threads: each
        // submits its slice as fast as it can and waits out its tickets
        let mut rejected = 0u64;
        let mut answered = 0u64;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let client = front.handle();
                    let slice: Vec<(usize, u8)> = pattern
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % clients == c)
                        .map(|(i, &b)| (i, b))
                        .collect();
                    s.spawn(move || {
                        let tickets: Vec<_> = slice
                            .into_iter()
                            .map(|(i, code)| client.submit(nth_request(code, i)))
                            .collect();
                        let (mut rej, mut ans) = (0u64, 0u64);
                        for t in tickets {
                            match t.wait() {
                                Response::Rejected { .. } => rej += 1,
                                _ => ans += 1,
                            }
                        }
                        (rej, ans)
                    })
                })
                .collect();
            for h in handles {
                let (rej, ans) = h.join().expect("client thread");
                rejected += rej;
                answered += ans;
            }
        });

        let stats = front.shutdown();
        let total = pattern.len() as u64;
        // every submission resolved to exactly one response
        prop_assert_eq!(rejected + answered, total);
        // the front's own ledger agrees with what the clients saw
        prop_assert_eq!(stats.shed, rejected);
        prop_assert_eq!(stats.admitted, answered);
        prop_assert_eq!(stats.completed, stats.admitted, "no admitted request dropped");
        // the bound held at every instant (high-water is maintained under
        // the queue lock, not sampled)
        prop_assert!(
            stats.read_queue_high_water <= read_cap as u64,
            "read queue exceeded its bound: {} > {}", stats.read_queue_high_water, read_cap
        );
        prop_assert!(
            stats.write_queue_high_water <= write_cap as u64,
            "write queue exceeded its bound: {} > {}", stats.write_queue_high_water, write_cap
        );
        // quiescent after shutdown: nothing left buffered
        prop_assert_eq!(stats.read_queue_depth, 0);
        prop_assert_eq!(stats.write_queue_depth, 0);
        prop_assert_eq!(stats.panics_recovered, 0);
        prop_assert_eq!(stats.errors, 0);
    }
}
