//! The rdbms → front route: a view declared and trained in SQL is detached
//! from the catalog (`Db::detach_view_engine`) and served behind the front
//! end (`Front::serve_engine`) — same learned model, same entity table,
//! every answer identical to the pre-detach SELECTs.

use hazy_front::{Front, FrontConfig, Request, Response};
use hazy_rdbms::{Db, DbError, QueryResult};

/// The crate's canonical toy corpus: database papers vs biology papers.
fn trained_db() -> Db {
    let mut db = Db::new();
    db.execute("CREATE TABLE Papers (id INT PRIMARY KEY, title TEXT)").unwrap();
    db.execute("CREATE TABLE Paper_Area (label TEXT)").unwrap();
    db.execute("CREATE TABLE Example_Papers (id INT, label TEXT)").unwrap();
    db.execute("INSERT INTO Paper_Area VALUES ('DB')").unwrap();
    db.execute("INSERT INTO Paper_Area VALUES ('NonDB')").unwrap();
    for (id, title) in [
        (1, "database systems transactions storage"),
        (2, "query optimization database index"),
        (3, "protein folding biology cells"),
        (4, "genome biology dna sequencing"),
        (5, "transactions concurrency database"),
        (6, "cells biology microscopy imaging"),
    ] {
        db.execute(&format!("INSERT INTO Papers VALUES ({id}, '{title}')")).unwrap();
    }
    db
}

fn create_view(db: &mut Db, extra: &str) {
    db.execute(&format!(
        "CREATE CLASSIFICATION VIEW Labeled_Papers KEY id \
         ENTITIES FROM Papers KEY id \
         LABELS FROM Paper_Area LABEL label \
         EXAMPLES FROM Example_Papers KEY id LABEL label \
         FEATURE FUNCTION tf_bag_of_words {extra}"
    ))
    .unwrap();
}

fn teach(db: &mut Db, rounds: usize) {
    for _ in 0..rounds {
        for (id, l) in [(1, "DB"), (3, "NonDB"), (2, "DB"), (4, "NonDB"), (5, "DB"), (6, "NonDB")] {
            db.execute(&format!("INSERT INTO Example_Papers VALUES ({id}, '{l}')")).unwrap();
        }
    }
}

#[test]
fn detached_view_serves_identical_answers_through_the_front() {
    let mut db = trained_db();
    create_view(&mut db, "USING SVM");
    teach(&mut db, 30);

    // ground truth straight from SQL, before the detach
    let expected: Vec<(u64, i8)> = (1..=6)
        .map(|id| {
            match db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap()
            {
                QueryResult::Label(Some(l)) => (id, l),
                other => panic!("paper {id}: {other:?}"),
            }
        })
        .collect();
    let positives = match db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1") {
        Ok(QueryResult::Count(c)) => c,
        other => panic!("{other:?}"),
    };
    assert!(positives > 0 && positives < 6, "toy corpus should split: {positives}");

    let engine = db.detach_view_engine("Labeled_Papers").expect("plain view detaches");

    // the catalog entry is gone...
    assert!(matches!(
        db.execute("SELECT class FROM Labeled_Papers WHERE id = 1"),
        Err(DbError::NoSuchView(_))
    ));
    // ...and the dataflow edges with it: base-table writes no longer
    // maintain the detached view (this insert would have classified a new
    // entity into it before the detach)
    db.execute("INSERT INTO Papers VALUES (7, 'storage engines database')").unwrap();

    // the front serves the very same engine object
    let front = Front::serve_engine(engine, FrontConfig::default());
    let client = front.handle();
    for &(id, label) in &expected {
        assert_eq!(
            client.call(Request::Classify { id }),
            Response::Label(Some(label)),
            "paper {id} answered differently behind the front"
        );
    }
    assert_eq!(client.call(Request::CountPositive), Response::Count(positives));
    // entity 7 arrived after the detach: the engine never saw it
    assert_eq!(client.call(Request::Classify { id: 7 }), Response::Label(None));

    // maintenance authority moved with the engine: retraction via the front
    assert_eq!(client.call(Request::Remove { id: 6 }), Response::Done { applied: 1 });
    assert_eq!(client.call(Request::Classify { id: 6 }), Response::Label(None));
    assert_eq!(client.call(Request::Remove { id: 6 }), Response::Done { applied: 0 });

    let stats = front.shutdown();
    assert_eq!(stats.admitted, stats.completed, "every admitted request answered");
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.panics_recovered, 0);
}

#[test]
fn durable_views_detach_with_their_durability_intact() {
    let mut db = trained_db();
    create_view(&mut db, "USING SVM DURABLE");
    teach(&mut db, 10);
    let count_before = match db.execute("SELECT COUNT(*) FROM Labeled_Papers") {
        Ok(QueryResult::Count(c)) => c,
        other => panic!("{other:?}"),
    };

    let engine = db.detach_view_engine("Labeled_Papers").expect("durable view detaches");
    let front = Front::serve_engine(engine, FrontConfig::default());
    let client = front.handle();
    let total = match client.call(Request::CountPositive) {
        Response::Count(c) => c,
        other => panic!("{other:?}"),
    };
    assert!(total <= count_before);
    front.shutdown();
}

#[test]
fn detach_of_missing_or_replicated_views_is_a_structured_error() {
    let mut db = trained_db();
    assert!(matches!(db.detach_view_engine("Ghost"), Err(DbError::NoSuchView(_))));

    create_view(&mut db, "USING SVM DURABLE REPLICAS 2");
    teach(&mut db, 2);
    assert!(
        matches!(db.detach_view_engine("Labeled_Papers"), Err(DbError::Unsupported(_))),
        "a replicated view must refuse to leave the catalog"
    );
    // and the refusal must not have damaged the catalog entry
    assert!(db.execute("SELECT COUNT(*) FROM Labeled_Papers").is_ok());
}
