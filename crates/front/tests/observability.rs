//! Cross-subsystem observability acceptance: after driving storage,
//! epochs, serving, tuning, replication, dataflow, and the front end in
//! one process, `SHOW METRICS` and `SHOW EVENTS` surface live values
//! from every layer — the same registry the TCP `MetricsDump` scrape
//! reads.
//!
//! Everything here asserts `> 0`, never exact totals: the registry is
//! process-global and other tests in this binary record into it too.

use hazy_core::{Architecture, Entity, Mode, ViewBuilder};
use hazy_front::{Front, FrontConfig, Request, Response};
use hazy_linalg::FeatureVec;
use hazy_rdbms::{Db, QueryResult};
use hazy_serve::ShardedView;

fn metric(rows: &[(String, f64)], name: &str) -> f64 {
    rows.iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("metric {name} not registered; have {} rows", rows.len()))
        .1
}

/// Drives the serve tier + front end (which pins epochs underneath).
fn drive_front() {
    let entities: Vec<Entity> = (0..40)
        .map(|id| Entity::new(id, FeatureVec::dense(vec![(id % 5) as f32 - 2.0, 0.5])))
        .collect();
    let builder = ViewBuilder::new(Architecture::HazyMem, Mode::Eager).dim(2);
    let view = ShardedView::build(&builder, 2, entities, &[]);
    let front = Front::serve_sharded(view, FrontConfig::default());
    let client = front.handle();
    for id in 0..20u64 {
        assert!(matches!(client.call(Request::Classify { id }), Response::Label(_)));
    }
    assert!(matches!(client.call(Request::CountPositive), Response::Count(_)));
    front.shutdown();
}

/// Drives the RDBMS: a durable replicated view (WAL + shipping), an
/// adaptive view (forced migration), and a dataflow-backed derived view.
fn drive_db() -> Db {
    let mut db = Db::new();
    db.execute("CREATE TABLE Papers (id INT PRIMARY KEY, title TEXT)").unwrap();
    db.execute("CREATE TABLE Paper_Area (label TEXT)").unwrap();
    db.execute("CREATE TABLE Example_Papers (id INT, label TEXT)").unwrap();
    db.execute("INSERT INTO Paper_Area VALUES ('DB')").unwrap();
    db.execute("INSERT INTO Paper_Area VALUES ('NonDB')").unwrap();
    for (id, title) in [
        (1, "database systems transactions storage"),
        (2, "query optimization database index"),
        (3, "protein folding biology cells"),
        (4, "genome biology dna sequencing"),
    ] {
        db.execute(&format!("INSERT INTO Papers VALUES ({id}, '{title}')")).unwrap();
    }
    // storage + repl: WAL-backed view with one log-shipping replica
    db.execute(
        "CREATE CLASSIFICATION VIEW RepV KEY id \
         ENTITIES FROM Papers KEY id LABELS FROM Paper_Area LABEL label \
         EXAMPLES FROM Example_Papers KEY id LABEL label \
         FEATURE FUNCTION tf_bag_of_words USING SVM DURABLE REPLICAS 1",
    )
    .unwrap();
    // tune: an adaptive view we migrate by hand
    db.execute(
        "CREATE CLASSIFICATION VIEW TuneV KEY id \
         ENTITIES FROM Papers KEY id LABELS FROM Paper_Area LABEL label \
         EXAMPLES FROM Example_Papers KEY id LABEL label \
         FEATURE FUNCTION tf_bag_of_words USING SVM ADAPTIVE",
    )
    .unwrap();
    // flow: a derived view maintained by the delta-dataflow graph
    db.execute("CREATE TABLE Points (id INT PRIMARY KEY, x FLOAT, tag TEXT)").unwrap();
    db.execute(
        "CREATE CLASSIFICATION VIEW FlowV ON (SELECT id, x, tag FROM Points) \
         LABELS ('P', 'N') FEATURE FUNCTION numeric_columns USING SVM",
    )
    .unwrap();
    for (id, x, tag) in [(1, 1.0, "'P'"), (2, -1.0, "'N'"), (3, 0.9, "NULL")] {
        db.execute(&format!("INSERT INTO Points VALUES ({id}, {x:?}, {tag})")).unwrap();
    }
    // teach both text views (each insert WAL-logs + ships on RepV)
    for _ in 0..3 {
        for (id, l) in [(1, "DB"), (3, "NonDB"), (2, "DB"), (4, "NonDB")] {
            db.execute(&format!("INSERT INTO Example_Papers VALUES ({id}, '{l}')")).unwrap();
        }
    }
    db.execute("CHECKPOINT CLASSIFICATION VIEW RepV").unwrap();
    db.execute("ALTER CLASSIFICATION VIEW TuneV SET ARCH NAIVE_MM").unwrap();
    db.execute("SELECT class FROM RepV WHERE id = 1").unwrap();
    db
}

#[test]
fn show_metrics_and_events_cover_every_subsystem() {
    drive_front();
    let mut db = drive_db();

    let QueryResult::Metrics(rows) = db.execute("SHOW METRICS").unwrap() else {
        panic!("SHOW METRICS must return metric rows")
    };
    // one live metric per subsystem: storage, core/epoch, serve, tune,
    // repl, flow, front (the PR's acceptance bar)
    for name in [
        "storage_wal_fsync_total",
        "storage_checkpoint_total",
        "core_epoch_pins_total",
        "serve_snapshot_reads_total",
        "tune_migrations_total",
        "repl_shipments_total",
        "flow_deltas_in_total",
        "front_admitted_total",
    ] {
        assert!(metric(&rows, name) > 0.0, "{name} should be live, rows: {rows:?}");
    }
    // histograms surface as percentile sub-rows
    assert!(rows.iter().any(|(n, _)| n == "front_request_ns_p99"), "histogram expansion");

    // LIKE filters by name
    let QueryResult::Metrics(filtered) = db.execute("SHOW METRICS LIKE 'repl_%'").unwrap()
    else {
        panic!("expected metric rows")
    };
    assert!(!filtered.is_empty());
    assert!(filtered.iter().all(|(n, _)| n.starts_with("repl_")), "{filtered:?}");

    // SHOW EVENTS: bounded, oldest-first, strictly increasing seqs,
    // spanning more than one subsystem
    let QueryResult::Events(events) = db.execute("SHOW EVENTS LIMIT 200").unwrap() else {
        panic!("SHOW EVENTS must return event rows")
    };
    assert!(!events.is_empty() && events.len() <= 200);
    assert!(events.windows(2).all(|w| w[0].0 < w[1].0), "seqs strictly increase");
    let kinds: std::collections::HashSet<&str> =
        events.iter().map(|(_, _, k, _)| k.as_str()).collect();
    assert!(kinds.contains("wal-fsync") || kinds.contains("wal-checkpoint"), "{kinds:?}");
    assert!(kinds.contains("migration-finish"), "{kinds:?}");
    assert!(kinds.len() >= 3, "events from several subsystems: {kinds:?}");

    let QueryResult::Events(limited) = db.execute("SHOW EVENTS LIMIT 2").unwrap() else {
        panic!("expected event rows")
    };
    assert!(limited.len() <= 2);
}
