//! Front-end serving semantics: batched answers must equal direct-view
//! answers, a panicking backend must not take the serve path down, and the
//! TCP adapter must carry the same traffic with per-connection ordering.

use hazy_core::{
    Architecture, ClassifierView, Durable, DurableClassifierView, Entity, Mode, ViewBuilder,
};
use hazy_front::{Front, FrontConfig, Request, Response, TcpClient, TcpFront};
use hazy_learn::{Label, LinearModel, TrainingExample};
use hazy_linalg::FeatureVec;
use hazy_serve::ShardedView;

fn dense2(a: f32, b: f32) -> FeatureVec {
    FeatureVec::dense(vec![a, b])
}

fn entities(n: u64) -> Vec<Entity> {
    (0..n).map(|id| Entity::new(id, dense2((id % 19) as f32 / 19.0 - 0.5, (id % 7) as f32 / 7.0 - 0.4))).collect()
}

fn train_batches(rounds: usize, per: usize) -> Vec<Vec<TrainingExample>> {
    (0..rounds)
        .map(|r| {
            (0..per)
                .map(|k| {
                    let x = ((r * per + k) % 23) as f32 / 23.0 - 0.5;
                    TrainingExample::new(0, dense2(x, -0.3 * x), if x >= 0.0 { 1 } else { -1 })
                })
                .collect()
        })
        .collect()
}

/// The front's batched, epoch-pinned, coalesced serving must be
/// observationally equivalent to driving one view directly: same labels,
/// same count, same ranked list.
#[test]
fn front_answers_equal_direct_view_answers() {
    let n = 300u64;
    let builder = ViewBuilder::new(Architecture::HazyMem, Mode::Eager).dim(2);
    let batches = train_batches(6, 4);

    // reference: a plain view driven directly
    let mut direct = ShardedView::build(&builder, 3, entities(n), &[]);
    for b in &batches {
        direct.update_batch(b);
    }
    let want: Vec<Option<Label>> = (0..n).map(|id| direct.classify(id)).collect();
    let want_count = direct.count_positive();
    let want_top = direct.top_k(10);

    // same construction, served through the front; Train tickets are all
    // submitted before any is awaited, so the write lane actually
    // exercises its coalescing path
    let view = ShardedView::build(&builder, 3, entities(n), &[]);
    let front = Front::serve_sharded(view, FrontConfig { write_queue: 64, ..Default::default() });
    let client = front.handle();
    let tickets: Vec<_> =
        batches.iter().map(|b| client.submit(Request::Train { batch: b.clone() })).collect();
    for (t, b) in tickets.into_iter().zip(&batches) {
        assert_eq!(t.wait(), Response::Done { applied: b.len() as u64 });
    }
    for id in 0..n {
        assert_eq!(
            client.call(Request::Classify { id }),
            Response::Label(want[id as usize]),
            "entity {id} diverged behind the front"
        );
    }
    assert_eq!(client.call(Request::CountPositive), Response::Count(want_count));
    match client.call(Request::TopK { k: 10 }) {
        Response::Ranked(got) => assert_eq!(got, want_top),
        other => panic!("{other:?}"),
    }

    let stats = front.shutdown();
    assert_eq!(stats.completed, stats.admitted);
    assert!(stats.batched_writes >= batches.len() as u64);
}

/// A delegating engine wrapper that panics on poisoned inputs — the fault
/// injection for the panic-free-serving guarantee.
struct PanickingView {
    inner: Box<dyn DurableClassifierView + Send>,
}

const POISON_ID: u64 = 0xDEAD;

impl ClassifierView for PanickingView {
    fn describe(&self) -> String {
        self.inner.describe()
    }
    fn mode(&self) -> Mode {
        self.inner.mode()
    }
    fn update(&mut self, ex: &TrainingExample) {
        assert!(ex.id != POISON_ID, "poisoned training example");
        self.inner.update(ex);
    }
    fn update_batch(&mut self, batch: &[TrainingExample]) {
        assert!(batch.iter().all(|ex| ex.id != POISON_ID), "poisoned training batch");
        self.inner.update_batch(batch);
    }
    fn read_single(&mut self, id: u64) -> Option<Label> {
        assert!(id != POISON_ID, "poisoned read");
        self.inner.read_single(id)
    }
    fn entity_count(&self) -> u64 {
        self.inner.entity_count()
    }
    fn count_positive(&mut self) -> u64 {
        self.inner.count_positive()
    }
    fn positive_ids(&mut self) -> Vec<u64> {
        self.inner.positive_ids()
    }
    fn top_k(&mut self, k: usize) -> Vec<(u64, f64)> {
        self.inner.top_k(k)
    }
    fn insert_entity(&mut self, e: Entity) {
        self.inner.insert_entity(e);
    }
    fn remove_entity(&mut self, id: u64) -> bool {
        self.inner.remove_entity(id)
    }
    fn model(&self) -> &LinearModel {
        self.inner.model()
    }
    fn stats(&self) -> hazy_core::ViewStats {
        self.inner.stats()
    }
    fn memory(&self) -> hazy_core::MemoryFootprint {
        self.inner.memory()
    }
    fn clock(&self) -> &hazy_storage::VirtualClock {
        self.inner.clock()
    }
}

impl Durable for PanickingView {
    fn save_state(&self, out: &mut Vec<u8>) {
        self.inner.save_state(out);
    }
}

/// A backend panic answers the affected request with `Error` and the front
/// keeps serving — on both the read path and the write path.
#[test]
fn backend_panics_are_recovered_per_request() {
    let builder = ViewBuilder::new(Architecture::NaiveMem, Mode::Eager).dim(2);
    let engine = PanickingView { inner: builder.build(entities(50), &[]) };
    let front = Front::serve_engine(Box::new(engine), FrontConfig::default());
    let client = front.handle();

    // healthy before
    assert!(matches!(client.call(Request::Classify { id: 1 }), Response::Label(Some(_))));

    // read-path panic: structured error, not a dead lane
    assert!(matches!(client.call(Request::Classify { id: POISON_ID }), Response::Error(_)));
    // the lane survived: the very next read answers
    assert!(matches!(client.call(Request::Classify { id: 2 }), Response::Label(Some(_))));

    // write-path panic inside a coalesced update_batch round
    let bad = Request::Train {
        batch: vec![TrainingExample::new(POISON_ID, dense2(0.1, 0.1), 1)],
    };
    assert!(matches!(client.call(bad), Response::Error(_)));
    // and a good write still lands afterwards
    assert_eq!(
        client.call(Request::Train {
            batch: vec![TrainingExample::new(0, dense2(0.2, -0.1), 1)],
        }),
        Response::Done { applied: 1 }
    );
    assert!(matches!(client.call(Request::CountPositive), Response::Count(_)));

    let stats = front.shutdown();
    assert_eq!(stats.panics_recovered, 2);
    assert_eq!(stats.errors, 2);
    assert_eq!(stats.completed, stats.admitted, "panics must not eat responses");
}

/// The same traffic over real sockets: pipelined requests on one
/// connection come back in order; a second connection is independent; a
/// protocol violation closes only the offending connection.
#[test]
fn tcp_round_trip_with_pipelining() {
    let builder = ViewBuilder::new(Architecture::HazyMem, Mode::Eager).dim(2);
    let view = ShardedView::build(&builder, 2, entities(40), &[]);
    let front = Front::serve_sharded(view, FrontConfig::default());
    let server = TcpFront::bind("127.0.0.1:0", front.handle()).expect("bind");
    let addr = server.local_addr();

    let mut a = TcpClient::connect(addr).expect("connect");
    // pipeline: many frames before the first read; responses in order
    for id in 0..20u64 {
        a.send(&Request::Classify { id }).expect("send");
    }
    a.send(&Request::CountPositive).expect("send");
    let mut labels = Vec::new();
    for _ in 0..20 {
        match a.recv().expect("recv") {
            Response::Label(l) => labels.push(l),
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(labels.len(), 20);
    assert!(labels.iter().all(|l| l.is_some()), "all 20 entities exist");
    assert!(matches!(a.recv().expect("recv"), Response::Count(_)));

    // an independent, interleaved connection
    let mut b = TcpClient::connect(addr).expect("connect");
    assert!(matches!(b.call(&Request::TopK { k: 5 }).expect("call"), Response::Ranked(_)));
    assert!(matches!(a.call(&Request::Classify { id: 3 }).expect("call"), Response::Label(_)));

    // a violating connection (oversized length prefix) gets closed without
    // disturbing the healthy ones
    {
        use std::io::{Read, Write};
        let mut evil = std::net::TcpStream::connect(addr).expect("connect");
        evil.write_all(&u32::MAX.to_le_bytes()).expect("write");
        let mut buf = [0u8; 1];
        // the server closes: read returns Ok(0) (EOF) or a reset error
        match evil.read(&mut buf) {
            Ok(0) => {}
            Ok(_) => panic!("server answered a violating frame"),
            Err(_) => {}
        }
    }
    assert!(matches!(a.call(&Request::Classify { id: 4 }).expect("call"), Response::Label(_)));

    server.shutdown();
    let stats = front.shutdown();
    assert_eq!(stats.completed, stats.admitted);
    assert_eq!(stats.errors, 0);
}

/// A metrics scrape is an ordinary protocol request: a `MetricsDump`
/// frame over a real socket comes back as Prometheus-style text carrying
/// live front-end counters — and it is answered at admission, so it also
/// counts in the exactly-once ledger.
#[test]
fn tcp_metrics_dump_scrapes_exposition_text() {
    let builder = ViewBuilder::new(Architecture::HazyMem, Mode::Eager).dim(2);
    let view = ShardedView::build(&builder, 2, entities(30), &[]);
    let front = Front::serve_sharded(view, FrontConfig::default());
    let server = TcpFront::bind("127.0.0.1:0", front.handle()).expect("bind");

    let mut c = TcpClient::connect(server.local_addr()).expect("connect");
    // generate some traffic so the scrape has live values to report
    for id in 0..10u64 {
        assert!(matches!(c.call(&Request::Classify { id }).expect("call"), Response::Label(_)));
    }
    let text = match c.call(&Request::MetricsDump).expect("call") {
        Response::Metrics(text) => text,
        other => panic!("{other:?}"),
    };
    assert!(text.contains("# TYPE front_admitted_total counter"), "exposition: {text}");
    let admitted: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("front_admitted_total "))
        .expect("front_admitted_total sample present")
        .parse()
        .expect("counter value parses");
    assert!(admitted >= 10, "scrape must see the classify traffic, got {admitted}");
    // reads behind this front went through the epoch-pinned serve tier
    assert!(text.contains("serve_snapshot_reads_total"), "serve metrics in scrape");

    server.shutdown();
    let stats = front.shutdown();
    assert_eq!(stats.completed, stats.admitted, "MetricsDump balances the ledger");
}
