//! Batch SVM solver: dual coordinate descent.
//!
//! The Figure 10 experiment compares Hazy's incremental SGD against a batch
//! solver run to tight convergence (the paper used SVMLight, which is
//! proprietary and unavailable here). Dual coordinate descent solves the
//! identical L1-loss SVM objective
//! `min_w ½‖w‖² + C Σ max(0, 1 − y_i(w·x_i − b))`
//! and plays the same role: equal-or-better quality at a much higher cost per
//! (re)train, which is exactly the trade-off the experiment demonstrates.
//!
//! The bias is handled by augmenting each example with a constant feature,
//! the standard trick for coordinate-descent SVMs.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::model::{LinearModel, TrainingExample};

/// Configuration for the dual coordinate-descent SVM.
#[derive(Clone, Copy, Debug)]
pub struct DcdConfig {
    /// Slack penalty `C` of the primal objective.
    pub c: f64,
    /// Convergence tolerance on the maximal projected gradient.
    pub tol: f64,
    /// Hard cap on epochs (each epoch visits every example once).
    pub max_epochs: usize,
    /// RNG seed for the per-epoch permutation.
    pub seed: u64,
}

impl Default for DcdConfig {
    fn default() -> Self {
        DcdConfig { c: 1.0, tol: 1e-4, max_epochs: 200, seed: 0x5eed }
    }
}

/// Result of a batch solve.
#[derive(Clone, Debug)]
pub struct DcdSolution {
    /// The trained model in the paper's `(w, b)` convention.
    pub model: LinearModel,
    /// Dual variables `α_i` (support vectors have `α_i > 0`).
    pub alpha: Vec<f64>,
    /// Number of epochs actually run.
    pub epochs: usize,
    /// Whether the tolerance was reached before `max_epochs`.
    pub converged: bool,
}

/// Batch dual coordinate-descent solver for the linear SVM.
pub struct DcdSvm {
    cfg: DcdConfig,
}

impl DcdSvm {
    /// Creates a solver with the given configuration.
    pub fn new(cfg: DcdConfig) -> Self {
        DcdSvm { cfg }
    }

    /// Solves the SVM over `data` and returns the model.
    ///
    /// Runtime is O(epochs × Σ nnz); all examples stay in memory, mirroring
    /// how SVMLight was run in the paper's comparison.
    pub fn solve(&self, data: &[TrainingExample]) -> DcdSolution {
        let n = data.len();
        let dim = data.iter().map(|e| e.f.dim() as usize).max().unwrap_or(0);
        // augmented weight vector: w ++ [w_bias]
        let mut w = vec![0.0f64; dim + 1];
        let mut alpha = vec![0.0f64; n];
        // Q_ii = x_i·x_i + 1 (the +1 is the constant bias feature)
        let qii: Vec<f64> = data
            .iter()
            .map(|e| e.f.iter().map(|(_, v)| f64::from(v) * f64::from(v)).sum::<f64>() + 1.0)
            .collect();

        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.cfg.seed);
        let mut epochs = 0;
        let mut converged = false;

        while epochs < self.cfg.max_epochs {
            order.shuffle(&mut rng);
            let mut max_pg = 0.0f64;
            for &i in &order {
                let ex = &data[i];
                let y = f64::from(ex.y);
                // G = y (w·x̃_i) − 1 where x̃ is the augmented example
                let wx = ex.f.dot(&w) + w[dim];
                let g = y * wx - 1.0;
                // projected gradient for the box constraint 0 ≤ α ≤ C
                let pg = if alpha[i] == 0.0 {
                    g.min(0.0)
                } else if alpha[i] >= self.cfg.c {
                    g.max(0.0)
                } else {
                    g
                };
                if pg.abs() > max_pg {
                    max_pg = pg.abs();
                }
                if pg.abs() > 1e-14 {
                    let old = alpha[i];
                    alpha[i] = (old - g / qii[i]).clamp(0.0, self.cfg.c);
                    let d = (alpha[i] - old) * y;
                    if d != 0.0 {
                        for (j, v) in ex.f.iter() {
                            w[j as usize] += d * f64::from(v);
                        }
                        w[dim] += d;
                    }
                }
            }
            epochs += 1;
            if max_pg < self.cfg.tol {
                converged = true;
                break;
            }
        }

        // Split the augmented vector back into (w, b): margin was
        // w·x + w_bias, and the paper's convention is w·x − b, so b = −w_bias.
        let b = -w[dim];
        w.truncate(dim);
        DcdSolution { model: LinearModel::from_parts(w, b), alpha, epochs, converged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use hazy_linalg::FeatureVec;

    fn blob_data(n: usize) -> Vec<TrainingExample> {
        // two deterministic blobs separated along x0 + x1
        (0..n)
            .map(|k| {
                let t = (k % 31) as f32 / 31.0;
                let u = (k % 13) as f32 / 13.0;
                let y = if k % 2 == 0 { 1 } else { -1 };
                let shift = if y > 0 { 1.0 } else { -1.0 };
                TrainingExample::new(
                    k as u64,
                    FeatureVec::dense(vec![shift + 0.3 * t, shift + 0.3 * u]),
                    y,
                )
            })
            .collect()
    }

    #[test]
    fn solves_separable_data_exactly() {
        let data = blob_data(200);
        let sol = DcdSvm::new(DcdConfig::default()).solve(&data);
        assert!(sol.converged, "did not converge in {} epochs", sol.epochs);
        let preds: Vec<i8> = data.iter().map(|e| sol.model.predict(&e.f)).collect();
        let labels: Vec<i8> = data.iter().map(|e| e.y).collect();
        assert_eq!(accuracy(&preds, &labels), 1.0);
    }

    #[test]
    fn alphas_respect_box_constraints() {
        let data = blob_data(100);
        let cfg = DcdConfig { c: 0.5, ..DcdConfig::default() };
        let sol = DcdSvm::new(cfg).solve(&data);
        assert!(sol.alpha.iter().all(|&a| (0.0..=0.5 + 1e-12).contains(&a)));
    }

    #[test]
    fn support_vectors_are_a_subset() {
        let data = blob_data(200);
        let sol = DcdSvm::new(DcdConfig::default()).solve(&data);
        let sv = sol.alpha.iter().filter(|&&a| a > 1e-9).count();
        assert!(sv > 0 && sv < data.len(), "sv count {sv}");
    }

    #[test]
    fn empty_input_yields_zero_model() {
        let sol = DcdSvm::new(DcdConfig::default()).solve(&[]);
        assert_eq!(sol.model.b, 0.0);
        assert_eq!(sol.alpha.len(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blob_data(64);
        let a = DcdSvm::new(DcdConfig::default()).solve(&data);
        let b = DcdSvm::new(DcdConfig::default()).solve(&data);
        assert_eq!(a.model.b, b.model.b);
        assert_eq!(a.model.w.to_vec(), b.model.w.to_vec());
    }
}
