//! Kernel classifiers (Appendix B.5.2).
//!
//! A kernel model is `c(x) = Σᵢ cᵢ·K(sᵢ, x) − b` over support vectors `sᵢ`
//! with real weights `cᵢ`. The paper's observation is that the maintenance
//! machinery carries over unchanged: for kernels with `K ∈ [0, 1]` (all
//! shift-invariant kernels here), the margin of *any* point moves by at
//! most `‖δc‖₁` when the weight vector changes — the same role Hölder's
//! inequality plays for linear models, with `M = 1` and `p = 1` on the
//! weight space. [`KernelSgd`] tracks that ℓ1 drift incrementally so a view
//! can run watermarks over kernel margins too. (For *large* corpora the
//! paper prefers linearizing the kernel with random features —
//! [`crate::Rff`] — which reduces everything to the linear case.)

use hazy_linalg::FeatureVec;

use crate::rff::{exact_kernel, ShiftInvariantKernel};

/// A kernel classifier: weighted support vectors plus a bias.
#[derive(Clone, Debug)]
pub struct KernelModel {
    kernel: ShiftInvariantKernel,
    support: Vec<(FeatureVec, f64)>,
    /// Bias, subtracted as in the linear convention `sign(c(x) − b)`.
    pub b: f64,
}

impl KernelModel {
    /// An empty model (margin 0 everywhere, predicts +1 by the sign
    /// convention).
    pub fn new(kernel: ShiftInvariantKernel) -> KernelModel {
        KernelModel { kernel, support: Vec::new(), b: 0.0 }
    }

    /// Number of support vectors.
    pub fn support_len(&self) -> usize {
        self.support.len()
    }

    /// The margin `Σ cᵢ K(sᵢ, x) − b` — O(support × nnz).
    pub fn margin(&self, x: &FeatureVec) -> f64 {
        let acc: f64 =
            self.support.iter().map(|(s, c)| c * exact_kernel(self.kernel, s, x)).sum();
        acc - self.b
    }

    /// Predicted label, `sign(margin)`.
    pub fn predict(&self, x: &FeatureVec) -> i8 {
        crate::model::sign(self.margin(x))
    }

    /// `‖c‖₁` of the weight vector.
    pub fn weight_l1(&self) -> f64 {
        self.support.iter().map(|(_, c)| c.abs()).sum()
    }
}

/// Incremental kernelized SGD (hinge loss, ℓ2-style weight decay), with a
/// support-vector budget and an incrementally maintained upper bound on
/// `‖c(i) − c(s)‖₁` since the last [`KernelSgd::snapshot`].
#[derive(Clone, Debug)]
pub struct KernelSgd {
    model: KernelModel,
    eta0: f64,
    lambda: f64,
    /// Maximum stored support vectors; the smallest-|c| vector is dropped
    /// beyond this (its weight counted into the drift bound).
    budget: usize,
    t: u64,
    /// Upper bound on the ℓ1 weight drift since the last snapshot. Both
    /// models are viewed in the same (growing) support-vector space — a new
    /// support vector is a coordinate the old model weights 0 (the paper's
    /// Appendix B.5.2 construction).
    drift_l1: f64,
}

impl KernelSgd {
    /// Fresh trainer.
    pub fn new(kernel: ShiftInvariantKernel, eta0: f64, lambda: f64, budget: usize) -> KernelSgd {
        KernelSgd {
            model: KernelModel::new(kernel),
            eta0,
            lambda,
            budget: budget.max(1),
            t: 0,
            drift_l1: 0.0,
        }
    }

    /// Current model.
    pub fn model(&self) -> &KernelModel {
        &self.model
    }

    /// Upper bound on `‖c(now) − c(snapshot)‖₁` — by `K ∈ [0, 1]`, also an
    /// upper bound on how far any point's margin has moved (up to the bias
    /// delta, which the caller tracks separately as in the linear case).
    pub fn drift_l1(&self) -> f64 {
        self.drift_l1
    }

    /// Declares the current model the new reference (a reorganization).
    pub fn snapshot(&mut self) {
        self.drift_l1 = 0.0;
    }

    /// One training example; returns the learning rate used.
    pub fn step(&mut self, f: &FeatureVec, y: i8) -> f64 {
        let eta = self.eta0 / (1.0 + self.lambda * self.eta0 * self.t as f64);
        self.t += 1;
        let z = self.model.margin(f);
        // weight decay: every coefficient shrinks; the drift grows by the
        // total mass removed
        if self.lambda > 0.0 {
            let k = 1.0 - eta * self.lambda;
            let before = self.model.weight_l1();
            for (_, c) in &mut self.model.support {
                *c *= k;
            }
            self.drift_l1 += before * (1.0 - k);
        }
        if f64::from(y) * z < 1.0 {
            let coef = eta * f64::from(y);
            self.model.support.push((f.clone(), coef));
            self.model.b -= 0.05 * coef; // reduced-rate bias, as in the linear trainer
            self.drift_l1 += coef.abs();
            if self.model.support.len() > self.budget {
                // evict the least influential vector; its whole weight is
                // margin drift
                let (idx, _) = self
                    .model
                    .support
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1 .1.abs().total_cmp(&b.1 .1.abs()))
                    .expect("non-empty support set");
                let (_, c) = self.model.support.swap_remove(idx);
                self.drift_l1 += c.abs();
            }
        }
        eta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-ish data: positive iff the two coordinates have the same sign.
    /// No linear model can do better than 50%; a Gaussian kernel can.
    fn xor_point(k: usize) -> (FeatureVec, i8) {
        let x = ((k * 7) % 13) as f32 / 13.0 - 0.5;
        let v = ((k * 11) % 17) as f32 / 17.0 - 0.5;
        let y = if x * v >= 0.0 { 1 } else { -1 };
        (FeatureVec::dense(vec![x * 2.0, v * 2.0]), y)
    }

    #[test]
    fn gaussian_kernel_learns_xor() {
        let mut t = KernelSgd::new(ShiftInvariantKernel::Gaussian { gamma: 4.0 }, 1.0, 1e-4, 512);
        for pass in 0..6 {
            for k in 0..200 {
                let (f, y) = xor_point(k + pass);
                t.step(&f, y);
            }
        }
        let correct = (0..200)
            .filter(|&k| {
                let (f, y) = xor_point(k);
                t.model().predict(&f) == y
            })
            .count();
        assert!(correct > 180, "XOR accuracy {correct}/200");
        // sanity: a *linear* model on the same data is near chance
        let mut lin = crate::SgdTrainer::new(crate::SgdConfig::svm(), 2);
        for pass in 0..6 {
            for k in 0..200 {
                let (f, y) = xor_point(k + pass);
                lin.step(&f, y);
            }
        }
        let lin_correct = (0..200)
            .filter(|&k| {
                let (f, y) = xor_point(k);
                lin.model().predict(&f) == y
            })
            .count();
        assert!(lin_correct < 140, "linear model should fail XOR, got {lin_correct}/200");
    }

    /// The paper's maintenance bound: any point's margin moves by at most
    /// `‖δc‖₁ + |δb|` between a snapshot and the current model.
    #[test]
    fn l1_drift_bounds_margin_movement() {
        let mut t = KernelSgd::new(ShiftInvariantKernel::Gaussian { gamma: 2.0 }, 0.5, 1e-3, 64);
        for k in 0..100 {
            let (f, y) = xor_point(k);
            t.step(&f, y);
        }
        let reference = t.model().clone();
        t.snapshot();
        for k in 100..220 {
            let (f, y) = xor_point(k);
            t.step(&f, y);
        }
        let bound = t.drift_l1() + (t.model().b - reference.b).abs();
        for k in (0..300).step_by(11) {
            let (f, _) = xor_point(k);
            let moved = (t.model().margin(&f) - reference.margin(&f)).abs();
            assert!(
                moved <= bound + 1e-9,
                "point {k}: margin moved {moved} > bound {bound}"
            );
        }
    }

    #[test]
    fn budget_caps_support_vectors() {
        let mut t = KernelSgd::new(ShiftInvariantKernel::Laplacian { gamma: 1.0 }, 0.5, 0.0, 16);
        for k in 0..500 {
            let (f, y) = xor_point(k);
            t.step(&f, y);
        }
        assert!(t.model().support_len() <= 16);
    }

    #[test]
    fn empty_model_predicts_positive_by_convention() {
        let m = KernelModel::new(ShiftInvariantKernel::Gaussian { gamma: 1.0 });
        assert_eq!(m.predict(&FeatureVec::dense(vec![1.0, 2.0])), 1);
        assert_eq!(m.margin(&FeatureVec::zeros(2)), 0.0);
    }

    #[test]
    fn snapshot_resets_drift() {
        let mut t = KernelSgd::new(ShiftInvariantKernel::Gaussian { gamma: 1.0 }, 0.5, 1e-3, 32);
        for k in 0..50 {
            let (f, y) = xor_point(k);
            t.step(&f, y);
        }
        assert!(t.drift_l1() > 0.0);
        t.snapshot();
        assert_eq!(t.drift_l1(), 0.0);
    }
}
