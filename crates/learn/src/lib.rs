//! Linear-model training for Hazy classification views.
//!
//! Hazy is agnostic about the particular learning algorithm (Section 3.1) but
//! defaults to *incremental stochastic gradient descent* in the style of
//! Bottou's SGD code: each new training example advances the model by one
//! cheap step, which is exactly what lets the view react to an `INSERT` into
//! the examples table in ~100 µs. This crate provides:
//!
//! * [`LinearModel`] — `(w, b)` with the paper's `sign(w·f − b)` convention,
//! * [`SgdTrainer`] — incremental training for SVM (hinge), logistic and
//!   ridge (squared) losses with ℓ2/ℓ1 regularization (Figure 9),
//! * [`batch::DcdSvm`] — a batch dual-coordinate-descent SVM used as the
//!   "SVMLight-class" comparator in the Figure 10 experiment,
//! * [`metrics`] — precision/recall/F1/accuracy,
//! * [`select`] — the simple cross-validation model selection the paper
//!   invokes when the user omits `USING ...` in the view declaration,
//! * [`OneVsAll`] — multiclass via one-versus-all (Appendix B.5.4),
//! * [`Rff`] — random Fourier features linearizing shift-invariant kernels
//!   (Appendix B.5.3).

pub mod batch;
mod kernel;
mod loss;
pub mod metrics;
mod model;
mod multiclass;
mod rff;
mod sgd;
pub mod select;

pub use kernel::{KernelModel, KernelSgd};
pub use loss::{LossKind, Regularizer};
pub use model::{sign, Label, LinearModel, TrainingExample};
pub use multiclass::OneVsAll;
pub use rff::{exact_kernel, Rff, ShiftInvariantKernel};
pub use sgd::{SgdConfig, SgdTrainer, StepInfo};
