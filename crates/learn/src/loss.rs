//! Loss functions and regularizers (paper Figure 9).
//!
//! Every model Hazy supports is an instance of
//! `min_w P(w) + Σ L(w·x, y)` with convex `L` and strongly convex `P`
//! (Appendix B.5.1). The label of an entity depends only on `w·x` through a
//! monotone `h`, which is the one property the maintenance algorithm needs.

/// The loss `L(z, y)` applied to the margin `z = w·f − b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LossKind {
    /// SVM hinge loss `max(1 − zy, 0)`.
    Hinge,
    /// Logistic loss `log(1 + exp(−yz))`.
    Logistic,
    /// Squared loss `(z − y)²` (ridge regression / least squares).
    Squared,
}

impl LossKind {
    /// Loss value `L(z, y)`.
    pub fn value(self, z: f64, y: f64) -> f64 {
        match self {
            LossKind::Hinge => (1.0 - z * y).max(0.0),
            LossKind::Logistic => {
                // log(1 + e^{-yz}) computed stably for large |yz|
                let m = -y * z;
                if m > 30.0 {
                    m
                } else {
                    m.exp().ln_1p()
                }
            }
            LossKind::Squared => (z - y) * (z - y),
        }
    }

    /// A subgradient `∂L/∂z` at `(z, y)`.
    pub fn dloss(self, z: f64, y: f64) -> f64 {
        match self {
            LossKind::Hinge => {
                if z * y < 1.0 {
                    -y
                } else {
                    0.0
                }
            }
            LossKind::Logistic => {
                let m = y * z;
                // -y * sigmoid(-yz), stable at both tails
                if m > 30.0 {
                    0.0
                } else if m < -30.0 {
                    -y
                } else {
                    -y / (1.0 + m.exp())
                }
            }
            LossKind::Squared => 2.0 * (z - y),
        }
    }

    /// Short lowercase name used in the DDL (`USING SVM` etc.).
    pub fn name(self) -> &'static str {
        match self {
            LossKind::Hinge => "svm",
            LossKind::Logistic => "logistic",
            LossKind::Squared => "ridge",
        }
    }
}

/// The penalty `P(w)` (paper Figure 9(b); we provide the ℓp family).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Regularizer {
    /// No penalty.
    None,
    /// `λ/2 ‖w‖²` — the standard SVM/ridge penalty.
    L2(f64),
    /// `λ ‖w‖_1` — sparsity-inducing, applied via truncated gradient.
    L1(f64),
}

impl Regularizer {
    /// The λ coefficient (0 when unregularized).
    pub fn lambda(self) -> f64 {
        match self {
            Regularizer::None => 0.0,
            Regularizer::L2(l) | Regularizer::L1(l) => l,
        }
    }

    /// Stable one-byte wire tag for durable state (λ travels separately).
    pub fn tag(self) -> u8 {
        match self {
            Regularizer::None => 0,
            Regularizer::L2(_) => 1,
            Regularizer::L1(_) => 2,
        }
    }

    /// Inverse of [`Regularizer::tag`].
    pub fn from_tag(t: u8, lambda: f64) -> Option<Regularizer> {
        match t {
            0 => Some(Regularizer::None),
            1 => Some(Regularizer::L2(lambda)),
            2 => Some(Regularizer::L1(lambda)),
            _ => None,
        }
    }
}

impl LossKind {
    /// Stable one-byte wire tag for durable state.
    pub fn tag(self) -> u8 {
        match self {
            LossKind::Hinge => 0,
            LossKind::Logistic => 1,
            LossKind::Squared => 2,
        }
    }

    /// Inverse of [`LossKind::tag`].
    pub fn from_tag(t: u8) -> Option<LossKind> {
        match t {
            0 => Some(LossKind::Hinge),
            1 => Some(LossKind::Logistic),
            2 => Some(LossKind::Squared),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(loss: LossKind, z: f64, y: f64) -> f64 {
        let h = 1e-6;
        (loss.value(z + h, y) - loss.value(z - h, y)) / (2.0 * h)
    }

    #[test]
    fn hinge_values() {
        assert_eq!(LossKind::Hinge.value(2.0, 1.0), 0.0);
        assert_eq!(LossKind::Hinge.value(0.0, 1.0), 1.0);
        assert_eq!(LossKind::Hinge.value(-1.0, 1.0), 2.0);
        assert_eq!(LossKind::Hinge.value(-1.0, -1.0), 0.0);
    }

    #[test]
    fn gradients_match_numeric_where_smooth() {
        for loss in [LossKind::Logistic, LossKind::Squared] {
            for &z in &[-3.0, -0.5, 0.3, 2.0] {
                for &y in &[-1.0, 1.0] {
                    let g = loss.dloss(z, y);
                    let n = numeric_grad(loss, z, y);
                    assert!((g - n).abs() < 1e-4, "{loss:?} at z={z} y={y}: {g} vs {n}");
                }
            }
        }
        // hinge away from the kink
        assert!((LossKind::Hinge.dloss(0.0, 1.0) - numeric_grad(LossKind::Hinge, 0.0, 1.0)).abs() < 1e-4);
        assert_eq!(LossKind::Hinge.dloss(2.0, 1.0), 0.0);
    }

    #[test]
    fn logistic_is_stable_at_extremes() {
        assert!(LossKind::Logistic.value(1e4, 1.0).is_finite());
        assert!(LossKind::Logistic.value(-1e4, 1.0).is_finite());
        assert_eq!(LossKind::Logistic.dloss(1e4, 1.0), 0.0);
        assert_eq!(LossKind::Logistic.dloss(-1e4, 1.0), -1.0);
    }

    #[test]
    fn losses_are_convex_in_z_on_samples() {
        // midpoint convexity on a grid
        for loss in [LossKind::Hinge, LossKind::Logistic, LossKind::Squared] {
            for y in [-1.0, 1.0] {
                for i in -10..10 {
                    let a = f64::from(i) * 0.5;
                    let b = a + 2.0;
                    let mid = loss.value((a + b) / 2.0, y);
                    let avg = (loss.value(a, y) + loss.value(b, y)) / 2.0;
                    assert!(mid <= avg + 1e-12, "{loss:?} not convex at {a}..{b}");
                }
            }
        }
    }

    #[test]
    fn regularizer_lambda() {
        assert_eq!(Regularizer::None.lambda(), 0.0);
        assert_eq!(Regularizer::L2(0.1).lambda(), 0.1);
        assert_eq!(Regularizer::L1(0.2).lambda(), 0.2);
    }
}
