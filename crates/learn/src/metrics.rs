//! Classification quality metrics (the P/R columns of Figure 10).

use crate::model::Label;

/// A 2×2 confusion matrix for binary ±1 labels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Predicted +1, actually +1.
    pub tp: usize,
    /// Predicted +1, actually −1.
    pub fp: usize,
    /// Predicted −1, actually −1.
    pub tn: usize,
    /// Predicted −1, actually +1.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies predictions against gold labels.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn from_preds(preds: &[Label], gold: &[Label]) -> Confusion {
        assert_eq!(preds.len(), gold.len(), "prediction/label length mismatch");
        let mut c = Confusion::default();
        for (&p, &g) in preds.iter().zip(gold.iter()) {
            match (p > 0, g > 0) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision `tp / (tp + fp)`; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when there are no positives.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1, the harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// Convenience: accuracy straight from prediction/label slices.
pub fn accuracy(preds: &[Label], gold: &[Label]) -> f64 {
    Confusion::from_preds(preds, gold).accuracy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let preds = [1, 1, -1, -1, 1, -1];
        let gold = [1, -1, -1, 1, 1, -1];
        let c = Confusion::from_preds(&preds, &gold);
        assert_eq!(c, Confusion { tp: 2, fp: 1, tn: 2, fn_: 1 });
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let c = Confusion::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn perfect_predictions() {
        let gold = [1, -1, 1, -1];
        let c = Confusion::from_preds(&gold, &gold);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Confusion::from_preds(&[1], &[1, -1]);
    }
}
