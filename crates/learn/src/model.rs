//! The linear model `(w, b)` and its classification rule.

use hazy_linalg::{FeatureVec, Features, Norm, ScaledDense};

/// A class label in binary classification: `+1` or `-1`.
pub type Label = i8;

/// The paper's sign convention: `sign(x) = 1` if `x ≥ 0`, else `-1`
/// (Section 2.1 — note that zero maps to the positive class).
#[inline]
pub fn sign(x: f64) -> Label {
    if x >= 0.0 {
        1
    } else {
        -1
    }
}

/// One labeled entity `(id, f, y)` from the examples table.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainingExample {
    /// Entity key (0 when the example is not tied to a stored entity).
    pub id: u64,
    /// Feature vector produced by the view's feature function.
    pub f: FeatureVec,
    /// Class label, `+1` or `-1`.
    pub y: Label,
}

impl TrainingExample {
    /// Convenience constructor.
    pub fn new(id: u64, f: FeatureVec, y: Label) -> Self {
        debug_assert!(y == 1 || y == -1, "labels are ±1");
        TrainingExample { id, f, y }
    }
}

/// A linear model `(w, b)`; an entity with features `f` is labeled
/// `sign(w·f − b)` and its *margin* is `eps = w·f − b` (the quantity `H` is
/// clustered on).
#[derive(Clone, Debug)]
pub struct LinearModel {
    /// Weight vector, kept in scaled form so SGD shrinkage is O(1).
    pub w: ScaledDense,
    /// Bias term `b` (subtracted, per the paper's convention).
    pub b: f64,
}

impl LinearModel {
    /// The zero model over a `dim`-dimensional feature space.
    pub fn zeros(dim: usize) -> Self {
        LinearModel { w: ScaledDense::zeros(dim), b: 0.0 }
    }

    /// Builds a model from a materialized weight vector and bias.
    pub fn from_parts(w: Vec<f64>, b: f64) -> Self {
        LinearModel { w: ScaledDense::from_vec(w), b }
    }

    /// The margin `eps = w·f − b`. Generic over the feature representation
    /// so the zero-copy scan path classifies borrowed page bytes
    /// ([`hazy_linalg::FeatureVecRef`]) through the same kernel as owned
    /// vectors.
    #[inline]
    pub fn margin<F: Features>(&self, f: &F) -> f64 {
        self.w.dot(f) - self.b
    }

    /// The predicted label `sign(margin)`.
    #[inline]
    pub fn predict<F: Features>(&self, f: &F) -> Label {
        sign(self.margin(f))
    }

    /// `‖w_self − w_other‖_p` plus nothing else: the model-delta norm used by
    /// the watermark bound. The bias difference is handled separately in the
    /// bound.
    pub fn delta_norm(&self, other: &LinearModel, p: Norm) -> f64 {
        self.w.diff_norm(&other.w, p)
    }

    /// Approximate resident bytes (dense `f64` weights).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.w.dim() * std::mem::size_of::<f64>()
    }

    /// Serializes `(w, b)` bit-exactly (checkpoint path).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        self.w.save_state(out);
        out.extend_from_slice(&self.b.to_bits().to_le_bytes());
    }

    /// Inverse of [`LinearModel::save_state`]; `None` on truncated input.
    pub fn restore_state(b: &mut &[u8]) -> Option<LinearModel> {
        let w = hazy_linalg::ScaledDense::restore_state(b)?;
        let bias = hazy_linalg::wire::take_f64(b)?;
        Some(LinearModel { w, b: bias })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_convention_matches_paper() {
        assert_eq!(sign(0.0), 1, "paper: sign(x)=1 when x >= 0");
        assert_eq!(sign(1e-300), 1);
        assert_eq!(sign(-1e-300), -1);
    }

    /// Example 2.2 of the paper: w = (-1, 1), b = 0.5 labels P1..P5.
    #[test]
    fn paper_example_2_2() {
        let m = LinearModel::from_parts(vec![-1.0, 1.0], 0.5);
        let p = |x: f32, y: f32| FeatureVec::dense(vec![x, y]);
        // P1=(3,4) and P3=(1,2) are database papers; P2=(5,4), P4=(5,1),
        // P5=(2,1) are not.
        assert_eq!(m.predict(&p(3.0, 4.0)), 1, "P1");
        assert_eq!(m.predict(&p(5.0, 4.0)), -1, "P2");
        assert_eq!(m.predict(&p(1.0, 2.0)), 1, "P3");
        assert_eq!(m.predict(&p(5.0, 1.0)), -1, "P4");
        assert_eq!(m.predict(&p(2.0, 1.0)), -1, "P5");
    }

    #[test]
    fn margin_subtracts_bias() {
        let m = LinearModel::from_parts(vec![2.0], 1.0);
        let f = FeatureVec::dense(vec![3.0]);
        assert_eq!(m.margin(&f), 5.0);
    }

    #[test]
    fn delta_norm_is_symmetric() {
        let a = LinearModel::from_parts(vec![1.0, 0.0], 0.0);
        let b = LinearModel::from_parts(vec![0.0, 2.0], 3.0);
        for p in [Norm::L1, Norm::L2, Norm::LInf] {
            assert_eq!(a.delta_norm(&b, p), b.delta_norm(&a, p));
        }
        assert_eq!(a.delta_norm(&b, Norm::L1), 3.0);
    }
}
