//! One-versus-all multiclass classification (Appendix B.5.4).
//!
//! The paper turns a `k`-class problem into `k` binary views, one per class,
//! and reports (Figure 12(B)) that Hazy's per-view savings survive as `k`
//! grows. This module provides the shared trainer wrapper; the view layer
//! instantiates one maintenance structure per binary model.

use hazy_linalg::FeatureVec;

use crate::model::LinearModel;
use crate::sgd::{SgdConfig, SgdTrainer};

/// `k` binary SGD trainers, one per class, trained one-versus-all.
#[derive(Clone, Debug)]
pub struct OneVsAll {
    trainers: Vec<SgdTrainer>,
}

impl OneVsAll {
    /// Creates `classes` binary trainers over a `dim`-dimensional space.
    ///
    /// # Panics
    /// Panics when `classes == 0`.
    pub fn new(cfg: SgdConfig, dim: usize, classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        OneVsAll { trainers: (0..classes).map(|_| SgdTrainer::new(cfg, dim)).collect() }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.trainers.len()
    }

    /// The binary model for `class`.
    pub fn model(&self, class: usize) -> &LinearModel {
        self.trainers[class].model()
    }

    /// Consumes one multiclass example: class `label` gets a positive step,
    /// every other class a negative one (sequential one-versus-all, as in the
    /// paper's Appendix C.3 experiment).
    pub fn step(&mut self, f: &FeatureVec, label: usize) {
        assert!(label < self.trainers.len(), "label {label} out of range");
        for (k, t) in self.trainers.iter_mut().enumerate() {
            t.step(f, if k == label { 1 } else { -1 });
        }
    }

    /// Predicts the class with the largest margin.
    pub fn predict(&self, f: &FeatureVec) -> usize {
        let mut best = 0;
        let mut best_margin = f64::NEG_INFINITY;
        for (k, t) in self.trainers.iter().enumerate() {
            let m = t.model().margin(f);
            if m > best_margin {
                best_margin = m;
                best = k;
            }
        }
        best
    }

    /// Per-class margins (useful for confidence displays).
    pub fn margins(&self, f: &FeatureVec) -> Vec<f64> {
        self.trainers.iter().map(|t| t.model().margin(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three deterministic clusters on a triangle; one-vs-all must separate
    /// them.
    fn tri_data(n: usize) -> Vec<(FeatureVec, usize)> {
        let centers = [(0.0f32, 2.0f32), (-2.0, -1.0), (2.0, -1.0)];
        (0..n)
            .map(|k| {
                let c = k % 3;
                let jx = ((k * 7) % 11) as f32 / 11.0 - 0.5;
                let jy = ((k * 13) % 17) as f32 / 17.0 - 0.5;
                (FeatureVec::dense(vec![centers[c].0 + jx, centers[c].1 + jy, 1.0]), c)
            })
            .collect()
    }

    #[test]
    fn separates_three_clusters() {
        let data = tri_data(300);
        let mut ova = OneVsAll::new(SgdConfig::svm(), 3, 3);
        for _ in 0..20 {
            for (f, c) in &data {
                ova.step(f, *c);
            }
        }
        let correct = data.iter().filter(|(f, c)| ova.predict(f) == *c).count();
        assert!(correct as f64 / data.len() as f64 > 0.95, "correct {correct}/{}", data.len());
    }

    #[test]
    fn margins_align_with_prediction() {
        let data = tri_data(90);
        let mut ova = OneVsAll::new(SgdConfig::svm(), 3, 3);
        for (f, c) in &data {
            ova.step(f, *c);
        }
        let f = &data[0].0;
        let ms = ova.margins(f);
        let argmax =
            ms.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        assert_eq!(argmax, ova.predict(f));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let mut ova = OneVsAll::new(SgdConfig::svm(), 2, 2);
        ova.step(&FeatureVec::dense(vec![1.0, 0.0]), 5);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_rejected() {
        let _ = OneVsAll::new(SgdConfig::svm(), 2, 0);
    }
}
