//! Random Fourier features: linearized shift-invariant kernels.
//!
//! Appendix B.5.3 of the paper adopts Rahimi & Recht's random non-linear
//! feature maps: for a shift-invariant kernel `K(x, y) = k(x − y)` one draws
//! frequencies `ω_i` from the kernel's spectral density and maps
//! `z(x)_i = sqrt(2/D) · cos(ω_i·x + b_i)`, so `z(x)·z(y) ≈ K(x, y)`.
//! The classification problem in `z`-space is linear again, which means the
//! entire watermark/Skiing machinery applies unchanged — and the Figure 12(A)
//! feature-sensitivity experiment scales `D` with exactly this map.

use hazy_linalg::FeatureVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shift-invariant kernels with known spectral densities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ShiftInvariantKernel {
    /// `K(x,y) = exp(−γ ‖x−y‖²)`; spectrum is Gaussian with σ² = 2γ.
    Gaussian {
        /// Bandwidth γ.
        gamma: f64,
    },
    /// `K(x,y) = exp(−γ ‖x−y‖_1)`; spectrum is Cauchy with scale γ.
    Laplacian {
        /// Bandwidth γ.
        gamma: f64,
    },
}

/// A sampled random-feature map `R^d → R^D`.
#[derive(Clone, Debug)]
pub struct Rff {
    /// `D × d` frequency matrix, row-major.
    omega: Vec<f64>,
    /// Phase offsets `b_i ∈ [0, 2π)`.
    offsets: Vec<f64>,
    input_dim: usize,
    output_dim: usize,
}

/// Standard normal via Box–Muller (the sanctioned `rand` build ships no
/// distributions module, so we sample directly).
fn sample_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Standard Cauchy via the inverse CDF.
fn sample_cauchy(rng: &mut impl Rng) -> f64 {
    let u: f64 = rng.gen::<f64>();
    (std::f64::consts::PI * (u - 0.5)).tan()
}

impl Rff {
    /// Samples a `D = output_dim` feature map for `kernel` over
    /// `input_dim`-dimensional inputs, deterministically from `seed`.
    pub fn sample(
        kernel: ShiftInvariantKernel,
        input_dim: usize,
        output_dim: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut omega = Vec::with_capacity(output_dim * input_dim);
        for _ in 0..output_dim * input_dim {
            let w = match kernel {
                // Gaussian kernel exp(−γ‖δ‖²) has spectral density
                // N(0, 2γ I).
                ShiftInvariantKernel::Gaussian { gamma } => {
                    sample_normal(&mut rng) * (2.0 * gamma).sqrt()
                }
                // Laplacian kernel exp(−γ‖δ‖_1) has a product-Cauchy
                // spectrum with scale γ.
                ShiftInvariantKernel::Laplacian { gamma } => sample_cauchy(&mut rng) * gamma,
            };
            omega.push(w);
        }
        let offsets =
            (0..output_dim).map(|_| rng.gen::<f64>() * 2.0 * std::f64::consts::PI).collect();
        Rff { omega, offsets, input_dim, output_dim }
    }

    /// Input dimensionality `d`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimensionality `D`.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Applies the map: `z(x)_i = sqrt(2/D) cos(ω_i·x + b_i)`.
    pub fn transform(&self, x: &FeatureVec) -> FeatureVec {
        let scale = (2.0 / self.output_dim as f64).sqrt();
        let mut out = Vec::with_capacity(self.output_dim);
        for i in 0..self.output_dim {
            let row = &self.omega[i * self.input_dim..(i + 1) * self.input_dim];
            let mut acc = self.offsets[i];
            for (j, v) in x.iter() {
                // indices beyond input_dim contribute nothing (defensive
                // against ragged corpora)
                if (j as usize) < self.input_dim {
                    acc += row[j as usize] * f64::from(v);
                }
            }
            out.push((scale * acc.cos()) as f32);
        }
        FeatureVec::dense(out)
    }

    /// The kernel value this map approximates, `z(x)·z(y)`.
    pub fn approx_kernel(&self, x: &FeatureVec, y: &FeatureVec) -> f64 {
        let zx = self.transform(x);
        let zy = self.transform(y);
        let w: Vec<f64> = zy.to_dense().iter().map(|&v| f64::from(v)).collect();
        zx.dot(&w)
    }
}

/// Exact kernel evaluation, for testing the approximation.
pub fn exact_kernel(kernel: ShiftInvariantKernel, x: &FeatureVec, y: &FeatureVec) -> f64 {
    let xd = x.to_dense();
    let yd = y.to_dense();
    let n = xd.len().max(yd.len());
    let mut l1 = 0.0f64;
    let mut l2 = 0.0f64;
    for i in 0..n {
        let a = f64::from(*xd.get(i).unwrap_or(&0.0));
        let b = f64::from(*yd.get(i).unwrap_or(&0.0));
        let d = a - b;
        l1 += d.abs();
        l2 += d * d;
    }
    match kernel {
        ShiftInvariantKernel::Gaussian { gamma } => (-gamma * l2).exp(),
        ShiftInvariantKernel::Laplacian { gamma } => (-gamma * l1).exp(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_kernel_is_approximated() {
        let kernel = ShiftInvariantKernel::Gaussian { gamma: 0.5 };
        let rff = Rff::sample(kernel, 4, 2048, 7);
        let pts = [
            FeatureVec::dense(vec![0.1, 0.2, -0.3, 0.4]),
            FeatureVec::dense(vec![0.0, 0.0, 0.0, 0.0]),
            FeatureVec::dense(vec![-0.5, 0.1, 0.7, -0.2]),
        ];
        for a in &pts {
            for b in &pts {
                let approx = rff.approx_kernel(a, b);
                let exact = exact_kernel(kernel, a, b);
                assert!((approx - exact).abs() < 0.1, "approx {approx} exact {exact}");
            }
        }
    }

    #[test]
    fn laplacian_kernel_is_approximated() {
        let kernel = ShiftInvariantKernel::Laplacian { gamma: 0.3 };
        let rff = Rff::sample(kernel, 3, 4096, 11);
        let a = FeatureVec::dense(vec![0.2, -0.1, 0.4]);
        let b = FeatureVec::dense(vec![-0.3, 0.2, 0.1]);
        let approx = rff.approx_kernel(&a, &b);
        let exact = exact_kernel(kernel, &a, &b);
        assert!((approx - exact).abs() < 0.12, "approx {approx} exact {exact}");
    }

    #[test]
    fn self_kernel_is_one() {
        let kernel = ShiftInvariantKernel::Gaussian { gamma: 1.0 };
        let rff = Rff::sample(kernel, 2, 2048, 3);
        let x = FeatureVec::dense(vec![0.7, -0.4]);
        assert!((rff.approx_kernel(&x, &x) - 1.0).abs() < 0.1);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let k = ShiftInvariantKernel::Gaussian { gamma: 1.0 };
        let a = Rff::sample(k, 3, 16, 42);
        let b = Rff::sample(k, 3, 16, 42);
        let x = FeatureVec::dense(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.transform(&x), b.transform(&x));
    }

    #[test]
    fn output_dimension_is_respected() {
        let k = ShiftInvariantKernel::Laplacian { gamma: 1.0 };
        let rff = Rff::sample(k, 5, 37, 1);
        let z = rff.transform(&FeatureVec::zeros(5));
        assert_eq!(z.dim(), 37);
    }

    #[test]
    fn sparse_inputs_are_accepted() {
        let k = ShiftInvariantKernel::Gaussian { gamma: 0.5 };
        let rff = Rff::sample(k, 10, 64, 5);
        let s = FeatureVec::sparse(10, vec![(2, 1.0), (7, -1.0)]);
        let d = FeatureVec::dense(s.to_dense());
        assert_eq!(rff.transform(&s), rff.transform(&d));
    }
}
