//! Automatic model selection.
//!
//! When the `USING` clause is omitted from a view declaration, Hazy "chooses
//! a method automatically (using a simple model selection algorithm based on
//! leave-one-out estimators)" (Section 2.1). Exact leave-one-out is `n` full
//! trainings; the standard estimator is k-fold cross-validation, which
//! converges to LOO as `k → n`. We run k-fold over the three built-in linear
//! methods and pick the highest mean accuracy.

use crate::metrics::Confusion;
use crate::model::TrainingExample;
use crate::sgd::{SgdConfig, SgdTrainer};
use crate::LossKind;

/// Outcome of model selection: the winning config plus each candidate score.
#[derive(Clone, Debug)]
pub struct Selection {
    /// Configuration with the best cross-validated accuracy.
    pub best: SgdConfig,
    /// `(loss, mean accuracy)` for every candidate, in evaluation order.
    pub scores: Vec<(LossKind, f64)>,
}

/// Cross-validated accuracy of `cfg` on `data` with `folds` folds.
///
/// Folds are assigned round-robin so the split is deterministic; callers
/// shuffle beforehand if example order is meaningful.
pub fn cross_val_accuracy(cfg: SgdConfig, data: &[TrainingExample], folds: usize) -> f64 {
    let folds = folds.clamp(2, data.len().max(2));
    if data.len() < 2 {
        return 0.0;
    }
    let dim = data.iter().map(|e| e.f.dim() as usize).max().unwrap_or(0);
    let mut total = Confusion::default();
    for fold in 0..folds {
        let mut trainer = SgdTrainer::new(cfg, dim);
        // several passes so small folds still converge
        for _ in 0..5 {
            for (i, ex) in data.iter().enumerate() {
                if i % folds != fold {
                    trainer.step(&ex.f, ex.y);
                }
            }
        }
        let (mut preds, mut gold) = (Vec::new(), Vec::new());
        for (i, ex) in data.iter().enumerate() {
            if i % folds == fold {
                preds.push(trainer.model().predict(&ex.f));
                gold.push(ex.y);
            }
        }
        let c = Confusion::from_preds(&preds, &gold);
        total.tp += c.tp;
        total.fp += c.fp;
        total.tn += c.tn;
        total.fn_ += c.fn_;
    }
    total.accuracy()
}

/// Picks among SVM, logistic and ridge by k-fold cross-validation
/// (`k = min(10, n)` — the LOO-estimator surrogate).
pub fn select_model(data: &[TrainingExample]) -> Selection {
    let folds = data.len().clamp(2, 10);
    let candidates = [LossKind::Hinge, LossKind::Logistic, LossKind::Squared];
    let mut scores = Vec::with_capacity(candidates.len());
    let mut best = SgdConfig::for_loss(candidates[0]);
    let mut best_acc = f64::NEG_INFINITY;
    for &loss in &candidates {
        let cfg = SgdConfig::for_loss(loss);
        let acc = cross_val_accuracy(cfg, data, folds);
        scores.push((loss, acc));
        if acc > best_acc {
            best_acc = acc;
            best = cfg;
        }
    }
    Selection { best, scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazy_linalg::FeatureVec;

    fn noisy_linear(n: usize) -> Vec<TrainingExample> {
        (0..n)
            .map(|k| {
                let x0 = (k % 19) as f32 / 19.0 - 0.5;
                let x1 = (k % 29) as f32 / 29.0 - 0.5;
                // flip ~4% of labels deterministically
                let mut y = if x0 + 0.5 * x1 >= 0.0 { 1 } else { -1 };
                if k % 25 == 0 {
                    y = -y;
                }
                TrainingExample::new(k as u64, FeatureVec::dense(vec![x0, x1, 1.0]), y)
            })
            .collect()
    }

    #[test]
    fn selection_returns_all_candidate_scores() {
        let data = noisy_linear(150);
        let sel = select_model(&data);
        assert_eq!(sel.scores.len(), 3);
        assert!(sel.scores.iter().all(|&(_, a)| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn best_matches_argmax_of_scores() {
        let data = noisy_linear(150);
        let sel = select_model(&data);
        let max = sel.scores.iter().map(|&(_, a)| a).fold(f64::NEG_INFINITY, f64::max);
        let winner = sel.scores.iter().find(|&&(_, a)| a == max).unwrap().0;
        assert_eq!(sel.best.loss, winner);
    }

    #[test]
    fn cross_val_accuracy_is_high_on_learnable_data() {
        let data = noisy_linear(200);
        let acc = cross_val_accuracy(SgdConfig::svm(), &data, 5);
        assert!(acc > 0.85, "cv accuracy {acc}");
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert_eq!(cross_val_accuracy(SgdConfig::svm(), &[], 5), 0.0);
        let one = vec![TrainingExample::new(0, FeatureVec::dense(vec![1.0]), 1)];
        assert_eq!(cross_val_accuracy(SgdConfig::svm(), &one, 5), 0.0);
    }
}
