//! Incremental stochastic gradient training (the paper's default learner).
//!
//! One call to [`SgdTrainer::step`] consumes one training example — exactly
//! the granularity at which Hazy's triggers fire. The learning-rate schedule
//! and the O(1) ℓ2-shrink via [`hazy_linalg::ScaledDense`] follow Bottou's
//! SGD code, which the paper uses for all its experiments.

use hazy_linalg::FeatureVec;

use crate::loss::{LossKind, Regularizer};
use crate::model::{LinearModel, TrainingExample};

/// Hyper-parameters for the incremental trainer.
#[derive(Clone, Copy, Debug)]
pub struct SgdConfig {
    /// Loss to optimize (selects SVM / logistic / ridge).
    pub loss: LossKind,
    /// Penalty term `P(w)`.
    pub reg: Regularizer,
    /// Base learning rate `η0` in `η_t = η0 / (1 + λ·η0·t)`.
    pub eta0: f64,
    /// Multiplier on the bias learning rate (text models often train the
    /// bias more gently; 1.0 is a fine default).
    pub bias_rate: f64,
}

impl SgdConfig {
    /// The paper's default: a linear SVM with mild ℓ2 regularization. The
    /// base rate suits input-normalized features (ℓ1 for text, ℓ2 dense),
    /// whose components are small. The bias trains at a reduced rate, as in
    /// Bottou's SGD code — a full-rate bias makes `b` swing by ±η per
    /// violating example, which directly widens the watermark band
    /// (`ε_high − ε_low ∋ δb`) and erodes Hazy's pruning.
    pub fn svm() -> Self {
        SgdConfig { loss: LossKind::Hinge, reg: Regularizer::L2(1e-4), eta0: 0.5, bias_rate: 0.05 }
    }

    /// Logistic regression defaults.
    pub fn logistic() -> Self {
        SgdConfig { loss: LossKind::Logistic, ..Self::svm() }
    }

    /// Ridge regression defaults.
    pub fn ridge() -> Self {
        SgdConfig { loss: LossKind::Squared, reg: Regularizer::L2(1e-3), eta0: 0.05, bias_rate: 0.1 }
    }

    /// Config for a given loss with its default hyper-parameters.
    pub fn for_loss(loss: LossKind) -> Self {
        match loss {
            LossKind::Hinge => Self::svm(),
            LossKind::Logistic => Self::logistic(),
            LossKind::Squared => Self::ridge(),
        }
    }
}

impl SgdConfig {
    /// Serializes the hyper-parameters (checkpoint path).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        out.push(self.loss.tag());
        out.push(self.reg.tag());
        out.extend_from_slice(&self.reg.lambda().to_bits().to_le_bytes());
        out.extend_from_slice(&self.eta0.to_bits().to_le_bytes());
        out.extend_from_slice(&self.bias_rate.to_bits().to_le_bytes());
    }

    /// Inverse of [`SgdConfig::save_state`]; `None` on malformed input.
    pub fn restore_state(b: &mut &[u8]) -> Option<SgdConfig> {
        use hazy_linalg::wire::{take_f64, take_u8};
        let loss = crate::loss::LossKind::from_tag(take_u8(b)?)?;
        let reg_tag = take_u8(b)?;
        let lambda = take_f64(b)?;
        let reg = crate::loss::Regularizer::from_tag(reg_tag, lambda)?;
        let eta0 = take_f64(b)?;
        let bias_rate = take_f64(b)?;
        Some(SgdConfig { loss, reg, eta0, bias_rate })
    }
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self::svm()
    }
}

/// Description of one SGD step as an affine model change:
/// `w ← shrink·w + grad_coef·f`, with an optional ℓ1 soft-threshold of
/// width `l1_tau` applied to the coordinates `f` touches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepInfo {
    /// Learning rate used for this step.
    pub eta: f64,
    /// Multiplicative ℓ2 shrink applied to `w` (1.0 when unregularized).
    pub shrink: f64,
    /// Coefficient of the sparse gradient addition (0.0 when the loss had
    /// zero subgradient, e.g. a hinge-satisfied example).
    pub grad_coef: f64,
    /// ℓ1 soft-threshold width (0.0 unless ℓ1-regularized).
    pub l1_tau: f64,
}

/// Incremental trainer: owns the model and a step counter.
#[derive(Clone, Debug)]
pub struct SgdTrainer {
    cfg: SgdConfig,
    model: LinearModel,
    /// Number of examples consumed so far (drives the learning-rate decay).
    t: u64,
}

impl SgdTrainer {
    /// Fresh trainer over a `dim`-dimensional feature space.
    pub fn new(cfg: SgdConfig, dim: usize) -> Self {
        SgdTrainer { cfg, model: LinearModel::zeros(dim), t: 0 }
    }

    /// Current model (the round-`i` model `(w(i), b(i))`).
    pub fn model(&self) -> &LinearModel {
        &self.model
    }

    /// Number of examples consumed.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Hyper-parameters in use.
    pub fn config(&self) -> &SgdConfig {
        &self.cfg
    }

    /// Learning rate for the *next* step.
    pub fn eta(&self) -> f64 {
        let lambda = self.cfg.reg.lambda();
        self.cfg.eta0 / (1.0 + lambda * self.cfg.eta0 * self.t as f64)
    }

    /// Consumes one training example; returns a [`StepInfo`] describing the
    /// affine change applied to the model (`w ← shrink·w + grad_coef·f`,
    /// plus an ℓ1 soft-threshold of width `l1_tau` on touched coordinates).
    ///
    /// This is the paper's "retrain the model" step on `Update` — it costs
    /// O(nnz) and produces the next model round `(w(i+1), b(i+1))`. The
    /// returned description lets the view layer maintain an upper bound on
    /// `‖w(i) − w(s)‖_p` incrementally, in O(nnz) instead of O(d) per round.
    pub fn step(&mut self, f: &FeatureVec, y: i8) -> StepInfo {
        let eta = self.eta();
        let z = self.model.margin(f);
        let g = self.cfg.loss.dloss(z, f64::from(y));

        let mut info = StepInfo { eta, shrink: 1.0, grad_coef: 0.0, l1_tau: 0.0 };
        match self.cfg.reg {
            Regularizer::None => {}
            Regularizer::L2(lambda) => {
                // w ← (1 − ηλ) w, O(1) via the scale trick
                let shrink = (1.0 - eta * lambda).max(0.0);
                self.model.w.scale(shrink);
                info.shrink = shrink;
            }
            Regularizer::L1(lambda) => {
                // truncated-gradient style: soft-threshold only the touched
                // coordinates (keeps the step O(nnz))
                let tau = eta * lambda;
                self.model.w.renormalize();
                let w = &mut self.model.w;
                for (i, _) in f.iter() {
                    let wi = w.get(i as usize);
                    let shrunk = if wi > tau {
                        wi - tau
                    } else if wi < -tau {
                        wi + tau
                    } else {
                        0.0
                    };
                    w.axpy(shrunk - wi, &FeatureVec::sparse(i + 1, [(i, 1.0)]));
                }
                info.l1_tau = tau;
            }
        }

        if g != 0.0 {
            // z = w·f − b ⇒ ∂z/∂w = f, ∂z/∂b = −1
            let coef = -eta * g;
            self.model.w.axpy(coef, f);
            self.model.b -= self.cfg.bias_rate * eta * (-g);
            info.grad_coef = coef;
        }
        self.t += 1;
        info
    }

    /// Runs `epochs` passes over `data` in the given order (used for warm
    /// starts and the Figure 10 comparison).
    pub fn train_epochs(&mut self, data: &[TrainingExample], epochs: usize) {
        for _ in 0..epochs {
            for ex in data {
                self.step(&ex.f, ex.y);
            }
        }
    }

    /// Resets model and step counter (the paper retrains from scratch on
    /// deletes — footnote 2).
    pub fn reset(&mut self) {
        self.model = LinearModel::zeros(self.model.w.dim());
        self.t = 0;
    }

    /// Serializes config, model and step counter bit-exactly. A restored
    /// trainer takes the *same* future SGD steps (same learning-rate decay,
    /// same float rounding) as the original — the property crash recovery's
    /// deterministic replay rests on.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        self.cfg.save_state(out);
        self.model.save_state(out);
        out.extend_from_slice(&self.t.to_le_bytes());
    }

    /// Inverse of [`SgdTrainer::save_state`]; `None` on malformed input.
    pub fn restore_state(b: &mut &[u8]) -> Option<SgdTrainer> {
        let cfg = SgdConfig::restore_state(b)?;
        let model = LinearModel::restore_state(b)?;
        let t = hazy_linalg::wire::take_u64(b)?;
        Some(SgdTrainer { cfg, model, t })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::model::sign;

    fn linearly_separable(n: usize) -> Vec<TrainingExample> {
        // true rule: x0 - x1 >= 0.25 ⇒ +1, generated on a grid
        let mut data = Vec::with_capacity(n);
        for k in 0..n {
            let x0 = (k % 17) as f32 / 17.0;
            let x1 = (k % 23) as f32 / 23.0;
            let y = if x0 - x1 >= 0.25 { 1 } else { -1 };
            data.push(TrainingExample::new(k as u64, FeatureVec::dense(vec![x0, x1, 1.0]), y));
        }
        data
    }

    #[test]
    fn learns_a_separable_problem() {
        let data = linearly_separable(400);
        let mut t = SgdTrainer::new(SgdConfig::svm(), 3);
        t.train_epochs(&data, 30);
        let preds: Vec<i8> = data.iter().map(|e| t.model().predict(&e.f)).collect();
        let labels: Vec<i8> = data.iter().map(|e| e.y).collect();
        let acc = accuracy(&preds, &labels);
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn logistic_and_ridge_also_learn() {
        let data = linearly_separable(400);
        // Least squares is a weaker classifier on skewed data (it penalizes
        // confident correct predictions), so it gets a lower bar.
        for (cfg, floor) in [(SgdConfig::logistic(), 0.9), (SgdConfig::ridge(), 0.75)] {
            let mut t = SgdTrainer::new(cfg, 3);
            t.train_epochs(&data, 30);
            let preds: Vec<i8> = data.iter().map(|e| t.model().predict(&e.f)).collect();
            let labels: Vec<i8> = data.iter().map(|e| e.y).collect();
            let acc = accuracy(&preds, &labels);
            assert!(acc > floor, "{:?}: accuracy {acc}", cfg.loss);
        }
    }

    #[test]
    fn eta_decays_with_t() {
        let mut t = SgdTrainer::new(SgdConfig::svm(), 2);
        let e0 = t.eta();
        t.step(&FeatureVec::dense(vec![1.0, 0.0]), 1);
        t.step(&FeatureVec::dense(vec![0.0, 1.0]), -1);
        assert!(t.eta() < e0);
        assert_eq!(t.steps(), 2);
    }

    #[test]
    fn step_moves_margin_toward_label() {
        let mut t = SgdTrainer::new(SgdConfig::svm(), 2);
        let f = FeatureVec::dense(vec![1.0, 2.0]);
        let before = t.model().margin(&f);
        t.step(&f, 1);
        let after = t.model().margin(&f);
        assert!(after > before, "{before} -> {after}");
        assert_eq!(sign(after), 1);
    }

    #[test]
    fn l1_regularization_produces_sparser_models() {
        let data = linearly_separable(300);
        let dense_cfg = SgdConfig { reg: Regularizer::L2(1e-4), ..SgdConfig::svm() };
        let sparse_cfg = SgdConfig { reg: Regularizer::L1(5e-3), ..SgdConfig::svm() };
        let mut a = SgdTrainer::new(dense_cfg, 3);
        let mut b = SgdTrainer::new(sparse_cfg, 3);
        a.train_epochs(&data, 10);
        b.train_epochs(&data, 10);
        let l1_a: f64 = a.model().w.to_vec().iter().map(|x| x.abs()).sum();
        let l1_b: f64 = b.model().w.to_vec().iter().map(|x| x.abs()).sum();
        assert!(l1_b <= l1_a, "L1-regularized {l1_b} vs L2 {l1_a}");
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = SgdTrainer::new(SgdConfig::svm(), 2);
        t.step(&FeatureVec::dense(vec![1.0, 1.0]), 1);
        t.reset();
        assert_eq!(t.steps(), 0);
        assert_eq!(t.model().b, 0.0);
        assert!(t.model().w.to_vec().iter().all(|&x| x == 0.0));
    }
}
