//! Property tests for the training stack.

use hazy_learn::batch::{DcdConfig, DcdSvm};
use hazy_learn::{
    KernelSgd, LossKind, SgdConfig, SgdTrainer, ShiftInvariantKernel, TrainingExample,
};
use hazy_linalg::FeatureVec;
use proptest::prelude::*;

fn arb_example() -> impl Strategy<Value = TrainingExample> {
    (
        prop::collection::vec((0u32..32, -2.0f32..2.0), 1..6),
        prop::bool::ANY,
    )
        .prop_map(|(pairs, pos)| {
            TrainingExample::new(0, FeatureVec::sparse(32, pairs), if pos { 1 } else { -1 })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SGD weights stay finite under arbitrary example streams (the scale
    /// trick and stable loss gradients must not blow up).
    #[test]
    fn sgd_stays_finite(examples in prop::collection::vec(arb_example(), 1..200)) {
        for loss in [LossKind::Hinge, LossKind::Logistic, LossKind::Squared] {
            let mut t = SgdTrainer::new(SgdConfig::for_loss(loss), 32);
            for ex in &examples {
                t.step(&ex.f, ex.y);
            }
            let w = t.model().w.to_vec();
            prop_assert!(w.iter().all(|x| x.is_finite()), "{loss:?} produced non-finite weights");
            prop_assert!(t.model().b.is_finite());
        }
    }

    /// A hinge step never *hurts* the example it just consumed: the margin
    /// moves toward the label (or the example was already satisfied and the
    /// weights only shrink).
    #[test]
    fn hinge_step_moves_margin_toward_label(ex in arb_example(), warm in prop::collection::vec(arb_example(), 0..30)) {
        let mut t = SgdTrainer::new(SgdConfig::svm(), 32);
        for w in &warm {
            t.step(&w.f, w.y);
        }
        let before = t.model().margin(&ex.f);
        let violated = f64::from(ex.y) * before < 1.0;
        t.step(&ex.f, ex.y);
        let after = t.model().margin(&ex.f);
        if violated && ex.f.nnz() > 0 {
            prop_assert!(
                f64::from(ex.y) * after >= f64::from(ex.y) * before - 1e-9,
                "margin moved away: {before} -> {after} (y = {})", ex.y
            );
        }
    }

    /// The batch DCD solver respects its box constraints and its model is
    /// the dual combination of its support vectors (KKT stationarity).
    #[test]
    fn dcd_kkt_stationarity(raw in prop::collection::vec(arb_example(), 4..40)) {
        let cfg = DcdConfig { c: 1.0, max_epochs: 40, ..DcdConfig::default() };
        let sol = DcdSvm::new(cfg).solve(&raw);
        prop_assert!(sol.alpha.iter().all(|&a| (0.0..=1.0 + 1e-9).contains(&a)));
        // w must equal Σ αᵢ yᵢ xᵢ exactly (reconstruct and compare)
        let mut w = vec![0.0f64; 32];
        let mut b = 0.0f64;
        for (ex, &a) in raw.iter().zip(sol.alpha.iter()) {
            for (j, v) in ex.f.iter() {
                w[j as usize] += a * f64::from(ex.y) * f64::from(v);
            }
            b += a * f64::from(ex.y); // augmented bias feature
        }
        let got = sol.model.w.to_vec();
        for j in 0..32 {
            let have = got.get(j).copied().unwrap_or(0.0);
            prop_assert!((have - w[j]).abs() < 1e-6, "w[{j}] {have} vs {w:?}");
        }
        prop_assert!((sol.model.b - (-b)).abs() < 1e-6);
    }

    /// The kernel trainer's ℓ1 drift bound dominates the true margin
    /// movement at arbitrary probe points (the Appendix B.5.2 bound).
    #[test]
    fn kernel_drift_bound_holds(
        stream in prop::collection::vec(arb_example(), 1..60),
        probes in prop::collection::vec(arb_example(), 1..10),
    ) {
        let mut t = KernelSgd::new(ShiftInvariantKernel::Gaussian { gamma: 0.7 }, 0.5, 1e-3, 32);
        let mid = stream.len() / 2;
        for ex in &stream[..mid] {
            t.step(&ex.f, ex.y);
        }
        let reference = t.model().clone();
        t.snapshot();
        for ex in &stream[mid..] {
            t.step(&ex.f, ex.y);
        }
        let bound = t.drift_l1() + (t.model().b - reference.b).abs();
        for p in &probes {
            let moved = (t.model().margin(&p.f) - reference.margin(&p.f)).abs();
            prop_assert!(moved <= bound + 1e-9, "moved {moved} > bound {bound}");
        }
    }
}
