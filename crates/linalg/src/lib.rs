//! Vector primitives for the Hazy classification-view engine.
//!
//! The paper represents every entity as a feature vector `f ∈ R^d` produced by
//! a *feature function* (Section 2.1). Text corpora (DBLife, Citeseer) use
//! sparse bag-of-words vectors with thousands-to-millions of dimensions but
//! only a handful of nonzero components, while UCI-style datasets (Forest)
//! use short dense vectors. This crate provides:
//!
//! * [`FeatureVec`] — an owned dense-or-sparse `f32` feature vector,
//! * [`ScaledDense`] — a dense `f64` model vector with the scalar-scale trick
//!   used by stochastic gradient descent so ℓ2 shrinkage costs O(1),
//! * [`Norm`] / [`holder_conjugate`] — the Hölder-pair machinery behind the
//!   paper's Lemma 3.1 watermark bounds,
//! * [`OrdF64`] — a totally-ordered `f64` wrapper used to cluster tuples by
//!   their margin `eps`,
//! * [`FeatureVecRef`] / [`Features`] — the borrowed, zero-copy view of an
//!   encoded vector and the trait unifying it with [`FeatureVec`], so scans
//!   classify straight off page bytes without materializing anything,
//! * binary (de)serialization of feature vectors for on-disk tuples.

mod norms;
mod ordf64;
mod scaled;
mod serial;
mod vector;
mod vref;
pub mod wire;

pub use norms::{holder_conjugate, norm_of_slice, Norm, NormPair};
pub use ordf64::OrdF64;
pub use scaled::ScaledDense;
pub use serial::{decode_fvec, decode_fvec_ref, encode_fvec, encoded_len};
pub use vector::FeatureVec;
pub use vref::{FeatureVecRef, Features};
