//! Norms and Hölder-conjugate pairs.
//!
//! Lemma 3.1 of the paper bounds how far any entity can move relative to the
//! separating hyperplane when the model changes from `w(s)` to `w(j)`:
//! `|⟨δw, f⟩| ≤ ‖δw‖_p · ‖f‖_q` for any Hölder conjugates `1/p + 1/q = 1`.
//! Hazy picks the pair for *quality* reasons (Section 3.2.2): text pipelines
//! ℓ1-normalize documents and use `(p=∞, q=1)`; dense numeric data uses
//! `(p=2, q=2)`.

/// The three norms Hazy uses (`p` or `q` side of a Hölder pair).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Norm {
    /// `‖x‖_1 = Σ|x_i|`
    L1,
    /// `‖x‖_2 = sqrt(Σ x_i²)`
    L2,
    /// `‖x‖_∞ = max|x_i|`
    LInf,
}

impl Norm {
    /// Stable one-byte wire tag for durable state.
    pub fn tag(self) -> u8 {
        match self {
            Norm::L1 => 1,
            Norm::L2 => 2,
            Norm::LInf => 3,
        }
    }

    /// Inverse of [`Norm::tag`].
    pub fn from_tag(t: u8) -> Option<Norm> {
        match t {
            1 => Some(Norm::L1),
            2 => Some(Norm::L2),
            3 => Some(Norm::LInf),
            _ => None,
        }
    }
}

/// Returns the Hölder conjugate of `p` (`1/p + 1/q = 1`): `L1 ↔ LInf`,
/// `L2 ↔ L2`.
pub fn holder_conjugate(p: Norm) -> Norm {
    match p {
        Norm::L1 => Norm::LInf,
        Norm::L2 => Norm::L2,
        Norm::LInf => Norm::L1,
    }
}

/// A Hölder pair `(p, q)`: model deltas are measured in `‖·‖_p`, feature
/// vectors in `‖·‖_q`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NormPair {
    /// Norm applied to the model delta `w(j) − w(s)`.
    pub p: Norm,
    /// Norm applied to feature vectors (defines `M = max_t ‖f(t)‖_q`).
    pub q: Norm,
}

impl NormPair {
    /// `(p=∞, q=1)` — the paper's choice for ℓ1-normalized text.
    pub const TEXT: NormPair = NormPair { p: Norm::LInf, q: Norm::L1 };
    /// `(p=2, q=2)` — the paper's choice for ℓ2-normalized numeric data.
    pub const EUCLIDEAN: NormPair = NormPair { p: Norm::L2, q: Norm::L2 };

    /// Builds a pair from the model-side norm, deriving the conjugate.
    pub fn from_p(p: Norm) -> NormPair {
        NormPair { p, q: holder_conjugate(p) }
    }

    /// True when `(p, q)` really are Hölder conjugates.
    pub fn is_conjugate(&self) -> bool {
        holder_conjugate(self.p) == self.q
    }
}

/// `‖x‖_n` of a dense `f64` slice.
pub fn norm_of_slice(x: &[f64], n: Norm) -> f64 {
    match n {
        Norm::L1 => x.iter().map(|v| v.abs()).sum(),
        Norm::L2 => x.iter().map(|v| v * v).sum::<f64>().sqrt(),
        Norm::LInf => x.iter().fold(0.0f64, |m, v| m.max(v.abs())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureVec;

    #[test]
    fn conjugates_are_involutive() {
        for p in [Norm::L1, Norm::L2, Norm::LInf] {
            assert_eq!(holder_conjugate(holder_conjugate(p)), p);
        }
    }

    #[test]
    fn builtin_pairs_are_conjugate() {
        assert!(NormPair::TEXT.is_conjugate());
        assert!(NormPair::EUCLIDEAN.is_conjugate());
        assert!(NormPair::from_p(Norm::L1).is_conjugate());
    }

    #[test]
    fn slice_norms() {
        let x = [3.0, -4.0, 0.0];
        assert_eq!(norm_of_slice(&x, Norm::L1), 7.0);
        assert_eq!(norm_of_slice(&x, Norm::L2), 5.0);
        assert_eq!(norm_of_slice(&x, Norm::LInf), 4.0);
        assert_eq!(norm_of_slice(&[], Norm::LInf), 0.0);
    }

    /// The inequality Lemma 3.1 rests on: `|x·y| ≤ ‖x‖_p ‖y‖_q`.
    #[test]
    fn holder_inequality_on_examples() {
        let f = FeatureVec::sparse(6, vec![(0, 1.5), (3, -2.0), (5, 0.25)]);
        let w = [0.1f64, -3.0, 2.0, 0.7, 0.0, -0.9];
        let dot = f.dot(&w).abs();
        for pair in [NormPair::TEXT, NormPair::EUCLIDEAN, NormPair::from_p(Norm::L1)] {
            let bound = norm_of_slice(&w, pair.p) * f.norm(pair.q);
            assert!(dot <= bound + 1e-9, "{pair:?}: {dot} > {bound}");
        }
    }
}
