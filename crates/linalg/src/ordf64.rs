//! A totally ordered `f64` used as a sort/cluster key.

use std::cmp::Ordering;

/// `f64` with a total order, for clustering tuples by their margin `eps`.
///
/// Hazy keeps the scratch table `H` physically ordered by `eps` and keeps a
/// clustered index on it; both need `Ord`. The order is the IEEE-754 total
/// order (`-NaN < -Inf < ... < +Inf < +NaN`), which agrees with `<` on all
/// values the engine produces (margins are always finite).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Order-preserving map to `u64`: `a < b ⇔ key(a) < key(b)`.
    ///
    /// This is the classic sign-flip trick; it lets fixed-width byte-ordered
    /// structures (the storage crate's B+-tree) index floats.
    pub fn sortable_key(self) -> u64 {
        let bits = self.0.to_bits();
        if bits >> 63 == 0 {
            bits | (1 << 63) // positive: set sign bit
        } else {
            !bits // negative: flip everything
        }
    }

    /// Inverse of [`OrdF64::sortable_key`].
    pub fn from_sortable_key(key: u64) -> OrdF64 {
        let bits = if key >> 63 == 1 { key & !(1 << 63) } else { !key };
        OrdF64(f64::from_bits(bits))
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        OrdF64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64_on_finite_values() {
        let mut v = [OrdF64(1.0), OrdF64(-2.5), OrdF64(0.0), OrdF64(-0.0), OrdF64(7.0)];
        v.sort();
        let raw: Vec<f64> = v.iter().map(|x| x.0).collect();
        assert_eq!(raw, vec![-2.5, -0.0, 0.0, 1.0, 7.0]);
    }

    #[test]
    fn sortable_key_preserves_order() {
        let samples = [-1e300, -1.0, -1e-300, -0.0, 0.0, 1e-300, 1.0, 1e300];
        for w in samples.windows(2) {
            let (a, b) = (OrdF64(w[0]), OrdF64(w[1]));
            assert!(a.sortable_key() <= b.sortable_key(), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn sortable_key_round_trips() {
        for v in [-123.456, -0.0, 0.0, 1.5, f64::MAX, f64::MIN_POSITIVE] {
            let k = OrdF64(v).sortable_key();
            assert_eq!(OrdF64::from_sortable_key(k).0.to_bits(), v.to_bits());
        }
    }
}
