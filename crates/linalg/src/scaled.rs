//! Dense model vector with the scalar-scale trick.

use crate::norms::{norm_of_slice, Norm};
use crate::vector::FeatureVec;
use crate::vref::Features;

/// A dense `f64` vector stored as `w = s · v`.
///
/// Stochastic gradient descent with ℓ2 regularization shrinks the whole model
/// by `(1 − η·λ)` on every step; done naively that is O(d) per step, which on
/// Citeseer-sized vocabularies (~700k dims) dominates the sparse gradient
/// update. Keeping the scalar `s` outside the vector makes the shrink O(1)
/// while sparse additions divide by `s` once per nonzero — the trick used by
/// Bottou's SGD code that the paper builds on.
#[derive(Clone, Debug)]
pub struct ScaledDense {
    v: Vec<f64>,
    s: f64,
}

/// Below this scale the stored components grow large enough to threaten
/// precision, so the vector is re-materialized.
const RENORM_THRESHOLD: f64 = 1e-9;

impl ScaledDense {
    /// The zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        ScaledDense { v: vec![0.0; dim], s: 1.0 }
    }

    /// Wraps an existing dense vector (scale 1).
    pub fn from_vec(v: Vec<f64>) -> Self {
        ScaledDense { v, s: 1.0 }
    }

    /// Current dimensionality.
    pub fn dim(&self) -> usize {
        self.v.len()
    }

    /// Grows to at least `dim`, zero-filling new components.
    pub fn grow_to(&mut self, dim: usize) {
        if dim > self.v.len() {
            self.v.resize(dim, 0.0);
        }
    }

    /// Effective component `i` (`s · v[i]`), zero when out of range.
    pub fn get(&self, i: usize) -> f64 {
        self.v.get(i).map_or(0.0, |&x| self.s * x)
    }

    /// `w · f` where `f` is any feature-vector representation (owned or
    /// borrowed — the zero-copy scan path classifies straight off page
    /// bytes through this).
    pub fn dot<F: Features>(&self, f: &F) -> f64 {
        self.s * f.dot(&self.v)
    }

    /// Multiplies the whole vector by `c` in O(1).
    ///
    /// `c == 0` resets the vector exactly (and restores scale 1).
    pub fn scale(&mut self, c: f64) {
        if c == 0.0 {
            self.v.iter_mut().for_each(|x| *x = 0.0);
            self.s = 1.0;
            return;
        }
        self.s *= c;
        if self.s.abs() < RENORM_THRESHOLD {
            self.renormalize();
        }
    }

    /// `w += a · f` (sparse-aware: O(nnz)).
    pub fn axpy(&mut self, a: f64, f: &FeatureVec) {
        self.grow_to(f.dim() as usize);
        let inv = a / self.s;
        match f {
            FeatureVec::Dense(c) => {
                for (k, &x) in c.iter().enumerate() {
                    self.v[k] += inv * f64::from(x);
                }
            }
            FeatureVec::Sparse { idx, val, .. } => {
                for (&i, &x) in idx.iter().zip(val.iter()) {
                    self.v[i as usize] += inv * f64::from(x);
                }
            }
        }
    }

    /// Folds the scale back into the components (`s` becomes 1).
    pub fn renormalize(&mut self) {
        if self.s != 1.0 {
            let s = self.s;
            self.v.iter_mut().for_each(|x| *x *= s);
            self.s = 1.0;
        }
    }

    /// Materializes the effective vector.
    pub fn to_vec(&self) -> Vec<f64> {
        self.v.iter().map(|&x| self.s * x).collect()
    }

    /// `‖w‖_n` of the effective vector.
    pub fn norm(&self, n: Norm) -> f64 {
        self.s.abs() * norm_of_slice(&self.v, n)
    }

    /// Serializes `(s, v)` bit-exactly. The scaled representation — not the
    /// materialized vector — is what round-trips: future dot products compute
    /// `s·(v·f)`, so restoring a renormalized copy would change rounding and
    /// break bit-identical recovery.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.s.to_bits().to_le_bytes());
        crate::wire::put_f64s(out, &self.v);
    }

    /// Inverse of [`ScaledDense::save_state`]; `None` on truncated input.
    pub fn restore_state(b: &mut &[u8]) -> Option<ScaledDense> {
        let s = crate::wire::take_f64(b)?;
        let v = crate::wire::take_f64s(b)?;
        Some(ScaledDense { v, s })
    }

    /// `‖w − other‖_p` — the model-delta norm in the watermark bound.
    pub fn diff_norm(&self, other: &ScaledDense, p: Norm) -> f64 {
        let n = self.v.len().max(other.v.len());
        let mut l1 = 0.0f64;
        let mut l2 = 0.0f64;
        let mut linf = 0.0f64;
        for i in 0..n {
            let d = self.get(i) - other.get(i);
            let a = d.abs();
            l1 += a;
            l2 += d * d;
            linf = linf.max(a);
        }
        match p {
            Norm::L1 => l1,
            Norm::L2 => l2.sqrt(),
            Norm::LInf => linf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn axpy_then_scale_matches_naive() {
        let f1 = FeatureVec::sparse(4, vec![(0, 1.0), (2, 3.0)]);
        let f2 = FeatureVec::dense(vec![0.5, -1.0, 0.0, 2.0]);
        let mut w = ScaledDense::zeros(4);
        let mut naive = [0.0f64; 4];

        // interleave scales and adds the way one SGD run would
        w.axpy(2.0, &f1);
        naive.iter_mut().zip(f1.to_dense().iter()).for_each(|(n, &x)| *n += 2.0 * f64::from(x));
        w.scale(0.9);
        naive.iter_mut().for_each(|n| *n *= 0.9);
        w.axpy(-0.5, &f2);
        naive.iter_mut().zip(f2.to_dense().iter()).for_each(|(n, &x)| *n += -0.5 * f64::from(x));
        w.scale(0.8);
        naive.iter_mut().for_each(|n| *n *= 0.8);

        for (i, &n) in naive.iter().enumerate() {
            assert!(close(w.get(i), n), "component {i}: {} vs {n}", w.get(i));
        }
    }

    #[test]
    fn scale_zero_resets_exactly() {
        let mut w = ScaledDense::from_vec(vec![1.0, 2.0]);
        w.scale(0.0);
        assert_eq!(w.to_vec(), vec![0.0, 0.0]);
        w.axpy(1.0, &FeatureVec::dense(vec![3.0, 4.0]));
        assert_eq!(w.to_vec(), vec![3.0, 4.0]);
    }

    #[test]
    fn repeated_tiny_scales_stay_finite() {
        let mut w = ScaledDense::from_vec(vec![1.0, -1.0]);
        for _ in 0..10_000 {
            w.scale(0.999);
        }
        let expected = 0.999f64.powi(10_000);
        assert!(close(w.get(0), expected));
        assert!(w.to_vec().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn axpy_grows_dimension() {
        let mut w = ScaledDense::zeros(1);
        w.axpy(1.0, &FeatureVec::sparse(10, vec![(9, 2.0)]));
        assert_eq!(w.dim(), 10);
        assert_eq!(w.get(9), 2.0);
    }

    #[test]
    fn diff_norm_handles_unequal_dims() {
        let a = ScaledDense::from_vec(vec![1.0]);
        let b = ScaledDense::from_vec(vec![1.0, -2.0]);
        assert_eq!(a.diff_norm(&b, Norm::L1), 2.0);
        assert_eq!(a.diff_norm(&b, Norm::LInf), 2.0);
        assert_eq!(b.diff_norm(&a, Norm::L2), 2.0);
    }

    #[test]
    fn dot_matches_materialized() {
        let mut w = ScaledDense::zeros(3);
        w.axpy(1.5, &FeatureVec::dense(vec![1.0, 2.0, -1.0]));
        w.scale(2.0);
        let f = FeatureVec::sparse(3, vec![(1, 4.0)]);
        assert!(close(w.dot(&f), f.dot(&w.to_vec())));
    }
}
