//! Binary encoding of feature vectors for on-disk tuples.
//!
//! The scratch table `H(id, f, eps)` stores the feature vector inline with
//! each tuple (Section 3.2), so the storage crate needs a compact,
//! position-independent encoding. Layout (little-endian):
//!
//! ```text
//! dense :  0x01 | len: u32 | len × f32
//! sparse:  0x02 | dim: u32 | nnz: u32 | nnz × u32 (idx) | nnz × f32 (val)
//! ```

use bytes::{Buf, BufMut};

use crate::vector::FeatureVec;

const TAG_DENSE: u8 = 0x01;
const TAG_SPARSE: u8 = 0x02;

/// Exact encoded size in bytes of `f` (header + payload).
pub fn encoded_len(f: &FeatureVec) -> usize {
    match f {
        FeatureVec::Dense(c) => 1 + 4 + 4 * c.len(),
        FeatureVec::Sparse { idx, .. } => 1 + 4 + 4 + 8 * idx.len(),
    }
}

/// Appends the encoding of `f` to `out`.
pub fn encode_fvec(f: &FeatureVec, out: &mut impl BufMut) {
    match f {
        FeatureVec::Dense(c) => {
            out.put_u8(TAG_DENSE);
            out.put_u32_le(c.len() as u32);
            for &v in c.iter() {
                out.put_f32_le(v);
            }
        }
        FeatureVec::Sparse { dim, idx, val } => {
            out.put_u8(TAG_SPARSE);
            out.put_u32_le(*dim);
            out.put_u32_le(idx.len() as u32);
            for &i in idx.iter() {
                out.put_u32_le(i);
            }
            for &v in val.iter() {
                out.put_f32_le(v);
            }
        }
    }
}

/// Decodes one feature vector from the front of `buf`, advancing it.
///
/// Returns `None` on malformed or truncated input (a corrupted page must not
/// crash the engine; callers surface a storage error instead).
pub fn decode_fvec(buf: &mut impl Buf) -> Option<FeatureVec> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        TAG_DENSE => {
            if buf.remaining() < 4 {
                return None;
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < 4 * len {
                return None;
            }
            let mut c = Vec::with_capacity(len);
            for _ in 0..len {
                c.push(buf.get_f32_le());
            }
            Some(FeatureVec::Dense(c.into()))
        }
        TAG_SPARSE => {
            if buf.remaining() < 8 {
                return None;
            }
            let dim = buf.get_u32_le();
            let nnz = buf.get_u32_le() as usize;
            if buf.remaining() < 8 * nnz {
                return None;
            }
            let mut idx = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                idx.push(buf.get_u32_le());
            }
            // Indices must be strictly increasing and in range; reject
            // anything else rather than build an invariant-violating vector.
            if idx.windows(2).any(|w| w[0] >= w[1]) || idx.last().is_some_and(|&i| i >= dim) {
                return None;
            }
            let mut val = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                val.push(buf.get_f32_le());
            }
            Some(FeatureVec::Sparse { dim, idx: idx.into(), val: val.into() })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: &FeatureVec) {
        let mut buf = Vec::new();
        encode_fvec(f, &mut buf);
        assert_eq!(buf.len(), encoded_len(f));
        let mut slice = &buf[..];
        let back = decode_fvec(&mut slice).expect("decode");
        assert_eq!(&back, f);
        assert!(slice.is_empty(), "decoder must consume exactly the encoding");
    }

    #[test]
    fn dense_round_trip() {
        round_trip(&FeatureVec::dense(vec![1.5, -2.0, 0.0, 3.25]));
        round_trip(&FeatureVec::dense(Vec::<f32>::new()));
    }

    #[test]
    fn sparse_round_trip() {
        round_trip(&FeatureVec::sparse(1000, vec![(3, 1.0), (999, -0.5)]));
        round_trip(&FeatureVec::zeros(42));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        encode_fvec(&FeatureVec::dense(vec![1.0, 2.0]), &mut buf);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(decode_fvec(&mut slice).is_none(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut slice: &[u8] = &[0x7f, 0, 0, 0, 0];
        assert!(decode_fvec(&mut slice).is_none());
    }

    #[test]
    fn non_increasing_indices_are_rejected() {
        // hand-build a sparse encoding with idx [5, 5]
        let mut buf = vec![0x02];
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&5u32.to_le_bytes());
        buf.extend_from_slice(&5u32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        let mut slice = &buf[..];
        assert!(decode_fvec(&mut slice).is_none());
    }

    #[test]
    fn out_of_dim_index_is_rejected() {
        let mut buf = vec![0x02];
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&4u32.to_le_bytes()); // idx 4 >= dim 4
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        let mut slice = &buf[..];
        assert!(decode_fvec(&mut slice).is_none());
    }
}
