//! Binary encoding of feature vectors for on-disk tuples.
//!
//! The scratch table `H(id, f, eps)` stores the feature vector inline with
//! each tuple (Section 3.2), so the storage crate needs a compact,
//! position-independent encoding. Layout (little-endian):
//!
//! ```text
//! dense :  0x01 | len: u32 | len × f32
//! sparse:  0x02 | dim: u32 | nnz: u32 | nnz × u32 (idx) | nnz × f32 (val)
//! ```

use bytes::{Buf, BufMut};

use crate::vector::FeatureVec;
use crate::vref::FeatureVecRef;

const TAG_DENSE: u8 = 0x01;
const TAG_SPARSE: u8 = 0x02;

/// Reads `n` little-endian 4-byte scalars, preferring one bulk pass over
/// the contiguous front chunk (per-element `Buf` reads pay a bounds check
/// and a 4-byte copy each; the bulk path is a straight chunked conversion
/// the compiler vectorizes). `one` is the per-element fallback for
/// non-contiguous buffers.
fn read_scalars<B: Buf, T>(
    buf: &mut B,
    n: usize,
    from_le: impl Fn([u8; 4]) -> T,
    one: impl Fn(&mut B) -> T,
) -> Vec<T> {
    let front = buf.chunk();
    if front.len() >= 4 * n {
        let out: Vec<T> = front[..4 * n]
            .chunks_exact(4)
            .map(|b| from_le(b.try_into().expect("4-byte chunk")))
            .collect();
        buf.advance(4 * n);
        out
    } else {
        (0..n).map(|_| one(buf)).collect()
    }
}

/// Reads `n` little-endian `u32`s (bulk when contiguous).
fn read_u32s(buf: &mut impl Buf, n: usize) -> Vec<u32> {
    read_scalars(buf, n, u32::from_le_bytes, |b| b.get_u32_le())
}

/// Reads `n` little-endian `f32`s (bulk when contiguous).
fn read_f32s(buf: &mut impl Buf, n: usize) -> Vec<f32> {
    read_scalars(buf, n, f32::from_le_bytes, |b| b.get_f32_le())
}

/// Exact encoded size in bytes of `f` (header + payload).
pub fn encoded_len(f: &FeatureVec) -> usize {
    match f {
        FeatureVec::Dense(c) => 1 + 4 + 4 * c.len(),
        FeatureVec::Sparse { idx, .. } => 1 + 4 + 4 + 8 * idx.len(),
    }
}

/// Appends the encoding of `f` to `out`.
pub fn encode_fvec(f: &FeatureVec, out: &mut impl BufMut) {
    match f {
        FeatureVec::Dense(c) => {
            out.put_u8(TAG_DENSE);
            out.put_u32_le(c.len() as u32);
            for &v in c.iter() {
                out.put_f32_le(v);
            }
        }
        FeatureVec::Sparse { dim, idx, val } => {
            out.put_u8(TAG_SPARSE);
            out.put_u32_le(*dim);
            out.put_u32_le(idx.len() as u32);
            for &i in idx.iter() {
                out.put_u32_le(i);
            }
            for &v in val.iter() {
                out.put_f32_le(v);
            }
        }
    }
}

/// Decodes one feature vector from the front of `buf`, advancing it.
///
/// Returns `None` on malformed or truncated input (a corrupted page must not
/// crash the engine; callers surface a storage error instead).
pub fn decode_fvec(buf: &mut impl Buf) -> Option<FeatureVec> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        TAG_DENSE => {
            if buf.remaining() < 4 {
                return None;
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < 4 * len {
                return None;
            }
            Some(FeatureVec::Dense(read_f32s(buf, len).into()))
        }
        TAG_SPARSE => {
            if buf.remaining() < 8 {
                return None;
            }
            let dim = buf.get_u32_le();
            let nnz = buf.get_u32_le() as usize;
            if buf.remaining() < 8 * nnz {
                return None;
            }
            let idx = read_u32s(buf, nnz);
            // Indices must be strictly increasing and in range; reject
            // anything else rather than build an invariant-violating vector.
            if idx.windows(2).any(|w| w[0] >= w[1]) || idx.last().is_some_and(|&i| i >= dim) {
                return None;
            }
            let val = read_f32s(buf, nnz);
            Some(FeatureVec::Sparse { dim, idx: idx.into(), val: val.into() })
        }
        _ => None,
    }
}

/// Decodes one feature vector from the front of `buf` **without copying**,
/// advancing the slice past the encoding. The returned [`FeatureVecRef`]
/// borrows the payload bytes directly (the zero-copy scan path).
///
/// Accepts and rejects **exactly** the inputs [`decode_fvec`] does —
/// truncated payloads, unknown tags, non-increasing or out-of-dimension
/// sparse indices all return `None` (property-tested in
/// `tests/properties.rs`).
pub fn decode_fvec_ref<'a>(buf: &mut &'a [u8]) -> Option<FeatureVecRef<'a>> {
    let b = *buf;
    match *b.first()? {
        TAG_DENSE => {
            if b.len() < 5 {
                return None;
            }
            let len = u32::from_le_bytes(b[1..5].try_into().expect("4 bytes")) as usize;
            let need = 4 * len;
            if b.len() - 5 < need {
                return None;
            }
            let raw = &b[5..5 + need];
            *buf = &b[5 + need..];
            Some(FeatureVecRef::Dense { raw })
        }
        TAG_SPARSE => {
            if b.len() < 9 {
                return None;
            }
            let dim = u32::from_le_bytes(b[1..5].try_into().expect("4 bytes"));
            let nnz = u32::from_le_bytes(b[5..9].try_into().expect("4 bytes")) as usize;
            let need = 8 * nnz;
            if b.len() - 9 < need {
                return None;
            }
            let idx_raw = &b[9..9 + 4 * nnz];
            let val_raw = &b[9 + 4 * nnz..9 + need];
            // Same invariant check as the owned decoder: strictly increasing
            // indices, all below `dim` (strictly increasing makes the last
            // index the maximum, so one range check covers them all).
            let mut prev: Option<u32> = None;
            for chunk in idx_raw.chunks_exact(4) {
                let i = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                if i >= dim || prev.is_some_and(|p| p >= i) {
                    return None;
                }
                prev = Some(i);
            }
            *buf = &b[9 + need..];
            Some(FeatureVecRef::Sparse { dim, idx_raw, val_raw })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: &FeatureVec) {
        let mut buf = Vec::new();
        encode_fvec(f, &mut buf);
        assert_eq!(buf.len(), encoded_len(f));
        let mut slice = &buf[..];
        let back = decode_fvec(&mut slice).expect("decode");
        assert_eq!(&back, f);
        assert!(slice.is_empty(), "decoder must consume exactly the encoding");
        // the zero-copy decoder agrees on value and consumed length
        let mut slice = &buf[..];
        let bref = decode_fvec_ref(&mut slice).expect("ref decode");
        assert_eq!(&bref.to_owned(), f);
        assert!(slice.is_empty(), "ref decoder must consume exactly the encoding");
    }

    /// Both decoders must agree on whether `bytes` is a valid encoding.
    fn both_reject(bytes: &[u8]) {
        let mut a = bytes;
        assert!(decode_fvec(&mut a).is_none(), "owned decoder accepted");
        let mut b = bytes;
        assert!(decode_fvec_ref(&mut b).is_none(), "ref decoder accepted");
    }

    #[test]
    fn dense_round_trip() {
        round_trip(&FeatureVec::dense(vec![1.5, -2.0, 0.0, 3.25]));
        round_trip(&FeatureVec::dense(Vec::<f32>::new()));
    }

    #[test]
    fn sparse_round_trip() {
        round_trip(&FeatureVec::sparse(1000, vec![(3, 1.0), (999, -0.5)]));
        round_trip(&FeatureVec::zeros(42));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        encode_fvec(&FeatureVec::dense(vec![1.0, 2.0]), &mut buf);
        for cut in 0..buf.len() {
            both_reject(&buf[..cut]);
        }
        let mut sparse = Vec::new();
        encode_fvec(&FeatureVec::sparse(10, vec![(1, 1.0), (7, 2.0)]), &mut sparse);
        for cut in 0..sparse.len() {
            both_reject(&sparse[..cut]);
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        both_reject(&[0x7f, 0, 0, 0, 0]);
        both_reject(&[]);
    }

    #[test]
    fn non_increasing_indices_are_rejected() {
        // hand-build a sparse encoding with idx [5, 5]
        let mut buf = vec![0x02];
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&5u32.to_le_bytes());
        buf.extend_from_slice(&5u32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        both_reject(&buf);
    }

    #[test]
    fn out_of_dim_index_is_rejected() {
        let mut buf = vec![0x02];
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&4u32.to_le_bytes()); // idx 4 >= dim 4
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        both_reject(&buf);
    }

    #[test]
    fn ref_decode_consumes_exactly_one_encoding_from_a_stream() {
        // two encodings back-to-back, as they sit inside a page record
        let a = FeatureVec::sparse(50, vec![(2, 1.0), (30, -2.0)]);
        let b = FeatureVec::dense(vec![0.5, 1.5]);
        let mut buf = Vec::new();
        encode_fvec(&a, &mut buf);
        encode_fvec(&b, &mut buf);
        let mut slice = &buf[..];
        let ra = decode_fvec_ref(&mut slice).expect("first");
        assert_eq!(ra.to_owned(), a);
        let rb = decode_fvec_ref(&mut slice).expect("second");
        assert_eq!(rb.to_owned(), b);
        assert!(slice.is_empty());
    }
}
