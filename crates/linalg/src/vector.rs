//! Owned feature vectors: dense or sparse, `f32` components.

use crate::norms::Norm;

/// A feature vector `f ∈ R^d` attached to an entity.
///
/// Sparse vectors keep `(index, value)` pairs with indices strictly
/// increasing; dense vectors store all `d` components. Components are `f32`
/// (features rarely need more precision) while all accumulations — dot
/// products, norms — are carried out in `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum FeatureVec {
    /// All `d` components, in order.
    Dense(Box<[f32]>),
    /// Nonzero components of a `dim`-dimensional vector.
    Sparse {
        /// Dimensionality `d` of the ambient space.
        dim: u32,
        /// Strictly increasing component indices (`< dim`).
        idx: Box<[u32]>,
        /// Values matching `idx` element-for-element.
        val: Box<[f32]>,
    },
}

impl FeatureVec {
    /// Builds a dense vector from components.
    pub fn dense(components: impl Into<Box<[f32]>>) -> Self {
        FeatureVec::Dense(components.into())
    }

    /// Builds a sparse vector from `(index, value)` pairs.
    ///
    /// Pairs are sorted and merged (duplicate indices summed); zero values are
    /// dropped so the representation is canonical.
    ///
    /// # Panics
    /// Panics if any index is `>= dim`.
    pub fn sparse(dim: u32, pairs: impl IntoIterator<Item = (u32, f32)>) -> Self {
        let mut pairs: Vec<(u32, f32)> = pairs.into_iter().collect();
        // Fast path: input already in canonical form (strictly increasing
        // indices, no zeros) — one scan instead of sort + merge + compact.
        // Decoded tuples and normalized documents arrive canonical, so this
        // is the common case on hot paths. `v != 0.0` deliberately sends
        // `-0.0` to the slow path, which canonicalizes it away.
        if pairs.windows(2).all(|w| w[0].0 < w[1].0) && pairs.iter().all(|&(_, v)| v != 0.0) {
            if let Some(&(last, _)) = pairs.last() {
                // strictly increasing ⇒ `last` is the maximum index
                assert!(last < dim, "sparse index {last} out of dimension {dim}");
            }
            let (idx, val): (Vec<u32>, Vec<f32>) = pairs.into_iter().unzip();
            return FeatureVec::Sparse { dim, idx: idx.into(), val: val.into() };
        }
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut idx = Vec::with_capacity(pairs.len());
        let mut val: Vec<f32> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            assert!(i < dim, "sparse index {i} out of dimension {dim}");
            if Some(&i) == idx.last() {
                *val.last_mut().expect("idx/val stay in lockstep") += v;
            } else {
                idx.push(i);
                val.push(v);
            }
        }
        // Remove entries that cancelled to zero to keep the form canonical.
        let mut k = 0;
        for j in 0..idx.len() {
            if val[j] != 0.0 {
                idx[k] = idx[j];
                val[k] = val[j];
                k += 1;
            }
        }
        idx.truncate(k);
        val.truncate(k);
        FeatureVec::Sparse { dim, idx: idx.into(), val: val.into() }
    }

    /// The all-zero sparse vector of dimension `dim`.
    pub fn zeros(dim: u32) -> Self {
        FeatureVec::Sparse { dim, idx: Box::new([]), val: Box::new([]) }
    }

    /// Dimensionality `d` of the ambient space.
    pub fn dim(&self) -> u32 {
        match self {
            FeatureVec::Dense(c) => c.len() as u32,
            FeatureVec::Sparse { dim, .. } => *dim,
        }
    }

    /// Number of stored (potentially nonzero) components.
    pub fn nnz(&self) -> usize {
        match self {
            FeatureVec::Dense(c) => c.len(),
            FeatureVec::Sparse { idx, .. } => idx.len(),
        }
    }

    /// Iterates `(index, value)` over stored components in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        // Both arms are mapped into the same concrete iterator type by
        // boxing; the iterator is tiny compared to the work done per item.
        let it: Box<dyn Iterator<Item = (u32, f32)>> = match self {
            FeatureVec::Dense(c) => {
                Box::new(c.iter().enumerate().map(|(i, &v)| (i as u32, v)))
            }
            FeatureVec::Sparse { idx, val, .. } => {
                Box::new(idx.iter().zip(val.iter()).map(|(&i, &v)| (i, v)))
            }
        };
        it
    }

    /// Component `i`, treating missing sparse entries as zero.
    pub fn get(&self, i: u32) -> f32 {
        match self {
            FeatureVec::Dense(c) => c.get(i as usize).copied().unwrap_or(0.0),
            FeatureVec::Sparse { idx, val, .. } => match idx.binary_search(&i) {
                Ok(k) => val[k],
                Err(_) => 0.0,
            },
        }
    }

    /// Dot product against a dense `f64` model vector.
    ///
    /// Model vectors shorter than `dim` are implicitly zero-extended, which
    /// lets the trainer grow the model lazily as new vocabulary appears.
    pub fn dot(&self, w: &[f64]) -> f64 {
        match self {
            FeatureVec::Dense(c) => {
                let n = c.len().min(w.len());
                let mut acc = 0.0f64;
                for k in 0..n {
                    acc += f64::from(c[k]) * w[k];
                }
                acc
            }
            FeatureVec::Sparse { idx, val, .. } => {
                let mut acc = 0.0f64;
                for (&i, &v) in idx.iter().zip(val.iter()) {
                    if let Some(&wi) = w.get(i as usize) {
                        acc += f64::from(v) * wi;
                    }
                }
                acc
            }
        }
    }

    /// `‖f‖_q` for the Hölder pair in use (Lemma 3.1's `M` is the max of
    /// these over the corpus).
    pub fn norm(&self, q: Norm) -> f64 {
        let mut l1 = 0.0f64;
        let mut l2 = 0.0f64;
        let mut linf = 0.0f64;
        for (_, v) in self.iter() {
            let a = f64::from(v).abs();
            l1 += a;
            l2 += a * a;
            linf = linf.max(a);
        }
        match q {
            Norm::L1 => l1,
            Norm::L2 => l2.sqrt(),
            Norm::LInf => linf,
        }
    }

    /// Rescales all components in place by `c` (used for ℓ1/ℓ2 input
    /// normalization of documents, Section 3.2.2 "Choosing the Norm").
    pub fn scale(&mut self, c: f32) {
        match self {
            FeatureVec::Dense(v) => v.iter_mut().for_each(|x| *x *= c),
            FeatureVec::Sparse { val, .. } => val.iter_mut().for_each(|x| *x *= c),
        }
    }

    /// Returns a copy normalized to unit norm `q` (no-op on zero vectors).
    pub fn normalized(&self, q: Norm) -> FeatureVec {
        let n = self.norm(q);
        let mut out = self.clone();
        if n > 0.0 {
            out.scale((1.0 / n) as f32);
        }
        out
    }

    /// Approximate resident size in bytes (for the paper's Figure 6(A)
    /// memory-usage accounting).
    pub fn mem_bytes(&self) -> usize {
        match self {
            FeatureVec::Dense(c) => std::mem::size_of::<FeatureVec>() + c.len() * 4,
            FeatureVec::Sparse { idx, .. } => {
                std::mem::size_of::<FeatureVec>() + idx.len() * (4 + 4)
            }
        }
    }

    /// Converts to a dense representation (used by random-feature maps).
    pub fn to_dense(&self) -> Box<[f32]> {
        match self {
            FeatureVec::Dense(c) => c.clone(),
            FeatureVec::Sparse { dim, idx, val } => {
                let mut out = vec![0.0f32; *dim as usize];
                for (&i, &v) in idx.iter().zip(val.iter()) {
                    out[i as usize] = v;
                }
                out.into()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_constructor_sorts_merges_and_drops_zeros() {
        let f = FeatureVec::sparse(10, vec![(7, 1.0), (2, 2.0), (7, 3.0), (4, 0.0)]);
        match &f {
            FeatureVec::Sparse { idx, val, .. } => {
                assert_eq!(&**idx, &[2, 7]);
                assert_eq!(&**val, &[2.0, 4.0]);
            }
            _ => panic!("expected sparse"),
        }
    }

    #[test]
    fn sparse_entries_cancelling_to_zero_are_removed() {
        let f = FeatureVec::sparse(4, vec![(1, 2.0), (1, -2.0), (3, 1.0)]);
        assert_eq!(f.nnz(), 1);
        assert_eq!(f.get(1), 0.0);
        assert_eq!(f.get(3), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of dimension")]
    fn sparse_rejects_out_of_range_index() {
        let _ = FeatureVec::sparse(3, vec![(3, 1.0)]);
    }

    #[test]
    fn dot_dense_and_sparse_agree() {
        let d = FeatureVec::dense(vec![1.0, 0.0, 2.0, 0.0]);
        let s = FeatureVec::sparse(4, vec![(0, 1.0), (2, 2.0)]);
        let w = [0.5f64, 9.0, -1.0, 3.0];
        assert_eq!(d.dot(&w), s.dot(&w));
        assert!((d.dot(&w) - (-1.5)).abs() < 1e-12);
    }

    #[test]
    fn dot_zero_extends_short_models() {
        let s = FeatureVec::sparse(100, vec![(1, 1.0), (99, 5.0)]);
        let w = [0.0f64, 2.0]; // model only covers dims 0..2
        assert_eq!(s.dot(&w), 2.0);
    }

    #[test]
    fn norms_match_hand_computation() {
        let f = FeatureVec::dense(vec![3.0, -4.0]);
        assert_eq!(f.norm(Norm::L1), 7.0);
        assert_eq!(f.norm(Norm::L2), 5.0);
        assert_eq!(f.norm(Norm::LInf), 4.0);
    }

    #[test]
    fn normalized_yields_unit_norm() {
        let f = FeatureVec::sparse(8, vec![(1, 3.0), (5, -4.0)]);
        for q in [Norm::L1, Norm::L2, Norm::LInf] {
            let n = f.normalized(q).norm(q);
            assert!((n - 1.0).abs() < 1e-6, "norm {q:?} -> {n}");
        }
    }

    #[test]
    fn normalizing_zero_vector_is_noop() {
        let f = FeatureVec::zeros(5);
        assert_eq!(f.normalized(Norm::L2), f);
    }

    #[test]
    fn get_on_dense_out_of_range_is_zero() {
        let f = FeatureVec::dense(vec![1.0]);
        assert_eq!(f.get(7), 0.0);
    }

    #[test]
    fn to_dense_round_trips_sparse() {
        let s = FeatureVec::sparse(5, vec![(0, 1.0), (4, 2.0)]);
        assert_eq!(&*s.to_dense(), &[1.0, 0.0, 0.0, 0.0, 2.0]);
    }
}
