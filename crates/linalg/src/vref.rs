//! Borrowed feature vectors: the zero-copy scan path.
//!
//! The scratch table `H(id, f, eps)` stores feature vectors inline with each
//! tuple, so an All-Members scan that classifies uncertain tuples decodes one
//! vector per tuple. Decoding into an owned [`FeatureVec`] allocates two
//! heap buffers per tuple — at ~760 ns per sparse-60 tuple that is ≈23× the
//! cost of the SGD step the decode feeds, inverting the paper's premise that
//! learning, not plumbing, is the expensive part. [`FeatureVecRef`] fixes
//! this: it *borrows* the encoded payload directly from the page bytes and
//! runs `dot`/`norm` kernels over the borrowed slices with bulk
//! `from_le_bytes` conversion, so scan-time classification never
//! materializes a vector.
//!
//! The [`Features`] trait abstracts over owned and borrowed vectors so the
//! model layer (`hazy-learn`) and the cost model (`hazy-core`) classify
//! either representation through one code path. Kernels on the borrowed form
//! are written to be **bit-for-bit identical** to their owned counterparts:
//! same iteration order, same accumulation widths (property-tested in
//! `tests/properties.rs`).

use crate::norms::Norm;
use crate::vector::FeatureVec;

/// Operations every feature-vector representation supports. Implemented by
/// the owned [`FeatureVec`] and the borrowed [`FeatureVecRef`].
pub trait Features {
    /// Dimensionality `d` of the ambient space.
    fn dim(&self) -> u32;

    /// Number of stored (potentially nonzero) components.
    fn nnz(&self) -> usize;

    /// Dot product against a dense `f64` model vector (models shorter than
    /// `dim` are implicitly zero-extended).
    fn dot(&self, w: &[f64]) -> f64;

    /// `‖f‖_q` for the Hölder pair in use.
    fn norm(&self, q: Norm) -> f64;
}

impl Features for FeatureVec {
    fn dim(&self) -> u32 {
        FeatureVec::dim(self)
    }

    fn nnz(&self) -> usize {
        FeatureVec::nnz(self)
    }

    fn dot(&self, w: &[f64]) -> f64 {
        FeatureVec::dot(self, w)
    }

    fn norm(&self, q: Norm) -> f64 {
        FeatureVec::norm(self, q)
    }
}

/// A feature vector borrowed from its on-disk encoding.
///
/// The raw slices hold little-endian scalars exactly as encoded by
/// [`encode_fvec`](crate::encode_fvec); [`decode_fvec_ref`](crate::decode_fvec_ref)
/// validates them (same acceptance set as the owned decoder), so every
/// constructed value satisfies the owned type's invariants: sparse indices
/// strictly increasing and `< dim`.
#[derive(Clone, Copy, Debug)]
pub enum FeatureVecRef<'a> {
    /// All `d` components as `d × 4` bytes of little-endian `f32`.
    Dense {
        /// Raw component bytes.
        raw: &'a [u8],
    },
    /// Nonzero components of a `dim`-dimensional vector.
    Sparse {
        /// Dimensionality `d` of the ambient space.
        dim: u32,
        /// `nnz × 4` bytes of strictly increasing little-endian `u32`.
        idx_raw: &'a [u8],
        /// `nnz × 4` bytes of little-endian `f32`, matching `idx_raw`.
        val_raw: &'a [u8],
    },
}

#[inline]
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().expect("4-byte chunk"))
}

#[inline]
fn le_f32(b: &[u8]) -> f32 {
    f32::from_le_bytes(b.try_into().expect("4-byte chunk"))
}

impl<'a> FeatureVecRef<'a> {
    /// Iterates `(index, value)` over stored components in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + 'a {
        let it: Box<dyn Iterator<Item = (u32, f32)>> = match *self {
            FeatureVecRef::Dense { raw } => Box::new(
                raw.chunks_exact(4).enumerate().map(|(i, b)| (i as u32, le_f32(b))),
            ),
            FeatureVecRef::Sparse { idx_raw, val_raw, .. } => Box::new(
                idx_raw
                    .chunks_exact(4)
                    .zip(val_raw.chunks_exact(4))
                    .map(|(ib, vb)| (le_u32(ib), le_f32(vb))),
            ),
        };
        it
    }

    /// Materializes an owned copy (bulk chunk conversion, one allocation per
    /// payload). Only reorganization-time rewrites need this; scans don't.
    pub fn to_owned(&self) -> FeatureVec {
        match *self {
            FeatureVecRef::Dense { raw } => {
                let c: Vec<f32> = raw.chunks_exact(4).map(le_f32).collect();
                FeatureVec::Dense(c.into())
            }
            FeatureVecRef::Sparse { dim, idx_raw, val_raw } => {
                let idx: Vec<u32> = idx_raw.chunks_exact(4).map(le_u32).collect();
                let val: Vec<f32> = val_raw.chunks_exact(4).map(le_f32).collect();
                // Invariants (strictly increasing indices < dim) were
                // validated at decode time, so direct construction is sound.
                FeatureVec::Sparse { dim, idx: idx.into(), val: val.into() }
            }
        }
    }
}

impl Features for FeatureVecRef<'_> {
    fn dim(&self) -> u32 {
        match *self {
            FeatureVecRef::Dense { raw } => (raw.len() / 4) as u32,
            FeatureVecRef::Sparse { dim, .. } => dim,
        }
    }

    fn nnz(&self) -> usize {
        match *self {
            FeatureVecRef::Dense { raw } => raw.len() / 4,
            FeatureVecRef::Sparse { idx_raw, .. } => idx_raw.len() / 4,
        }
    }

    // The kernels below mirror `FeatureVec::dot` / `FeatureVec::norm`
    // operation-for-operation so borrowed and owned classification agree
    // bit-for-bit.

    fn dot(&self, w: &[f64]) -> f64 {
        match *self {
            FeatureVecRef::Dense { raw } => {
                let n = (raw.len() / 4).min(w.len());
                let mut acc = 0.0f64;
                for (b, &wk) in raw.chunks_exact(4).take(n).zip(w.iter()) {
                    acc += f64::from(le_f32(b)) * wk;
                }
                acc
            }
            FeatureVecRef::Sparse { idx_raw, val_raw, .. } => {
                let mut acc = 0.0f64;
                for (ib, vb) in idx_raw.chunks_exact(4).zip(val_raw.chunks_exact(4)) {
                    if let Some(&wi) = w.get(le_u32(ib) as usize) {
                        acc += f64::from(le_f32(vb)) * wi;
                    }
                }
                acc
            }
        }
    }

    fn norm(&self, q: Norm) -> f64 {
        let mut l1 = 0.0f64;
        let mut l2 = 0.0f64;
        let mut linf = 0.0f64;
        for (_, v) in self.iter() {
            let a = f64::from(v).abs();
            l1 += a;
            l2 += a * a;
            linf = linf.max(a);
        }
        match q {
            Norm::L1 => l1,
            Norm::L2 => l2.sqrt(),
            Norm::LInf => linf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{decode_fvec_ref, encode_fvec};

    fn ref_of(buf: &[u8]) -> FeatureVecRef<'_> {
        let mut slice = buf;
        let r = decode_fvec_ref(&mut slice).expect("decode");
        assert!(slice.is_empty());
        r
    }

    #[test]
    fn borrowed_matches_owned_on_dense() {
        let f = FeatureVec::dense(vec![1.5, -2.0, 0.0, 3.25]);
        let mut buf = Vec::new();
        encode_fvec(&f, &mut buf);
        let r = ref_of(&buf);
        let w = [0.5f64, -1.0, 2.0]; // shorter than the vector on purpose
        assert_eq!(Features::dim(&r), f.dim());
        assert_eq!(Features::nnz(&r), f.nnz());
        assert_eq!(Features::dot(&r, &w).to_bits(), f.dot(&w).to_bits());
        for q in [Norm::L1, Norm::L2, Norm::LInf] {
            assert_eq!(Features::norm(&r, q).to_bits(), f.norm(q).to_bits());
        }
        assert_eq!(r.to_owned(), f);
    }

    #[test]
    fn borrowed_matches_owned_on_sparse() {
        let f = FeatureVec::sparse(1000, vec![(3, 1.25), (90, -0.5), (999, 7.0)]);
        let mut buf = Vec::new();
        encode_fvec(&f, &mut buf);
        let r = ref_of(&buf);
        let w: Vec<f64> = (0..100).map(|k| f64::from(k) * 0.1 - 3.0).collect();
        assert_eq!(Features::dot(&r, &w).to_bits(), f.dot(&w).to_bits());
        assert_eq!(r.to_owned(), f);
        let pairs: Vec<(u32, f32)> = r.iter().collect();
        assert_eq!(pairs, f.iter().collect::<Vec<_>>());
    }

    #[test]
    fn zero_vector_round_trips() {
        let f = FeatureVec::zeros(42);
        let mut buf = Vec::new();
        encode_fvec(&f, &mut buf);
        let r = ref_of(&buf);
        assert_eq!(Features::dim(&r), 42);
        assert_eq!(Features::nnz(&r), 0);
        assert_eq!(Features::dot(&r, &[1.0; 8]), 0.0);
        assert_eq!(r.to_owned(), f);
    }
}
