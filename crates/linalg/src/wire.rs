//! Minimal little-endian wire helpers for durable-state serialization.
//!
//! Checkpoints and WAL records across the workspace are plain
//! little-endian byte streams. Writers use [`bytes::BufMut`] directly;
//! readers use these checked `take_*` helpers, which advance a `&mut &[u8]`
//! cursor and return `None` on truncation instead of panicking — a torn or
//! corrupted stored image must surface as a decode failure, never a crash.

/// Takes `n` bytes off the front of `b`, advancing it.
pub fn take_bytes<'a>(b: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if b.len() < n {
        return None;
    }
    let (head, tail) = b.split_at(n);
    *b = tail;
    Some(head)
}

/// Reads one byte.
pub fn take_u8(b: &mut &[u8]) -> Option<u8> {
    take_bytes(b, 1).map(|x| x[0])
}

/// Reads a little-endian `u32`.
pub fn take_u32(b: &mut &[u8]) -> Option<u32> {
    take_bytes(b, 4).map(|x| u32::from_le_bytes(x.try_into().expect("4 bytes")))
}

/// Reads a little-endian `u64`.
pub fn take_u64(b: &mut &[u8]) -> Option<u64> {
    take_bytes(b, 8).map(|x| u64::from_le_bytes(x.try_into().expect("8 bytes")))
}

/// Reads a little-endian `f64` (exact bit pattern — restored state must be
/// bit-identical, so floats round-trip through [`f64::to_bits`]).
pub fn take_f64(b: &mut &[u8]) -> Option<f64> {
    take_u64(b).map(f64::from_bits)
}

/// Reads a `u64`-length-prefixed `Vec<f64>` written by [`put_f64s`].
pub fn take_f64s(b: &mut &[u8]) -> Option<Vec<f64>> {
    let n = take_u64(b)? as usize;
    let raw = take_bytes(b, n.checked_mul(8)?)?;
    Some(
        raw.chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect(),
    )
}

/// Writes a `u64`-length-prefixed `Vec<f64>` (bit-exact).
pub fn put_f64s(out: &mut Vec<u8>, v: &[f64]) {
    out.extend_from_slice(&(v.len() as u64).to_le_bytes());
    for &x in v {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut out = Vec::new();
        out.push(7u8);
        out.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        out.extend_from_slice(&u64::MAX.to_le_bytes());
        out.extend_from_slice(&(-0.0f64).to_bits().to_le_bytes());
        let mut b = &out[..];
        assert_eq!(take_u8(&mut b), Some(7));
        assert_eq!(take_u32(&mut b), Some(0xDEAD_BEEF));
        assert_eq!(take_u64(&mut b), Some(u64::MAX));
        assert_eq!(take_f64(&mut b).map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert!(b.is_empty());
        assert_eq!(take_u8(&mut b), None);
    }

    #[test]
    fn f64_vec_round_trips_bit_exactly() {
        let v = vec![0.1, -0.0, f64::INFINITY, 1e-300, f64::NAN];
        let mut out = Vec::new();
        put_f64s(&mut out, &v);
        let mut b = &out[..];
        let back = take_f64s(&mut b).unwrap();
        assert!(b.is_empty());
        assert_eq!(back.len(), v.len());
        for (a, x) in back.iter().zip(v.iter()) {
            assert_eq!(a.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn truncation_is_none_not_panic() {
        let mut out = Vec::new();
        put_f64s(&mut out, &[1.0, 2.0]);
        for cut in 0..out.len() {
            let mut b = &out[..cut];
            assert!(take_f64s(&mut b).is_none(), "cut {cut}");
        }
    }
}
