//! Property-based tests for the vector primitives.
//!
//! These pin down the algebraic facts the rest of the engine leans on — in
//! particular Hölder's inequality, which is the entire soundness argument for
//! the paper's watermark bounds (Lemma 3.1).

use hazy_linalg::{
    decode_fvec, decode_fvec_ref, encode_fvec, encoded_len, norm_of_slice, FeatureVec, Features,
    Norm, NormPair, OrdF64, ScaledDense,
};
use proptest::prelude::*;

fn arb_sparse(dim: u32, max_nnz: usize) -> impl Strategy<Value = FeatureVec> {
    prop::collection::vec((0..dim, -100.0f32..100.0), 0..=max_nnz)
        .prop_map(move |pairs| FeatureVec::sparse(dim, pairs))
}

fn arb_dense(max_len: usize) -> impl Strategy<Value = FeatureVec> {
    prop::collection::vec(-100.0f32..100.0, 0..=max_len).prop_map(FeatureVec::dense)
}

fn arb_fvec() -> impl Strategy<Value = FeatureVec> {
    prop_oneof![arb_sparse(64, 16), arb_dense(32)]
}

fn arb_model(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, len)
}

proptest! {
    /// `|w · f| ≤ ‖w‖_p · ‖f‖_q` for every Hölder pair the engine uses.
    #[test]
    fn holder_inequality(f in arb_fvec(), w in arb_model(64)) {
        let dot = f.dot(&w).abs();
        for pair in [NormPair::TEXT, NormPair::EUCLIDEAN, NormPair::from_p(Norm::L1)] {
            let bound = norm_of_slice(&w, pair.p) * f.norm(pair.q);
            prop_assert!(dot <= bound * (1.0 + 1e-9) + 1e-9,
                "pair {:?}: |dot|={} bound={}", pair, dot, bound);
        }
    }

    /// Norm ordering on any vector: `‖x‖_∞ ≤ ‖x‖_2 ≤ ‖x‖_1`.
    #[test]
    fn norm_chain(f in arb_fvec()) {
        let (l1, l2, li) = (f.norm(Norm::L1), f.norm(Norm::L2), f.norm(Norm::LInf));
        prop_assert!(li <= l2 * (1.0 + 1e-9) + 1e-12);
        prop_assert!(l2 <= l1 * (1.0 + 1e-9) + 1e-12);
    }

    /// Serialization round-trips every vector exactly, with the advertised
    /// length.
    #[test]
    fn serialization_round_trip(f in arb_fvec()) {
        let mut buf = Vec::new();
        encode_fvec(&f, &mut buf);
        prop_assert_eq!(buf.len(), encoded_len(&f));
        let mut slice = &buf[..];
        let back = decode_fvec(&mut slice).expect("decode");
        prop_assert_eq!(back, f);
        prop_assert!(slice.is_empty());
    }

    /// Decoding arbitrary junk never panics, and the owned and zero-copy
    /// decoders agree on whether the bytes are a valid encoding.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut slice = &bytes[..];
        let owned = decode_fvec(&mut slice);
        let mut slice = &bytes[..];
        let borrowed = decode_fvec_ref(&mut slice);
        prop_assert_eq!(owned.is_some(), borrowed.is_some(),
            "decoders disagree on acceptance of {:?}", bytes);
        if let (Some(o), Some(b)) = (owned, borrowed) {
            prop_assert_eq!(o, b.to_owned());
        }
    }

    /// The zero-copy scan path is **bit-for-bit** the owned path: decoding
    /// borrowed from the encoding and running the borrowed `dot`/`norm`
    /// kernels yields exactly the bits that owned decode + owned kernels
    /// produce, on arbitrary dense and sparse vectors — including models
    /// shorter and longer than the vector.
    #[test]
    fn zero_copy_decode_and_dot_match_owned_bitwise(
        f in arb_fvec(),
        w in arb_model(64),
        wlen in 0usize..=64,
    ) {
        let mut buf = Vec::new();
        encode_fvec(&f, &mut buf);

        let mut slice = &buf[..];
        let owned = decode_fvec(&mut slice).expect("owned decode");
        let rest_owned = slice.len();
        let mut slice = &buf[..];
        let borrowed = decode_fvec_ref(&mut slice).expect("ref decode");
        prop_assert_eq!(slice.len(), rest_owned, "decoders consumed different lengths");

        prop_assert_eq!(Features::dim(&borrowed), owned.dim());
        prop_assert_eq!(Features::nnz(&borrowed), owned.nnz());
        let w = &w[..wlen];
        prop_assert_eq!(
            Features::dot(&borrowed, w).to_bits(),
            owned.dot(w).to_bits(),
            "dot diverges on {:?}", owned
        );
        for q in [Norm::L1, Norm::L2, Norm::LInf] {
            prop_assert_eq!(
                Features::norm(&borrowed, q).to_bits(),
                owned.norm(q).to_bits(),
                "norm {:?} diverges", q
            );
        }
        prop_assert_eq!(borrowed.to_owned(), owned);
        prop_assert_eq!(
            borrowed.iter().collect::<Vec<_>>(),
            f.iter().collect::<Vec<_>>()
        );
    }

    /// Corrupting any single byte of a valid sparse encoding leaves the two
    /// decoders in agreement: both accept (value-equal) or both reject.
    #[test]
    fn decoders_agree_on_single_byte_corruptions(
        f in arb_sparse(64, 16),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut buf = Vec::new();
        encode_fvec(&f, &mut buf);
        let pos = ((buf.len() as f64 * pos_frac) as usize).min(buf.len() - 1);
        buf[pos] ^= flip;
        let mut slice = &buf[..];
        let owned = decode_fvec(&mut slice);
        let mut slice = &buf[..];
        let borrowed = decode_fvec_ref(&mut slice);
        prop_assert_eq!(owned.is_some(), borrowed.is_some(),
            "decoders disagree after flipping byte {} by {:#x}", pos, flip);
        if let (Some(o), Some(b)) = (owned, borrowed) {
            prop_assert_eq!(o, b.to_owned());
        }
    }

    /// A sparse vector and its densified twin agree on dot products and
    /// norms.
    #[test]
    fn sparse_dense_agree(f in arb_sparse(48, 12), w in arb_model(48)) {
        let d = FeatureVec::dense(f.to_dense());
        prop_assert!((f.dot(&w) - d.dot(&w)).abs() <= 1e-6 * (1.0 + f.dot(&w).abs()));
        for q in [Norm::L1, Norm::L2, Norm::LInf] {
            prop_assert!((f.norm(q) - d.norm(q)).abs() <= 1e-4);
        }
    }

    /// The scale-trick vector matches a naive implementation under a random
    /// program of scales and sparse additions.
    #[test]
    fn scaled_dense_matches_naive(
        ops in prop::collection::vec(
            (0.05f64..1.5, prop::collection::vec((0u32..32, -10.0f32..10.0), 0..6)),
            1..40,
        )
    ) {
        let mut w = ScaledDense::zeros(32);
        let mut naive = vec![0.0f64; 32];
        for (c, pairs) in ops {
            w.scale(c);
            naive.iter_mut().for_each(|x| *x *= c);
            let f = FeatureVec::sparse(32, pairs);
            w.axpy(0.7, &f);
            for (i, v) in f.iter() {
                naive[i as usize] += 0.7 * f64::from(v);
            }
        }
        for (i, &expect) in naive.iter().enumerate() {
            let tol = 1e-7 * (1.0 + expect.abs());
            prop_assert!((w.get(i) - expect).abs() <= tol,
                "component {}: {} vs {}", i, w.get(i), expect);
        }
    }

    /// The f64→u64 sortable key is a strict order embedding.
    #[test]
    fn sortable_key_is_monotone(a in -1e12f64..1e12, b in -1e12f64..1e12) {
        let (ka, kb) = (OrdF64(a).sortable_key(), OrdF64(b).sortable_key());
        prop_assert_eq!(a < b, ka < kb);
        prop_assert_eq!(a == b, ka == kb);
    }
}
