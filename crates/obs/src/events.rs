//! Structured trace events in a bounded lock-free ring.
//!
//! The ring is a Vyukov-style MPMC queue of fixed-size [`Event`]s: each
//! slot carries its own sequence atomic, producers claim slots with a
//! CAS on the enqueue cursor, and neither side ever takes a lock. When
//! the ring is full a producer *displaces* the oldest unread event
//! (popping it and counting it dropped) rather than blocking or losing
//! the fresh event — observability wants recent history, flight-recorder
//! style. If even displacement loses the race twice, the new event
//! itself is dropped and counted. Either way every emitted event is
//! accounted exactly once:
//!
//! ```text
//! emitted == read + dropped + still-in-ring
//! ```
//!
//! which the loss-accounting property test pins under concurrent
//! writers.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// What happened. The payload fields `a`/`b`/`c` of [`Event`] are
/// interpreted per kind; see each variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// WAL made records durable: `a` = records synced, `b` = bytes.
    WalFsync,
    /// Checkpoint written: `a` = checkpoint seq, `b` = payload bytes.
    WalCheckpoint,
    /// WAL scanned at recovery: `a` = records recovered, `b` = end cause
    /// (0 clean-eof, 1 torn-frame, 2 crc-mismatch).
    WalRecovery,
    /// A retry budget ran out: `a` = attempts, `b` = total backoff ns.
    RetryExhausted,
    /// An epoch snapshot was published: `a` = its high LSN.
    EpochPublish,
    /// A replayed epoch chain was rebased onto a fresh base: `a` = high
    /// LSN after rebase.
    EpochRebase,
    /// Epoch GC freed retired snapshots: `a` = snapshots reclaimed,
    /// `b` = still retired (live pins hold them).
    EpochReclaim,
    /// The ski-rental advisor ordered a switch: `a` = from-arch code,
    /// `b` = to-arch code, `c` = accumulated regret (ns).
    AdvisorDecision,
    /// A view migration began: `a` = from-arch code, `b` = to-arch code,
    /// `c` = 1 if advisor-ordered.
    MigrationStart,
    /// A view migration finished: `a` = from-arch code, `b` = to-arch
    /// code, `c` = pause duration in virtual ns.
    MigrationFinish,
    /// A WAL segment shipped to a replica: `a` = replica index,
    /// `b` = records shipped.
    ReplShipment,
    /// A lagging replica was evicted from the read set: `a` = replica
    /// index, `b` = observed lag (LSNs).
    ReplEviction,
    /// A caught-up replica was readmitted: `a` = replica index.
    ReplReadmission,
    /// Primary failover promoted a replica: `a` = promoted replica
    /// index, `b` = its LSN at promotion.
    ReplFailover,
    /// A front lane served one batch: `a` = batch size, `b` = lane
    /// (0 read, 1 write, 2 engine), `c` = queue depth after the drain.
    FrontBatch,
    /// Admission control shed a request: `a` = queue depth at rejection,
    /// `b` = advised retry-after ms.
    FrontShed,
    /// A dataflow source ingested deltas: `a` = deltas in, `b` = rows
    /// emitted at sinks-so-far delta.
    FlowIngest,
    /// A view reorganized (re-sorted/re-keyed its physical layout):
    /// `a` = virtual ns spent.
    Reorg,
}

impl EventKind {
    /// Stable kebab-case name (what `SHOW EVENTS` prints).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::WalFsync => "wal-fsync",
            EventKind::WalCheckpoint => "wal-checkpoint",
            EventKind::WalRecovery => "wal-recovery",
            EventKind::RetryExhausted => "retry-exhausted",
            EventKind::EpochPublish => "epoch-publish",
            EventKind::EpochRebase => "epoch-rebase",
            EventKind::EpochReclaim => "epoch-reclaim",
            EventKind::AdvisorDecision => "advisor-decision",
            EventKind::MigrationStart => "migration-start",
            EventKind::MigrationFinish => "migration-finish",
            EventKind::ReplShipment => "repl-shipment",
            EventKind::ReplEviction => "repl-eviction",
            EventKind::ReplReadmission => "repl-readmission",
            EventKind::ReplFailover => "repl-failover",
            EventKind::FrontBatch => "front-batch",
            EventKind::FrontShed => "front-shed",
            EventKind::FlowIngest => "flow-ingest",
            EventKind::Reorg => "reorg",
        }
    }
}

/// One structured trace event. Plain `Copy` data so ring slots never
/// allocate or drop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Ring-assigned monotonic sequence number (gaps mean drops).
    pub seq: u64,
    /// [`crate::now_ns`] at emit time.
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload field (meaning per [`EventKind`]).
    pub a: u64,
    /// Second payload field.
    pub b: u64,
    /// Third payload field.
    pub c: u64,
}

impl Event {
    /// Human-readable payload rendering for `SHOW EVENTS`.
    pub fn detail(&self) -> String {
        use EventKind::*;
        match self.kind {
            WalFsync => format!("records={} bytes={}", self.a, self.b),
            WalCheckpoint => format!("seq={} bytes={}", self.a, self.b),
            WalRecovery => {
                let end = match self.b {
                    0 => "clean-eof",
                    1 => "torn-frame",
                    _ => "crc-mismatch",
                };
                format!("records={} end={end}", self.a)
            }
            RetryExhausted => format!("attempts={} backoff_ns={}", self.a, self.b),
            EpochPublish => format!("lsn={}", self.a),
            EpochRebase => format!("lsn={}", self.a),
            EpochReclaim => format!("reclaimed={} retired={}", self.a, self.b),
            AdvisorDecision => format!("from={} to={} regret_ns={}", self.a, self.b, self.c),
            MigrationStart => format!("from={} to={} auto={}", self.a, self.b, self.c),
            MigrationFinish => format!("from={} to={} pause_ns={}", self.a, self.b, self.c),
            ReplShipment => format!("replica={} records={}", self.a, self.b),
            ReplEviction => format!("replica={} lag={}", self.a, self.b),
            ReplReadmission => format!("replica={}", self.a),
            ReplFailover => format!("promoted={} lsn={}", self.a, self.b),
            FrontBatch => {
                let lane = match self.b {
                    0 => "read",
                    1 => "write",
                    _ => "engine",
                };
                format!("len={} lane={lane} depth={}", self.a, self.c)
            }
            FrontShed => format!("depth={} retry_after_ms={}", self.a, self.b),
            FlowIngest => format!("deltas={} emitted={}", self.a, self.b),
            Reorg => format!("ns={}", self.a),
        }
    }
}

impl Default for Event {
    fn default() -> Event {
        Event { seq: 0, at_ns: 0, kind: EventKind::WalFsync, a: 0, b: 0, c: 0 }
    }
}

/// One ring slot: a per-slot sequence atomic (the Vyukov handshake) plus
/// the payload. `turn == pos` means "free for the producer that claimed
/// position `pos`"; `turn == pos + 1` means "holds the event of position
/// `pos`, ready for a consumer".
struct Slot {
    turn: AtomicU64,
    data: UnsafeCell<Event>,
}

/// A bounded lock-free MPMC ring of [`Event`]s with drop accounting.
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: u64,
    enqueue: AtomicU64,
    dequeue: AtomicU64,
    next_seq: AtomicU64,
    emitted: AtomicU64,
    read: AtomicU64,
    dropped: AtomicU64,
}

// SAFETY: slot payloads are only touched between winning the position
// CAS and publishing the slot's `turn` (release store), which the other
// side acquires before reading — the standard Vyukov exclusive-access
// argument. `Event` is plain `Copy` data.
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &(self.mask + 1))
            .field("emitted", &self.emitted)
            .field("read", &self.read)
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl EventRing {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.max(2).next_power_of_two() as u64;
        EventRing {
            slots: (0..cap)
                .map(|i| Slot { turn: AtomicU64::new(i), data: UnsafeCell::new(Event::default()) })
                .collect(),
            mask: cap - 1,
            enqueue: AtomicU64::new(0),
            dequeue: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            read: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Vyukov push. `Err(ev)` means the ring was full at the attempt.
    fn try_push(&self, ev: Event) -> Result<(), Event> {
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let turn = slot.turn.load(Ordering::Acquire);
            if turn == pos {
                match self.enqueue.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS on `enqueue` at `pos`
                        // grants exclusive write access to this slot until
                        // the release store below hands it to consumers.
                        unsafe { *slot.data.get() = ev };
                        slot.turn.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(seen) => pos = seen,
                }
            } else if turn < pos {
                // the consumer side hasn't freed this slot: full
                return Err(ev);
            } else {
                pos = self.enqueue.load(Ordering::Relaxed);
            }
        }
    }

    /// Vyukov pop; `None` when empty. Does not touch the read/dropped
    /// counters — callers account for what they do with the event.
    fn try_pop(&self) -> Option<Event> {
        let mut pos = self.dequeue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let turn = slot.turn.load(Ordering::Acquire);
            if turn == pos + 1 {
                match self.dequeue.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS on `dequeue` at `pos`
                        // grants exclusive read access until the release
                        // store frees the slot for the next lap.
                        let ev = unsafe { *slot.data.get() };
                        slot.turn.store(pos + self.mask + 1, Ordering::Release);
                        return Some(ev);
                    }
                    Err(seen) => pos = seen,
                }
            } else if turn <= pos {
                // no producer has filled this slot yet: empty
                return None;
            } else {
                pos = self.dequeue.load(Ordering::Relaxed);
            }
        }
    }

    /// Emits an event. Never blocks: on a full ring the oldest unread
    /// event is displaced (and counted dropped); if displacement races
    /// out, the fresh event itself is dropped (and counted). Sequence
    /// numbers are assigned in emit order and are monotonic per ring.
    pub fn emit(&self, kind: EventKind, a: u64, b: u64, c: u64) {
        if !crate::enabled() {
            return;
        }
        let ev = Event {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            at_ns: crate::now_ns(),
            kind,
            a,
            b,
            c,
        };
        self.emitted.fetch_add(1, Ordering::Relaxed);
        let mut ev = ev;
        for _ in 0..2 {
            match self.try_push(ev) {
                Ok(()) => return,
                Err(back) => {
                    ev = back;
                    if self.try_pop().is_some() {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        if self.try_push(ev).is_ok() {
            return;
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops the oldest retained event, counting it as read.
    pub fn pop(&self) -> Option<Event> {
        let ev = self.try_pop()?;
        self.read.fetch_add(1, Ordering::Relaxed);
        Some(ev)
    }

    /// Pops up to `max` events, oldest first.
    pub fn drain(&self, max: usize) -> Vec<Event> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.pop() {
                Some(ev) => out.push(ev),
                None => break,
            }
        }
        out
    }

    /// Total events ever emitted into this ring.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Total events consumed via [`EventRing::pop`]/[`EventRing::drain`].
    pub fn read_count(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }

    /// Total events lost — displaced by writers under pressure or
    /// dropped outright when displacement raced out.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Capacity of the process-global ring.
const GLOBAL_RING_CAP: usize = 8192;
/// Retention of the drained side log behind [`recent`].
const RECENT_CAP: usize = 8192;

static GLOBAL: OnceLock<EventRing> = OnceLock::new();
static RECENT: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();

/// The process-global event ring every subsystem emits into.
pub fn global() -> &'static EventRing {
    GLOBAL.get_or_init(|| EventRing::new(GLOBAL_RING_CAP))
}

/// Drains the global ring into a bounded side log and returns the last
/// `limit` retained events, oldest first. Repeated callers (SQL `SHOW
/// EVENTS`, debuggers) therefore see a stable growing history rather
/// than stealing events from one another.
pub fn recent(limit: usize) -> Vec<Event> {
    let log = RECENT.get_or_init(|| Mutex::new(Vec::new()));
    let mut log = log.lock().unwrap_or_else(|p| p.into_inner());
    loop {
        let batch = global().drain(1024);
        if batch.is_empty() {
            break;
        }
        log.extend_from_slice(&batch);
    }
    if log.len() > RECENT_CAP {
        let cut = log.len() - RECENT_CAP;
        log.drain(..cut);
    }
    let n = limit.min(log.len());
    log[log.len() - n..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_seq_monotone() {
        let ring = EventRing::new(8);
        for i in 0..5 {
            ring.emit(EventKind::WalFsync, i, 0, 0);
        }
        let got = ring.drain(16);
        assert_eq!(got.len(), 5);
        for (i, ev) in got.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.a, i as u64);
        }
        assert_eq!(ring.emitted(), 5);
        assert_eq!(ring.read_count(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn full_ring_keeps_recent_history() {
        let ring = EventRing::new(4);
        for i in 0..100u64 {
            ring.emit(EventKind::FrontShed, i, 0, 0);
        }
        let got = ring.drain(16);
        // flight-recorder semantics: the *latest* events survive
        assert_eq!(got.last().unwrap().a, 99);
        assert_eq!(ring.emitted(), 100);
        assert_eq!(ring.read_count() + ring.dropped(), 100);
    }

    #[test]
    fn detail_strings_cover_all_kinds() {
        use EventKind::*;
        for kind in [
            WalFsync,
            WalCheckpoint,
            WalRecovery,
            RetryExhausted,
            EpochPublish,
            EpochRebase,
            EpochReclaim,
            AdvisorDecision,
            MigrationStart,
            MigrationFinish,
            ReplShipment,
            ReplEviction,
            ReplReadmission,
            ReplFailover,
            FrontBatch,
            FrontShed,
            FlowIngest,
            Reorg,
        ] {
            let ev = Event { seq: 1, at_ns: 2, kind, a: 3, b: 4, c: 5 };
            assert!(!ev.detail().is_empty());
            assert!(!kind.name().is_empty());
        }
    }
}
