//! Unified observability for the Hazy workspace.
//!
//! The paper's argument is a cost argument — lazy vs eager maintenance
//! trades read-time work against update-time work — so the system's costs
//! must be visible from *outside* the process, not only from stats structs
//! returned inside Rust tests. This crate is the one place every subsystem
//! reports through:
//!
//! * [`metrics`] — hand-rolled atomic [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed mergeable [`Histogram`]s (exact-count percentile
//!   recovery for p50/p99/p999).
//! * [`mod@registry`] — a process-global name → metric table. Handles are
//!   `&'static`, so a call site registers once and records forever with a
//!   single relaxed atomic op.
//! * [`events`] — a bounded lock-free ring of structured trace events
//!   (WAL fsyncs, epoch publishes, migrations, failovers, sheds, …) with
//!   monotonic sequence numbers. Under pressure old events are displaced
//!   and counted in a drop counter; a writer never blocks.
//!
//! # Hot-path cost
//!
//! Every record/emit first checks [`enabled`] — one relaxed load and a
//! predictable branch. With recording enabled a counter bump is one
//! relaxed `fetch_add`. Building with the `noop` cargo feature compiles
//! the bodies out entirely. The `obs_overhead` bench bin in `hazy-bench`
//! measures the enabled-vs-disabled delta on the classify and update hot
//! paths and asserts the ceiling recorded in BENCH_PR10.md.
//!
//! # Global state caveat
//!
//! The registry and event ring are process-global: tests sharing a
//! process accumulate into the same counters. Assert deltas or `> 0`,
//! never exact process-wide totals.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod registry;

pub use events::{Event, EventKind, EventRing};
pub use metrics::{bucket_index, Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{like_match, MetricValue, Registry};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide recording switch (default on). Unused when the crate is
/// built with the `noop` feature, which hard-wires [`enabled`] to false.
#[allow(dead_code)]
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether recording is live. Inlined into every record/emit: a relaxed
/// load plus a branch when runtime-gated, a constant `false` under the
/// `noop` feature (the optimizer then deletes the record body).
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "noop")]
    {
        false
    }
    #[cfg(not(feature = "noop"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Turns recording on or off process-wide. A no-op under the `noop`
/// feature. Disabling does not clear anything already recorded.
pub fn set_enabled(on: bool) {
    let _ = on;
    #[cfg(not(feature = "noop"))]
    ENABLED.store(on, Ordering::SeqCst);
}

static START: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first observability call in this
/// process. Real (wall) time, deliberately independent of the storage
/// layer's virtual clock: trace timestamps order events for an operator,
/// they do not participate in simulated cost accounting.
#[inline]
pub fn now_ns() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The process-global registry ([`Registry::global`]).
#[inline]
pub fn registry() -> &'static Registry {
    Registry::global()
}

/// Registers (or fetches) the global counter `name`.
#[inline]
pub fn counter(name: &str) -> &'static Counter {
    Registry::global().counter(name)
}

/// Registers (or fetches) the global gauge `name`.
#[inline]
pub fn gauge(name: &str) -> &'static Gauge {
    Registry::global().gauge(name)
}

/// Registers (or fetches) the global histogram `name`.
#[inline]
pub fn histogram(name: &str) -> &'static Histogram {
    Registry::global().histogram(name)
}

/// Emits a trace event into the process-global ring
/// ([`events::global`]). Never blocks; see [`EventRing::emit`].
#[inline]
pub fn emit(kind: EventKind, a: u64, b: u64, c: u64) {
    events::global().emit(kind, a, b, c);
}

/// The last `limit` events still retained, oldest first. Drains the
/// global ring into a bounded side log so repeated calls (e.g. SQL
/// `SHOW EVENTS`) see a stable, growing history instead of consuming
/// each other's view.
pub fn recent_events(limit: usize) -> Vec<Event> {
    events::recent(limit)
}

/// Renders every registered metric as Prometheus-style text exposition.
pub fn render_prometheus() -> String {
    Registry::global().render_prometheus()
}
