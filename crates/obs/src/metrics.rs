//! Atomic metric primitives: counters, gauges, and log-bucketed
//! histograms.
//!
//! Everything here is lock-free and cheap enough for hot paths: a record
//! is one [`crate::enabled`] check plus one to three relaxed
//! `fetch_add`s. Histograms bucket values logarithmically (8 sub-buckets
//! per power of two, ≤ 12.5% relative width) so a fixed 496-slot array
//! covers the full `u64` range; snapshots are mergeable and recover
//! percentiles exactly at bucket granularity — the rank-selected bucket
//! is always the same bucket an exact sorted oracle's value falls in.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one. One relaxed `fetch_add` when recording is enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point level (queue depth, lag, rate, …).
/// Stored as `f64` bits in an `AtomicU64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the level to `v` if `v` is higher (high-water marks).
    pub fn set_max(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two, so every
/// bucket spans at most 12.5% of its lower bound.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Values 0..8 get exact buckets; each of the 61 remaining octaves
/// (msb 3..=63) contributes 8 sub-buckets: 8 + 61*8 = 496.
pub(crate) const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// The bucket index for `v`. Exact below 8; `(octave, top-3-bits)`
/// above, computed from `leading_zeros` — no loops, no floats.
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (((msb - SUB_BITS + 1) as usize) << SUB_BITS) | sub
}

/// The half-open value range `[lo, hi)` covered by bucket `i`.
pub(crate) fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB {
        return (i as u64, i as u64 + 1);
    }
    let msb = (i >> SUB_BITS) as u32 + SUB_BITS - 1;
    let sub = (i & (SUB - 1)) as u64;
    let width = 1u64 << (msb - SUB_BITS);
    let lo = (1u64 << msb) | (sub * width);
    (lo, lo.saturating_add(width))
}

/// A log-bucketed latency/size histogram. Recording is one relaxed add
/// into a fixed bucket plus count/sum upkeep; snapshots merge by
/// element-wise addition, so per-thread or per-shard histograms can be
/// combined losslessly.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count).field("sum", &self.sum).finish()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot { buckets: vec![0; BUCKETS], count: 0, sum: 0 }
    }

    /// Folds `other` into `self` by element-wise addition. Associative
    /// and commutative (property-tested), so shard-local histograms can
    /// be merged in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        // wrapping, matching the atomic `fetch_add` in `record` — the sum
        // of a merge equals the sum one histogram would have accumulated
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The value at quantile `q` in `[0, 1]`, as the midpoint of the
    /// bucket holding the rank-`ceil(q·count)` observation. Because
    /// bucket counts are exact, this is always the *same bucket* the
    /// exact sorted oracle's value lands in. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return lo + (hi - lo) / 2;
            }
        }
        let (lo, hi) = bucket_bounds(BUCKETS - 1);
        lo + (hi - lo) / 2
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Cumulative counts at each bucket upper bound, for Prometheus
    /// `le`-style exposition: `(upper_bound, cumulative_count)` for every
    /// non-empty prefix boundary.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut acc = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                acc += n;
                out.push((bucket_bounds(i).1, acc));
            }
        }
        out
    }

    /// The bucket index holding the rank-`r` (1-based) observation.
    /// Test hook for the oracle comparison.
    pub fn bucket_of_rank(&self, r: u64) -> usize {
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= r {
                return i;
            }
        }
        BUCKETS - 1
    }
}

/// The bucket index an exact value falls in — exported so tests can
/// compare oracle values against recovered percentiles at bucket
/// granularity.
pub fn bucket_index(v: u64) -> usize {
    bucket_of(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_covers_u64() {
        // every bucket's bounds invert bucket_of, and indices are dense
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_of(hi - 1), i, "hi-1 of bucket {i}");
            assert!(hi > lo);
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(7), 7);
        assert_eq!(bucket_of(8), 8);
    }

    #[test]
    fn bucket_width_is_bounded() {
        for i in SUB..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(((hi - lo) as f64) <= lo as f64 / 8.0 + 1.0, "bucket {i} too wide");
        }
    }

    #[test]
    fn quantiles_track_exact_oracle() {
        let h = Histogram::new();
        let mut vals: Vec<u64> = (0..10_000u64).map(|i| i * i % 100_000).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        let snap = h.snapshot();
        for q in [0.5, 0.99, 0.999] {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let oracle = vals[rank - 1];
            assert_eq!(
                bucket_of(snap.quantile(q)),
                bucket_of(oracle),
                "q={q} recovered {} oracle {oracle}",
                snap.quantile(q)
            );
        }
        assert_eq!(snap.count, 10_000);
    }

    #[test]
    fn gauge_set_max_is_monotone() {
        let g = Gauge::new();
        g.set_max(3.0);
        g.set_max(1.0);
        assert_eq!(g.get(), 3.0);
        g.set_max(5.5);
        assert_eq!(g.get(), 5.5);
    }
}
