//! The process-global metric registry: name → metric, `&'static`
//! handles, sorted snapshots, SQL-`LIKE` filtering, and Prometheus-style
//! text exposition.
//!
//! Registration takes a mutex once per call site (the handle is then
//! cached in a `OnceLock` or struct field and recorded to lock-free
//! forever); metrics themselves are leaked so handles can be `&'static`
//! without reference counting on the hot path.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A registered metric handle.
#[derive(Clone, Copy)]
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// A point-in-time value of one registered metric.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's current level.
    Gauge(f64),
    /// A histogram's full bucket snapshot.
    Histogram(HistogramSnapshot),
}

/// Name → metric table. Use [`Registry::global`] in production code;
/// fresh instances exist for tests.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers (or fetches) the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind —
    /// metric names are compile-time constants, so a clash is a bug.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self.lock();
        match *map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::new()))))
        {
            Metric::Counter(c) => c,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Registers (or fetches) the gauge `name`. Panics on kind clash.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut map = self.lock();
        match *map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::new(Gauge::new()))))
        {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Registers (or fetches) the histogram `name`. Panics on kind
    /// clash.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map = self.lock();
        match *map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new()))))
        {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Point-in-time values of every metric whose name matches the
    /// optional SQL-`LIKE` pattern, sorted by name.
    pub fn snapshot(&self, like: Option<&str>) -> Vec<(String, MetricValue)> {
        let map = self.lock();
        map.iter()
            .filter(|(name, _)| like.is_none_or(|p| like_match(p, name)))
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// [`Registry::snapshot`] flattened to `(name, value)` rows for SQL:
    /// histograms expand to `_count`, `_sum`, `_p50`, `_p99`, `_p999`
    /// sub-rows (the `LIKE` pattern is applied to the base name).
    pub fn flat_snapshot(&self, like: Option<&str>) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (name, value) in self.snapshot(like) {
            match value {
                MetricValue::Counter(v) => out.push((name, v as f64)),
                MetricValue::Gauge(v) => out.push((name, v)),
                MetricValue::Histogram(h) => {
                    out.push((format!("{name}_count"), h.count as f64));
                    out.push((format!("{name}_sum"), h.sum as f64));
                    out.push((format!("{name}_p50"), h.p50() as f64));
                    out.push((format!("{name}_p99"), h.p99() as f64));
                    out.push((format!("{name}_p999"), h.p999() as f64));
                }
            }
        }
        out
    }

    /// Prometheus-style text exposition: `# TYPE` comments, counters and
    /// gauges as bare samples, histograms as cumulative `_bucket{le=}`
    /// series plus `_sum`/`_count`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, value) in self.snapshot(None) {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    for (le, cum) in h.cumulative() {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                    let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
                }
            }
        }
        out
    }
}

/// SQL `LIKE` matching: `%` matches any run (including empty), `_`
/// matches exactly one character, everything else is literal.
/// Case-sensitive, iterative with greedy-`%` backtracking.
pub fn like_match(pattern: &str, s: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = s.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_t) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = pi;
            star_t = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_patterns() {
        assert!(like_match("%", ""));
        assert!(like_match("%", "anything"));
        assert!(like_match("front_%", "front_shed_total"));
        assert!(!like_match("front_%", "repl_lag"));
        assert!(like_match("%_total", "front_shed_total"));
        assert!(like_match("%shed%", "front_shed_total"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("%a%b%", "xaxbx"));
        assert!(!like_match("", "x"));
        assert!(like_match("", ""));
    }

    #[test]
    fn register_record_snapshot() {
        let r = Registry::new();
        r.counter("t_reads").add(3);
        r.gauge("t_depth").set(7.5);
        r.histogram("t_lat").record(100);
        let rows = r.flat_snapshot(None);
        let get = |n: &str| rows.iter().find(|(k, _)| k == n).map(|(_, v)| *v);
        assert_eq!(get("t_reads"), Some(3.0));
        assert_eq!(get("t_depth"), Some(7.5));
        assert_eq!(get("t_lat_count"), Some(1.0));
        let filtered = r.flat_snapshot(Some("t_read%"));
        assert_eq!(filtered.len(), 1);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE t_reads counter"));
        assert!(text.contains("t_lat_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.counter("clash");
        r.gauge("clash");
    }
}
