//! Property tests for the observability primitives.
//!
//! Two laws are pinned here because the rest of the workspace leans on
//! them: histogram snapshots must merge like a commutative monoid with
//! percentiles that stay honest (shard-local histograms are combined in
//! arbitrary order before `SHOW METRICS` reports p99), and the event
//! ring must account for every emitted event exactly once even while
//! concurrent writers displace each other under pressure.

use hazy_obs::{bucket_index, EventKind, EventRing, Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn merged(parts: &[HistogramSnapshot]) -> HistogramSnapshot {
    let mut acc = HistogramSnapshot::empty();
    for p in parts {
        acc.merge(p);
    }
    acc
}

proptest! {
    /// Merge is commutative and associative, with `empty()` as identity —
    /// per-shard histograms can be folded in any order.
    #[test]
    fn histogram_merge_is_a_commutative_monoid(
        a in proptest::collection::vec(any::<u64>(), 0..40),
        b in proptest::collection::vec(any::<u64>(), 0..40),
        c in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(merged(&[sa.clone(), sb.clone()]), merged(&[sb.clone(), sa.clone()]));
        let left = merged(&[merged(&[sa.clone(), sb.clone()]), sc.clone()]);
        let right = merged(&[sa.clone(), merged(&[sb, sc])]);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(merged(&[HistogramSnapshot::empty(), sa.clone()]), sa);
        prop_assert_eq!(left.count, (a.len() + b.len() + c.len()) as u64);
    }

    /// Percentiles recovered from a merge of shard-local snapshots land
    /// within one bucket of the exact sorted oracle over the union.
    #[test]
    fn merged_percentiles_stay_within_one_bucket_of_oracle(
        a in proptest::collection::vec(0u64..1_000_000_000, 1..60),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..60),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..60),
    ) {
        let snap = merged(&[snapshot_of(&a), snapshot_of(&b), snapshot_of(&c)]);
        let mut all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        all.sort_unstable();
        for q in [0.5, 0.99, 0.999] {
            let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
            let oracle = all[rank - 1];
            let got = snap.quantile(q);
            let (bi, bo) = (bucket_index(got), bucket_index(oracle));
            prop_assert!(
                bi.abs_diff(bo) <= 1,
                "q={} recovered {} (bucket {}) vs oracle {} (bucket {})",
                q, got, bi, oracle, bo
            );
        }
    }

    /// Single-threaded loss accounting under arbitrary emit/pop
    /// interleavings and ring sizes: every emitted event is read,
    /// dropped, or still buffered — never double-counted, never lost.
    #[test]
    fn ring_accounts_for_every_event(
        cap in 2usize..64,
        ops in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let ring = EventRing::new(cap);
        let mut emits = 0u64;
        for op in ops {
            if op {
                ring.emit(EventKind::FlowIngest, emits, 0, 0);
                emits += 1;
            } else {
                let _ = ring.pop();
            }
        }
        // the final drain folds everything still buffered into `read`,
        // so afterwards the ledger must close exactly
        let buffered = ring.drain(usize::MAX).len() as u64;
        prop_assert!(buffered <= cap.next_power_of_two() as u64, "ring stayed bounded");
        prop_assert_eq!(ring.emitted(), emits);
        prop_assert_eq!(ring.read_count() + ring.dropped(), emits);
    }
}

/// The concurrent version of the ledger: writers racing a consumer, with
/// a ring small enough that displacement happens constantly. After the
/// dust settles, `emitted == read + dropped` exactly.
#[test]
fn ring_loss_accounting_under_concurrent_writers() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 10_000;
    let ring = std::sync::Arc::new(EventRing::new(64));

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let consumer = {
        let ring = std::sync::Arc::clone(&ring);
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                if ring.pop().is_none() {
                    std::thread::yield_now();
                }
            }
        })
    };
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    ring.emit(EventKind::FrontShed, w as u64, i, 0);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    consumer.join().expect("consumer");

    // no writers left: drain the remainder, then the ledger must close
    let leftover = ring.drain(usize::MAX).len() as u64;
    assert!(leftover <= 64, "bounded ring held {leftover}");
    assert_eq!(ring.emitted(), WRITERS as u64 * PER_WRITER);
    assert_eq!(
        ring.read_count() + ring.dropped(),
        ring.emitted(),
        "read {} + dropped {} != emitted {}",
        ring.read_count(),
        ring.dropped(),
        ring.emitted()
    );
}
