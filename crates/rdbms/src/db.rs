//! The embedded database: catalog, dataflow edges, and statement execution.
//!
//! Base-table writes do not fire bespoke triggers any more: every
//! classification view owns a [`Dataflow`] graph, and the catalog keeps one
//! edge list per base table naming the views whose graphs consume its
//! deltas. An `INSERT` becomes a `+1` delta, a `DELETE` a `−1` delta, and
//! an `UPDATE` a retract/insert pair — all propagated through the same
//! graph, whether the view sits directly on an entity table (the paper's
//! Example 2.1, a trivial two-edge graph) or on a derived relation with
//! joins and filters (`CREATE CLASSIFICATION VIEW v ON (SELECT ...)`).

use std::collections::HashMap;
use std::sync::Arc;

use hazy_core::{
    Architecture, DurableClassifierView, DurableView, Entity, EpochCell, EpochPublisher,
    MemoryFootprint, Mode, ViewBuilder, ViewStats,
};
use hazy_flow::{Dataflow, Delta, NodeId, RowAction, ViewSink};
use hazy_learn::{LinearModel, LossKind, SgdConfig, TrainingExample};
use hazy_linalg::NormPair;
use hazy_repl::{FaultPlan, GroupConfig, GroupStats, ReplicationGroup};
use hazy_storage::SimFs;
use hazy_tune::{build_sharded_adaptive, AdaptiveView, AdvisorConfig, TuneRestorer};

use crate::error::DbError;
use crate::features::{by_name, FeatureFunction};
use crate::sql::{parse_statement, ColRef, DerivedViewDecl, Statement, ViewDecl};
use crate::table::Table;
use crate::value::{ColumnType, Row, Schema, Value};

/// Dictionary headroom for text feature functions (distinct tokens).
const DICT_CAPACITY: u32 = 1 << 16;

/// Minimum examples before automatic model selection kicks in; below this
/// the default SVM is used (cross-validation on a handful of rows is
/// noise).
const SELECT_MIN_EXAMPLES: usize = 20;

/// What a statement evaluates to.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// DDL / DML succeeded, nothing to return.
    Done,
    /// A count.
    Count(u64),
    /// A single entity's label (`None` when the entity does not exist).
    Label(Option<i8>),
    /// A list of entity keys.
    Ids(Vec<u64>),
    /// `SHOW METRICS` rows: `(metric name, value)`, sorted by name.
    /// Histograms surface as `_count`/`_sum`/`_p50`/`_p99`/`_p999` rows.
    Metrics(Vec<(String, f64)>),
    /// `SHOW EVENTS` rows: `(seq, timestamp_ns, kind, detail)`, oldest
    /// first.
    Events(Vec<(u64, u64, String, String)>),
}

/// A view's engine: plain, wrapped in WAL + checkpoint durability, or
/// durable with log-shipping read replicas attached.
enum Engine {
    Plain(Box<dyn DurableClassifierView + Send>),
    Durable(DurableView),
    /// `DURABLE REPLICAS n`: the primary plus `n` replicas behind a
    /// `hazy-repl` group. Writes hit the primary; reads are routed across
    /// caught-up replicas; `PROMOTE REPLICA` fails over.
    Replicated(Box<ReplicationGroup>),
}

impl Engine {
    fn view(&self) -> &(dyn DurableClassifierView + Send) {
        match self {
            Engine::Plain(b) => b.as_ref(),
            Engine::Durable(d) => d,
            Engine::Replicated(g) => g.primary(),
        }
    }

    fn view_mut(&mut self) -> &mut (dyn DurableClassifierView + Send) {
        match self {
            Engine::Plain(b) => b.as_mut(),
            Engine::Durable(d) => d,
            Engine::Replicated(g) => g.primary_mut(),
        }
    }

    /// Ships any WAL suffix the replicas have not seen yet; a no-op for
    /// unreplicated engines. Called after every statement that may have
    /// grown the primary's log, so replicas track it statement by
    /// statement.
    fn pump(&mut self) {
        if let Engine::Replicated(g) = self {
            g.pump();
        }
    }

    /// Single-entity read, routed: replicated engines answer from a
    /// caught-up replica (primary fallback when none is healthy).
    fn read_routed(&mut self, id: u64) -> Option<i8> {
        match self {
            Engine::Replicated(g) => g.read_single(id),
            e => e.view_mut().read_single(id),
        }
    }

    /// All-Members count, routed like [`Engine::read_routed`].
    fn count_routed(&mut self) -> u64 {
        match self {
            Engine::Replicated(g) => g.count_positive(),
            e => e.view_mut().count_positive(),
        }
    }

    /// All-Members listing, routed like [`Engine::read_routed`].
    fn ids_routed(&mut self) -> Vec<u64> {
        match self {
            Engine::Replicated(g) => g.positive_ids(),
            e => e.view_mut().positive_ids(),
        }
    }
}

/// Lazily-published epoch snapshot serving a view's SELECTs.
///
/// The SELECT paths pin an immutable [`hazy_core::ModelEpoch`] instead of
/// reading the engine in place, so a long maintenance pass (a
/// reorganization, a migration, a recovery replay) never sits between a
/// query and its answer. The cache republishes from the engine's snapshot
/// path the first time a SELECT lands after a mutating statement;
/// `stmt_lsn` — the count of mutating statements folded into the view —
/// is the epoch LSN that `AS OF LSN n` addresses. Only the newest epoch
/// is retained: an older `n` gets the structured
/// [`DbError::SnapshotUnavailable`], the hook point for a retention
/// window. Epochs are ephemeral by design — a reopened database
/// republishes from recovered engine state instead of resurrecting epochs
/// from disk.
struct SnapshotCache {
    cell: Option<Arc<EpochCell>>,
    stmt_lsn: u64,
    fresh: bool,
}

impl SnapshotCache {
    fn new() -> SnapshotCache {
        SnapshotCache { cell: None, stmt_lsn: 0, fresh: false }
    }

    /// A mutating statement landed on the view: the current epoch no
    /// longer reflects it.
    fn invalidate(&mut self) {
        self.stmt_lsn += 1;
        self.fresh = false;
    }

    /// The current epoch cell, republishing from the engine if stale.
    /// `None` when the engine has no snapshot path (answers then come
    /// from the engine directly, the pre-snapshot behavior).
    fn current(
        &mut self,
        view: &mut (dyn DurableClassifierView + Send),
    ) -> Option<Arc<EpochCell>> {
        if !self.fresh || self.cell.is_none() {
            let (entities, model) = view.snapshot_state()?;
            // the norm pair only drives the publisher's incremental band
            // maintenance, which wholesale republication never exercises
            let publisher = EpochPublisher::new(entities, model, NormPair::TEXT, self.stmt_lsn);
            self.cell = Some(publisher.handle());
            self.fresh = true;
        }
        self.cell.clone()
    }
}

/// What the view is defined over.
enum ViewKind {
    /// The paper's Example 2.1 declaration: entities and examples arrive
    /// from two base tables (a trivial two-edge graph, entity rows on sink
    /// port 0 and example rows on port 1).
    Legacy(Box<ViewDecl>),
    /// `ON (SELECT ...)`: the view sits on a derived relation; every sink
    /// row has the shape `[key, features..., label]`.
    Derived(DerivedSpec),
}

/// A resolved derived-view definition.
struct DerivedSpec {
    /// Schema of the featurized prefix of a sink row: `[key, features...]`.
    feat_schema: Schema,
    /// Position of the label in a sink row (`== feat_schema.arity()`).
    label_idx: usize,
}

struct ViewState {
    kind: ViewKind,
    ff: Box<dyn FeatureFunction>,
    engine: Engine,
    /// Label text mapped to +1 (first row of the labels table, or the
    /// first entry of the `LABELS (...)` clause).
    pos_label: String,
    /// Full label set for validation; empty = accept any text as −1 (the
    /// legacy contract, where the labels table is only read at creation).
    known_labels: Vec<String>,
    /// The maintenance graph: base-table deltas in, derived-relation
    /// deltas out.
    graph: Dataflow<Row>,
    /// Base table → its source node in `graph`.
    sources: HashMap<String, NodeId>,
    /// The graph's sink node.
    sink: NodeId,
    /// Set-semantics collapse of the entity port: bag multiplicities →
    /// the insert/remove verbs the classifier engine speaks.
    entity_sink: ViewSink<Row>,
    /// Base table → column that must hold a non-NULL integer entity key,
    /// validated before any delta of that table enters the graph.
    key_checks: HashMap<String, usize>,
    /// Epoch snapshot the SELECT paths pin (lazily republished after
    /// mutating statements).
    snapshots: SnapshotCache,
}

impl ViewState {
    /// Validates an `AS OF LSN` clause against the retained epoch. Only
    /// the current epoch exists today, so anything but the newest LSN is a
    /// structured [`DbError::SnapshotUnavailable`].
    fn check_as_of(&self, name: &str, as_of: Option<u64>) -> Result<(), DbError> {
        match as_of {
            None => Ok(()),
            Some(lsn) if lsn == self.snapshots.stmt_lsn => Ok(()),
            Some(lsn) => Err(DbError::SnapshotUnavailable {
                view: name.to_string(),
                requested: lsn,
                newest: self.snapshots.stmt_lsn,
            }),
        }
    }
}

/// The embedded database.
#[derive(Default)]
pub struct Db {
    tables: HashMap<String, Table>,
    views: HashMap<String, ViewState>,
    /// Dataflow edges: base table → views whose graphs consume its deltas
    /// (what the per-table trigger map used to be).
    edges: HashMap<String, Vec<String>>,
    /// Simulated stable storage for `DURABLE` views. Sharing one [`SimFs`]
    /// across sessions (via [`Db::with_fs`]) is the reopen-database flow:
    /// drop the `Db`, build a new one over the same file system, re-run the
    /// schema DDL, and `CREATE ... DURABLE` recovers each view from its
    /// WAL + checkpoint instead of retraining.
    fs: SimFs,
}

impl Db {
    /// An empty database over a fresh private file system.
    pub fn new() -> Db {
        Db::default()
    }

    /// An empty database over an existing simulated file system — the
    /// reopen path after a crash or clean shutdown.
    pub fn with_fs(fs: SimFs) -> Db {
        Db { fs, ..Db::default() }
    }

    /// The database's simulated file system (keep a clone to reopen later).
    pub fn fs(&self) -> SimFs {
        self.fs.clone()
    }

    /// Parses and executes one statement.
    ///
    /// # Errors
    /// Any [`DbError`]; the database is left unchanged on error.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        match parse_statement(sql)? {
            Statement::CreateTable { name, cols, pk } => {
                if self.tables.contains_key(&name) {
                    return Err(DbError::AlreadyExists(name));
                }
                let schema = Schema::new(cols);
                if let Some(ref p) = pk {
                    if schema.col(p).is_none() {
                        return Err(DbError::NoSuchColumn(p.clone()));
                    }
                }
                self.tables.insert(name.clone(), Table::new(&name, schema, pk.as_deref()));
                Ok(QueryResult::Done)
            }
            Statement::CreateView(decl) => {
                self.create_view(decl)?;
                Ok(QueryResult::Done)
            }
            Statement::CreateDerivedView(decl) => {
                self.create_derived_view(decl)?;
                Ok(QueryResult::Done)
            }
            Statement::Insert { table, values } => {
                self.insert(&table, values)?;
                Ok(QueryResult::Done)
            }
            Statement::Delete { table, col, key } => {
                self.delete(&table, &col, key)?;
                Ok(QueryResult::Done)
            }
            Statement::Update { table, sets, col, key } => {
                self.update(&table, sets, &col, key)?;
                Ok(QueryResult::Done)
            }
            Statement::SelectLabel { view, key, as_of } => {
                let v = self.views.get_mut(&view).ok_or_else(|| DbError::NoSuchView(view.clone()))?;
                v.check_as_of(&view, as_of)?;
                let label = match &mut v.engine {
                    // replicated engines keep their own read authority: a
                    // caught-up replica *is* a pinned remote epoch
                    Engine::Replicated(_) => {
                        let l = v.engine.read_routed(key as u64);
                        // a primary-fallback read is logged; ship it again
                        v.engine.pump();
                        l
                    }
                    e => match v.snapshots.current(e.view_mut()) {
                        Some(cell) => cell.pin().classify(key as u64),
                        None => e.view_mut().read_single(key as u64),
                    },
                };
                Ok(QueryResult::Label(label))
            }
            Statement::SelectCount { view, class, as_of } => {
                let v = self.views.get_mut(&view).ok_or_else(|| DbError::NoSuchView(view.clone()))?;
                v.check_as_of(&view, as_of)?;
                // the engine is the authority on the entity population —
                // after a crash recovery its durable state (not any
                // side bookkeeping) says what exists
                let n = match &mut v.engine {
                    Engine::Replicated(_) => {
                        let n = match class {
                            None => v.engine.view().entity_count(),
                            Some(1) => v.engine.count_routed(),
                            Some(_) => v.engine.view().entity_count() - v.engine.count_routed(),
                        };
                        v.engine.pump();
                        n
                    }
                    e => match v.snapshots.current(e.view_mut()) {
                        Some(cell) => {
                            let pin = cell.pin();
                            match class {
                                None => pin.entity_count(),
                                Some(1) => pin.count_positive(),
                                Some(_) => pin.entity_count() - pin.count_positive(),
                            }
                        }
                        None => match class {
                            None => e.view().entity_count(),
                            Some(1) => e.view_mut().count_positive(),
                            Some(_) => {
                                e.view().entity_count() - e.view_mut().count_positive()
                            }
                        },
                    },
                };
                Ok(QueryResult::Count(n))
            }
            Statement::SelectMembers { view, class, as_of } => {
                let v = self.views.get_mut(&view).ok_or(DbError::NoSuchView(view.clone()))?;
                v.check_as_of(&view, as_of)?;
                let pos = match &mut v.engine {
                    Engine::Replicated(_) => {
                        let pos = v.engine.ids_routed();
                        v.engine.pump();
                        pos
                    }
                    e => match v.snapshots.current(e.view_mut()) {
                        Some(cell) => cell.pin().positive_ids(),
                        None => e.view_mut().positive_ids(),
                    },
                };
                if class == 1 {
                    return Ok(QueryResult::Ids(pos));
                }
                // negatives = view membership − positives
                let positive: std::collections::HashSet<u64> = pos.into_iter().collect();
                let ids = match &v.kind {
                    ViewKind::Legacy(decl) => {
                        // the entity table is the membership authority
                        let entities = self
                            .tables
                            .get(&decl.entity_table)
                            .ok_or_else(|| DbError::NoSuchTable(decl.entity_table.clone()))?;
                        let keyc = entities
                            .schema()
                            .col(&decl.entity_key)
                            .ok_or_else(|| DbError::NoSuchColumn(decl.entity_key.clone()))?;
                        entities
                            .iter()
                            .filter_map(|r| r[keyc].as_int())
                            .map(|k| k as u64)
                            .filter(|k| !positive.contains(k))
                            .collect()
                    }
                    // a derived relation has no single base table to scan:
                    // the sink's refcounts are the membership authority
                    ViewKind::Derived(_) => v
                        .entity_sink
                        .ids()
                        .into_iter()
                        .filter(|k| !positive.contains(k))
                        .collect(),
                };
                Ok(QueryResult::Ids(ids))
            }
            Statement::Checkpoint { view } => {
                let v = self.views.get_mut(&view).ok_or(DbError::NoSuchView(view.clone()))?;
                match &mut v.engine {
                    Engine::Durable(dv) => {
                        dv.checkpoint();
                        Ok(QueryResult::Done)
                    }
                    Engine::Replicated(g) => {
                        g.checkpoint();
                        // the checkpoint record lands in the WAL too
                        g.pump();
                        Ok(QueryResult::Done)
                    }
                    Engine::Plain(_) => Err(DbError::Unsupported(format!(
                        "CHECKPOINT on view {view}: declare it DURABLE first"
                    ))),
                }
            }
            Statement::AlterViewArch { view, arch, mode } => {
                let target_arch = arch_by_name(Some(&arch))?;
                let v = self.views.get_mut(&view).ok_or(DbError::NoSuchView(view.clone()))?;
                let target_mode = match mode {
                    Some(m) => mode_by_name(Some(&m))?,
                    None => v.engine.view().mode(),
                };
                // the migration routes through the engine stack: a durable
                // wrapper WAL-logs the redo record, a sharded deployment
                // migrates shard by shard, the adaptive wrapper does the
                // extraction + rebuild — all with the view online
                if v.engine.view_mut().set_architecture(target_arch, target_mode) {
                    // answer-invisible, but a logical statement: the epoch
                    // LSN ticks so AS OF can tell pre- from post-migration
                    v.snapshots.invalidate();
                    // on a replicated view the migration's redo record ships
                    // like any other WAL suffix
                    v.engine.pump();
                    Ok(QueryResult::Done)
                } else {
                    Err(DbError::Unsupported(format!(
                        "ALTER ... SET ARCH on view {view}: declare it ADAPTIVE first"
                    )))
                }
            }
            Statement::DropView { view } => {
                if self.views.remove(&view).is_none() {
                    return Err(DbError::NoSuchView(view));
                }
                // detach the dataflow edges so later writes to the base
                // tables no longer reference the dropped view
                for fed in self.edges.values_mut() {
                    fed.retain(|name| name != &view);
                }
                // and delete any durable store: a dropped view's WAL +
                // checkpoints must not resurrect a later view of the same
                // name (its learned state is user-visible data)
                self.fs.remove(&format!("classification_view/{view}"));
                Ok(QueryResult::Done)
            }
            Statement::PromoteReplica { view } => {
                let v = self.views.get_mut(&view).ok_or(DbError::NoSuchView(view.clone()))?;
                match &mut v.engine {
                    Engine::Replicated(g) => {
                        // failover: the furthest-ahead replica becomes the
                        // primary, shipping truncates to its LSN, and the
                        // remaining replicas re-point at it. The promoted
                        // store is process-local from here on — the SimFs
                        // path still holds the deposed primary's store,
                        // exactly like a file-system-level base backup that
                        // a real failover leaves behind.
                        g.fail_over().map_err(|e| {
                            DbError::Unsupported(format!("PROMOTE REPLICA on {view}: {e}"))
                        })?;
                        Ok(QueryResult::Done)
                    }
                    _ => Err(DbError::Unsupported(format!(
                        "PROMOTE REPLICA on view {view}: declare it with REPLICAS first"
                    ))),
                }
            }
            Statement::ShowMetrics { like } => {
                Ok(QueryResult::Metrics(hazy_obs::registry().flat_snapshot(like.as_deref())))
            }
            Statement::ShowEvents { limit } => {
                let limit = limit.unwrap_or(100) as usize;
                let rows = hazy_obs::recent_events(limit)
                    .into_iter()
                    .map(|ev| (ev.seq, ev.at_ns, ev.kind.name().to_string(), ev.detail()))
                    .collect();
                Ok(QueryResult::Events(rows))
            }
        }
    }

    /// Direct (non-SQL) table access for tools and tests.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Detaches a view's engine from the catalog and hands it out — the
    /// route by which a view declared and trained in SQL moves behind the
    /// `hazy-front` serving tier (`Front::serve_engine`) without a rebuild:
    /// same learned model, same entity table, same durable state.
    ///
    /// Unlike `DROP CLASSIFICATION VIEW`, the view's durable files are
    /// **kept** (a durable engine keeps appending to them through its own
    /// handle); only the catalog entry and the dataflow edges feeding it
    /// are removed, so later base-table writes no longer maintain it —
    /// maintenance authority moves wholesale to whoever holds the engine.
    ///
    /// A replicated view cannot be detached (its replication group owns
    /// the primary's WAL shipping): promote or drop it first.
    pub fn detach_view_engine(
        &mut self,
        view: &str,
    ) -> Result<Box<dyn DurableClassifierView + Send>, DbError> {
        match self.views.get(view).map(|v| &v.engine) {
            None => return Err(DbError::NoSuchView(view.to_string())),
            Some(Engine::Replicated(_)) => {
                return Err(DbError::Unsupported(format!(
                    "DETACH of view {view}: a replicated view cannot leave the catalog; \
                     PROMOTE or DROP its replicas first"
                )))
            }
            Some(_) => {}
        }
        let state = self.views.remove(view).expect("presence checked above");
        for fed in self.edges.values_mut() {
            fed.retain(|name| name != view);
        }
        match state.engine {
            Engine::Plain(b) => Ok(b),
            Engine::Durable(d) => Ok(Box::new(d)),
            Engine::Replicated(_) => unreachable!("rejected above"),
        }
    }

    /// Operation counters of a view's engine.
    pub fn view_stats(&self, name: &str) -> Option<ViewStats> {
        self.views.get(name).map(|v| v.engine.view().stats())
    }

    /// Memory footprint of a view's engine.
    pub fn view_memory(&self, name: &str) -> Option<MemoryFootprint> {
        self.views.get(name).map(|v| v.engine.view().memory())
    }

    /// The current model behind a view.
    pub fn view_model(&self, name: &str) -> Option<&LinearModel> {
        self.views.get(name).map(|v| v.engine.view().model())
    }

    /// Virtual time consumed by a view so far, in nanoseconds.
    pub fn view_clock_ns(&self, name: &str) -> Option<u64> {
        self.views.get(name).map(|v| v.engine.view().clock().now_ns())
    }

    /// Replication counters of a view declared with `REPLICAS`
    /// (`None` for unreplicated views).
    pub fn view_replication_stats(&self, name: &str) -> Option<GroupStats> {
        match &self.views.get(name)?.engine {
            Engine::Replicated(g) => Some(g.stats()),
            _ => None,
        }
    }

    /// `(replicas, healthy)` of a view declared with `REPLICAS`.
    pub fn view_replica_health(&self, name: &str) -> Option<(usize, usize)> {
        match &self.views.get(name)?.engine {
            Engine::Replicated(g) => Some((g.replica_count(), g.healthy_count())),
            _ => None,
        }
    }

    fn create_view(&mut self, decl: ViewDecl) -> Result<(), DbError> {
        if self.views.contains_key(&decl.name) {
            return Err(DbError::AlreadyExists(decl.name));
        }
        let entities_table =
            self.tables.get(&decl.entity_table).ok_or_else(|| DbError::NoSuchTable(decl.entity_table.clone()))?;
        let labels_table =
            self.tables.get(&decl.labels_table).ok_or_else(|| DbError::NoSuchTable(decl.labels_table.clone()))?;
        let examples_table = self
            .tables
            .get(&decl.examples_table)
            .ok_or_else(|| DbError::NoSuchTable(decl.examples_table.clone()))?;
        let entity_keyc = entities_table
            .schema()
            .col(&decl.entity_key)
            .ok_or_else(|| DbError::NoSuchColumn(decl.entity_key.clone()))?;

        // --- the label set: binary views take the first label as +1
        let labelc = labels_table
            .schema()
            .col(&decl.label_col)
            .ok_or_else(|| DbError::NoSuchColumn(decl.label_col.clone()))?;
        let mut labels: Vec<String> = Vec::new();
        for r in labels_table.iter() {
            if let Some(l) = r[labelc].as_text() {
                if !labels.iter().any(|x| x == l) {
                    labels.push(l.to_string());
                }
            }
        }
        if labels.len() != 2 {
            return Err(DbError::Unsupported(format!(
                "binary classification views need exactly 2 labels, found {} \
                 (multiclass runs one-vs-all at the library level, Appendix B.5.4)",
                labels.len()
            )));
        }
        let pos_label = labels[0].clone();

        // --- feature function: corpus statistics, then one vector per entity
        let mut ff = by_name(&decl.feature_fn, DICT_CAPACITY)
            .ok_or_else(|| DbError::NoSuchFeatureFunction(decl.feature_fn.clone()))?;
        let corpus: Vec<&Row> = entities_table.iter().collect();
        ff.compute_stats(&corpus, entities_table.schema());
        let mut ents = Vec::with_capacity(corpus.len());
        let dense = decl.feature_fn == "numeric_columns";
        for r in &corpus {
            let id = r[entity_keyc]
                .as_int()
                .ok_or_else(|| DbError::SchemaMismatch("entity key must be an integer".into()))?;
            ents.push(Entity::new(id as u64, ff.compute_feature(r, entities_table.schema())));
        }

        // --- warm examples already present in the examples table
        let ex_keyc = examples_table
            .schema()
            .col(&decl.examples_key)
            .ok_or_else(|| DbError::NoSuchColumn(decl.examples_key.clone()))?;
        let ex_labelc = examples_table
            .schema()
            .col(&decl.examples_label)
            .ok_or_else(|| DbError::NoSuchColumn(decl.examples_label.clone()))?;
        let mut warm = Vec::new();
        for r in examples_table.iter() {
            let key = r[ex_keyc].as_int().ok_or(DbError::MissingEntity(-1))?;
            let label = label_to_sign(&r[ex_labelc], &pos_label, &labels)?;
            let ent = entities_table.get(key).ok_or(DbError::MissingEntity(key))?;
            warm.push(TrainingExample::new(
                key as u64,
                ff.compute_feature(ent, entities_table.schema()),
                label,
            ));
        }

        // --- method: USING clause, or the paper's automatic selection
        let seed_rows: Vec<Row> = entities_table.iter().cloned().collect();
        let builder = make_builder(decl.using.as_deref(), decl.architecture.as_deref(),
            decl.mode.as_deref(), dense, ff.dim(), &warm)?;
        let engine = self.build_engine(
            &decl.name, &builder, decl.shards, decl.adaptive, decl.durable, decl.replicas,
            decl.max_lag, ents, &warm,
        )?;

        // --- the per-table trigger map becomes a dataflow graph: entity
        // rows flow to sink port 0, example rows to port 1 (one source
        // feeds both ports when the two tables coincide)
        let mut graph = Dataflow::new();
        let src_e = graph.source();
        let mut sources = HashMap::new();
        sources.insert(decl.entity_table.clone(), src_e);
        let sink = if decl.examples_table == decl.entity_table {
            graph.sink(&[src_e, src_e])
        } else {
            let src_x = graph.source();
            sources.insert(decl.examples_table.clone(), src_x);
            graph.sink(&[src_e, src_x])
        };
        // ongoing maintenance charges the engine's cost universe (the
        // creation-time corpus scan above stays free, as it always was)
        graph.set_clock(engine.view().clock().clone());
        let mut entity_sink = ViewSink::new(move |r: &Row| {
            r[entity_keyc].as_int().expect("entity key validated before ingest") as u64
        });
        // seed the sink's refcounts with the corpus the engine was built
        // over, so a later DELETE of one of these rows retracts cleanly
        for r in seed_rows {
            let _ = entity_sink.absorb(&Delta::insert(r));
        }
        let key_checks = HashMap::from([(decl.entity_table.clone(), entity_keyc)]);
        self.edges.entry(decl.entity_table.clone()).or_default().push(decl.name.clone());
        if decl.examples_table != decl.entity_table {
            self.edges.entry(decl.examples_table.clone()).or_default().push(decl.name.clone());
        }
        self.views.insert(
            decl.name.clone(),
            ViewState {
                kind: ViewKind::Legacy(Box::new(decl)),
                ff,
                engine,
                pos_label,
                known_labels: Vec::new(),
                graph,
                sources,
                sink,
                entity_sink,
                key_checks,
                snapshots: SnapshotCache::new(),
            },
        );
        Ok(())
    }

    fn create_derived_view(&mut self, decl: DerivedViewDecl) -> Result<(), DbError> {
        if self.views.contains_key(&decl.name) {
            return Err(DbError::AlreadyExists(decl.name));
        }
        let q = decl.query.clone();
        let a = self.tables.get(&q.table).ok_or_else(|| DbError::NoSuchTable(q.table.clone()))?;
        let b = match &q.join {
            Some(j) => {
                if j.table == q.table {
                    return Err(DbError::Unsupported(
                        "self-joins in derived views (join a copy of the table instead)".into(),
                    ));
                }
                Some(self.tables.get(&j.table).ok_or_else(|| DbError::NoSuchTable(j.table.clone()))?)
            }
            None => None,
        };

        // --- resolve every column reference to (side, index)
        let resolve = |c: &ColRef| -> Result<(usize, usize), DbError> {
            match &c.table {
                Some(t) if *t == q.table => Ok((
                    0,
                    a.schema()
                        .col(&c.column)
                        .ok_or_else(|| DbError::NoSuchColumn(format!("{t}.{}", c.column)))?,
                )),
                Some(t) => match b {
                    Some(bt) if *t == bt.name() => Ok((
                        1,
                        bt.schema()
                            .col(&c.column)
                            .ok_or_else(|| DbError::NoSuchColumn(format!("{t}.{}", c.column)))?,
                    )),
                    _ => Err(DbError::NoSuchTable(t.clone())),
                },
                None => {
                    let in_a = a.schema().col(&c.column);
                    let in_b = b.and_then(|bt| bt.schema().col(&c.column));
                    match (in_a, in_b) {
                        (Some(_), Some(_)) => Err(DbError::Unsupported(format!(
                            "ambiguous column {} (qualify it with a table name)",
                            c.column
                        ))),
                        (Some(i), None) => Ok((0, i)),
                        (None, Some(i)) => Ok((1, i)),
                        (None, None) => Err(DbError::NoSuchColumn(c.column.clone())),
                    }
                }
            }
        };
        let cols: Vec<(usize, usize)> = q.cols.iter().map(&resolve).collect::<Result<_, _>>()?;
        let schema_of =
            |side: usize| if side == 0 { a.schema() } else { b.expect("side 1 implies join").schema() };

        // the first projected column is the derived relation's entity key
        let (key_side, key_idx) = cols[0];
        if schema_of(key_side).column(key_idx).1 != ColumnType::Int {
            return Err(DbError::SchemaMismatch(
                "the derived view's key column must be an INT column".into(),
            ));
        }
        let join_keys = match &q.join {
            Some(j) => {
                let l = resolve(&j.left)?;
                let r = resolve(&j.right)?;
                if l.0 == r.0 {
                    return Err(DbError::Unsupported(
                        "JOIN ON must relate a column of each table".into(),
                    ));
                }
                let (ak, bk) = if l.0 == 0 { (l.1, r.1) } else { (r.1, l.1) };
                for (side, idx) in [(0usize, ak), (1, bk)] {
                    if schema_of(side).column(idx).1 != ColumnType::Int {
                        return Err(DbError::Unsupported("JOIN keys must be INT columns".into()));
                    }
                }
                Some((ak, bk))
            }
            None => None,
        };
        let filter = match &q.filter {
            Some((c, v)) => Some((resolve(c)?, v.clone())),
            None => None,
        };

        // --- schema of the featurized prefix [key, features...]; names are
        // position-prefixed so the same column may be projected twice
        let label_idx = cols.len() - 1;
        let mut feat_cols = Vec::with_capacity(label_idx);
        for (i, &(side, idx)) in cols[..label_idx].iter().enumerate() {
            let (name, ty) = schema_of(side).column(idx);
            feat_cols.push((format!("c{i}_{name}"), ty));
        }
        let feat_schema = Schema::new(feat_cols);

        // --- build the graph: source(s) → [filter] → [join] → project → sink
        let mut graph = Dataflow::new();
        let src_a = graph.source();
        let mut sources = HashMap::from([(q.table.clone(), src_a)]);
        let mut node_a = src_a;
        let mut node_b = None;
        if let Some(bt) = b {
            let src_b = graph.source();
            sources.insert(bt.name().to_string(), src_b);
            node_b = Some(src_b);
        }
        if let Some(((side, idx), v)) = filter {
            let pred = move |r: &Row| r[idx] == v;
            if side == 0 {
                node_a = graph.filter(node_a, pred);
            } else {
                node_b = Some(graph.filter(node_b.expect("side 1 implies join"), pred));
            }
        }
        let a_arity = a.schema().arity();
        let joined = match join_keys {
            Some((ak, bk)) => graph.join(
                node_a,
                node_b.expect("join keys imply a joined table"),
                move |r: &Row| r[ak].as_int(),
                move |r: &Row| r[bk].as_int(),
                |l: &Row, r: &Row| {
                    let mut out = l.clone();
                    out.extend(r.iter().cloned());
                    out
                },
            ),
            None => node_a,
        };
        // project [key, features..., label] out of the (possibly
        // concatenated) row; side-1 columns live after the probe row
        let positions: Vec<usize> =
            cols.iter().map(|&(side, idx)| if side == 0 { idx } else { a_arity + idx }).collect();
        let proj =
            graph.map(joined, move |r: &Row| positions.iter().map(|&p| r[p].clone()).collect());
        let sink = graph.sink(&[proj]);

        // --- validate keys, then seed the graph with the current base rows
        let key_table = if key_side == 0 { a } else { b.expect("side 1 implies join") };
        for r in key_table.iter() {
            r[key_idx]
                .as_int()
                .ok_or_else(|| DbError::SchemaMismatch("entity key must be an integer".into()))?;
        }
        let key_checks = HashMap::from([(key_table.name().to_string(), key_idx)]);
        graph.ingest(src_a, a.iter().cloned().map(Delta::insert).collect());
        if let Some(bt) = b {
            graph.ingest(sources[bt.name()], bt.iter().cloned().map(Delta::insert).collect());
        }
        let seeded = graph.drain(sink);
        let mut entity_sink = ViewSink::new(|r: &Row| {
            r[0].as_int().expect("entity key validated before ingest") as u64
        });
        let mut ents_rows: Vec<(u64, Row)> = Vec::new();
        for action in entity_sink.absorb_batch(seeded.iter().map(|(_, d)| d)) {
            if let RowAction::Insert { id, row } = action {
                ents_rows.push((id, row));
            }
        }

        // --- featurize the derived corpus; labeled rows warm the model
        let mut ff = by_name(&decl.feature_fn, DICT_CAPACITY)
            .ok_or_else(|| DbError::NoSuchFeatureFunction(decl.feature_fn.clone()))?;
        let feat_rows: Vec<Row> = ents_rows.iter().map(|(_, r)| r[..label_idx].to_vec()).collect();
        let corpus: Vec<&Row> = feat_rows.iter().collect();
        ff.compute_stats(&corpus, &feat_schema);
        let dense = decl.feature_fn == "numeric_columns";
        let known_labels = vec![decl.pos_label.clone(), decl.neg_label.clone()];
        let mut ents = Vec::with_capacity(ents_rows.len());
        let mut warm = Vec::new();
        for ((id, row), feat_row) in ents_rows.iter().zip(&feat_rows) {
            let f = ff.compute_feature(feat_row, &feat_schema);
            if row[label_idx] != Value::Null {
                let sign = label_to_sign(&row[label_idx], &decl.pos_label, &known_labels)?;
                warm.push(TrainingExample::new(*id, f.clone(), sign));
            }
            ents.push(Entity::new(*id, f));
        }

        let builder = make_builder(decl.using.as_deref(), decl.architecture.as_deref(),
            decl.mode.as_deref(), dense, ff.dim(), &warm)?;
        let engine = self.build_engine(
            &decl.name, &builder, decl.shards, decl.adaptive, decl.durable, decl.replicas,
            decl.max_lag, ents, &warm,
        )?;
        graph.set_clock(engine.view().clock().clone());

        self.edges.entry(q.table.clone()).or_default().push(decl.name.clone());
        if let Some(j) = &q.join {
            self.edges.entry(j.table.clone()).or_default().push(decl.name.clone());
        }
        let pos_label = decl.pos_label.clone();
        self.views.insert(
            decl.name.clone(),
            ViewState {
                kind: ViewKind::Derived(DerivedSpec { feat_schema, label_idx }),
                ff,
                engine,
                pos_label,
                known_labels,
                graph,
                sources,
                sink,
                entity_sink,
                key_checks,
                snapshots: SnapshotCache::new(),
            },
        );
        Ok(())
    }

    /// Builds a view's engine from prepared entities and warm examples:
    /// plain, sharded, adaptive, or any combination, optionally wrapped in
    /// WAL + checkpoint durability (with recovery on reopen) and a
    /// log-shipping replica group.
    #[allow(clippy::too_many_arguments)] // one flag per physical-design clause
    fn build_engine(
        &mut self,
        name: &str,
        builder: &ViewBuilder,
        shards: Option<u32>,
        adaptive: bool,
        durable: bool,
        replicas: Option<u32>,
        max_lag: Option<u64>,
        ents: Vec<Entity>,
        warm: &[TrainingExample],
    ) -> Result<Engine, DbError> {
        // SHARDS n routes through the hazy-serve layer: the engine becomes a
        // hash-partitioned ShardedView whose answers are observationally
        // identical to the unsharded build (its own equivalence suite), so
        // every execution path stays unchanged
        let raw = |builder: &ViewBuilder| -> Box<dyn DurableClassifierView + Send> {
            match (shards, adaptive) {
                (Some(n), false) if n > 1 => {
                    Box::new(hazy_serve::ShardedView::build(builder, n as usize, ents, warm))
                }
                // ADAPTIVE + SHARDS: every shard gets its own advisor and
                // migrates independently under its writer-priority lock
                (Some(n), true) if n > 1 => Box::new(build_sharded_adaptive(
                    builder,
                    AdvisorConfig::default(),
                    n as usize,
                    ents,
                    warm,
                )),
                (_, true) => {
                    Box::new(AdaptiveView::build(builder, AdvisorConfig::default(), ents, warm))
                }
                _ => builder.build(ents, warm),
            }
        };
        if durable {
            // the durable flow: recover from an existing store (reopen), or
            // build fresh, wrap in WAL + checkpoints, write the genesis
            // checkpoint — the view's learned state now survives the session
            let path = format!("classification_view/{name}");
            let dv = if self.fs.has_checkpoint(&path) {
                let store = self.fs.open(&path, builder.new_clock());
                DurableView::recover(builder, store, 256, &TuneRestorer)
                    .map_err(|e| DbError::Unsupported(format!("recovery of {path}: {e}")))?
            } else {
                let inner = raw(builder);
                let store = self.fs.open(&path, inner.clock().clone());
                DurableView::create(inner, store, 256)
            };
            match replicas {
                // REPLICAS n: bootstrap n replicas off the durable primary
                // (each snapshots the primary's current state, then replays
                // shipped WAL frames forever). Replica stores are
                // process-local by design — only the primary's store lives
                // at the SimFs path, as on a real primary host.
                Some(n) => {
                    let cfg = GroupConfig {
                        replicas: n as usize,
                        max_lag: max_lag.unwrap_or(0),
                        interval: 256,
                        chunk_frames: 4,
                        seed: 1,
                    };
                    let group = ReplicationGroup::new(
                        builder.clone(),
                        dv,
                        cfg,
                        FaultPlan::none(),
                        &TuneRestorer,
                    )
                    .map_err(|e| {
                        DbError::Unsupported(format!("replica bootstrap of {path}: {e}"))
                    })?;
                    Ok(Engine::Replicated(Box::new(group)))
                }
                None => Ok(Engine::Durable(dv)),
            }
        } else {
            Ok(Engine::Plain(raw(builder)))
        }
    }

    fn insert(&mut self, table: &str, values: Row) -> Result<(), DbError> {
        {
            let t = self.tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.into()))?;
            t.insert(values.clone())?;
        }
        self.propagate(table, vec![Delta::insert(values)])
    }

    fn delete(&mut self, table: &str, col: &str, key: i64) -> Result<(), DbError> {
        let old = {
            let t = self.tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.into()))?;
            let c = t.schema().col(col).ok_or_else(|| DbError::NoSuchColumn(col.into()))?;
            if t.pk_col() != Some(c) {
                return Err(DbError::Unsupported(format!(
                    "DELETE FROM {table} WHERE {col}: the predicate must address the primary key"
                )));
            }
            t.delete(key)?
        };
        self.propagate(table, vec![Delta::retract(old)])
    }

    fn update(
        &mut self,
        table: &str,
        sets: Vec<(String, Value)>,
        col: &str,
        key: i64,
    ) -> Result<(), DbError> {
        let (old, new) = {
            let t = self.tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.into()))?;
            let c = t.schema().col(col).ok_or_else(|| DbError::NoSuchColumn(col.into()))?;
            if t.pk_col() != Some(c) {
                return Err(DbError::Unsupported(format!(
                    "UPDATE {table} WHERE {col}: the predicate must address the primary key"
                )));
            }
            let resolved = sets
                .into_iter()
                .map(|(name, v)| {
                    t.schema().col(&name).map(|i| (i, v)).ok_or(DbError::NoSuchColumn(name))
                })
                .collect::<Result<Vec<_>, _>>()?;
            t.update(key, &resolved)?
        };
        // one batch: the graph sees retract(old) before insert(new), so the
        // view observes the update as remove-then-reinsert of the entity
        self.propagate(table, vec![Delta::retract(old), Delta::insert(new)])
    }

    /// Pushes a batch of base-table deltas along every dataflow edge
    /// registered for `table`, after the base write has committed.
    fn propagate(&mut self, table: &str, deltas: Vec<Delta<Row>>) -> Result<(), DbError> {
        let Some(fed) = self.edges.get(table).cloned() else {
            return Ok(());
        };
        for view_name in fed {
            // split borrows: pull the view out, work, put it back. An edge
            // whose view is gone (dropped/renamed between DDL and this
            // write) is a catalog inconsistency, not a panic: surface it
            // as a structured error — the base row is already committed,
            // which is exactly PostgreSQL's behaviour when a trigger
            // function errors after the heap insert.
            let Some(mut vs) = self.views.remove(&view_name) else {
                return Err(DbError::NoSuchView(view_name));
            };
            let result = self.feed_view(&mut vs, table, &deltas);
            self.views.insert(view_name, vs);
            result?;
        }
        Ok(())
    }

    /// Runs one view's graph over a batch of deltas from `table` and
    /// applies what comes out of the sink to the classifier engine.
    fn feed_view(&mut self, vs: &mut ViewState, table: &str, deltas: &[Delta<Row>]) -> Result<(), DbError> {
        // keys are validated before anything enters the graph, so sink
        // rows always carry extractable entity ids
        if let Some(&kc) = vs.key_checks.get(table) {
            for d in deltas {
                d.row[kc]
                    .as_int()
                    .ok_or_else(|| DbError::SchemaMismatch("entity key must be an integer".into()))?;
            }
        }
        let Some(&src) = vs.sources.get(table) else {
            return Ok(());
        };
        vs.graph.ingest(src, deltas.to_vec());
        for (port, d) in vs.graph.drain(vs.sink) {
            if port == 1 {
                // the legacy examples edge: a monotone training stream —
                // inserts train, retractions are ignored (the paper's
                // model never unlearns an example)
                if d.diff > 0 {
                    self.apply_example(vs, &d.row)?;
                }
                continue;
            }
            if let Some(action) = vs.entity_sink.absorb(&d) {
                self.apply_entity_action(vs, action)?;
            }
        }
        // ship whatever this batch appended to the primary's WAL
        vs.engine.pump();
        Ok(())
    }

    /// Type-(2) dynamic data on a legacy view: a new training example.
    fn apply_example(&self, vs: &mut ViewState, row: &Row) -> Result<(), DbError> {
        let ViewKind::Legacy(decl) = &vs.kind else {
            return Ok(()); // derived graphs have no example port
        };
        let entities_table = self
            .tables
            .get(&decl.entity_table)
            .ok_or_else(|| DbError::NoSuchTable(decl.entity_table.clone()))?;
        let ex_table = self
            .tables
            .get(&decl.examples_table)
            .ok_or_else(|| DbError::NoSuchTable(decl.examples_table.clone()))?;
        let keyc = ex_table
            .schema()
            .col(&decl.examples_key)
            .ok_or_else(|| DbError::NoSuchColumn(decl.examples_key.clone()))?;
        let labelc = ex_table
            .schema()
            .col(&decl.examples_label)
            .ok_or_else(|| DbError::NoSuchColumn(decl.examples_label.clone()))?;
        let key = row[keyc].as_int().ok_or(DbError::MissingEntity(-1))?;
        let label = label_to_sign(&row[labelc], &vs.pos_label, &vs.known_labels)?;
        let ent = entities_table.get(key).ok_or(DbError::MissingEntity(key))?;
        let f = vs.ff.compute_feature(ent, entities_table.schema());
        vs.engine.view_mut().update(&TrainingExample::new(key as u64, f, label));
        vs.snapshots.invalidate();
        Ok(())
    }

    /// A set-level transition of the derived relation: an entity arrived
    /// (type-(1) dynamic data — classify and store it; on a derived view a
    /// labeled row also trains) or left (retract it from the classifier).
    fn apply_entity_action(&self, vs: &mut ViewState, action: RowAction<Row>) -> Result<(), DbError> {
        let id = match &action {
            RowAction::Insert { id, .. } | RowAction::Remove { id } => *id,
        };
        let RowAction::Insert { row, .. } = action else {
            // the removal is WAL-logged by a durable engine and routed to
            // its home shard by a sharded one — same path as an insert
            let _ = vs.engine.view_mut().remove_entity(id);
            vs.snapshots.invalidate();
            return Ok(());
        };
        match &vs.kind {
            ViewKind::Legacy(decl) => {
                let entities_table = self
                    .tables
                    .get(&decl.entity_table)
                    .ok_or_else(|| DbError::NoSuchTable(decl.entity_table.clone()))?;
                vs.ff.compute_stats_inc(&row, entities_table.schema());
                if matches!(vs.engine, Engine::Durable(_))
                    && vs.engine.view_mut().read_single(id).is_some()
                {
                    // idempotent re-insert, durable views only: the reopen
                    // flow replays base-table rows whose entities the
                    // recovered view already holds from its WAL. Plain
                    // views keep the original duplicate-id contract (and
                    // skip the probe's clock/stats cost entirely).
                    return Ok(());
                }
                let f = vs.ff.compute_feature(&row, entities_table.schema());
                vs.engine.view_mut().insert_entity(Entity::new(id, f));
                vs.snapshots.invalidate();
            }
            ViewKind::Derived(spec) => {
                let feat_row: Row = row[..spec.label_idx].to_vec();
                vs.ff.compute_stats_inc(&feat_row, &spec.feat_schema);
                if matches!(vs.engine, Engine::Durable(_))
                    && vs.engine.view_mut().read_single(id).is_some()
                {
                    // replayed base row on the reopen path: the recovered
                    // engine already holds the entity AND its training
                    // effect, so skip both
                    return Ok(());
                }
                let f = vs.ff.compute_feature(&feat_row, &spec.feat_schema);
                vs.engine.view_mut().insert_entity(Entity::new(id, f.clone()));
                let label = &row[spec.label_idx];
                if *label != Value::Null {
                    let sign = label_to_sign(label, &vs.pos_label, &vs.known_labels)?;
                    vs.engine.view_mut().update(&TrainingExample::new(id, f, sign));
                }
                vs.snapshots.invalidate();
            }
        }
        Ok(())
    }
}

/// Method selection + physical-design builder shared by both view forms.
fn make_builder(
    using: Option<&str>,
    architecture: Option<&str>,
    mode: Option<&str>,
    dense: bool,
    dim: usize,
    warm: &[TrainingExample],
) -> Result<ViewBuilder, DbError> {
    let sgd = match using {
        Some(m) => SgdConfig::for_loss(loss_by_name(m)?),
        None if warm.len() >= SELECT_MIN_EXAMPLES => hazy_learn::select::select_model(warm).best,
        None => SgdConfig::svm(),
    };
    let arch = arch_by_name(architecture)?;
    let mode = mode_by_name(mode)?;
    let pair = if dense { NormPair::EUCLIDEAN } else { NormPair::TEXT };
    Ok(ViewBuilder::new(arch, mode).sgd(sgd).norm_pair(pair).dim(dim))
}

fn label_to_sign(v: &Value, pos: &str, known: &[String]) -> Result<i8, DbError> {
    match v {
        Value::Int(1) => Ok(1),
        Value::Int(-1) => Ok(-1),
        Value::Text(s) if s == pos => Ok(1),
        Value::Text(s) => {
            if known.is_empty() || known.iter().any(|k| k == s) {
                Ok(-1)
            } else {
                Err(DbError::BadLabel(s.clone()))
            }
        }
        other => Err(DbError::BadLabel(other.to_string())),
    }
}

fn loss_by_name(name: &str) -> Result<LossKind, DbError> {
    match name.to_ascii_lowercase().as_str() {
        "svm" => Ok(LossKind::Hinge),
        "logistic" => Ok(LossKind::Logistic),
        "ridge" | "leastsquares" => Ok(LossKind::Squared),
        other => Err(DbError::Unsupported(format!("USING {other}"))),
    }
}

fn arch_by_name(name: Option<&str>) -> Result<Architecture, DbError> {
    match name.map(|s| s.to_ascii_uppercase()) {
        None => Ok(Architecture::HazyMem),
        Some(s) => match s.as_str() {
            "HAZY_MM" => Ok(Architecture::HazyMem),
            "NAIVE_MM" => Ok(Architecture::NaiveMem),
            "HAZY_OD" => Ok(Architecture::HazyDisk),
            "NAIVE_OD" => Ok(Architecture::NaiveDisk),
            "HYBRID" => Ok(Architecture::Hybrid),
            other => Err(DbError::Unsupported(format!("ARCHITECTURE {other}"))),
        },
    }
}

fn mode_by_name(name: Option<&str>) -> Result<Mode, DbError> {
    match name.map(|s| s.to_ascii_uppercase()) {
        None => Ok(Mode::Eager),
        Some(s) => match s.as_str() {
            "EAGER" => Ok(Mode::Eager),
            "LAZY" => Ok(Mode::Lazy),
            other => Err(DbError::Unsupported(format!("MODE {other}"))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny end-to-end fixture: papers, labels, a few seed examples.
    fn setup() -> Db {
        let mut db = Db::new();
        db.execute("CREATE TABLE Papers (id INT PRIMARY KEY, title TEXT)").unwrap();
        db.execute("CREATE TABLE Paper_Area (label TEXT)").unwrap();
        db.execute("CREATE TABLE Example_Papers (id INT, label TEXT)").unwrap();
        db.execute("INSERT INTO Paper_Area VALUES ('DB')").unwrap();
        db.execute("INSERT INTO Paper_Area VALUES ('NonDB')").unwrap();
        for (id, title) in [
            (1, "database systems transactions storage"),
            (2, "query optimization database index"),
            (3, "protein folding biology cells"),
            (4, "genome biology dna sequencing"),
            (5, "transactions concurrency database"),
            (6, "cells biology microscopy imaging"),
        ] {
            db.execute(&format!("INSERT INTO Papers VALUES ({id}, '{title}')")).unwrap();
        }
        db
    }

    fn create_view(db: &mut Db, extra: &str) {
        db.execute(&format!(
            "CREATE CLASSIFICATION VIEW Labeled_Papers KEY id \
             ENTITIES FROM Papers KEY id \
             LABELS FROM Paper_Area LABEL label \
             EXAMPLES FROM Example_Papers KEY id LABEL label \
             FEATURE FUNCTION tf_bag_of_words {extra}"
        ))
        .unwrap();
    }

    fn teach(db: &mut Db, rounds: usize) {
        // repeat the labeled seed so the SVM converges on this toy corpus
        for _ in 0..rounds {
            for (id, l) in [(1, "DB"), (3, "NonDB"), (2, "DB"), (4, "NonDB"), (5, "DB"), (6, "NonDB")] {
                db.execute(&format!("INSERT INTO Example_Papers VALUES ({id}, '{l}')")).unwrap();
            }
        }
    }

    #[test]
    fn end_to_end_classification_via_sql() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        teach(&mut db, 30);
        // all database papers labeled 1, biology papers -1
        for id in [1, 2, 5] {
            assert_eq!(
                db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(1)),
                "paper {id}"
            );
        }
        for id in [3, 4, 6] {
            assert_eq!(
                db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(-1)),
                "paper {id}"
            );
        }
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
            QueryResult::Count(3)
        );
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers").unwrap(),
            QueryResult::Count(6)
        );
        let QueryResult::Ids(mut ids) =
            db.execute("SELECT id FROM Labeled_Papers WHERE class = 1").unwrap()
        else {
            panic!("expected ids")
        };
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 5]);
        let QueryResult::Ids(mut neg) =
            db.execute("SELECT id FROM Labeled_Papers WHERE class = -1").unwrap()
        else {
            panic!("expected ids")
        };
        neg.sort_unstable();
        assert_eq!(neg, vec![3, 4, 6]);
    }

    #[test]
    fn new_entities_are_classified_on_arrival() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        teach(&mut db, 30);
        db.execute("INSERT INTO Papers VALUES (7, 'database query transactions')").unwrap();
        db.execute("INSERT INTO Papers VALUES (8, 'biology dna cells')").unwrap();
        assert_eq!(
            db.execute("SELECT class FROM Labeled_Papers WHERE id = 7").unwrap(),
            QueryResult::Label(Some(1))
        );
        assert_eq!(
            db.execute("SELECT class FROM Labeled_Papers WHERE id = 8").unwrap(),
            QueryResult::Label(Some(-1))
        );
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers").unwrap(),
            QueryResult::Count(8)
        );
    }

    #[test]
    fn every_architecture_serves_the_view() {
        for arch in ["HAZY_MM", "NAIVE_MM", "HAZY_OD", "NAIVE_OD", "HYBRID"] {
            for mode in ["EAGER", "LAZY"] {
                let mut db = setup();
                create_view(&mut db, &format!("USING SVM ARCHITECTURE {arch} MODE {mode}"));
                teach(&mut db, 30);
                assert_eq!(
                    db.execute("SELECT class FROM Labeled_Papers WHERE id = 1").unwrap(),
                    QueryResult::Label(Some(1)),
                    "{arch}/{mode}"
                );
                assert_eq!(
                    db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
                    QueryResult::Count(3),
                    "{arch}/{mode}"
                );
            }
        }
    }

    #[test]
    fn as_of_serves_the_current_epoch_and_rejects_stale_lsns() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        teach(&mut db, 30);
        // discover the newest epoch LSN through the structured error
        let err = db
            .execute("SELECT class FROM Labeled_Papers AS OF LSN 999999 WHERE id = 1")
            .unwrap_err();
        let DbError::SnapshotUnavailable { view, requested, newest } = err else {
            panic!("expected SnapshotUnavailable")
        };
        assert_eq!(view, "Labeled_Papers");
        assert_eq!(requested, 999_999);
        // 30 teaching rounds × 6 examples folded into the view since creation
        assert_eq!(newest, 180);
        // the newest LSN answers every read shape, matching the bare reads
        assert_eq!(
            db.execute(&format!("SELECT class FROM Labeled_Papers AS OF LSN {newest} WHERE id = 1"))
                .unwrap(),
            QueryResult::Label(Some(1))
        );
        assert_eq!(
            db.execute(&format!(
                "SELECT COUNT(*) FROM Labeled_Papers AS OF LSN {newest} WHERE class = 1"
            ))
            .unwrap(),
            QueryResult::Count(3)
        );
        let QueryResult::Ids(mut ids) = db
            .execute(&format!("SELECT id FROM Labeled_Papers AS OF LSN {newest} WHERE class = 1"))
            .unwrap()
        else {
            panic!("expected ids")
        };
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 5]);
        // a mutating statement advances the epoch: the old LSN is now stale
        db.execute("INSERT INTO Example_Papers VALUES (1, 'DB')").unwrap();
        match db
            .execute(&format!("SELECT class FROM Labeled_Papers AS OF LSN {newest} WHERE id = 1"))
            .unwrap_err()
        {
            DbError::SnapshotUnavailable { requested, newest: n, .. } => {
                assert_eq!(requested, newest);
                assert_eq!(n, newest + 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            db.execute(&format!(
                "SELECT class FROM Labeled_Papers AS OF LSN {} WHERE id = 1",
                newest + 1
            ))
            .unwrap(),
            QueryResult::Label(Some(1))
        );
    }

    #[test]
    fn sharded_views_serve_identically_to_unsharded() {
        // every read shape against a SHARDS n view must match the unsharded
        // answers of end_to_end_classification_via_sql
        for extra in [
            "USING SVM SHARDS 4",
            "USING SVM SHARDS 1",
            "USING SVM ARCHITECTURE NAIVE_MM MODE LAZY SHARDS 3",
            "USING SVM ARCHITECTURE HAZY_OD MODE EAGER SHARDS 2",
        ] {
            let mut db = setup();
            create_view(&mut db, extra);
            teach(&mut db, 30);
            for (id, expect) in [(1, 1), (2, 1), (5, 1), (3, -1), (4, -1), (6, -1)] {
                assert_eq!(
                    db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}"))
                        .unwrap(),
                    QueryResult::Label(Some(expect)),
                    "{extra}: paper {id}"
                );
            }
            assert_eq!(
                db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
                QueryResult::Count(3),
                "{extra}"
            );
            let QueryResult::Ids(mut ids) =
                db.execute("SELECT id FROM Labeled_Papers WHERE class = 1").unwrap()
            else {
                panic!("expected ids")
            };
            ids.sort_unstable();
            assert_eq!(ids, vec![1, 2, 5], "{extra}");
            // new entities keep routing to their home shards
            db.execute("INSERT INTO Papers VALUES (7, 'database query transactions')").unwrap();
            assert_eq!(
                db.execute("SELECT class FROM Labeled_Papers WHERE id = 7").unwrap(),
                QueryResult::Label(Some(1)),
                "{extra}"
            );
            // the logical update count (30 teaching rounds × 6 examples) is
            // not multiplied by the shard count
            assert_eq!(db.view_stats("Labeled_Papers").unwrap().updates, 180, "{extra}");
            assert!(db.view_model("Labeled_Papers").is_some(), "{extra}");
        }
    }

    #[test]
    fn automatic_model_selection_when_using_omitted() {
        let mut db = setup();
        // seed enough examples for selection to run at creation time
        for _ in 0..10 {
            for (id, l) in [(1, "DB"), (3, "NonDB"), (2, "DB"), (4, "NonDB")] {
                db.execute(&format!("INSERT INTO Example_Papers VALUES ({id}, '{l}')")).unwrap();
            }
        }
        create_view(&mut db, "");
        teach(&mut db, 20);
        assert_eq!(
            db.execute("SELECT class FROM Labeled_Papers WHERE id = 1").unwrap(),
            QueryResult::Label(Some(1))
        );
    }

    #[test]
    fn example_for_missing_entity_is_rejected() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        let err = db.execute("INSERT INTO Example_Papers VALUES (99, 'DB')").unwrap_err();
        assert_eq!(err, DbError::MissingEntity(99));
    }

    #[test]
    fn view_requires_exactly_two_labels() {
        let mut db = setup();
        db.execute("INSERT INTO Paper_Area VALUES ('ThirdArea')").unwrap();
        let err = db
            .execute(
                "CREATE CLASSIFICATION VIEW V KEY id \
                 ENTITIES FROM Papers KEY id LABELS FROM Paper_Area LABEL label \
                 EXAMPLES FROM Example_Papers KEY id LABEL label \
                 FEATURE FUNCTION tf_bag_of_words",
            )
            .unwrap_err();
        assert!(matches!(err, DbError::Unsupported(_)));
    }

    #[test]
    fn errors_for_missing_objects() {
        let mut db = Db::new();
        assert!(matches!(
            db.execute("SELECT class FROM Nope WHERE id = 1"),
            Err(DbError::NoSuchView(_))
        ));
        assert!(matches!(
            db.execute("INSERT INTO Nope VALUES (1)"),
            Err(DbError::NoSuchTable(_))
        ));
        db.execute("CREATE TABLE T (id INT PRIMARY KEY)").unwrap();
        assert!(matches!(
            db.execute("CREATE TABLE T (id INT)"),
            Err(DbError::AlreadyExists(_))
        ));
    }

    #[test]
    fn durable_view_survives_reopen_without_retraining() {
        // session 1: create a durable view, teach it, checkpoint
        let mut db = setup();
        create_view(&mut db, "USING SVM DURABLE");
        teach(&mut db, 30);
        db.execute("INSERT INTO Papers VALUES (7, 'database query transactions')").unwrap();
        let trained_updates = db.view_stats("Labeled_Papers").unwrap().updates;
        assert_eq!(trained_updates, 180);
        db.execute("CHECKPOINT CLASSIFICATION VIEW Labeled_Papers").unwrap();
        let fs = db.fs();
        drop(db); // session ends (or crashes — only stable state matters)

        // session 2: reopen over the same file system; re-run the schema
        // DDL and base rows (tables are not durable), then the same CREATE
        // ... DURABLE recovers the view from WAL + checkpoint
        let mut db2 = Db::with_fs(fs.crash());
        db2.execute("CREATE TABLE Papers (id INT PRIMARY KEY, title TEXT)").unwrap();
        db2.execute("CREATE TABLE Paper_Area (label TEXT)").unwrap();
        db2.execute("CREATE TABLE Example_Papers (id INT, label TEXT)").unwrap();
        db2.execute("INSERT INTO Paper_Area VALUES ('DB')").unwrap();
        db2.execute("INSERT INTO Paper_Area VALUES ('NonDB')").unwrap();
        for (id, title) in [
            (1, "database systems transactions storage"),
            (2, "query optimization database index"),
            (3, "protein folding biology cells"),
            (4, "genome biology dna sequencing"),
            (5, "transactions concurrency database"),
            (6, "cells biology microscopy imaging"),
        ] {
            db2.execute(&format!("INSERT INTO Papers VALUES ({id}, '{title}')")).unwrap();
        }
        create_view(&mut db2, "USING SVM DURABLE");
        // the learned model came back: classification works with ZERO
        // retraining in this session
        assert_eq!(db2.view_stats("Labeled_Papers").unwrap().updates, trained_updates);
        for (id, expect) in [(1, 1), (2, 1), (5, 1), (3, -1), (4, -1), (6, -1)] {
            assert_eq!(
                db2.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(expect)),
                "paper {id} after reopen"
            );
        }
        // the post-create entity logged to the WAL also came back — the
        // recovered engine (not the re-run base rows) is the population
        // authority, so COUNT(*) already sees all 7 entities
        assert_eq!(
            db2.execute("SELECT COUNT(*) FROM Labeled_Papers").unwrap(),
            QueryResult::Count(7)
        );
        // negatives = total − positives, computed off the same authority
        assert_eq!(
            db2.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = -1").unwrap(),
            QueryResult::Count(3)
        );
        // its base-table re-insert is an idempotent no-op for the view
        db2.execute("INSERT INTO Papers VALUES (7, 'database query transactions')").unwrap();
        assert_eq!(
            db2.execute("SELECT class FROM Labeled_Papers WHERE id = 7").unwrap(),
            QueryResult::Label(Some(1))
        );
        // and the recovered view keeps learning + checkpointing
        db2.execute("INSERT INTO Example_Papers VALUES (1, 'DB')").unwrap();
        db2.execute("CHECKPOINT CLASSIFICATION VIEW Labeled_Papers").unwrap();
        assert_eq!(db2.view_stats("Labeled_Papers").unwrap().updates, trained_updates + 1);
    }

    #[test]
    fn durable_sharded_view_reopens_through_serve_restorer() {
        let mut db = setup();
        create_view(&mut db, "USING SVM SHARDS 3 DURABLE");
        teach(&mut db, 30);
        db.execute("CHECKPOINT CLASSIFICATION VIEW Labeled_Papers").unwrap();
        let fs = db.fs();
        drop(db);
        let mut db2 = Db::with_fs(fs);
        db2.execute("CREATE TABLE Papers (id INT PRIMARY KEY, title TEXT)").unwrap();
        db2.execute("CREATE TABLE Paper_Area (label TEXT)").unwrap();
        db2.execute("CREATE TABLE Example_Papers (id INT, label TEXT)").unwrap();
        db2.execute("INSERT INTO Paper_Area VALUES ('DB')").unwrap();
        db2.execute("INSERT INTO Paper_Area VALUES ('NonDB')").unwrap();
        for (id, title) in [
            (1, "database systems transactions storage"),
            (2, "query optimization database index"),
            (3, "protein folding biology cells"),
            (4, "genome biology dna sequencing"),
            (5, "transactions concurrency database"),
            (6, "cells biology microscopy imaging"),
        ] {
            db2.execute(&format!("INSERT INTO Papers VALUES ({id}, '{title}')")).unwrap();
        }
        create_view(&mut db2, "USING SVM SHARDS 3 DURABLE");
        assert_eq!(
            db2.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
            QueryResult::Count(3)
        );
        assert_eq!(db2.view_stats("Labeled_Papers").unwrap().updates, 180);
    }

    #[test]
    fn checkpoint_requires_a_durable_view() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        let err = db.execute("CHECKPOINT CLASSIFICATION VIEW Labeled_Papers").unwrap_err();
        assert!(matches!(err, DbError::Unsupported(_)));
        assert!(matches!(
            db.execute("CHECKPOINT CLASSIFICATION VIEW Nope"),
            Err(DbError::NoSuchView(_))
        ));
    }

    #[test]
    fn replicated_view_routes_reads_through_replicas() {
        let mut db = setup();
        create_view(&mut db, "USING SVM DURABLE REPLICAS 2");
        teach(&mut db, 30);
        assert_eq!(db.view_replica_health("Labeled_Papers"), Some((2, 2)));
        for (id, expect) in [(1, 1), (2, 1), (5, 1), (3, -1), (4, -1), (6, -1)] {
            assert_eq!(
                db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(expect)),
                "paper {id} via replica"
            );
        }
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
            QueryResult::Count(3)
        );
        let stats = db.view_replication_stats("Labeled_Papers").unwrap();
        assert_eq!(stats.primary_fallbacks, 0, "healthy replicas never fall back");
        assert_eq!(stats.replica_reads, 7, "six labels + one count, all replica-served");
        // DML keeps shipping: a deleted entity leaves the replicas too
        db.execute("DELETE FROM Papers WHERE id = 6").unwrap();
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers").unwrap(),
            QueryResult::Count(5)
        );
        assert_eq!(db.view_replica_health("Labeled_Papers"), Some((2, 2)));
        // checkpoints ship like any other WAL record
        db.execute("CHECKPOINT CLASSIFICATION VIEW Labeled_Papers").unwrap();
        assert_eq!(db.view_replica_health("Labeled_Papers"), Some((2, 2)));
    }

    #[test]
    fn promote_replica_fails_over_and_keeps_serving() {
        let mut db = setup();
        create_view(&mut db, "USING SVM DURABLE REPLICAS 2 MAX LAG 4");
        teach(&mut db, 30);
        let trained_updates = db.view_stats("Labeled_Papers").unwrap().updates;
        db.execute("PROMOTE REPLICA ON CLASSIFICATION VIEW Labeled_Papers").unwrap();
        // the promoted replica carries the full trained state, bit for bit
        assert_eq!(db.view_stats("Labeled_Papers").unwrap().updates, trained_updates);
        assert_eq!(db.view_replica_health("Labeled_Papers"), Some((1, 1)));
        assert_eq!(db.view_replication_stats("Labeled_Papers").unwrap().promotions, 1);
        for (id, expect) in [(1, 1), (2, 1), (5, 1), (3, -1), (4, -1), (6, -1)] {
            assert_eq!(
                db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(expect)),
                "paper {id} after failover"
            );
        }
        // and the new primary keeps learning, shipping to the survivor
        db.execute("INSERT INTO Example_Papers VALUES (1, 'DB')").unwrap();
        assert_eq!(db.view_stats("Labeled_Papers").unwrap().updates, trained_updates + 1);
        assert_eq!(db.view_replica_health("Labeled_Papers"), Some((1, 1)));
    }

    #[test]
    fn replication_composes_with_shards() {
        let mut db = setup();
        create_view(&mut db, "USING SVM SHARDS 3 DURABLE REPLICAS 1");
        teach(&mut db, 30);
        for (id, expect) in [(1, 1), (3, -1)] {
            assert_eq!(
                db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(expect)),
                "paper {id} via sharded replica"
            );
        }
        // promotion recovers the sharded image through the same restorer
        // the durable reopen path uses
        db.execute("PROMOTE REPLICA ON CLASSIFICATION VIEW Labeled_Papers").unwrap();
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
            QueryResult::Count(3)
        );
        assert_eq!(db.view_replica_health("Labeled_Papers"), Some((0, 0)));
    }

    #[test]
    fn promote_requires_a_replicated_view() {
        let mut db = setup();
        create_view(&mut db, "USING SVM DURABLE");
        let err =
            db.execute("PROMOTE REPLICA ON CLASSIFICATION VIEW Labeled_Papers").unwrap_err();
        assert!(matches!(err, DbError::Unsupported(_)));
        assert!(matches!(
            db.execute("PROMOTE REPLICA ON CLASSIFICATION VIEW Nope"),
            Err(DbError::NoSuchView(_))
        ));
        // a group whose last replica was promoted away has nothing left to
        // promote: structured error, not a panic
        let mut db2 = setup();
        create_view(&mut db2, "USING SVM DURABLE REPLICAS 1");
        db2.execute("PROMOTE REPLICA ON CLASSIFICATION VIEW Labeled_Papers").unwrap();
        assert!(matches!(
            db2.execute("PROMOTE REPLICA ON CLASSIFICATION VIEW Labeled_Papers"),
            Err(DbError::Unsupported(_))
        ));
    }

    #[test]
    fn adaptive_view_serves_and_migrates_via_alter() {
        let mut db = setup();
        create_view(&mut db, "USING SVM ARCHITECTURE HAZY_MM MODE EAGER ADAPTIVE");
        teach(&mut db, 30);
        // walk the view through every architecture by hand; answers must
        // never change and the model must never retrain
        let updates = db.view_stats("Labeled_Papers").unwrap().updates;
        let mut migrations_seen = db.view_stats("Labeled_Papers").unwrap().migrations;
        for (i, arch) in ["NAIVE_MM", "HAZY_OD", "NAIVE_OD", "HYBRID", "HAZY_MM"].iter().enumerate()
        {
            let mode = if i % 2 == 0 { "LAZY" } else { "EAGER" };
            db.execute(&format!("ALTER CLASSIFICATION VIEW Labeled_Papers SET ARCH {arch} {mode}"))
                .unwrap();
            for (id, expect) in [(1, 1), (2, 1), (5, 1), (3, -1), (4, -1), (6, -1)] {
                assert_eq!(
                    db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}"))
                        .unwrap(),
                    QueryResult::Label(Some(expect)),
                    "{arch}/{mode}: paper {id}"
                );
            }
            assert_eq!(
                db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
                QueryResult::Count(3),
                "{arch}/{mode}"
            );
            let s = db.view_stats("Labeled_Papers").unwrap();
            assert_eq!(s.updates, updates, "{arch}/{mode}: migration must not retrain");
            // strictly increasing: at least the manual ALTER landed (the
            // advisor is live and may add auto-migrations of its own)
            assert!(s.migrations > migrations_seen, "{arch}/{mode}: migrations in ViewStats");
            migrations_seen = s.migrations;
        }
        // mode defaults to the current one when omitted
        db.execute("ALTER CLASSIFICATION VIEW Labeled_Papers SET ARCH NAIVE_MM").unwrap();
        // and the view keeps learning after all that
        db.execute("INSERT INTO Example_Papers VALUES (1, 'DB')").unwrap();
        assert_eq!(db.view_stats("Labeled_Papers").unwrap().updates, updates + 1);
    }

    #[test]
    fn alter_arch_requires_adaptive_and_real_names() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        let err = db
            .execute("ALTER CLASSIFICATION VIEW Labeled_Papers SET ARCH NAIVE_MM")
            .unwrap_err();
        assert!(matches!(err, DbError::Unsupported(_)), "{err:?}");
        assert!(matches!(
            db.execute("ALTER CLASSIFICATION VIEW Nope SET ARCH NAIVE_MM"),
            Err(DbError::NoSuchView(_))
        ));
        create_view_named(&mut db, "V2", "USING SVM ADAPTIVE");
        assert!(matches!(
            db.execute("ALTER CLASSIFICATION VIEW V2 SET ARCH WARP_DRIVE"),
            Err(DbError::Unsupported(_))
        ));
        assert!(matches!(
            db.execute("ALTER CLASSIFICATION VIEW V2 SET ARCH NAIVE_MM SIDEWAYS"),
            Err(DbError::Unsupported(_))
        ));
    }

    fn create_view_named(db: &mut Db, name: &str, extra: &str) {
        db.execute(&format!(
            "CREATE CLASSIFICATION VIEW {name} KEY id \
             ENTITIES FROM Papers KEY id \
             LABELS FROM Paper_Area LABEL label \
             EXAMPLES FROM Example_Papers KEY id LABEL label \
             FEATURE FUNCTION tf_bag_of_words {extra}"
        ))
        .unwrap();
    }

    #[test]
    fn sharded_adaptive_view_serves_and_alters() {
        let mut db = setup();
        create_view(&mut db, "USING SVM SHARDS 3 ADAPTIVE");
        teach(&mut db, 30);
        db.execute("ALTER CLASSIFICATION VIEW Labeled_Papers SET ARCH NAIVE_MM LAZY").unwrap();
        for (id, expect) in [(1, 1), (3, -1)] {
            assert_eq!(
                db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(expect))
            );
        }
        // every shard migrated independently: at least one event per shard
        // (the live advisors may have added auto-migrations of their own)
        assert!(db.view_stats("Labeled_Papers").unwrap().migrations >= 3);
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
            QueryResult::Count(3)
        );
    }

    #[test]
    fn durable_adaptive_view_recovers_migrated_architecture() {
        let mut db = setup();
        create_view(&mut db, "USING SVM ADAPTIVE DURABLE");
        teach(&mut db, 30);
        db.execute("ALTER CLASSIFICATION VIEW Labeled_Papers SET ARCH NAIVE_OD LAZY").unwrap();
        db.execute("CHECKPOINT CLASSIFICATION VIEW Labeled_Papers").unwrap();
        // keep working after the checkpoint so the WAL has a suffix to
        // replay — including a second, *uncheckpointed* migration
        db.execute("INSERT INTO Example_Papers VALUES (1, 'DB')").unwrap();
        db.execute("ALTER CLASSIFICATION VIEW Labeled_Papers SET ARCH HAZY_MM EAGER").unwrap();
        let stats = db.view_stats("Labeled_Papers").unwrap();
        assert!(stats.migrations >= 2, "both ALTERs counted (plus any advisor moves)");
        let fs = db.fs();
        drop(db);
        let mut db2 = Db::with_fs(fs.crash());
        db2.execute("CREATE TABLE Papers (id INT PRIMARY KEY, title TEXT)").unwrap();
        db2.execute("CREATE TABLE Paper_Area (label TEXT)").unwrap();
        db2.execute("CREATE TABLE Example_Papers (id INT, label TEXT)").unwrap();
        db2.execute("INSERT INTO Paper_Area VALUES ('DB')").unwrap();
        db2.execute("INSERT INTO Paper_Area VALUES ('NonDB')").unwrap();
        for (id, title) in [
            (1, "database systems transactions storage"),
            (2, "query optimization database index"),
            (3, "protein folding biology cells"),
            (4, "genome biology dna sequencing"),
            (5, "transactions concurrency database"),
            (6, "cells biology microscopy imaging"),
        ] {
            db2.execute(&format!("INSERT INTO Papers VALUES ({id}, '{title}')")).unwrap();
        }
        create_view(&mut db2, "USING SVM ADAPTIVE DURABLE");
        // the WAL replay re-runs both ALTERs: recovery lands in hazy-mm
        // with the full migration history and the post-checkpoint update
        let recovered = db2.view_stats("Labeled_Papers").unwrap();
        assert_eq!(recovered.migrations, stats.migrations, "migration history recovered");
        assert_eq!(recovered.updates, stats.updates, "no retraining on reopen");
        for (id, expect) in [(1, 1), (2, 1), (5, 1), (3, -1), (4, -1), (6, -1)] {
            assert_eq!(
                db2.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(expect)),
                "paper {id} after reopen"
            );
        }
    }

    #[test]
    fn drop_view_detaches_triggers_and_stale_triggers_error_not_panic() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        teach(&mut db, 2);
        db.execute("DROP CLASSIFICATION VIEW Labeled_Papers").unwrap();
        assert!(matches!(
            db.execute("SELECT class FROM Labeled_Papers WHERE id = 1"),
            Err(DbError::NoSuchView(_))
        ));
        // ingest into both base tables keeps working — the triggers are gone
        db.execute("INSERT INTO Papers VALUES (7, 'storage engines')").unwrap();
        db.execute("DROP CLASSIFICATION VIEW Nope").unwrap_err();
        // a second view can take the name over
        create_view(&mut db, "USING SVM");
        db.execute("INSERT INTO Papers VALUES (8, 'biology cells')").unwrap();
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers").unwrap(),
            QueryResult::Count(8)
        );
    }

    /// A dropped DURABLE view's store is deleted with it: re-creating a
    /// durable view under the same name builds fresh from the current base
    /// tables instead of resurrecting the dropped view's learned state.
    #[test]
    fn dropping_a_durable_view_deletes_its_store() {
        let mut db = setup();
        create_view(&mut db, "USING SVM DURABLE");
        teach(&mut db, 30);
        db.execute("CHECKPOINT CLASSIFICATION VIEW Labeled_Papers").unwrap();
        db.execute("DROP CLASSIFICATION VIEW Labeled_Papers").unwrap();
        assert!(!db.fs().has_checkpoint("classification_view/Labeled_Papers"));
        create_view(&mut db, "USING SVM DURABLE");
        // a recovered view would carry the 180 old updates; a fresh one
        // starts from zero
        assert_eq!(db.view_stats("Labeled_Papers").unwrap().updates, 0);
    }

    /// Regression for the historical `.expect("trigger target exists")`
    /// panic: a dataflow edge whose view is gone (the dropped/renamed-
    /// between-DDL-and-ingest race, reproduced here by poking the private
    /// catalog directly) must surface as a structured error, not a panic.
    #[test]
    fn dangling_edge_entry_is_a_structured_error() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        db.edges.get_mut("Papers").expect("entity edge list exists").push("Ghost".into());
        let err = db.execute("INSERT INTO Papers VALUES (9, 'orphan row')").unwrap_err();
        assert_eq!(err, DbError::NoSuchView("Ghost".into()));
        // the base insert itself committed (trigger errors follow the
        // PostgreSQL after-trigger model), and the healthy view still works
        assert!(db.table("Papers").unwrap().get(9).is_some());
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers").unwrap(),
            QueryResult::Count(7)
        );
    }

    #[test]
    fn stats_and_memory_accessors_work() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        teach(&mut db, 5);
        let stats = db.view_stats("Labeled_Papers").unwrap();
        assert_eq!(stats.updates, 30);
        assert!(db.view_memory("Labeled_Papers").unwrap().total() > 0);
        assert!(db.view_model("Labeled_Papers").is_some());
        assert!(db.view_clock_ns("Labeled_Papers").unwrap() > 0);
    }

    // ------------------------------------------------------------------
    // derived views: classification over a dataflow-maintained relation
    // ------------------------------------------------------------------

    /// A fixture with a linearly separable numeric corpus: positives sit
    /// at x ≈ +1, negatives at x ≈ −1, plus two unlabeled points.
    fn setup_points() -> Db {
        let mut db = Db::new();
        db.execute("CREATE TABLE Points (id INT PRIMARY KEY, x FLOAT, y FLOAT, tag TEXT)")
            .unwrap();
        for (id, x, y, tag) in [
            (1, 1.0, 0.2, "'P'"),
            (2, 0.8, -0.1, "'P'"),
            (3, -1.0, 0.3, "'N'"),
            (4, -0.9, -0.2, "'N'"),
            (5, 1.1, 0.1, "NULL"),
            (6, -1.2, 0.0, "NULL"),
        ] {
            db.execute(&format!("INSERT INTO Points VALUES ({id}, {x:?}, {y:?}, {tag})")).unwrap();
        }
        db
    }

    fn create_points_view(db: &mut Db, extra: &str) {
        db.execute(&format!(
            "CREATE CLASSIFICATION VIEW PV ON (SELECT id, x, y, tag FROM Points) \
             LABELS ('P', 'N') FEATURE FUNCTION numeric_columns USING SVM {extra}"
        ))
        .unwrap();
    }

    #[test]
    fn single_table_derived_view_classifies_and_tracks_dml() {
        let mut db = setup_points();
        create_points_view(&mut db, "");
        assert_eq!(db.execute("SELECT COUNT(*) FROM PV").unwrap(), QueryResult::Count(6));
        for (id, expect) in [(1, 1), (2, 1), (3, -1), (4, -1), (5, 1), (6, -1)] {
            assert_eq!(
                db.execute(&format!("SELECT class FROM PV WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(expect)),
                "point {id}"
            );
        }
        // a labeled insert both classifies AND trains through the graph
        let before = db.view_stats("PV").unwrap().updates;
        db.execute("INSERT INTO Points VALUES (7, 0.9, 0.0, 'P')").unwrap();
        assert_eq!(db.view_stats("PV").unwrap().updates, before + 1);
        assert_eq!(
            db.execute("SELECT class FROM PV WHERE id = 7").unwrap(),
            QueryResult::Label(Some(1))
        );
        // an unlabeled insert only classifies
        db.execute("INSERT INTO Points VALUES (8, -0.8, 0.1, NULL)").unwrap();
        assert_eq!(db.view_stats("PV").unwrap().updates, before + 1);
        assert_eq!(
            db.execute("SELECT class FROM PV WHERE id = 8").unwrap(),
            QueryResult::Label(Some(-1))
        );
        // DELETE retracts the row through the graph: the entity leaves the
        // derived relation and every read surface agrees
        db.execute("DELETE FROM Points WHERE id = 8").unwrap();
        db.execute("DELETE FROM Points WHERE id = 5").unwrap();
        assert_eq!(db.execute("SELECT COUNT(*) FROM PV").unwrap(), QueryResult::Count(6));
        assert_eq!(
            db.execute("SELECT class FROM PV WHERE id = 5").unwrap(),
            QueryResult::Label(None)
        );
        let QueryResult::Ids(mut ids) = db.execute("SELECT id FROM PV WHERE class = 1").unwrap()
        else {
            panic!("expected ids")
        };
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 7]);
        // UPDATE is retract + reinsert: the point crosses the boundary and
        // its classification flips
        db.execute("UPDATE Points SET x = -1.3 WHERE id = 7").unwrap();
        assert_eq!(
            db.execute("SELECT class FROM PV WHERE id = 7").unwrap(),
            QueryResult::Label(Some(-1))
        );
        assert_eq!(db.execute("SELECT COUNT(*) FROM PV").unwrap(), QueryResult::Count(6));
    }

    #[test]
    fn derived_view_where_filter_gates_membership() {
        let mut db = Db::new();
        db.execute("CREATE TABLE T (id INT PRIMARY KEY, x FLOAT, flag INT, tag TEXT)").unwrap();
        for (id, x, flag, tag) in
            [(1, 1.0, 1, "'P'"), (2, -1.0, 1, "'N'"), (3, 0.9, 1, "NULL"), (4, 0.7, 0, "'P'")]
        {
            db.execute(&format!("INSERT INTO T VALUES ({id}, {x:?}, {flag}, {tag})")).unwrap();
        }
        db.execute(
            "CREATE CLASSIFICATION VIEW FV ON (SELECT id, x, tag FROM T WHERE flag = 1) \
             LABELS ('P', 'N') FEATURE FUNCTION numeric_columns USING SVM",
        )
        .unwrap();
        // row 4 fails the predicate and is not part of the derived relation
        assert_eq!(db.execute("SELECT COUNT(*) FROM FV").unwrap(), QueryResult::Count(3));
        assert_eq!(
            db.execute("SELECT class FROM FV WHERE id = 4").unwrap(),
            QueryResult::Label(None)
        );
        // flipping the flag moves the row in and out of the view
        db.execute("UPDATE T SET flag = 1 WHERE id = 4").unwrap();
        assert_eq!(db.execute("SELECT COUNT(*) FROM FV").unwrap(), QueryResult::Count(4));
        assert_eq!(
            db.execute("SELECT class FROM FV WHERE id = 4").unwrap(),
            QueryResult::Label(Some(1))
        );
        db.execute("UPDATE T SET flag = 0 WHERE id = 3").unwrap();
        assert_eq!(db.execute("SELECT COUNT(*) FROM FV").unwrap(), QueryResult::Count(3));
    }

    /// Two-table fixture: `Docs` carries one feature, `Meta` the other
    /// plus the label; the view is their equi-join on the doc id.
    fn setup_join() -> Db {
        let mut db = Db::new();
        db.execute("CREATE TABLE Docs (id INT PRIMARY KEY, x FLOAT)").unwrap();
        db.execute("CREATE TABLE Meta (doc INT PRIMARY KEY, y FLOAT, lbl TEXT)").unwrap();
        for (id, x) in [(1, 1.0), (2, 0.8), (3, -1.0), (4, -0.9), (5, 1.1), (6, -1.2)] {
            db.execute(&format!("INSERT INTO Docs VALUES ({id}, {x:?})")).unwrap();
        }
        for (doc, y, lbl) in [
            (1, 0.2, "'P'"),
            (2, -0.1, "'P'"),
            (3, 0.3, "'N'"),
            (4, -0.2, "'N'"),
            (5, 0.1, "NULL"),
            (6, 0.0, "NULL"),
        ] {
            db.execute(&format!("INSERT INTO Meta VALUES ({doc}, {y:?}, {lbl})")).unwrap();
        }
        db
    }

    fn create_join_view(db: &mut Db, extra: &str) {
        db.execute(&format!(
            "CREATE CLASSIFICATION VIEW JV ON \
             (SELECT Docs.id, Docs.x, Meta.y, Meta.lbl FROM Docs \
              JOIN Meta ON Docs.id = Meta.doc) \
             LABELS ('P', 'N') FEATURE FUNCTION numeric_columns USING SVM {extra}"
        ))
        .unwrap();
    }

    #[test]
    fn join_backed_view_maintains_membership_through_both_inputs() {
        let mut db = setup_join();
        create_join_view(&mut db, "");
        assert_eq!(db.execute("SELECT COUNT(*) FROM JV").unwrap(), QueryResult::Count(6));
        for (id, expect) in [(1, 1), (2, 1), (3, -1), (4, -1), (5, 1), (6, -1)] {
            assert_eq!(
                db.execute(&format!("SELECT class FROM JV WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(expect)),
                "doc {id}"
            );
        }
        // a doc with no metadata joins nothing: not an entity yet
        db.execute("INSERT INTO Docs VALUES (7, 0.95)").unwrap();
        assert_eq!(db.execute("SELECT COUNT(*) FROM JV").unwrap(), QueryResult::Count(6));
        // its metadata arriving completes the join and the entity appears
        db.execute("INSERT INTO Meta VALUES (7, 0.05, NULL)").unwrap();
        assert_eq!(db.execute("SELECT COUNT(*) FROM JV").unwrap(), QueryResult::Count(7));
        assert_eq!(
            db.execute("SELECT class FROM JV WHERE id = 7").unwrap(),
            QueryResult::Label(Some(1))
        );
        // deleting EITHER side's row retracts the joined entity
        db.execute("DELETE FROM Meta WHERE doc = 7").unwrap();
        assert_eq!(db.execute("SELECT COUNT(*) FROM JV").unwrap(), QueryResult::Count(6));
        db.execute("DELETE FROM Docs WHERE id = 6").unwrap();
        assert_eq!(db.execute("SELECT COUNT(*) FROM JV").unwrap(), QueryResult::Count(5));
        assert_eq!(
            db.execute("SELECT class FROM JV WHERE id = 6").unwrap(),
            QueryResult::Label(None)
        );
        // an update on the non-key side re-derives the joined row
        db.execute("UPDATE Docs SET x = -1.4 WHERE id = 5").unwrap();
        assert_eq!(
            db.execute("SELECT class FROM JV WHERE id = 5").unwrap(),
            QueryResult::Label(Some(-1))
        );
        assert_eq!(db.execute("SELECT COUNT(*) FROM JV").unwrap(), QueryResult::Count(5));
    }

    #[test]
    fn derived_views_compose_with_shards_and_adaptive() {
        for extra in ["SHARDS 3", "ADAPTIVE", "SHARDS 2 ADAPTIVE"] {
            let mut db = setup_join();
            create_join_view(&mut db, extra);
            for (id, expect) in [(1, 1), (3, -1), (5, 1), (6, -1)] {
                assert_eq!(
                    db.execute(&format!("SELECT class FROM JV WHERE id = {id}")).unwrap(),
                    QueryResult::Label(Some(expect)),
                    "doc {id} under {extra}"
                );
            }
            db.execute("DELETE FROM Meta WHERE doc = 5").unwrap();
            db.execute("UPDATE Docs SET x = -1.4 WHERE id = 1").unwrap();
            assert_eq!(
                db.execute("SELECT COUNT(*) FROM JV").unwrap(),
                QueryResult::Count(5),
                "count under {extra}"
            );
            assert_eq!(
                db.execute("SELECT class FROM JV WHERE id = 1").unwrap(),
                QueryResult::Label(Some(-1)),
                "re-derived doc 1 under {extra}"
            );
        }
    }

    #[test]
    fn durable_join_view_survives_reopen() {
        // session 1: durable JOIN-backed view, then post-create writes that
        // only the WAL remembers
        let mut db = setup_join();
        create_join_view(&mut db, "DURABLE");
        db.execute("INSERT INTO Docs VALUES (7, 0.95)").unwrap();
        db.execute("INSERT INTO Meta VALUES (7, 0.05, 'P')").unwrap();
        db.execute("DELETE FROM Meta WHERE doc = 6").unwrap();
        let trained = db.view_stats("JV").unwrap().updates;
        db.execute("CHECKPOINT CLASSIFICATION VIEW JV").unwrap();
        let fs = db.fs();
        drop(db);

        // session 2: re-run schema + base rows (tables are not durable) —
        // reflecting the post-checkpoint writes — then recover the view
        let mut db2 = Db::with_fs(fs.crash());
        db2.execute("CREATE TABLE Docs (id INT PRIMARY KEY, x FLOAT)").unwrap();
        db2.execute("CREATE TABLE Meta (doc INT PRIMARY KEY, y FLOAT, lbl TEXT)").unwrap();
        for (id, x) in [(1, 1.0), (2, 0.8), (3, -1.0), (4, -0.9), (5, 1.1), (6, -1.2), (7, 0.95)]
        {
            db2.execute(&format!("INSERT INTO Docs VALUES ({id}, {x:?})")).unwrap();
        }
        for (doc, y, lbl) in
            [(1, 0.2, "'P'"), (2, -0.1, "'P'"), (3, 0.3, "'N'"), (4, -0.2, "'N'"), (5, 0.1, "NULL"), (7, 0.05, "'P'")]
        {
            db2.execute(&format!("INSERT INTO Meta VALUES ({doc}, {y:?}, {lbl})")).unwrap();
        }
        create_join_view(&mut db2, "DURABLE");
        // zero retraining: the recovered engine answers, the replayed base
        // rows are recognized as already-known entities
        assert_eq!(db2.view_stats("JV").unwrap().updates, trained);
        assert_eq!(db2.execute("SELECT COUNT(*) FROM JV").unwrap(), QueryResult::Count(6));
        for (id, expect) in [(1, 1), (3, -1), (7, 1)] {
            assert_eq!(
                db2.execute(&format!("SELECT class FROM JV WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(expect)),
                "doc {id} after reopen"
            );
        }
    }

    #[test]
    fn derived_view_ddl_errors_are_structured() {
        let mut db = setup_join();
        fn err(db: &mut Db, sql: &str) -> DbError {
            db.execute(sql).unwrap_err()
        }
        assert_eq!(
            err(&mut db, "CREATE CLASSIFICATION VIEW V ON (SELECT id, x, lbl FROM Ghost) \
                 LABELS ('P','N') FEATURE FUNCTION numeric_columns"),
            DbError::NoSuchTable("Ghost".into())
        );
        assert_eq!(
            err(&mut db, "CREATE CLASSIFICATION VIEW V ON (SELECT Docs.ghost, x, lbl FROM Docs \
                 JOIN Meta ON Docs.id = Meta.doc) \
                 LABELS ('P','N') FEATURE FUNCTION numeric_columns"),
            DbError::NoSuchColumn("Docs.ghost".into())
        );
        // an unqualified column visible on both sides must be qualified
        db.execute("CREATE TABLE Meta2 (doc INT PRIMARY KEY, x FLOAT, lbl TEXT)").unwrap();
        assert!(matches!(
            err(&mut db, "CREATE CLASSIFICATION VIEW V ON (SELECT doc, x, lbl FROM Docs \
                 JOIN Meta2 ON Docs.id = Meta2.doc) \
                 LABELS ('P','N') FEATURE FUNCTION numeric_columns"),
            DbError::Unsupported(m) if m.contains("ambiguous")
        ));
        // the key column must be an integer
        assert!(matches!(
            err(&mut db, "CREATE CLASSIFICATION VIEW V ON (SELECT x, id, lbl FROM Docs \
                 JOIN Meta ON Docs.id = Meta.doc) \
                 LABELS ('P','N') FEATURE FUNCTION numeric_columns"),
            DbError::SchemaMismatch(_)
        ));
    }

    #[test]
    fn delete_and_update_errors_are_structured() {
        let mut db = setup_points();
        create_points_view(&mut db, "");
        fn err(db: &mut Db, sql: &str) -> DbError {
            db.execute(sql).unwrap_err()
        }
        assert_eq!(
            err(&mut db, "DELETE FROM Ghost WHERE id = 1"),
            DbError::NoSuchTable("Ghost".into())
        );
        assert_eq!(
            err(&mut db, "UPDATE Ghost SET x = 1 WHERE id = 1"),
            DbError::NoSuchTable("Ghost".into())
        );
        assert_eq!(
            err(&mut db, "DELETE FROM Points WHERE ghost = 1"),
            DbError::NoSuchColumn("ghost".into())
        );
        assert_eq!(
            err(&mut db, "UPDATE Points SET ghost = 1 WHERE id = 1"),
            DbError::NoSuchColumn("ghost".into())
        );
        assert_eq!(err(&mut db, "DELETE FROM Points WHERE id = 99"), DbError::MissingRow(99));
        assert_eq!(
            err(&mut db, "UPDATE Points SET x = 0 WHERE id = 99"),
            DbError::MissingRow(99)
        );
        // only primary-key predicates are supported, and the key itself
        // cannot be reassigned
        assert!(matches!(
            err(&mut db, "DELETE FROM Points WHERE x = 1"),
            DbError::Unsupported(_)
        ));
        assert!(matches!(
            err(&mut db, "UPDATE Points SET id = 9 WHERE id = 1"),
            DbError::Unsupported(_)
        ));
        // none of the failed statements disturbed the view
        assert_eq!(db.execute("SELECT COUNT(*) FROM PV").unwrap(), QueryResult::Count(6));
    }
}
