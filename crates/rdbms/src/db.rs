//! The embedded database: catalog, triggers, and statement execution.

use std::collections::HashMap;

use hazy_core::{
    Architecture, DurableClassifierView, DurableView, Entity, MemoryFootprint,
    Mode, ViewBuilder, ViewStats,
};
use hazy_learn::{LinearModel, LossKind, SgdConfig, TrainingExample};
use hazy_linalg::NormPair;
use hazy_storage::SimFs;
use hazy_tune::{build_sharded_adaptive, AdaptiveView, AdvisorConfig, TuneRestorer};

use crate::error::DbError;
use crate::features::{by_name, FeatureFunction};
use crate::sql::{parse_statement, Statement, ViewDecl};
use crate::table::Table;
use crate::value::{Row, Schema, Value};

/// Dictionary headroom for text feature functions (distinct tokens).
const DICT_CAPACITY: u32 = 1 << 16;

/// Minimum examples before automatic model selection kicks in; below this
/// the default SVM is used (cross-validation on a handful of rows is
/// noise).
const SELECT_MIN_EXAMPLES: usize = 20;

/// What a statement evaluates to.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// DDL / DML succeeded, nothing to return.
    Done,
    /// A count.
    Count(u64),
    /// A single entity's label (`None` when the entity does not exist).
    Label(Option<i8>),
    /// A list of entity keys.
    Ids(Vec<u64>),
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum TriggerRole {
    Entities,
    Examples,
}

/// A view's engine: plain, or wrapped in WAL + checkpoint durability.
enum Engine {
    Plain(Box<dyn DurableClassifierView + Send>),
    Durable(DurableView),
}

impl Engine {
    fn view(&self) -> &(dyn DurableClassifierView + Send) {
        match self {
            Engine::Plain(b) => b.as_ref(),
            Engine::Durable(d) => d,
        }
    }

    fn view_mut(&mut self) -> &mut (dyn DurableClassifierView + Send) {
        match self {
            Engine::Plain(b) => b.as_mut(),
            Engine::Durable(d) => d,
        }
    }
}

struct ViewState {
    decl: ViewDecl,
    ff: Box<dyn FeatureFunction>,
    engine: Engine,
    /// Label text mapped to +1 (first row of the labels table).
    pos_label: String,
}

/// The embedded database.
#[derive(Default)]
pub struct Db {
    tables: HashMap<String, Table>,
    views: HashMap<String, ViewState>,
    triggers: HashMap<String, Vec<(String, TriggerRole)>>,
    /// Simulated stable storage for `DURABLE` views. Sharing one [`SimFs`]
    /// across sessions (via [`Db::with_fs`]) is the reopen-database flow:
    /// drop the `Db`, build a new one over the same file system, re-run the
    /// schema DDL, and `CREATE ... DURABLE` recovers each view from its
    /// WAL + checkpoint instead of retraining.
    fs: SimFs,
}

impl Db {
    /// An empty database over a fresh private file system.
    pub fn new() -> Db {
        Db::default()
    }

    /// An empty database over an existing simulated file system — the
    /// reopen path after a crash or clean shutdown.
    pub fn with_fs(fs: SimFs) -> Db {
        Db { fs, ..Db::default() }
    }

    /// The database's simulated file system (keep a clone to reopen later).
    pub fn fs(&self) -> SimFs {
        self.fs.clone()
    }

    /// Parses and executes one statement.
    ///
    /// # Errors
    /// Any [`DbError`]; the database is left unchanged on error.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        match parse_statement(sql)? {
            Statement::CreateTable { name, cols, pk } => {
                if self.tables.contains_key(&name) {
                    return Err(DbError::AlreadyExists(name));
                }
                let schema = Schema::new(cols);
                if let Some(ref p) = pk {
                    if schema.col(p).is_none() {
                        return Err(DbError::NoSuchColumn(p.clone()));
                    }
                }
                self.tables.insert(name.clone(), Table::new(&name, schema, pk.as_deref()));
                Ok(QueryResult::Done)
            }
            Statement::CreateView(decl) => {
                self.create_view(decl)?;
                Ok(QueryResult::Done)
            }
            Statement::Insert { table, values } => {
                self.insert(&table, values)?;
                Ok(QueryResult::Done)
            }
            Statement::SelectLabel { view, key } => {
                let v = self.views.get_mut(&view).ok_or(DbError::NoSuchView(view))?;
                Ok(QueryResult::Label(v.engine.view_mut().read_single(key as u64)))
            }
            Statement::SelectCount { view, class } => {
                let v = self.views.get_mut(&view).ok_or(DbError::NoSuchView(view))?;
                // the engine is the authority on the entity population —
                // after a crash recovery its durable state (not any
                // side bookkeeping) says what exists
                let n = match class {
                    None => v.engine.view().entity_count(),
                    Some(1) => v.engine.view_mut().count_positive(),
                    Some(_) => {
                        v.engine.view().entity_count() - v.engine.view_mut().count_positive()
                    }
                };
                Ok(QueryResult::Count(n))
            }
            Statement::SelectMembers { view, class } => {
                let v = self.views.get_mut(&view).ok_or(DbError::NoSuchView(view.clone()))?;
                let pos = v.engine.view_mut().positive_ids();
                if class == 1 {
                    return Ok(QueryResult::Ids(pos));
                }
                // negatives = entity keys − positives
                let positive: std::collections::HashSet<u64> = pos.into_iter().collect();
                let entities = self
                    .tables
                    .get(&v.decl.entity_table)
                    .ok_or_else(|| DbError::NoSuchTable(v.decl.entity_table.clone()))?;
                let keyc = entities
                    .schema()
                    .col(&v.decl.entity_key)
                    .ok_or_else(|| DbError::NoSuchColumn(v.decl.entity_key.clone()))?;
                let ids = entities
                    .iter()
                    .filter_map(|r| r[keyc].as_int())
                    .map(|k| k as u64)
                    .filter(|k| !positive.contains(k))
                    .collect();
                Ok(QueryResult::Ids(ids))
            }
            Statement::Checkpoint { view } => {
                let v = self.views.get_mut(&view).ok_or(DbError::NoSuchView(view.clone()))?;
                match &mut v.engine {
                    Engine::Durable(dv) => {
                        dv.checkpoint();
                        Ok(QueryResult::Done)
                    }
                    Engine::Plain(_) => Err(DbError::Unsupported(format!(
                        "CHECKPOINT on view {view}: declare it DURABLE first"
                    ))),
                }
            }
            Statement::AlterViewArch { view, arch, mode } => {
                let target_arch = arch_by_name(Some(&arch))?;
                let v = self.views.get_mut(&view).ok_or(DbError::NoSuchView(view.clone()))?;
                let target_mode = match mode {
                    Some(m) => mode_by_name(Some(&m))?,
                    None => v.engine.view().mode(),
                };
                // the migration routes through the engine stack: a durable
                // wrapper WAL-logs the redo record, a sharded deployment
                // migrates shard by shard, the adaptive wrapper does the
                // extraction + rebuild — all with the view online
                if v.engine.view_mut().set_architecture(target_arch, target_mode) {
                    Ok(QueryResult::Done)
                } else {
                    Err(DbError::Unsupported(format!(
                        "ALTER ... SET ARCH on view {view}: declare it ADAPTIVE first"
                    )))
                }
            }
            Statement::DropView { view } => {
                if self.views.remove(&view).is_none() {
                    return Err(DbError::NoSuchView(view));
                }
                // detach the ingest triggers so later INSERTs into the base
                // tables no longer reference the dropped view
                for fired in self.triggers.values_mut() {
                    fired.retain(|(name, _)| name != &view);
                }
                // and delete any durable store: a dropped view's WAL +
                // checkpoints must not resurrect a later view of the same
                // name (its learned state is user-visible data)
                self.fs.remove(&format!("classification_view/{view}"));
                Ok(QueryResult::Done)
            }
        }
    }

    /// Direct (non-SQL) table access for tools and tests.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Operation counters of a view's engine.
    pub fn view_stats(&self, name: &str) -> Option<ViewStats> {
        self.views.get(name).map(|v| v.engine.view().stats())
    }

    /// Memory footprint of a view's engine.
    pub fn view_memory(&self, name: &str) -> Option<MemoryFootprint> {
        self.views.get(name).map(|v| v.engine.view().memory())
    }

    /// The current model behind a view.
    pub fn view_model(&self, name: &str) -> Option<&LinearModel> {
        self.views.get(name).map(|v| v.engine.view().model())
    }

    /// Virtual time consumed by a view so far, in nanoseconds.
    pub fn view_clock_ns(&self, name: &str) -> Option<u64> {
        self.views.get(name).map(|v| v.engine.view().clock().now_ns())
    }

    fn create_view(&mut self, decl: ViewDecl) -> Result<(), DbError> {
        if self.views.contains_key(&decl.name) {
            return Err(DbError::AlreadyExists(decl.name));
        }
        let entities_table =
            self.tables.get(&decl.entity_table).ok_or_else(|| DbError::NoSuchTable(decl.entity_table.clone()))?;
        let labels_table =
            self.tables.get(&decl.labels_table).ok_or_else(|| DbError::NoSuchTable(decl.labels_table.clone()))?;
        let examples_table = self
            .tables
            .get(&decl.examples_table)
            .ok_or_else(|| DbError::NoSuchTable(decl.examples_table.clone()))?;
        let entity_keyc = entities_table
            .schema()
            .col(&decl.entity_key)
            .ok_or_else(|| DbError::NoSuchColumn(decl.entity_key.clone()))?;

        // --- the label set: binary views take the first label as +1
        let labelc = labels_table
            .schema()
            .col(&decl.label_col)
            .ok_or_else(|| DbError::NoSuchColumn(decl.label_col.clone()))?;
        let mut labels: Vec<String> = Vec::new();
        for r in labels_table.iter() {
            if let Some(l) = r[labelc].as_text() {
                if !labels.iter().any(|x| x == l) {
                    labels.push(l.to_string());
                }
            }
        }
        if labels.len() != 2 {
            return Err(DbError::Unsupported(format!(
                "binary classification views need exactly 2 labels, found {} \
                 (multiclass runs one-vs-all at the library level, Appendix B.5.4)",
                labels.len()
            )));
        }
        let pos_label = labels[0].clone();

        // --- feature function: corpus statistics, then one vector per entity
        let mut ff = by_name(&decl.feature_fn, DICT_CAPACITY)
            .ok_or_else(|| DbError::NoSuchFeatureFunction(decl.feature_fn.clone()))?;
        let corpus: Vec<&Row> = entities_table.iter().collect();
        ff.compute_stats(&corpus, entities_table.schema());
        let mut ents = Vec::with_capacity(corpus.len());
        let dense = decl.feature_fn == "numeric_columns";
        for r in &corpus {
            let id = r[entity_keyc]
                .as_int()
                .ok_or_else(|| DbError::SchemaMismatch("entity key must be an integer".into()))?;
            ents.push(Entity::new(id as u64, ff.compute_feature(r, entities_table.schema())));
        }

        // --- warm examples already present in the examples table
        let ex_keyc = examples_table
            .schema()
            .col(&decl.examples_key)
            .ok_or_else(|| DbError::NoSuchColumn(decl.examples_key.clone()))?;
        let ex_labelc = examples_table
            .schema()
            .col(&decl.examples_label)
            .ok_or_else(|| DbError::NoSuchColumn(decl.examples_label.clone()))?;
        let mut warm = Vec::new();
        for r in examples_table.iter() {
            let key = r[ex_keyc].as_int().ok_or(DbError::MissingEntity(-1))?;
            let label = label_to_sign(&r[ex_labelc], &pos_label, &labels)?;
            let ent = entities_table.get(key).ok_or(DbError::MissingEntity(key))?;
            warm.push(TrainingExample::new(
                key as u64,
                ff.compute_feature(ent, entities_table.schema()),
                label,
            ));
        }

        // --- method: USING clause, or the paper's automatic selection
        let sgd = match decl.using.as_deref() {
            Some(m) => SgdConfig::for_loss(loss_by_name(m)?),
            None if warm.len() >= SELECT_MIN_EXAMPLES => hazy_learn::select::select_model(&warm).best,
            None => SgdConfig::svm(),
        };
        let arch = arch_by_name(decl.architecture.as_deref())?;
        let mode = mode_by_name(decl.mode.as_deref())?;
        let pair = if dense { NormPair::EUCLIDEAN } else { NormPair::TEXT };

        let builder = ViewBuilder::new(arch, mode).sgd(sgd).norm_pair(pair).dim(ff.dim());
        // SHARDS n routes through the hazy-serve layer: the engine becomes a
        // hash-partitioned ShardedView whose answers are observationally
        // identical to the unsharded build (its own equivalence suite), so
        // every execution path below stays unchanged
        let raw = |builder: &ViewBuilder| -> Box<dyn DurableClassifierView + Send> {
            match (decl.shards, decl.adaptive) {
                (Some(n), false) if n > 1 => {
                    Box::new(hazy_serve::ShardedView::build(builder, n as usize, ents, &warm))
                }
                // ADAPTIVE + SHARDS: every shard gets its own advisor and
                // migrates independently under its writer-priority lock
                (Some(n), true) if n > 1 => Box::new(build_sharded_adaptive(
                    builder,
                    AdvisorConfig::default(),
                    n as usize,
                    ents,
                    &warm,
                )),
                (_, true) => {
                    Box::new(AdaptiveView::build(builder, AdvisorConfig::default(), ents, &warm))
                }
                _ => builder.build(ents, &warm),
            }
        };
        let engine = if decl.durable {
            // the durable flow: recover from an existing store (reopen), or
            // build fresh, wrap in WAL + checkpoints, write the genesis
            // checkpoint — the view's learned state now survives the session
            let path = format!("classification_view/{}", decl.name);
            if self.fs.has_checkpoint(&path) {
                let store = self.fs.open(&path, builder.new_clock());
                let dv = DurableView::recover(&builder, store, 256, &TuneRestorer)
                    .map_err(|e| DbError::Unsupported(format!("recovery of {path}: {e}")))?;
                Engine::Durable(dv)
            } else {
                let inner = raw(&builder);
                let store = self.fs.open(&path, inner.clock().clone());
                Engine::Durable(DurableView::create(inner, store, 256))
            }
        } else {
            Engine::Plain(raw(&builder))
        };

        // --- wire triggers
        self.triggers
            .entry(decl.entity_table.clone())
            .or_default()
            .push((decl.name.clone(), TriggerRole::Entities));
        self.triggers
            .entry(decl.examples_table.clone())
            .or_default()
            .push((decl.name.clone(), TriggerRole::Examples));
        self.views.insert(decl.name.clone(), ViewState { decl, ff, engine, pos_label });
        Ok(())
    }

    fn insert(&mut self, table: &str, values: Row) -> Result<(), DbError> {
        {
            let t = self.tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.into()))?;
            t.insert(values.clone())?;
        }
        // fire triggers after the base insert committed
        let Some(fired) = self.triggers.get(table).cloned() else {
            return Ok(());
        };
        for (view_name, role) in fired {
            // split borrows: pull the view out, work, put it back. A
            // trigger entry whose view is gone (dropped/renamed between
            // DDL and this ingest) is a catalog inconsistency, not a
            // panic: surface it as a structured error — the base row is
            // already committed, which is exactly PostgreSQL's behaviour
            // when a trigger function errors after the heap insert.
            let Some(mut vs) = self.views.remove(&view_name) else {
                return Err(DbError::NoSuchView(view_name));
            };
            let result = self.fire_trigger(&mut vs, role, &values);
            self.views.insert(view_name, vs);
            result?;
        }
        Ok(())
    }

    fn fire_trigger(&mut self, vs: &mut ViewState, role: TriggerRole, row: &Row) -> Result<(), DbError> {
        let entities_table = self
            .tables
            .get(&vs.decl.entity_table)
            .ok_or_else(|| DbError::NoSuchTable(vs.decl.entity_table.clone()))?;
        match role {
            TriggerRole::Entities => {
                // type-(1) dynamic data: classify and store the new entity
                vs.ff.compute_stats_inc(row, entities_table.schema());
                let keyc = entities_table
                    .schema()
                    .col(&vs.decl.entity_key)
                    .ok_or_else(|| DbError::NoSuchColumn(vs.decl.entity_key.clone()))?;
                let id = row[keyc]
                    .as_int()
                    .ok_or_else(|| DbError::SchemaMismatch("entity key must be an integer".into()))?;
                if matches!(vs.engine, Engine::Durable(_))
                    && vs.engine.view_mut().read_single(id as u64).is_some()
                {
                    // idempotent re-insert, durable views only: the reopen
                    // flow replays base-table rows whose entities the
                    // recovered view already holds from its WAL. Plain
                    // views keep the original duplicate-id contract (and
                    // skip the probe's clock/stats cost entirely).
                    return Ok(());
                }
                let f = vs.ff.compute_feature(row, entities_table.schema());
                vs.engine.view_mut().insert_entity(Entity::new(id as u64, f));
            }
            TriggerRole::Examples => {
                // type-(2) dynamic data: retrain + incremental maintenance
                let ex_table = self
                    .tables
                    .get(&vs.decl.examples_table)
                    .ok_or_else(|| DbError::NoSuchTable(vs.decl.examples_table.clone()))?;
                let keyc = ex_table
                    .schema()
                    .col(&vs.decl.examples_key)
                    .ok_or_else(|| DbError::NoSuchColumn(vs.decl.examples_key.clone()))?;
                let labelc = ex_table
                    .schema()
                    .col(&vs.decl.examples_label)
                    .ok_or_else(|| DbError::NoSuchColumn(vs.decl.examples_label.clone()))?;
                let key = row[keyc].as_int().ok_or(DbError::MissingEntity(-1))?;
                let label = label_to_sign(&row[labelc], &vs.pos_label, &[])?;
                let ent = entities_table.get(key).ok_or(DbError::MissingEntity(key))?;
                let f = vs.ff.compute_feature(ent, entities_table.schema());
                vs.engine.view_mut().update(&TrainingExample::new(key as u64, f, label));
            }
        }
        Ok(())
    }
}

fn label_to_sign(v: &Value, pos: &str, known: &[String]) -> Result<i8, DbError> {
    match v {
        Value::Int(1) => Ok(1),
        Value::Int(-1) => Ok(-1),
        Value::Text(s) if s == pos => Ok(1),
        Value::Text(s) => {
            if known.is_empty() || known.iter().any(|k| k == s) {
                Ok(-1)
            } else {
                Err(DbError::BadLabel(s.clone()))
            }
        }
        other => Err(DbError::BadLabel(other.to_string())),
    }
}

fn loss_by_name(name: &str) -> Result<LossKind, DbError> {
    match name.to_ascii_lowercase().as_str() {
        "svm" => Ok(LossKind::Hinge),
        "logistic" => Ok(LossKind::Logistic),
        "ridge" | "leastsquares" => Ok(LossKind::Squared),
        other => Err(DbError::Unsupported(format!("USING {other}"))),
    }
}

fn arch_by_name(name: Option<&str>) -> Result<Architecture, DbError> {
    match name.map(|s| s.to_ascii_uppercase()) {
        None => Ok(Architecture::HazyMem),
        Some(s) => match s.as_str() {
            "HAZY_MM" => Ok(Architecture::HazyMem),
            "NAIVE_MM" => Ok(Architecture::NaiveMem),
            "HAZY_OD" => Ok(Architecture::HazyDisk),
            "NAIVE_OD" => Ok(Architecture::NaiveDisk),
            "HYBRID" => Ok(Architecture::Hybrid),
            other => Err(DbError::Unsupported(format!("ARCHITECTURE {other}"))),
        },
    }
}

fn mode_by_name(name: Option<&str>) -> Result<Mode, DbError> {
    match name.map(|s| s.to_ascii_uppercase()) {
        None => Ok(Mode::Eager),
        Some(s) => match s.as_str() {
            "EAGER" => Ok(Mode::Eager),
            "LAZY" => Ok(Mode::Lazy),
            other => Err(DbError::Unsupported(format!("MODE {other}"))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny end-to-end fixture: papers, labels, a few seed examples.
    fn setup() -> Db {
        let mut db = Db::new();
        db.execute("CREATE TABLE Papers (id INT PRIMARY KEY, title TEXT)").unwrap();
        db.execute("CREATE TABLE Paper_Area (label TEXT)").unwrap();
        db.execute("CREATE TABLE Example_Papers (id INT, label TEXT)").unwrap();
        db.execute("INSERT INTO Paper_Area VALUES ('DB')").unwrap();
        db.execute("INSERT INTO Paper_Area VALUES ('NonDB')").unwrap();
        for (id, title) in [
            (1, "database systems transactions storage"),
            (2, "query optimization database index"),
            (3, "protein folding biology cells"),
            (4, "genome biology dna sequencing"),
            (5, "transactions concurrency database"),
            (6, "cells biology microscopy imaging"),
        ] {
            db.execute(&format!("INSERT INTO Papers VALUES ({id}, '{title}')")).unwrap();
        }
        db
    }

    fn create_view(db: &mut Db, extra: &str) {
        db.execute(&format!(
            "CREATE CLASSIFICATION VIEW Labeled_Papers KEY id \
             ENTITIES FROM Papers KEY id \
             LABELS FROM Paper_Area LABEL label \
             EXAMPLES FROM Example_Papers KEY id LABEL label \
             FEATURE FUNCTION tf_bag_of_words {extra}"
        ))
        .unwrap();
    }

    fn teach(db: &mut Db, rounds: usize) {
        // repeat the labeled seed so the SVM converges on this toy corpus
        for _ in 0..rounds {
            for (id, l) in [(1, "DB"), (3, "NonDB"), (2, "DB"), (4, "NonDB"), (5, "DB"), (6, "NonDB")] {
                db.execute(&format!("INSERT INTO Example_Papers VALUES ({id}, '{l}')")).unwrap();
            }
        }
    }

    #[test]
    fn end_to_end_classification_via_sql() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        teach(&mut db, 30);
        // all database papers labeled 1, biology papers -1
        for id in [1, 2, 5] {
            assert_eq!(
                db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(1)),
                "paper {id}"
            );
        }
        for id in [3, 4, 6] {
            assert_eq!(
                db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(-1)),
                "paper {id}"
            );
        }
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
            QueryResult::Count(3)
        );
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers").unwrap(),
            QueryResult::Count(6)
        );
        let QueryResult::Ids(mut ids) =
            db.execute("SELECT id FROM Labeled_Papers WHERE class = 1").unwrap()
        else {
            panic!("expected ids")
        };
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 5]);
        let QueryResult::Ids(mut neg) =
            db.execute("SELECT id FROM Labeled_Papers WHERE class = -1").unwrap()
        else {
            panic!("expected ids")
        };
        neg.sort_unstable();
        assert_eq!(neg, vec![3, 4, 6]);
    }

    #[test]
    fn new_entities_are_classified_on_arrival() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        teach(&mut db, 30);
        db.execute("INSERT INTO Papers VALUES (7, 'database query transactions')").unwrap();
        db.execute("INSERT INTO Papers VALUES (8, 'biology dna cells')").unwrap();
        assert_eq!(
            db.execute("SELECT class FROM Labeled_Papers WHERE id = 7").unwrap(),
            QueryResult::Label(Some(1))
        );
        assert_eq!(
            db.execute("SELECT class FROM Labeled_Papers WHERE id = 8").unwrap(),
            QueryResult::Label(Some(-1))
        );
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers").unwrap(),
            QueryResult::Count(8)
        );
    }

    #[test]
    fn every_architecture_serves_the_view() {
        for arch in ["HAZY_MM", "NAIVE_MM", "HAZY_OD", "NAIVE_OD", "HYBRID"] {
            for mode in ["EAGER", "LAZY"] {
                let mut db = setup();
                create_view(&mut db, &format!("USING SVM ARCHITECTURE {arch} MODE {mode}"));
                teach(&mut db, 30);
                assert_eq!(
                    db.execute("SELECT class FROM Labeled_Papers WHERE id = 1").unwrap(),
                    QueryResult::Label(Some(1)),
                    "{arch}/{mode}"
                );
                assert_eq!(
                    db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
                    QueryResult::Count(3),
                    "{arch}/{mode}"
                );
            }
        }
    }

    #[test]
    fn sharded_views_serve_identically_to_unsharded() {
        // every read shape against a SHARDS n view must match the unsharded
        // answers of end_to_end_classification_via_sql
        for extra in [
            "USING SVM SHARDS 4",
            "USING SVM SHARDS 1",
            "USING SVM ARCHITECTURE NAIVE_MM MODE LAZY SHARDS 3",
            "USING SVM ARCHITECTURE HAZY_OD MODE EAGER SHARDS 2",
        ] {
            let mut db = setup();
            create_view(&mut db, extra);
            teach(&mut db, 30);
            for (id, expect) in [(1, 1), (2, 1), (5, 1), (3, -1), (4, -1), (6, -1)] {
                assert_eq!(
                    db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}"))
                        .unwrap(),
                    QueryResult::Label(Some(expect)),
                    "{extra}: paper {id}"
                );
            }
            assert_eq!(
                db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
                QueryResult::Count(3),
                "{extra}"
            );
            let QueryResult::Ids(mut ids) =
                db.execute("SELECT id FROM Labeled_Papers WHERE class = 1").unwrap()
            else {
                panic!("expected ids")
            };
            ids.sort_unstable();
            assert_eq!(ids, vec![1, 2, 5], "{extra}");
            // new entities keep routing to their home shards
            db.execute("INSERT INTO Papers VALUES (7, 'database query transactions')").unwrap();
            assert_eq!(
                db.execute("SELECT class FROM Labeled_Papers WHERE id = 7").unwrap(),
                QueryResult::Label(Some(1)),
                "{extra}"
            );
            // the logical update count (30 teaching rounds × 6 examples) is
            // not multiplied by the shard count
            assert_eq!(db.view_stats("Labeled_Papers").unwrap().updates, 180, "{extra}");
            assert!(db.view_model("Labeled_Papers").is_some(), "{extra}");
        }
    }

    #[test]
    fn automatic_model_selection_when_using_omitted() {
        let mut db = setup();
        // seed enough examples for selection to run at creation time
        for _ in 0..10 {
            for (id, l) in [(1, "DB"), (3, "NonDB"), (2, "DB"), (4, "NonDB")] {
                db.execute(&format!("INSERT INTO Example_Papers VALUES ({id}, '{l}')")).unwrap();
            }
        }
        create_view(&mut db, "");
        teach(&mut db, 20);
        assert_eq!(
            db.execute("SELECT class FROM Labeled_Papers WHERE id = 1").unwrap(),
            QueryResult::Label(Some(1))
        );
    }

    #[test]
    fn example_for_missing_entity_is_rejected() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        let err = db.execute("INSERT INTO Example_Papers VALUES (99, 'DB')").unwrap_err();
        assert_eq!(err, DbError::MissingEntity(99));
    }

    #[test]
    fn view_requires_exactly_two_labels() {
        let mut db = setup();
        db.execute("INSERT INTO Paper_Area VALUES ('ThirdArea')").unwrap();
        let err = db
            .execute(
                "CREATE CLASSIFICATION VIEW V KEY id \
                 ENTITIES FROM Papers KEY id LABELS FROM Paper_Area LABEL label \
                 EXAMPLES FROM Example_Papers KEY id LABEL label \
                 FEATURE FUNCTION tf_bag_of_words",
            )
            .unwrap_err();
        assert!(matches!(err, DbError::Unsupported(_)));
    }

    #[test]
    fn errors_for_missing_objects() {
        let mut db = Db::new();
        assert!(matches!(
            db.execute("SELECT class FROM Nope WHERE id = 1"),
            Err(DbError::NoSuchView(_))
        ));
        assert!(matches!(
            db.execute("INSERT INTO Nope VALUES (1)"),
            Err(DbError::NoSuchTable(_))
        ));
        db.execute("CREATE TABLE T (id INT PRIMARY KEY)").unwrap();
        assert!(matches!(
            db.execute("CREATE TABLE T (id INT)"),
            Err(DbError::AlreadyExists(_))
        ));
    }

    #[test]
    fn durable_view_survives_reopen_without_retraining() {
        // session 1: create a durable view, teach it, checkpoint
        let mut db = setup();
        create_view(&mut db, "USING SVM DURABLE");
        teach(&mut db, 30);
        db.execute("INSERT INTO Papers VALUES (7, 'database query transactions')").unwrap();
        let trained_updates = db.view_stats("Labeled_Papers").unwrap().updates;
        assert_eq!(trained_updates, 180);
        db.execute("CHECKPOINT CLASSIFICATION VIEW Labeled_Papers").unwrap();
        let fs = db.fs();
        drop(db); // session ends (or crashes — only stable state matters)

        // session 2: reopen over the same file system; re-run the schema
        // DDL and base rows (tables are not durable), then the same CREATE
        // ... DURABLE recovers the view from WAL + checkpoint
        let mut db2 = Db::with_fs(fs.crash());
        db2.execute("CREATE TABLE Papers (id INT PRIMARY KEY, title TEXT)").unwrap();
        db2.execute("CREATE TABLE Paper_Area (label TEXT)").unwrap();
        db2.execute("CREATE TABLE Example_Papers (id INT, label TEXT)").unwrap();
        db2.execute("INSERT INTO Paper_Area VALUES ('DB')").unwrap();
        db2.execute("INSERT INTO Paper_Area VALUES ('NonDB')").unwrap();
        for (id, title) in [
            (1, "database systems transactions storage"),
            (2, "query optimization database index"),
            (3, "protein folding biology cells"),
            (4, "genome biology dna sequencing"),
            (5, "transactions concurrency database"),
            (6, "cells biology microscopy imaging"),
        ] {
            db2.execute(&format!("INSERT INTO Papers VALUES ({id}, '{title}')")).unwrap();
        }
        create_view(&mut db2, "USING SVM DURABLE");
        // the learned model came back: classification works with ZERO
        // retraining in this session
        assert_eq!(db2.view_stats("Labeled_Papers").unwrap().updates, trained_updates);
        for (id, expect) in [(1, 1), (2, 1), (5, 1), (3, -1), (4, -1), (6, -1)] {
            assert_eq!(
                db2.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(expect)),
                "paper {id} after reopen"
            );
        }
        // the post-create entity logged to the WAL also came back — the
        // recovered engine (not the re-run base rows) is the population
        // authority, so COUNT(*) already sees all 7 entities
        assert_eq!(
            db2.execute("SELECT COUNT(*) FROM Labeled_Papers").unwrap(),
            QueryResult::Count(7)
        );
        // negatives = total − positives, computed off the same authority
        assert_eq!(
            db2.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = -1").unwrap(),
            QueryResult::Count(3)
        );
        // its base-table re-insert is an idempotent no-op for the view
        db2.execute("INSERT INTO Papers VALUES (7, 'database query transactions')").unwrap();
        assert_eq!(
            db2.execute("SELECT class FROM Labeled_Papers WHERE id = 7").unwrap(),
            QueryResult::Label(Some(1))
        );
        // and the recovered view keeps learning + checkpointing
        db2.execute("INSERT INTO Example_Papers VALUES (1, 'DB')").unwrap();
        db2.execute("CHECKPOINT CLASSIFICATION VIEW Labeled_Papers").unwrap();
        assert_eq!(db2.view_stats("Labeled_Papers").unwrap().updates, trained_updates + 1);
    }

    #[test]
    fn durable_sharded_view_reopens_through_serve_restorer() {
        let mut db = setup();
        create_view(&mut db, "USING SVM SHARDS 3 DURABLE");
        teach(&mut db, 30);
        db.execute("CHECKPOINT CLASSIFICATION VIEW Labeled_Papers").unwrap();
        let fs = db.fs();
        drop(db);
        let mut db2 = Db::with_fs(fs);
        db2.execute("CREATE TABLE Papers (id INT PRIMARY KEY, title TEXT)").unwrap();
        db2.execute("CREATE TABLE Paper_Area (label TEXT)").unwrap();
        db2.execute("CREATE TABLE Example_Papers (id INT, label TEXT)").unwrap();
        db2.execute("INSERT INTO Paper_Area VALUES ('DB')").unwrap();
        db2.execute("INSERT INTO Paper_Area VALUES ('NonDB')").unwrap();
        for (id, title) in [
            (1, "database systems transactions storage"),
            (2, "query optimization database index"),
            (3, "protein folding biology cells"),
            (4, "genome biology dna sequencing"),
            (5, "transactions concurrency database"),
            (6, "cells biology microscopy imaging"),
        ] {
            db2.execute(&format!("INSERT INTO Papers VALUES ({id}, '{title}')")).unwrap();
        }
        create_view(&mut db2, "USING SVM SHARDS 3 DURABLE");
        assert_eq!(
            db2.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
            QueryResult::Count(3)
        );
        assert_eq!(db2.view_stats("Labeled_Papers").unwrap().updates, 180);
    }

    #[test]
    fn checkpoint_requires_a_durable_view() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        let err = db.execute("CHECKPOINT CLASSIFICATION VIEW Labeled_Papers").unwrap_err();
        assert!(matches!(err, DbError::Unsupported(_)));
        assert!(matches!(
            db.execute("CHECKPOINT CLASSIFICATION VIEW Nope"),
            Err(DbError::NoSuchView(_))
        ));
    }

    #[test]
    fn adaptive_view_serves_and_migrates_via_alter() {
        let mut db = setup();
        create_view(&mut db, "USING SVM ARCHITECTURE HAZY_MM MODE EAGER ADAPTIVE");
        teach(&mut db, 30);
        // walk the view through every architecture by hand; answers must
        // never change and the model must never retrain
        let updates = db.view_stats("Labeled_Papers").unwrap().updates;
        let mut migrations_seen = db.view_stats("Labeled_Papers").unwrap().migrations;
        for (i, arch) in ["NAIVE_MM", "HAZY_OD", "NAIVE_OD", "HYBRID", "HAZY_MM"].iter().enumerate()
        {
            let mode = if i % 2 == 0 { "LAZY" } else { "EAGER" };
            db.execute(&format!("ALTER CLASSIFICATION VIEW Labeled_Papers SET ARCH {arch} {mode}"))
                .unwrap();
            for (id, expect) in [(1, 1), (2, 1), (5, 1), (3, -1), (4, -1), (6, -1)] {
                assert_eq!(
                    db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}"))
                        .unwrap(),
                    QueryResult::Label(Some(expect)),
                    "{arch}/{mode}: paper {id}"
                );
            }
            assert_eq!(
                db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
                QueryResult::Count(3),
                "{arch}/{mode}"
            );
            let s = db.view_stats("Labeled_Papers").unwrap();
            assert_eq!(s.updates, updates, "{arch}/{mode}: migration must not retrain");
            // strictly increasing: at least the manual ALTER landed (the
            // advisor is live and may add auto-migrations of its own)
            assert!(s.migrations > migrations_seen, "{arch}/{mode}: migrations in ViewStats");
            migrations_seen = s.migrations;
        }
        // mode defaults to the current one when omitted
        db.execute("ALTER CLASSIFICATION VIEW Labeled_Papers SET ARCH NAIVE_MM").unwrap();
        // and the view keeps learning after all that
        db.execute("INSERT INTO Example_Papers VALUES (1, 'DB')").unwrap();
        assert_eq!(db.view_stats("Labeled_Papers").unwrap().updates, updates + 1);
    }

    #[test]
    fn alter_arch_requires_adaptive_and_real_names() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        let err = db
            .execute("ALTER CLASSIFICATION VIEW Labeled_Papers SET ARCH NAIVE_MM")
            .unwrap_err();
        assert!(matches!(err, DbError::Unsupported(_)), "{err:?}");
        assert!(matches!(
            db.execute("ALTER CLASSIFICATION VIEW Nope SET ARCH NAIVE_MM"),
            Err(DbError::NoSuchView(_))
        ));
        create_view_named(&mut db, "V2", "USING SVM ADAPTIVE");
        assert!(matches!(
            db.execute("ALTER CLASSIFICATION VIEW V2 SET ARCH WARP_DRIVE"),
            Err(DbError::Unsupported(_))
        ));
        assert!(matches!(
            db.execute("ALTER CLASSIFICATION VIEW V2 SET ARCH NAIVE_MM SIDEWAYS"),
            Err(DbError::Unsupported(_))
        ));
    }

    fn create_view_named(db: &mut Db, name: &str, extra: &str) {
        db.execute(&format!(
            "CREATE CLASSIFICATION VIEW {name} KEY id \
             ENTITIES FROM Papers KEY id \
             LABELS FROM Paper_Area LABEL label \
             EXAMPLES FROM Example_Papers KEY id LABEL label \
             FEATURE FUNCTION tf_bag_of_words {extra}"
        ))
        .unwrap();
    }

    #[test]
    fn sharded_adaptive_view_serves_and_alters() {
        let mut db = setup();
        create_view(&mut db, "USING SVM SHARDS 3 ADAPTIVE");
        teach(&mut db, 30);
        db.execute("ALTER CLASSIFICATION VIEW Labeled_Papers SET ARCH NAIVE_MM LAZY").unwrap();
        for (id, expect) in [(1, 1), (3, -1)] {
            assert_eq!(
                db.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(expect))
            );
        }
        // every shard migrated independently: at least one event per shard
        // (the live advisors may have added auto-migrations of their own)
        assert!(db.view_stats("Labeled_Papers").unwrap().migrations >= 3);
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 1").unwrap(),
            QueryResult::Count(3)
        );
    }

    #[test]
    fn durable_adaptive_view_recovers_migrated_architecture() {
        let mut db = setup();
        create_view(&mut db, "USING SVM ADAPTIVE DURABLE");
        teach(&mut db, 30);
        db.execute("ALTER CLASSIFICATION VIEW Labeled_Papers SET ARCH NAIVE_OD LAZY").unwrap();
        db.execute("CHECKPOINT CLASSIFICATION VIEW Labeled_Papers").unwrap();
        // keep working after the checkpoint so the WAL has a suffix to
        // replay — including a second, *uncheckpointed* migration
        db.execute("INSERT INTO Example_Papers VALUES (1, 'DB')").unwrap();
        db.execute("ALTER CLASSIFICATION VIEW Labeled_Papers SET ARCH HAZY_MM EAGER").unwrap();
        let stats = db.view_stats("Labeled_Papers").unwrap();
        assert!(stats.migrations >= 2, "both ALTERs counted (plus any advisor moves)");
        let fs = db.fs();
        drop(db);
        let mut db2 = Db::with_fs(fs.crash());
        db2.execute("CREATE TABLE Papers (id INT PRIMARY KEY, title TEXT)").unwrap();
        db2.execute("CREATE TABLE Paper_Area (label TEXT)").unwrap();
        db2.execute("CREATE TABLE Example_Papers (id INT, label TEXT)").unwrap();
        db2.execute("INSERT INTO Paper_Area VALUES ('DB')").unwrap();
        db2.execute("INSERT INTO Paper_Area VALUES ('NonDB')").unwrap();
        for (id, title) in [
            (1, "database systems transactions storage"),
            (2, "query optimization database index"),
            (3, "protein folding biology cells"),
            (4, "genome biology dna sequencing"),
            (5, "transactions concurrency database"),
            (6, "cells biology microscopy imaging"),
        ] {
            db2.execute(&format!("INSERT INTO Papers VALUES ({id}, '{title}')")).unwrap();
        }
        create_view(&mut db2, "USING SVM ADAPTIVE DURABLE");
        // the WAL replay re-runs both ALTERs: recovery lands in hazy-mm
        // with the full migration history and the post-checkpoint update
        let recovered = db2.view_stats("Labeled_Papers").unwrap();
        assert_eq!(recovered.migrations, stats.migrations, "migration history recovered");
        assert_eq!(recovered.updates, stats.updates, "no retraining on reopen");
        for (id, expect) in [(1, 1), (2, 1), (5, 1), (3, -1), (4, -1), (6, -1)] {
            assert_eq!(
                db2.execute(&format!("SELECT class FROM Labeled_Papers WHERE id = {id}")).unwrap(),
                QueryResult::Label(Some(expect)),
                "paper {id} after reopen"
            );
        }
    }

    #[test]
    fn drop_view_detaches_triggers_and_stale_triggers_error_not_panic() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        teach(&mut db, 2);
        db.execute("DROP CLASSIFICATION VIEW Labeled_Papers").unwrap();
        assert!(matches!(
            db.execute("SELECT class FROM Labeled_Papers WHERE id = 1"),
            Err(DbError::NoSuchView(_))
        ));
        // ingest into both base tables keeps working — the triggers are gone
        db.execute("INSERT INTO Papers VALUES (7, 'storage engines')").unwrap();
        db.execute("DROP CLASSIFICATION VIEW Nope").unwrap_err();
        // a second view can take the name over
        create_view(&mut db, "USING SVM");
        db.execute("INSERT INTO Papers VALUES (8, 'biology cells')").unwrap();
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers").unwrap(),
            QueryResult::Count(8)
        );
    }

    /// A dropped DURABLE view's store is deleted with it: re-creating a
    /// durable view under the same name builds fresh from the current base
    /// tables instead of resurrecting the dropped view's learned state.
    #[test]
    fn dropping_a_durable_view_deletes_its_store() {
        let mut db = setup();
        create_view(&mut db, "USING SVM DURABLE");
        teach(&mut db, 30);
        db.execute("CHECKPOINT CLASSIFICATION VIEW Labeled_Papers").unwrap();
        db.execute("DROP CLASSIFICATION VIEW Labeled_Papers").unwrap();
        assert!(!db.fs().has_checkpoint("classification_view/Labeled_Papers"));
        create_view(&mut db, "USING SVM DURABLE");
        // a recovered view would carry the 180 old updates; a fresh one
        // starts from zero
        assert_eq!(db.view_stats("Labeled_Papers").unwrap().updates, 0);
    }

    /// Regression for the historical `.expect("trigger target exists")`
    /// panic: a trigger entry whose view is gone (the dropped/renamed-
    /// between-DDL-and-ingest race, reproduced here by poking the private
    /// catalog directly) must surface as a structured error, not a panic.
    #[test]
    fn dangling_trigger_entry_is_a_structured_error() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        db.triggers
            .get_mut("Papers")
            .expect("entity trigger list exists")
            .push(("Ghost".into(), TriggerRole::Entities));
        let err = db.execute("INSERT INTO Papers VALUES (9, 'orphan row')").unwrap_err();
        assert_eq!(err, DbError::NoSuchView("Ghost".into()));
        // the base insert itself committed (trigger errors follow the
        // PostgreSQL after-trigger model), and the healthy view still works
        assert!(db.table("Papers").unwrap().get(9).is_some());
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Labeled_Papers").unwrap(),
            QueryResult::Count(7)
        );
    }

    #[test]
    fn stats_and_memory_accessors_work() {
        let mut db = setup();
        create_view(&mut db, "USING SVM");
        teach(&mut db, 5);
        let stats = db.view_stats("Labeled_Papers").unwrap();
        assert_eq!(stats.updates, 30);
        assert!(db.view_memory("Labeled_Papers").unwrap().total() > 0);
        assert!(db.view_model("Labeled_Papers").is_some());
        assert!(db.view_clock_ns("Labeled_Papers").unwrap() > 0);
    }
}
