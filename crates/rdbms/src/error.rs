//! Errors surfaced by the embedded database.

use std::fmt;

/// Anything that can go wrong executing a statement.
#[derive(Clone, Debug, PartialEq)]
pub enum DbError {
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown view.
    NoSuchView(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// Unknown feature function.
    NoSuchFeatureFunction(String),
    /// A table/view with this name already exists.
    AlreadyExists(String),
    /// Row shape or type does not match the schema.
    SchemaMismatch(String),
    /// Duplicate primary key.
    DuplicateKey(i64),
    /// Referenced entity does not exist (e.g. a training example whose id
    /// is not in the entity table).
    MissingEntity(i64),
    /// A label value outside the view's declared label set.
    BadLabel(String),
    /// `DELETE`/`UPDATE` addressed a primary key that has no row.
    MissingRow(i64),
    /// Parse error with position information.
    Parse {
        /// Human-readable message.
        message: String,
        /// Byte offset in the statement.
        offset: usize,
    },
    /// The statement parsed but is not supported by the engine.
    Unsupported(String),
    /// `AS OF LSN n` addressed an epoch the view no longer (or does not
    /// yet) retain. Only the current epoch is kept today; the variant is
    /// the hook point for a retention window, so clients can already
    /// distinguish "gone" from "malformed".
    SnapshotUnavailable {
        /// The view queried.
        view: String,
        /// The LSN the statement asked for.
        requested: u64,
        /// The newest (and currently only) retained epoch LSN.
        newest: u64,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchView(v) => write!(f, "no such view: {v}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::NoSuchFeatureFunction(ff) => write!(f, "no such feature function: {ff}"),
            DbError::AlreadyExists(n) => write!(f, "already exists: {n}"),
            DbError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            DbError::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            DbError::MissingEntity(id) => write!(f, "no entity with id {id}"),
            DbError::BadLabel(l) => write!(f, "label not in the view's label set: {l}"),
            DbError::MissingRow(k) => write!(f, "no row with key {k}"),
            DbError::Parse { message, offset } => write!(f, "parse error at byte {offset}: {message}"),
            DbError::Unsupported(s) => write!(f, "unsupported statement: {s}"),
            DbError::SnapshotUnavailable { view, requested, newest } => write!(
                f,
                "snapshot unavailable: view {view} retains only epoch LSN {newest}, \
                 AS OF LSN {requested} was requested"
            ),
        }
    }
}

impl std::error::Error for DbError {}
