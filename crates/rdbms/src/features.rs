//! Feature functions (Appendix A.2).
//!
//! A feature function maps an entity tuple to a vector. The paper registers
//! each as a triple of UDFs:
//!
//! * `compute_stats` — one pass over the corpus gathering whatever global
//!   statistics the function needs (e.g. the dictionary, document
//!   frequencies);
//! * `compute_stats_inc` — folds one new tuple into those statistics;
//! * `compute_feature` — maps a tuple to its vector using the statistics.
//!
//! We provide the paper's running examples: `tf_bag_of_words` (term
//! frequencies, ℓ1-normalized), `tf_idf_bag_of_words` (tf-idf with
//! incrementally maintained document frequencies, in the spirit of TF-ICF
//! the paper cites — frequencies are *not* retroactively recomputed for old
//! vectors), and `numeric_columns` for dense UCI-style data.

use std::collections::HashMap;

use hazy_linalg::{FeatureVec, Norm};

use crate::value::{Row, Schema, Value};

/// A registered feature function.
pub trait FeatureFunction: Send {
    /// Registry name (what the DDL's `FEATURE FUNCTION` clause references).
    fn name(&self) -> &str;

    /// One pass over the whole corpus to seed statistics.
    fn compute_stats(&mut self, corpus: &[&Row], schema: &Schema);

    /// Folds one new tuple into the statistics (paper: incremental
    /// statistics maintenance — e.g. document frequencies).
    fn compute_stats_inc(&mut self, row: &Row, schema: &Schema);

    /// Maps a tuple to its feature vector.
    fn compute_feature(&self, row: &Row, schema: &Schema) -> FeatureVec;

    /// Current dimensionality of produced vectors.
    fn dim(&self) -> usize;
}

/// Concatenates the text columns of a row (title + abstract, typically).
fn text_of(row: &Row, schema: &Schema) -> String {
    let mut out = String::new();
    for (i, v) in row.iter().enumerate() {
        if let (_, crate::value::ColumnType::Text) = schema.column(i) {
            if let Value::Text(s) = v {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(s);
            }
        }
    }
    out
}

fn tokenize(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !c.is_alphanumeric()).filter(|t| !t.is_empty())
}

/// `tf_bag_of_words`: term frequencies over a corpus-derived dictionary,
/// ℓ1-normalized (the normalization the paper pairs with `(p=∞, q=1)`).
pub struct TfBagOfWords {
    dict: HashMap<String, u32>,
    /// Reserve headroom so unseen words arriving later still get ids.
    capacity: u32,
}

impl TfBagOfWords {
    /// New instance with dictionary headroom for `capacity` distinct words.
    pub fn new(capacity: u32) -> TfBagOfWords {
        TfBagOfWords { dict: HashMap::new(), capacity }
    }

    fn intern(&mut self, token: &str) -> Option<u32> {
        if let Some(&id) = self.dict.get(token) {
            return Some(id);
        }
        let next = self.dict.len() as u32;
        if next >= self.capacity {
            return None; // dictionary full: ignore the token
        }
        self.dict.insert(token.to_string(), next);
        Some(next)
    }

    fn lookup(&self, token: &str) -> Option<u32> {
        self.dict.get(token).copied()
    }
}

impl FeatureFunction for TfBagOfWords {
    fn name(&self) -> &str {
        "tf_bag_of_words"
    }

    fn compute_stats(&mut self, corpus: &[&Row], schema: &Schema) {
        for row in corpus {
            self.compute_stats_inc(row, schema);
        }
    }

    fn compute_stats_inc(&mut self, row: &Row, schema: &Schema) {
        let text = text_of(row, schema);
        for tok in tokenize(&text) {
            self.intern(tok);
        }
    }

    fn compute_feature(&self, row: &Row, schema: &Schema) -> FeatureVec {
        let text = text_of(row, schema);
        let pairs = tokenize(&text).filter_map(|t| self.lookup(t)).map(|id| (id, 1.0f32));
        FeatureVec::sparse(self.capacity, pairs).normalized(Norm::L1)
    }

    fn dim(&self) -> usize {
        self.capacity as usize
    }
}

/// `tf_idf_bag_of_words`: tf × idf with document frequencies maintained
/// incrementally. New documents update the df counts going forward; already
/// emitted vectors are not recomputed (the TF-ICF trade-off the paper
/// discusses).
pub struct TfIdfBagOfWords {
    tf: TfBagOfWords,
    doc_freq: HashMap<u32, u32>,
    n_docs: u32,
}

impl TfIdfBagOfWords {
    /// New instance with dictionary headroom for `capacity` distinct words.
    pub fn new(capacity: u32) -> TfIdfBagOfWords {
        TfIdfBagOfWords { tf: TfBagOfWords::new(capacity), doc_freq: HashMap::new(), n_docs: 0 }
    }

    /// Documents folded into the statistics so far.
    pub fn corpus_size(&self) -> u32 {
        self.n_docs
    }
}

impl FeatureFunction for TfIdfBagOfWords {
    fn name(&self) -> &str {
        "tf_idf_bag_of_words"
    }

    fn compute_stats(&mut self, corpus: &[&Row], schema: &Schema) {
        for row in corpus {
            self.compute_stats_inc(row, schema);
        }
    }

    fn compute_stats_inc(&mut self, row: &Row, schema: &Schema) {
        let text = text_of(row, schema);
        let mut seen = std::collections::HashSet::new();
        for tok in tokenize(&text) {
            if let Some(id) = self.tf.intern(tok) {
                if seen.insert(id) {
                    *self.doc_freq.entry(id).or_insert(0) += 1;
                }
            }
        }
        self.n_docs += 1;
    }

    fn compute_feature(&self, row: &Row, schema: &Schema) -> FeatureVec {
        let text = text_of(row, schema);
        let n = self.n_docs.max(1) as f64;
        let pairs = tokenize(&text).filter_map(|t| {
            let id = self.tf.lookup(t)?;
            let df = f64::from(*self.doc_freq.get(&id).unwrap_or(&1));
            let idf = (n / df).ln().max(0.0) as f32;
            Some((id, idf))
        });
        FeatureVec::sparse(self.tf.capacity, pairs).normalized(Norm::L1)
    }

    fn dim(&self) -> usize {
        self.tf.dim()
    }
}

/// `numeric_columns`: a dense vector from the row's numeric columns
/// (Int/Float), ℓ2-normalized — the representation used for the UCI-style
/// corpora.
pub struct NumericColumns {
    dim: usize,
}

impl NumericColumns {
    /// New instance; the dimension is discovered from the first stats pass.
    pub fn new() -> NumericColumns {
        NumericColumns { dim: 0 }
    }
}

impl Default for NumericColumns {
    fn default() -> Self {
        NumericColumns::new()
    }
}

impl FeatureFunction for NumericColumns {
    fn name(&self) -> &str {
        "numeric_columns"
    }

    fn compute_stats(&mut self, corpus: &[&Row], schema: &Schema) {
        if let Some(row) = corpus.first() {
            self.compute_stats_inc(row, schema);
        } else {
            self.dim = (0..schema.arity())
                .filter(|&i| {
                    matches!(
                        schema.column(i).1,
                        crate::value::ColumnType::Int | crate::value::ColumnType::Float
                    )
                })
                .count()
                .saturating_sub(1); // exclude the key column
        }
    }

    fn compute_stats_inc(&mut self, row: &Row, schema: &Schema) {
        let _ = schema;
        // all numeric columns except the first (the key)
        self.dim = row.iter().skip(1).filter(|v| v.as_float().is_some()).count().max(self.dim);
    }

    fn compute_feature(&self, row: &Row, _schema: &Schema) -> FeatureVec {
        let comps: Vec<f32> =
            row.iter().skip(1).filter_map(|v| v.as_float()).map(|x| x as f32).collect();
        FeatureVec::dense(comps).normalized(Norm::L2)
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

/// Builds a feature function by registry name.
///
/// `capacity` bounds text dictionaries (ignored by numeric functions).
pub fn by_name(name: &str, capacity: u32) -> Option<Box<dyn FeatureFunction>> {
    match name {
        "tf_bag_of_words" => Some(Box::new(TfBagOfWords::new(capacity))),
        "tf_idf_bag_of_words" => Some(Box::new(TfIdfBagOfWords::new(capacity))),
        "numeric_columns" => Some(Box::new(NumericColumns::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColumnType;

    fn doc_schema() -> Schema {
        Schema::new(vec![("id".into(), ColumnType::Int), ("title".into(), ColumnType::Text)])
    }

    fn row(id: i64, title: &str) -> Row {
        vec![Value::Int(id), Value::Text(title.into())]
    }

    #[test]
    fn tf_counts_and_normalizes() {
        let schema = doc_schema();
        let mut ff = TfBagOfWords::new(100);
        let corpus = [row(1, "db db systems"), row(2, "learning systems")];
        ff.compute_stats(&corpus.iter().collect::<Vec<_>>(), &schema);
        let f = ff.compute_feature(&corpus[0], &schema);
        assert_eq!(f.nnz(), 2); // db, systems
        assert!((f.norm(Norm::L1) - 1.0).abs() < 1e-6);
        // "db" appears twice of three tokens
        let db_id = ff.lookup("db").unwrap();
        assert!((f.get(db_id) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn unseen_words_are_ignored_at_feature_time() {
        let schema = doc_schema();
        let mut ff = TfBagOfWords::new(100);
        ff.compute_stats(&[&row(1, "alpha beta")], &schema);
        let f = ff.compute_feature(&row(2, "alpha gamma"), &schema);
        assert_eq!(f.nnz(), 1, "gamma is out-of-dictionary");
    }

    #[test]
    fn dictionary_capacity_is_respected() {
        let schema = doc_schema();
        let mut ff = TfBagOfWords::new(2);
        ff.compute_stats(&[&row(1, "a b c d e")], &schema);
        assert!(ff.dict.len() <= 2);
        let f = ff.compute_feature(&row(2, "a b c d e"), &schema);
        assert!(f.nnz() <= 2);
    }

    #[test]
    fn idf_downweights_ubiquitous_words() {
        let schema = doc_schema();
        let mut ff = TfIdfBagOfWords::new(100);
        let corpus: Vec<Row> = (0..10)
            .map(|k| row(k, if k == 0 { "rare common" } else { "common filler" }))
            .collect();
        ff.compute_stats(&corpus.iter().collect::<Vec<_>>(), &schema);
        let f = ff.compute_feature(&corpus[0], &schema);
        let rare = ff.tf.lookup("rare").unwrap();
        let common = ff.tf.lookup("common").unwrap();
        assert!(f.get(rare) > f.get(common), "rare {} vs common {}", f.get(rare), f.get(common));
    }

    #[test]
    fn incremental_stats_extend_the_dictionary() {
        let schema = doc_schema();
        let mut ff = TfBagOfWords::new(100);
        ff.compute_stats(&[&row(1, "old words")], &schema);
        ff.compute_stats_inc(&row(2, "new vocabulary"), &schema);
        let f = ff.compute_feature(&row(3, "new words"), &schema);
        assert_eq!(f.nnz(), 2);
    }

    #[test]
    fn numeric_columns_build_dense_vectors() {
        let schema = Schema::new(vec![
            ("id".into(), ColumnType::Int),
            ("a".into(), ColumnType::Float),
            ("b".into(), ColumnType::Float),
        ]);
        let mut ff = NumericColumns::new();
        let r = vec![Value::Int(1), Value::Float(3.0), Value::Float(4.0)];
        ff.compute_stats(&[&r], &schema);
        assert_eq!(ff.dim(), 2);
        let f = ff.compute_feature(&r, &schema);
        assert_eq!(f.dim(), 2);
        assert!((f.norm(Norm::L2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn registry_resolves_names() {
        assert!(by_name("tf_bag_of_words", 10).is_some());
        assert!(by_name("tf_idf_bag_of_words", 10).is_some());
        assert!(by_name("numeric_columns", 0).is_some());
        assert!(by_name("nope", 0).is_none());
    }
}
