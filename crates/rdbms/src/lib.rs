//! Mini-RDBMS integration: classification views as database objects.
//!
//! The paper's Hazy is embedded in PostgreSQL: views are declared with a
//! `CREATE CLASSIFICATION VIEW` statement (Example 2.1), training examples
//! arrive as ordinary `INSERT`s intercepted by triggers, and queries against
//! the view are plain SQL. This crate reproduces that integration surface on
//! an embedded engine — with the trigger role played by per-table
//! delta-dataflow edges (`hazy-flow`), so views can also sit on *derived
//! relations*: `CREATE CLASSIFICATION VIEW v ON (SELECT ... FROM a JOIN b
//! ON ... WHERE ...)` is maintained incrementally under `INSERT`,
//! `DELETE`, and `UPDATE`:
//!
//! * [`Db`] — catalog of typed tables, per-table dataflow edges, statement
//!   execution;
//! * [`features`] — the feature-function registry of Appendix A.2
//!   (`tf_bag_of_words`, `tf_idf_bag_of_words`, numeric columns), each a
//!   triple (compute statistics, incremental statistics, compute feature);
//! * [`parse_statement`] — a hand-rolled parser for the DDL plus the small
//!   DML/query subset the paper's workloads need;
//! * view maintenance is delegated to `hazy-core` (any architecture × mode
//!   via `ARCHITECTURE` / `MODE` clauses, defaulting to Hazy-MM eager).
//!
//! When the `USING` clause is omitted the view runs the paper's automatic
//! model selection (cross-validation over SVM / logistic / ridge) on the
//! examples present at creation time.

#![warn(missing_docs)]

mod db;
mod error;
pub mod features;
mod sql;
mod table;
mod value;

pub use db::{Db, QueryResult};
pub use error::DbError;
pub use sql::{parse_statement, ColRef, DerivedViewDecl, JoinOn, OnQuery, Statement, ViewDecl};
pub use table::Table;
pub use value::{ColumnType, Row, Schema, Value};
